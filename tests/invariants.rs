//! Property-based tests on core invariants: solver work conservation and
//! monotonicity, composition bounds, ML sanity, regex counting.

use proptest::prelude::*;
use yala::core::composition::{compose_min, compose_rtc, compose_sum};
use yala::ml::{Dataset, LinearRegression};
use yala::rxp::Regex;
use yala::sim::accel::{self, AccelInput};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-robin grants never exceed offers and conserve accelerator work.
    #[test]
    fn accel_waterfill_is_work_conserving(
        specs in prop::collection::vec((1u32..4, 1e-8f64..1e-5, 0f64..1e8), 1..6)
    ) {
        let inputs: Vec<AccelInput> = specs
            .iter()
            .map(|&(q, s, o)| AccelInput { queues: q, service_s: s, offered_rps: o })
            .collect();
        let state = accel::solve(&inputs);
        let mut busy = 0.0;
        for (w, o) in inputs.iter().zip(&state.outcomes) {
            prop_assert!(o.granted_rps <= w.offered_rps * 1.0001 + 1e-9);
            prop_assert!(o.capacity_rps >= o.granted_rps - 1e-6);
            prop_assert!(o.sojourn_s >= w.service_s - 1e-15);
            busy += o.granted_rps * w.service_s;
        }
        prop_assert!(busy <= 1.0 + 1e-6, "accelerator over-committed: {busy}");
    }

    /// Composition outputs are bounded by solo and ordered
    /// sum ≤ rtc ≤ min for any per-resource predictions.
    #[test]
    fn composition_orderings(
        t_solo in 1e3f64..1e7,
        fractions in prop::collection::vec(0.01f64..1.0, 1..4)
    ) {
        let per: Vec<f64> = fractions.iter().map(|f| f * t_solo).collect();
        let s = compose_sum(t_solo, &per);
        let r = compose_rtc(t_solo, &per);
        let m = compose_min(t_solo, &per);
        prop_assert!(s <= r + 1e-6 * t_solo, "sum {s} > rtc {r}");
        prop_assert!(r <= m + 1e-6 * t_solo, "rtc {r} > min {m}");
        prop_assert!(m <= t_solo + 1e-9);
        prop_assert!(s >= 0.0);
    }

    /// OLS on exactly-linear data recovers the coefficients.
    #[test]
    fn ols_recovers_exact_lines(
        slope in -100f64..100.0,
        icpt in -100f64..100.0
    ) {
        let mut ds = Dataset::new(1);
        for i in 0..20 {
            let x = i as f64 * 0.7;
            ds.push(&[x], slope * x + icpt);
        }
        let m = LinearRegression::fit(&ds).expect("well-posed");
        prop_assert!((m.coefficients()[0] - slope).abs() < 1e-6);
        prop_assert!((m.intercept() - icpt).abs() < 1e-6);
    }

    /// Literal match counting equals the straightforward count of
    /// non-overlapping occurrences.
    #[test]
    fn regex_literal_counting(
        needle in "[a-c]{2,4}",
        haystack in prop::collection::vec(prop::sample::select(b"abcxyz".to_vec()), 0..200)
    ) {
        let re = Regex::compile(&needle).expect("literal pattern");
        let expected = {
            // Reference: scan left to right, non-overlapping.
            let n = needle.as_bytes();
            let mut count = 0usize;
            let mut i = 0usize;
            while i + n.len() <= haystack.len() {
                if &haystack[i..i + n.len()] == n {
                    count += 1;
                    i += n.len();
                } else {
                    i += 1;
                }
            }
            count
        };
        prop_assert_eq!(re.count_matches(&haystack), expected);
    }
}
