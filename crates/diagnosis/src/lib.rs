//! # yala-diagnosis — performance-bottleneck diagnosis (§7.5.2)
//!
//! Given a co-location and the target's traffic, which resource limits its
//! throughput? The paper's ground truth is `perf`-style hotspot analysis;
//! ours is the simulator's per-resource time accounting. Yala diagnoses by
//! comparing its per-resource throughput predictions; SLOMO, being
//! memory-only, can only ever answer "memory" — which is exactly why it
//! fails on NFs whose bottleneck shifts with traffic (Table 7).

use yala_core::{Contender, YalaModel};
use yala_sim::ResourceKind;
use yala_traffic::TrafficProfile;

/// A diagnosis verdict: the predicted bottleneck resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diagnosis {
    /// The resource predicted to limit throughput.
    pub bottleneck: ResourceKind,
    /// Predicted throughput at the bottleneck resource.
    pub limiting_tput: f64,
}

/// Yala's diagnosis: the resource whose per-resource model predicts the
/// lowest throughput is the bottleneck.
pub fn diagnose_yala(
    model: &YalaModel,
    solo_tput: f64,
    traffic: &TrafficProfile,
    contenders: &[Contender],
) -> Diagnosis {
    let per = model.per_resource(solo_tput, traffic, contenders);
    let (kind, tput) = per
        .into_iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite predictions"))
        .expect("at least the memory resource");
    Diagnosis {
        bottleneck: kind,
        limiting_tput: tput,
    }
}

/// SLOMO's diagnosis: with a memory-only model, every degradation is
/// attributed to the memory subsystem.
pub fn diagnose_slomo(predicted_tput: f64) -> Diagnosis {
    Diagnosis {
        bottleneck: ResourceKind::CpuMem,
        limiting_tput: predicted_tput,
    }
}

/// Accuracy of a batch of diagnoses against ground truth.
pub fn correctness(predicted: &[ResourceKind], truth: &[ResourceKind]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    assert!(!predicted.is_empty(), "empty diagnosis batch");
    100.0 * predicted.iter().zip(truth).filter(|(p, t)| p == t).count() as f64
        / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_core::TrainConfig;
    use yala_nf::NfKind;
    use yala_sim::{NicSpec, Simulator};

    #[test]
    fn slomo_always_says_memory() {
        let d = diagnose_slomo(1e6);
        assert_eq!(d.bottleneck, ResourceKind::CpuMem);
    }

    #[test]
    fn correctness_math() {
        use ResourceKind::*;
        let pred = [CpuMem, Regex, Regex, CpuMem];
        let truth = [CpuMem, Regex, CpuMem, CpuMem];
        assert!((correctness(&pred, &truth) - 75.0).abs() < 1e-12);
    }

    #[test]
    fn yala_diagnosis_matches_ground_truth_as_bottleneck_shifts() {
        // FlowMonitor's bottleneck shifts between the memory subsystem and
        // the regex engine depending on traffic and contention mix
        // (§7.5.2). Yala's verdict must agree with the simulator's
        // ground-truth accounting in both regimes; a memory-only predictor
        // is only right in the first.
        let mut sim = Simulator::with_noise(NicSpec::bluefield2(), 0.005, 4);
        let model = YalaModel::train(&mut sim, NfKind::FlowMonitor, &TrainConfig::default());

        // Regime A: low MTBR, heavy memory contention -> memory-bound.
        let mem_heavy = yala_core::profiler::MemLevel {
            car: 2.0e8,
            wss: 12e6,
            cycles: 60.0,
        };
        let traffic_a = TrafficProfile::new(16_000, 1500, 80.0);
        let target_a = NfKind::FlowMonitor.workload(traffic_a, 2);
        let truth_a = sim.co_run(&[target_a.clone(), mem_heavy.bench()]).outcomes[0].bottleneck;
        assert_eq!(truth_a, ResourceKind::CpuMem, "regime A setup");
        let solo_a = sim.solo(&target_a).throughput_pps;
        let contenders_a = vec![yala_core::profiler::mem_bench_contender(
            &mut sim, mem_heavy,
        )];
        let verdict_a = diagnose_yala(&model, solo_a, &traffic_a, &contenders_a).bottleneck;
        assert_eq!(verdict_a, truth_a, "Yala must call regime A memory-bound");

        // Regime B: high MTBR, heavy regex contention, mild memory ->
        // regex-bound.
        let traffic_b = TrafficProfile::new(16_000, 1500, 1_000.0);
        let target_b = NfKind::FlowMonitor.workload(traffic_b, 2);
        let regex_heavy = yala_nf::bench::regex_bench(1e12, 1446.0, 10_000.0);
        let truth_b = sim.co_run(&[target_b.clone(), regex_heavy]).outcomes[0].bottleneck;
        assert_eq!(truth_b, ResourceKind::Regex, "regime B setup");
        let solo_b = sim.solo(&target_b).throughput_pps;
        let contenders_b = vec![yala_core::profiler::regex_bench_contender(
            &mut sim, 1e12, 1446.0, 10_000.0,
        )];
        let verdict_b = diagnose_yala(&model, solo_b, &traffic_b, &contenders_b).bottleneck;
        assert_eq!(verdict_b, truth_b, "Yala must call regime B regex-bound");

        // SLOMO's memory-only view is right in A, wrong in B.
        assert_eq!(diagnose_slomo(solo_a).bottleneck, truth_a);
        assert_ne!(diagnose_slomo(solo_b).bottleneck, truth_b);
    }
}
