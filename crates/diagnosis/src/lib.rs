//! # yala-diagnosis — performance-bottleneck diagnosis (§7.5.2)
//!
//! Given a co-location and the target's traffic, which resource limits its
//! throughput? The paper's ground truth is `perf`-style hotspot analysis;
//! ours is the simulator's per-resource time accounting. Yala diagnoses by
//! comparing its per-resource throughput predictions; SLOMO, being
//! memory-only, can only ever answer "memory" — which is exactly why it
//! fails on NFs whose bottleneck shifts with traffic (Table 7).

use yala_core::{Contender, QosClass, YalaModel};
use yala_sim::ResourceKind;
use yala_traffic::TrafficProfile;

/// Selects the limiting `(resource, throughput)` pair from per-resource
/// predictions. Non-finite predictions (a pathological model extrapolation
/// can produce NaN) are ignored; if *every* entry is non-finite the
/// comparison falls back to [`f64::total_cmp`] over all entries, so the
/// function never panics on NaN.
///
/// # Panics
///
/// Panics only if `per` is empty (every NF uses at least the memory
/// subsystem).
pub fn limiting_resource(per: &[(ResourceKind, f64)]) -> (ResourceKind, f64) {
    per.iter()
        .copied()
        .filter(|(_, t)| t.is_finite())
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .or_else(|| per.iter().copied().min_by(|a, b| a.1.total_cmp(&b.1)))
        .expect("at least the memory resource")
}

/// A diagnosis verdict: the predicted bottleneck resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diagnosis {
    /// The resource predicted to limit throughput.
    pub bottleneck: ResourceKind,
    /// Predicted throughput at the bottleneck resource.
    pub limiting_tput: f64,
}

/// Yala's diagnosis: the resource whose per-resource model predicts the
/// lowest throughput is the bottleneck.
pub fn diagnose_yala(
    model: &YalaModel,
    solo_tput: f64,
    traffic: &TrafficProfile,
    contenders: &[Contender],
) -> Diagnosis {
    let per = model.per_resource(solo_tput, traffic, contenders);
    let (kind, tput) = limiting_resource(&per);
    Diagnosis {
        bottleneck: kind,
        limiting_tput: tput,
    }
}

/// Diagnosis-guided victim selection for reactive migration: given the
/// bottleneck resource of a (predicted) SLA violator and the contender
/// descriptions of its co-residents, returns the index of the co-resident
/// exerting the most pressure on that resource — the one whose eviction
/// most relieves the violator. Pressure is the cache-access rate for the
/// CPU/memory subsystem and the Eq. 1 round-time contribution
/// (`queues · service time`) for accelerators. Returns `None` for an
/// empty slate; NaN pressures rank below every finite pressure.
pub fn select_victim(bottleneck: ResourceKind, co_residents: &[Contender]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in co_residents.iter().enumerate() {
        let p = victim_pressure(bottleneck, c);
        // Strict > keeps the earliest of tied candidates: deterministic.
        if best.is_none_or(|(_, bp)| p > bp) {
            best = Some((i, p));
        }
    }
    best.map(|(i, _)| i)
}

/// A co-resident's pressure on `bottleneck`, NaN-safe: NaN ranks below
/// every finite pressure so a pathological counter never wins a victim
/// election. Public so callers can report the winning pressure (e.g. a
/// migration journal explaining the victim choice) without re-deriving
/// the election's scoring rule.
pub fn victim_pressure(bottleneck: ResourceKind, c: &Contender) -> f64 {
    let p = match bottleneck {
        ResourceKind::CpuMem => c.counters.car(),
        accel => c.pressure_on(accel),
    };
    if p.is_finite() {
        p
    } else {
        f64::NEG_INFINITY
    }
}

/// QoS-class-aware victim selection: like [`select_victim`], but the
/// election is held inside the lowest-precedence class present —
/// best-effort co-residents always shed before guaranteed ones, and a
/// guaranteed tenant is only ever selected when *no* best-effort
/// co-resident remains on the slate. Within the chosen class the victim
/// is still the max-pressure co-resident on the bottleneck.
/// `classes` runs parallel to `co_residents`.
///
/// # Panics
///
/// Panics if `classes` and `co_residents` have different lengths.
pub fn select_victim_qos(
    bottleneck: ResourceKind,
    co_residents: &[Contender],
    classes: &[QosClass],
) -> Option<usize> {
    assert_eq!(
        co_residents.len(),
        classes.len(),
        "one class per co-resident"
    );
    // The lowest-precedence (highest-ordinal) class on the slate is the
    // one that yields.
    let yielding = classes.iter().copied().max()?;
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in co_residents.iter().enumerate() {
        if classes[i] != yielding {
            continue;
        }
        let p = victim_pressure(bottleneck, c);
        if best.is_none_or(|(_, bp)| p > bp) {
            best = Some((i, p));
        }
    }
    best.map(|(i, _)| i)
}

/// SLOMO's diagnosis: with a memory-only model, every degradation is
/// attributed to the memory subsystem.
pub fn diagnose_slomo(predicted_tput: f64) -> Diagnosis {
    Diagnosis {
        bottleneck: ResourceKind::CpuMem,
        limiting_tput: predicted_tput,
    }
}

/// Accuracy of a batch of diagnoses against ground truth.
pub fn correctness(predicted: &[ResourceKind], truth: &[ResourceKind]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    assert!(!predicted.is_empty(), "empty diagnosis batch");
    100.0 * predicted.iter().zip(truth).filter(|(p, t)| p == t).count() as f64
        / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_core::TrainConfig;
    use yala_nf::NfKind;
    use yala_sim::{NicSpec, Simulator};

    #[test]
    fn slomo_always_says_memory() {
        let d = diagnose_slomo(1e6);
        assert_eq!(d.bottleneck, ResourceKind::CpuMem);
    }

    #[test]
    fn limiting_resource_ignores_non_finite_entries() {
        use ResourceKind::*;
        let per = [(CpuMem, f64::NAN), (Regex, 2e6), (Compression, 3e6)];
        assert_eq!(limiting_resource(&per), (Regex, 2e6));
        let per = [(CpuMem, f64::INFINITY), (Regex, 5e6)];
        assert_eq!(limiting_resource(&per), (Regex, 5e6));
        // All non-finite: total order, no panic.
        let per = [(CpuMem, f64::NAN), (Regex, f64::NAN)];
        let (kind, tput) = limiting_resource(&per);
        assert!(tput.is_nan());
        assert!(kind == CpuMem || kind == Regex);
    }

    #[test]
    fn select_victim_tracks_the_bottleneck_resource() {
        use yala_core::AccelContention;
        use yala_sim::CounterSample;
        let mem_hog = Contender::memory_only(
            "mem-hog",
            CounterSample {
                l2crd: 3e8,
                l2cwr: 1e8,
                ..CounterSample::default()
            },
        );
        let regex_hog = Contender::memory_only(
            "regex-hog",
            CounterSample {
                l2crd: 1e6,
                ..CounterSample::default()
            },
        )
        .with_accel(AccelContention {
            kind: ResourceKind::Regex,
            queues: 16.0,
            service_s: 2e-6,
        });
        let slate = [mem_hog, regex_hog];
        assert_eq!(select_victim(ResourceKind::CpuMem, &slate), Some(0));
        assert_eq!(select_victim(ResourceKind::Regex, &slate), Some(1));
        assert_eq!(select_victim(ResourceKind::CpuMem, &[]), None);
    }

    #[test]
    fn select_victim_qos_sheds_best_effort_first() {
        use yala_sim::CounterSample;
        let hog = |name: &str, car: f64| {
            Contender::memory_only(
                name,
                CounterSample {
                    l2crd: car,
                    ..CounterSample::default()
                },
            )
        };
        // The guaranteed tenant presses hardest, but a best-effort
        // co-resident is present: the best-effort one must yield.
        let slate = [hog("g-hog", 9e8), hog("be-quiet", 1e6), hog("be-loud", 5e6)];
        let classes = [
            QosClass::Guaranteed,
            QosClass::BestEffort,
            QosClass::BestEffort,
        ];
        assert_eq!(
            select_victim_qos(ResourceKind::CpuMem, &slate, &classes),
            Some(2),
            "max-pressure *best-effort* co-resident"
        );
        // All guaranteed: degenerates to the class-blind election.
        let all_g = [QosClass::Guaranteed; 3];
        assert_eq!(
            select_victim_qos(ResourceKind::CpuMem, &slate, &all_g),
            select_victim(ResourceKind::CpuMem, &slate)
        );
        // Empty slate.
        assert_eq!(select_victim_qos(ResourceKind::CpuMem, &[], &[]), None);
    }

    #[test]
    fn select_victim_qos_never_picks_guaranteed_while_best_effort_remains() {
        // Property sweep: random pressures, random class assignments —
        // whenever any best-effort co-resident exists, the victim is
        // best-effort.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use yala_sim::CounterSample;
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let n = rng.gen_range(1..6);
            let slate: Vec<Contender> = (0..n)
                .map(|i| {
                    Contender::memory_only(
                        format!("c{i}"),
                        CounterSample {
                            l2crd: rng.gen_range(0.0..1e9),
                            ..CounterSample::default()
                        },
                    )
                })
                .collect();
            let classes: Vec<QosClass> = (0..n)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        QosClass::Guaranteed
                    } else {
                        QosClass::BestEffort
                    }
                })
                .collect();
            let v =
                select_victim_qos(ResourceKind::CpuMem, &slate, &classes).expect("nonempty slate");
            if classes.contains(&QosClass::BestEffort) {
                assert_eq!(
                    classes[v],
                    QosClass::BestEffort,
                    "guaranteed tenant evicted while best-effort remained: {classes:?}"
                );
            }
        }
    }

    #[test]
    fn select_victim_survives_nan_pressure() {
        use yala_sim::CounterSample;
        let nan = Contender::memory_only(
            "nan",
            CounterSample {
                l2crd: f64::NAN,
                ..CounterSample::default()
            },
        );
        let ok = Contender::memory_only(
            "ok",
            CounterSample {
                l2crd: 1e6,
                ..CounterSample::default()
            },
        );
        assert_eq!(select_victim(ResourceKind::CpuMem, &[nan, ok]), Some(1));
    }

    #[test]
    fn correctness_math() {
        use ResourceKind::*;
        let pred = [CpuMem, Regex, Regex, CpuMem];
        let truth = [CpuMem, Regex, CpuMem, CpuMem];
        assert!((correctness(&pred, &truth) - 75.0).abs() < 1e-12);
    }

    #[test]
    fn yala_diagnosis_matches_ground_truth_as_bottleneck_shifts() {
        // FlowMonitor's bottleneck shifts between the memory subsystem and
        // the regex engine depending on traffic and contention mix
        // (§7.5.2). Yala's verdict must agree with the simulator's
        // ground-truth accounting in both regimes; a memory-only predictor
        // is only right in the first.
        let mut sim = Simulator::with_noise(NicSpec::bluefield2(), 0.005, 4);
        let model = YalaModel::train(&mut sim, NfKind::FlowMonitor, &TrainConfig::default());

        // Regime A: low MTBR, heavy memory contention -> memory-bound.
        let mem_heavy = yala_core::profiler::MemLevel {
            car: 2.0e8,
            wss: 12e6,
            cycles: 60.0,
        };
        let traffic_a = TrafficProfile::new(16_000, 1500, 80.0);
        let target_a = NfKind::FlowMonitor.workload(traffic_a, 2);
        let truth_a = sim.co_run(&[target_a.clone(), mem_heavy.bench()]).outcomes[0].bottleneck;
        assert_eq!(truth_a, ResourceKind::CpuMem, "regime A setup");
        let solo_a = sim.solo(&target_a).throughput_pps;
        let contenders_a = vec![yala_core::profiler::mem_bench_contender(
            &mut sim, mem_heavy,
        )];
        let verdict_a = diagnose_yala(&model, solo_a, &traffic_a, &contenders_a).bottleneck;
        assert_eq!(verdict_a, truth_a, "Yala must call regime A memory-bound");

        // Regime B: high MTBR, heavy regex contention, mild memory ->
        // regex-bound.
        let traffic_b = TrafficProfile::new(16_000, 1500, 1_000.0);
        let target_b = NfKind::FlowMonitor.workload(traffic_b, 2);
        let regex_heavy = yala_nf::bench::regex_bench(1e12, 1446.0, 10_000.0);
        let truth_b = sim.co_run(&[target_b.clone(), regex_heavy]).outcomes[0].bottleneck;
        assert_eq!(truth_b, ResourceKind::Regex, "regime B setup");
        let solo_b = sim.solo(&target_b).throughput_pps;
        let contenders_b = vec![yala_core::profiler::regex_bench_contender(
            &mut sim, 1e12, 1446.0, 10_000.0,
        )];
        let verdict_b = diagnose_yala(&model, solo_b, &traffic_b, &contenders_b).bottleneck;
        assert_eq!(verdict_b, truth_b, "Yala must call regime B regex-bound");

        // SLOMO's memory-only view is right in A, wrong in B.
        assert_eq!(diagnose_slomo(solo_a).bottleneck, truth_a);
        assert_ne!(diagnose_slomo(solo_b).bottleneck, truth_b);
    }
}
