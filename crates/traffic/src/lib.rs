//! # yala-traffic — traffic profiles, flows, packets, and payload synthesis
//!
//! Stands in for the paper's DPDK-Pktgen + exrex toolchain (§7.1). A
//! [`TrafficProfile`] captures the three traffic attributes Yala models
//! (§5.1): **flow count**, **packet size**, and **match-to-byte ratio**
//! (MTBR, in matches per MB of payload). [`PacketGenerator`] synthesises a
//! deterministic packet stream realising a profile: distinct 5-tuple flows
//! drawn uniformly (the paper's uniform flow-size distribution) and payloads
//! with ruleset matches planted at the target MTBR (the exrex substitute).
//!
//! The measurement dataplane is batched and allocation-free:
//! [`PacketGenerator::fill_batch`] writes packets into a reusable
//! [`PacketBatch`] arena (flat payload buffer + per-packet offsets) that NFs
//! consume as borrowed [`PacketView`]s. The owned-[`Packet`] scalar path
//! remains as the reference implementation.
//!
//! # Example
//!
//! ```
//! use yala_traffic::{PacketGenerator, TrafficProfile};
//! let profile = TrafficProfile::default(); // 16K flows, 1500 B, 600 matches/MB
//! let mut gen = PacketGenerator::new(profile, 42);
//! let batch = gen.batch(100);
//! assert_eq!(batch.len(), 100);
//! assert!(batch.iter().all(|p| p.wire_len() == 1500));
//! ```

pub mod batch;
pub mod flow;
pub mod packet;
pub mod payload;
pub mod pktgen;
pub mod profile;
pub mod quantize;

pub use batch::{PacketBatch, PacketView};
pub use flow::FiveTuple;
pub use packet::Packet;
pub use payload::PayloadSynthesizer;
pub use pktgen::PacketGenerator;
pub use profile::TrafficProfile;
pub use quantize::{DeltaRekey, QuantizedTraffic, TrafficQuantizer};
