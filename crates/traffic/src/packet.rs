//! Packets: a 5-tuple header plus an owned payload.
//!
//! Owned packets are the legacy scalar representation; the batched
//! dataplane processes borrowed [`PacketView`]s out of a
//! [`PacketBatch`](crate::PacketBatch) arena instead. [`Packet::view`]
//! bridges the two.

use crate::batch::PacketView;
use crate::flow::FiveTuple;
use serde::{Deserialize, Serialize};

/// Bytes of framing we model per packet: Ethernet (14) + IPv4 (20) +
/// TCP (20) = 54.
pub const HEADER_BYTES: u32 = 54;

/// A synthetic packet.
///
/// # Example
///
/// ```
/// use yala_traffic::{FiveTuple, Packet};
/// let p = Packet::new(FiveTuple::new(1, 2, 3, 4, 6), vec![0u8; 100]);
/// assert_eq!(p.payload_len(), 100);
/// assert_eq!(p.wire_len(), 154);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Flow identity (parsed header fields).
    pub five_tuple: FiveTuple,
    /// Application payload bytes.
    pub payload: Vec<u8>,
}

impl Packet {
    /// Creates a packet from a flow identity and payload.
    pub fn new(five_tuple: FiveTuple, payload: Vec<u8>) -> Self {
        Self {
            five_tuple,
            payload,
        }
    }

    /// Payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Total wire length (headers + payload).
    pub fn wire_len(&self) -> u32 {
        HEADER_BYTES + self.payload.len() as u32
    }

    /// A borrowed view of this packet, as the batched dataplane sees it.
    pub fn view(&self) -> PacketView<'_> {
        PacketView {
            five_tuple: self.five_tuple,
            payload: &self.payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_includes_headers() {
        let p = Packet::new(FiveTuple::new(0, 0, 0, 0, 6), vec![1, 2, 3]);
        assert_eq!(p.wire_len(), HEADER_BYTES + 3);
        assert_eq!(p.payload_len(), 3);
    }
}
