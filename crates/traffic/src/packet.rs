//! Packets: a 5-tuple header plus an owned payload.

use crate::flow::FiveTuple;
use serde::{Deserialize, Serialize};

/// Bytes of framing we model per packet: Ethernet (14) + IPv4 (20) +
/// TCP (20) = 54.
pub const HEADER_BYTES: u32 = 54;

/// A synthetic packet.
///
/// # Example
///
/// ```
/// use yala_traffic::{FiveTuple, Packet};
/// let p = Packet::new(FiveTuple::new(1, 2, 3, 4, 6), vec![0u8; 100]);
/// assert_eq!(p.payload_len(), 100);
/// assert_eq!(p.wire_len(), 154);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Flow identity (parsed header fields).
    pub five_tuple: FiveTuple,
    /// Application payload bytes.
    pub payload: Vec<u8>,
}

impl Packet {
    /// Creates a packet from a flow identity and payload.
    pub fn new(five_tuple: FiveTuple, payload: Vec<u8>) -> Self {
        Self { five_tuple, payload }
    }

    /// Payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Total wire length (headers + payload).
    pub fn wire_len(&self) -> u32 {
        HEADER_BYTES + self.payload.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_includes_headers() {
        let p = Packet::new(FiveTuple::new(0, 0, 0, 0, 6), vec![1, 2, 3]);
        assert_eq!(p.wire_len(), HEADER_BYTES + 3);
        assert_eq!(p.payload_len(), 3);
    }
}
