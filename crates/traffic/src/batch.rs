//! The zero-allocation packet arena: one flat payload buffer plus
//! per-packet metadata, reused across refills.
//!
//! The scalar dataplane materialised one [`Packet`](crate::Packet) — one
//! heap `Vec<u8>` — per generated packet. Profiling replays hundreds of
//! thousands of packets, so the allocator sat directly on the measurement
//! hot path. A [`PacketBatch`] amortises that to zero: payloads live
//! back-to-back in a single buffer, packets are described by
//! `(five-tuple, offset, len)` records, and NFs process borrowed
//! [`PacketView`]s instead of owned packets. Refilling a batch reuses both
//! buffers at their high-water capacity.

use crate::flow::FiveTuple;
use crate::packet::HEADER_BYTES;

/// A borrowed view of one packet inside a [`PacketBatch`] (or of an owned
/// [`Packet`](crate::Packet)): the parsed flow identity plus the payload
/// bytes in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketView<'a> {
    /// Flow identity (parsed header fields).
    pub five_tuple: FiveTuple,
    /// Application payload bytes, borrowed from the arena.
    pub payload: &'a [u8],
}

impl<'a> PacketView<'a> {
    /// Payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Total wire length (headers + payload).
    pub fn wire_len(&self) -> u32 {
        HEADER_BYTES + self.payload.len() as u32
    }
}

/// Per-packet record inside the arena.
#[derive(Debug, Clone, Copy)]
struct PacketMeta {
    five_tuple: FiveTuple,
    offset: u32,
    len: u32,
}

/// A reusable batch of packets backed by one flat payload buffer.
///
/// # Example
///
/// ```
/// use yala_traffic::{FiveTuple, PacketBatch};
/// let mut batch = PacketBatch::new();
/// batch.push(FiveTuple::new(1, 2, 3, 4, 6), b"hello");
/// batch.push(FiveTuple::new(5, 6, 7, 8, 17), b"world!");
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.get(1).payload, b"world!");
/// assert_eq!(batch.iter().map(|p| p.payload_len()).sum::<usize>(), 11);
/// batch.clear(); // keeps both buffers' capacity
/// assert!(batch.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PacketBatch {
    data: Vec<u8>,
    metas: Vec<PacketMeta>,
}

impl PacketBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch pre-sized for `packets` packets of about
    /// `payload_bytes` each, so the first fill does not reallocate.
    pub fn with_capacity(packets: usize, payload_bytes: usize) -> Self {
        Self {
            data: Vec::with_capacity(packets * payload_bytes),
            metas: Vec::with_capacity(packets),
        }
    }

    /// Number of packets currently in the batch.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Whether the batch holds no packets.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Total payload bytes across all packets.
    pub fn payload_bytes(&self) -> usize {
        self.data.len()
    }

    /// Empties the batch, retaining both buffers' capacity.
    pub fn clear(&mut self) {
        self.data.clear();
        self.metas.clear();
    }

    /// The `i`-th packet.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> PacketView<'_> {
        let m = &self.metas[i];
        PacketView {
            five_tuple: m.five_tuple,
            payload: &self.data[m.offset as usize..(m.offset + m.len) as usize],
        }
    }

    /// Iterates the packets in arrival order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = PacketView<'_>> {
        self.metas.iter().map(|m| PacketView {
            five_tuple: m.five_tuple,
            payload: &self.data[m.offset as usize..(m.offset + m.len) as usize],
        })
    }

    /// Appends a packet by copying `payload` into the arena.
    pub fn push(&mut self, five_tuple: FiveTuple, payload: &[u8]) {
        self.push_with(five_tuple, |buf| buf.extend_from_slice(payload));
    }

    /// Appends a packet whose payload is written directly into the arena by
    /// `fill` (which must only *append* to the buffer). This is the
    /// zero-copy entry point the packet generator uses.
    pub fn push_with<F: FnOnce(&mut Vec<u8>)>(&mut self, five_tuple: FiveTuple, fill: F) {
        let offset = self.data.len();
        fill(&mut self.data);
        debug_assert!(self.data.len() >= offset, "fill must append, not truncate");
        // Offsets/lengths are stored as u32 to keep the metadata compact; a
        // 4 GiB arena means a wildly misconfigured batch size, so fail loud
        // rather than letting the cast wrap and views alias wrong bytes.
        assert!(
            self.data.len() <= u32::MAX as usize,
            "packet arena exceeds u32 addressing; use smaller batches"
        );
        self.metas.push(PacketMeta {
            five_tuple,
            offset: offset as u32,
            len: (self.data.len() - offset) as u32,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft(n: u32) -> FiveTuple {
        FiveTuple::new(n, n + 1, 80, 443, 6)
    }

    #[test]
    fn push_and_view_roundtrip() {
        let mut b = PacketBatch::new();
        b.push(ft(1), &[1, 2, 3]);
        b.push(ft(2), &[]);
        b.push(ft(3), &[9; 100]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.payload_bytes(), 103);
        assert_eq!(b.get(0).payload, &[1, 2, 3]);
        assert_eq!(b.get(0).five_tuple, ft(1));
        assert_eq!(b.get(1).payload_len(), 0);
        assert_eq!(b.get(2).wire_len(), HEADER_BYTES + 100);
    }

    #[test]
    fn iter_matches_get() {
        let mut b = PacketBatch::new();
        for i in 0..10u32 {
            b.push(ft(i), &[i as u8; 5]);
        }
        let via_iter: Vec<_> = b.iter().collect();
        assert_eq!(via_iter.len(), 10);
        for (i, v) in via_iter.iter().enumerate() {
            assert_eq!(*v, b.get(i));
        }
    }

    #[test]
    fn clear_retains_capacity() {
        let mut b = PacketBatch::with_capacity(4, 64);
        for i in 0..100u32 {
            b.push(ft(i), &[0; 64]);
        }
        let data_cap = b.data.capacity();
        let meta_cap = b.metas.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.payload_bytes(), 0);
        assert_eq!(b.data.capacity(), data_cap);
        assert_eq!(b.metas.capacity(), meta_cap);
    }

    #[test]
    fn push_with_writes_in_place() {
        let mut b = PacketBatch::new();
        b.push_with(ft(1), |buf| {
            for i in 0..8u8 {
                buf.push(i * 2);
            }
        });
        assert_eq!(b.get(0).payload, &[0, 2, 4, 6, 8, 10, 12, 14]);
    }
}
