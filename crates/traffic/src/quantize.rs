//! Traffic quantization for profile caching: maps a [`TrafficProfile`]
//! onto a lattice of buckets sized under the re-profile threshold, so
//! sub-threshold drift lands on the same bucket (and therefore the same
//! profile-cache key) while above-threshold drift is guaranteed to move.
//!
//! # The math
//!
//! Drift is measured by [`TrafficProfile::relative_change`]:
//! `|now - base| / max(|base|, 1)` per attribute. That metric is
//! *multiplicative* for attributes above 1 and *additive* below, so each
//! attribute value `v` is warped through
//!
//! ```text
//! u(v) = v            for v <= 1
//! u(v) = 1 + ln(v)    for v  > 1
//! ```
//!
//! under which a relative change of `r` moves `u` by at most
//! `-ln(1 - r)` (and at least `ln(1 + r)` when `r` exceeds the
//! threshold, measured from a bucket representative). Buckets are
//! `round(u(v) / w)` with width `w = 2*ln(1 + t)` for threshold `t`;
//! a bucket's *representative* is the profile at its center,
//! `u^-1(k*w)`, projected back into the attribute's valid range. Because
//! representatives sit at bucket centers:
//!
//! * drift of at most `t/2` from the representative stays in the bucket
//!   (`-ln(1 - t/2) < ln(1 + t) = w/2` for every `t` in `(0, 1)`), and
//! * drift beyond `t` always leaves it (`|Δu| > ln(1 + t) = w/2`).
//!
//! Both margins degrade only where the range clamp (`1..=MAX_FLOW_COUNT`
//! etc.) pulls a representative off its bucket center — the outermost
//! bucket of each attribute.

use crate::profile::{TrafficProfile, MAX_FLOW_COUNT, MAX_MTBR, MAX_PACKET_SIZE, MIN_PACKET_SIZE};

/// The bucketed image of a [`TrafficProfile`] under a
/// [`TrafficQuantizer`]: one bucket index per traffic attribute, plus
/// the quantizer's scale discriminant so keys produced under different
/// thresholds never collide in a shared cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QuantizedTraffic {
    /// Flow-count bucket.
    pub flows: i64,
    /// Packet-size bucket.
    pub size: i64,
    /// MTBR bucket.
    pub mtbr: i64,
    /// Threshold discriminant: `round(threshold * 1e6)`.
    pub scale: u32,
}

/// Result of a delta re-key ([`TrafficQuantizer::delta_rekey`]): the new
/// composite key plus which attributes actually moved past threshold —
/// unmoved attributes keep their old bucket, so the re-profile replays
/// only the dimensions that drifted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaRekey {
    /// The new cache key: moved attributes re-bucketed at the current
    /// traffic, unmoved attributes carried over.
    pub key: QuantizedTraffic,
    /// Per-attribute "moved past threshold" flags, in
    /// `(flows, packet size, MTBR)` order.
    pub moved: [bool; 3],
}

impl DeltaRekey {
    /// How many attributes moved past threshold.
    pub fn moved_count(&self) -> usize {
        self.moved.iter().filter(|&&m| m).count()
    }

    /// Whether every attribute moved (a *full* re-profile: nothing of
    /// the old key survives).
    pub fn is_full(&self) -> bool {
        self.moved.iter().all(|&m| m)
    }
}

/// Quantizes traffic profiles into threshold-sized buckets (see the
/// module docs for the guarantees).
///
/// # Example
///
/// ```
/// use yala_traffic::{TrafficProfile, TrafficQuantizer};
/// let q = TrafficQuantizer::new(0.10);
/// let (key, rep) = q.canonicalize(&TrafficProfile::new(16_000, 1000, 600.0));
/// // Sub-threshold drift from the representative keeps the key...
/// let nearby = TrafficProfile::new(rep.flow_count + rep.flow_count / 25, rep.packet_size, rep.mtbr);
/// assert_eq!(q.key(&nearby), key);
/// // ...and the representative is its own fixed point.
/// assert_eq!(q.key(&rep), key);
/// assert_eq!(q.representative(&key), rep);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficQuantizer {
    threshold: f64,
    width: f64,
    scale: u32,
}

/// Warp an attribute value into the space where the relative-change
/// metric is (approximately) a fixed-size step: identity below 1,
/// shifted log above.
fn warp(v: f64) -> f64 {
    if v <= 1.0 {
        v
    } else {
        1.0 + v.ln()
    }
}

/// Inverse of [`warp`].
fn unwarp(u: f64) -> f64 {
    if u <= 1.0 {
        u
    } else {
        (u - 1.0).exp()
    }
}

impl TrafficQuantizer {
    /// A quantizer whose buckets are sized for re-profile threshold
    /// `threshold` (e.g. `0.10` for the default fleet config).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < threshold < 1`.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "re-profile threshold must be in (0, 1), got {threshold}"
        );
        Self {
            threshold,
            width: 2.0 * (1.0 + threshold).ln(),
            scale: (threshold * 1e6).round() as u32,
        }
    }

    /// The threshold this quantizer was sized for.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Raw bucket index of one attribute value.
    fn bucket(&self, v: f64) -> i64 {
        (warp(v.max(0.0)) / self.width).round() as i64
    }

    /// Canonical `(bucket, representative)` of one attribute: the fixed
    /// point of bucket -> clamped/rounded center -> bucket, so a
    /// representative always re-quantizes to its own bucket even where
    /// the range clamp pulls it off the exact center.
    fn canon_attr(&self, v: f64, lo: f64, hi: f64, integral: bool) -> (i64, f64) {
        let mut b = self.bucket(v);
        let mut rep = 0.0;
        for _ in 0..4 {
            rep = unwarp(b as f64 * self.width).clamp(lo, hi);
            if integral {
                rep = rep.round().clamp(lo, hi);
            }
            let b2 = self.bucket(rep);
            if b2 == b {
                break;
            }
            b = b2;
        }
        (b, rep)
    }

    fn canon_flows(&self, v: f64) -> (i64, f64) {
        self.canon_attr(v, 1.0, MAX_FLOW_COUNT as f64, true)
    }

    fn canon_size(&self, v: f64) -> (i64, f64) {
        self.canon_attr(v, MIN_PACKET_SIZE as f64, MAX_PACKET_SIZE as f64, true)
    }

    fn canon_mtbr(&self, v: f64) -> (i64, f64) {
        self.canon_attr(v, 0.0, MAX_MTBR, false)
    }

    /// The canonical cache key of `profile`.
    pub fn key(&self, profile: &TrafficProfile) -> QuantizedTraffic {
        QuantizedTraffic {
            flows: self.canon_flows(profile.flow_count as f64).0,
            size: self.canon_size(profile.packet_size as f64).0,
            mtbr: self.canon_mtbr(profile.mtbr).0,
            scale: self.scale,
        }
    }

    /// The representative profile of `key`: the profile actually
    /// measured for every lookup that lands on the key.
    ///
    /// # Panics
    ///
    /// Panics if `key` was produced by a quantizer with a different
    /// threshold.
    pub fn representative(&self, key: &QuantizedTraffic) -> TrafficProfile {
        assert_eq!(
            key.scale, self.scale,
            "key quantized at a different threshold"
        );
        TrafficProfile::new(
            self.canon_flows(unwarp(key.flows as f64 * self.width)).1 as u32,
            self.canon_size(unwarp(key.size as f64 * self.width)).1 as u32,
            self.canon_mtbr(unwarp(key.mtbr as f64 * self.width)).1,
        )
    }

    /// Canonical `(key, representative)` pair for `profile`.
    pub fn canonicalize(&self, profile: &TrafficProfile) -> (QuantizedTraffic, TrafficProfile) {
        let key = self.key(profile);
        (key, self.representative(&key))
    }

    /// Delta re-keying: given the last profiled key and its
    /// representative, re-bucket *only* the attributes whose relative
    /// change from the representative to `now` exceeds the threshold;
    /// attributes still within threshold keep their old bucket (their
    /// part of the old measurement is still valid by the drift
    /// criterion).
    ///
    /// # Panics
    ///
    /// Panics if `last` was quantized at a different threshold.
    pub fn delta_rekey(
        &self,
        last: &QuantizedTraffic,
        last_rep: &TrafficProfile,
        now: &TrafficProfile,
    ) -> DeltaRekey {
        assert_eq!(
            last.scale, self.scale,
            "key quantized at a different threshold"
        );
        let rels = last_rep.relative_changes(now);
        let moved = [
            rels[0] > self.threshold,
            rels[1] > self.threshold,
            rels[2] > self.threshold,
        ];
        let key = QuantizedTraffic {
            flows: if moved[0] {
                self.canon_flows(now.flow_count as f64).0
            } else {
                last.flows
            },
            size: if moved[1] {
                self.canon_size(now.packet_size as f64).0
            } else {
                last.size
            },
            mtbr: if moved[2] {
                self.canon_mtbr(now.mtbr).0
            } else {
                last.mtbr
            },
            scale: self.scale,
        };
        DeltaRekey { key, moved }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random profiles far enough inside the clamped ranges that a
    /// threshold-sized drift from a bucket representative cannot clamp —
    /// the region where the bucket-margin guarantees are exact.
    fn interior_profile<R: Rng>(rng: &mut R) -> TrafficProfile {
        TrafficProfile::new(
            rng.gen_range(2_000..350_000),
            rng.gen_range(100..1_100),
            rng.gen_range(2.0..800.0),
        )
    }

    #[test]
    fn representative_is_a_fixed_point() {
        let mut rng = StdRng::seed_from_u64(1);
        for &t in &[0.05, 0.10, 0.20] {
            let q = TrafficQuantizer::new(t);
            for _ in 0..200 {
                let p = interior_profile(&mut rng);
                let (key, rep) = q.canonicalize(&p);
                assert_eq!(q.key(&rep), key, "rep must re-quantize to its key");
                assert_eq!(q.representative(&key), rep);
            }
        }
    }

    #[test]
    fn fixed_point_holds_at_the_clamped_edges() {
        let q = TrafficQuantizer::new(0.10);
        for p in [
            TrafficProfile::new(1, MIN_PACKET_SIZE, 0.0),
            TrafficProfile::new(MAX_FLOW_COUNT, MAX_PACKET_SIZE, MAX_MTBR),
            TrafficProfile::new(1_000, 64, 0.5),
        ] {
            let (key, rep) = q.canonicalize(&p);
            assert_eq!(q.key(&rep), key);
        }
    }

    #[test]
    fn half_threshold_drift_from_representative_keeps_the_key() {
        let mut rng = StdRng::seed_from_u64(2);
        for &t in &[0.10, 0.20] {
            let q = TrafficQuantizer::new(t);
            for _ in 0..300 {
                let (key, rep) = q.canonicalize(&interior_profile(&mut rng));
                let r = rng.gen_range(-t / 2.0..=t / 2.0);
                let drifted = TrafficProfile::new(
                    (rep.flow_count as f64 * (1.0 + r)).round() as u32,
                    (rep.packet_size as f64 * (1.0 + r)).round() as u32,
                    rep.mtbr + r * rep.mtbr.abs().max(1.0),
                );
                // Integer rounding of flows/packet size adds at most
                // 0.5/attr to the relative change — still far inside
                // the same-bucket radius.
                assert!(rep.relative_change(&drifted) <= t / 2.0 + 0.01);
                assert_eq!(q.key(&drifted), key, "sub-threshold drift re-keyed");
            }
        }
    }

    #[test]
    fn above_threshold_drift_from_representative_moves_the_key() {
        let mut rng = StdRng::seed_from_u64(3);
        for &t in &[0.10, 0.20] {
            let q = TrafficQuantizer::new(t);
            for _ in 0..300 {
                let (key, rep) = q.canonicalize(&interior_profile(&mut rng));
                // Push each attribute just past the threshold, one at a
                // time, in a random direction.
                let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                let r = sign * (t * 1.05);
                let flows = TrafficProfile::new(
                    (rep.flow_count as f64 * (1.0 + r)).round() as u32,
                    rep.packet_size,
                    rep.mtbr,
                );
                assert_ne!(q.key(&flows).flows, key.flows, "flows drift kept key");
                let mtbr = TrafficProfile::new(
                    rep.flow_count,
                    rep.packet_size,
                    rep.mtbr + r * rep.mtbr.abs().max(1.0),
                );
                assert_ne!(q.key(&mtbr).mtbr, key.mtbr, "mtbr drift kept key");
            }
        }
    }

    #[test]
    fn delta_rekey_moves_only_drifted_attributes() {
        let q = TrafficQuantizer::new(0.10);
        let (key, rep) = q.canonicalize(&TrafficProfile::new(16_000, 1000, 600.0));
        // Only flows move past threshold.
        let now = TrafficProfile::new(
            (rep.flow_count as f64 * 1.3).round() as u32,
            rep.packet_size,
            rep.mtbr * 1.02,
        );
        let d = q.delta_rekey(&key, &rep, &now);
        assert_eq!(d.moved, [true, false, false]);
        assert_eq!(d.moved_count(), 1);
        assert!(!d.is_full());
        assert_ne!(d.key.flows, key.flows);
        assert_eq!(d.key.size, key.size);
        assert_eq!(d.key.mtbr, key.mtbr, "unmoved attribute keeps its bucket");
        // Everything moves: a full re-profile.
        let all = TrafficProfile::new(
            rep.flow_count * 2,
            (rep.packet_size as f64 * 0.7).round() as u32,
            rep.mtbr * 2.0,
        );
        let d = q.delta_rekey(&key, &rep, &all);
        assert!(d.is_full());
        assert_ne!(d.key, key);
    }

    #[test]
    fn mtbr_zero_is_exact() {
        let q = TrafficQuantizer::new(0.10);
        let (key, rep) = q.canonicalize(&TrafficProfile::new(10_000, 512, 0.0));
        assert_eq!(rep.mtbr, 0.0);
        assert_eq!(key.mtbr, 0);
        // Small absolute MTBR moves below threshold stay in bucket 0.
        assert_eq!(q.key(&TrafficProfile::new(10_000, 512, 0.04)).mtbr, 0);
    }

    #[test]
    fn keys_from_different_thresholds_never_collide() {
        let p = TrafficProfile::default();
        let a = TrafficQuantizer::new(0.10).key(&p);
        let b = TrafficQuantizer::new(0.20).key(&p);
        assert_ne!(a, b, "scale discriminant must separate thresholds");
    }

    #[test]
    #[should_panic(expected = "different threshold")]
    fn representative_rejects_foreign_keys() {
        let key = TrafficQuantizer::new(0.10).key(&TrafficProfile::default());
        TrafficQuantizer::new(0.20).representative(&key);
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn zero_threshold_rejected() {
        TrafficQuantizer::new(0.0);
    }
}
