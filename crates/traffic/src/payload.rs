//! Payload synthesis with a controlled match-to-byte ratio — the exrex
//! substitute.
//!
//! The generator fills payloads with bytes from a "safe" alphabet that the
//! default ruleset cannot match, then plants whole match seeds (from
//! [`yala_rxp::ruleset::match_seeds`]) so the *expected* number of ruleset
//! matches per byte equals the requested MTBR.

use rand::Rng;
use yala_rxp::ruleset::match_seeds;

/// Filler alphabet chosen to be inert against the default ruleset: no
/// digits, no `<'/_$` metacharacters, no protocol keywords can form.
const FILLER: &[u8] = b"qwzjkvyxubnmfdgh QWZJKVYXUBNM";

/// Synthesises payloads at a target MTBR against the default ruleset.
///
/// # Example
///
/// ```
/// use yala_traffic::PayloadSynthesizer;
/// use yala_rxp::l7_default_ruleset;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let synth = PayloadSynthesizer::new();
/// let mut rng = StdRng::seed_from_u64(1);
/// // 1 MB of payload at 300 matches/MB should contain ~300 matches.
/// let rules = l7_default_ruleset();
/// let mut matches = 0;
/// let mut bytes = 0;
/// for _ in 0..700 {
///     let p = synth.generate(&mut rng, 1446, 300.0);
///     let r = rules.scan(&p);
///     matches += r.total_matches;
///     bytes += r.bytes_scanned;
/// }
/// let mtbr = matches as f64 / bytes as f64 * 1e6;
/// assert!((mtbr - 300.0).abs() < 60.0, "measured {mtbr}");
/// ```
#[derive(Debug, Clone, Default)]
pub struct PayloadSynthesizer {
    seeds: Vec<Vec<u8>>,
}

impl PayloadSynthesizer {
    /// Creates a synthesizer planting the default ruleset's match seeds.
    pub fn new() -> Self {
        Self { seeds: match_seeds().into_iter().map(|(_, s)| s.to_vec()).collect() }
    }

    /// Generates one payload of `len` bytes whose expected ruleset match
    /// count is `mtbr / 1e6 * len` (Poisson-thinned Bernoulli planting).
    ///
    /// # Panics
    ///
    /// Panics if `mtbr` is negative.
    pub fn generate<R: Rng>(&self, rng: &mut R, len: usize, mtbr: f64) -> Vec<u8> {
        assert!(mtbr >= 0.0, "negative MTBR");
        let mut out = Vec::with_capacity(len);
        self.fill(rng, &mut out, len);
        let expected = mtbr / 1_000_000.0 * len as f64;
        let count = poisson(rng, expected);
        for _ in 0..count {
            let seed = &self.seeds[rng.gen_range(0..self.seeds.len())];
            if seed.len() + 2 >= len {
                continue; // payload too small to hold a separated seed
            }
            // Plant at a random offset, keeping one filler byte on each side
            // so adjacent seeds cannot merge into unintended matches.
            let at = rng.gen_range(1..len - seed.len() - 1);
            out[at..at + seed.len()].copy_from_slice(seed);
        }
        out
    }

    fn fill<R: Rng>(&self, rng: &mut R, out: &mut Vec<u8>, len: usize) {
        for _ in 0..len {
            out.push(FILLER[rng.gen_range(0..FILLER.len())]);
        }
    }
}

/// Sample from Poisson(lambda) — Knuth's method for small lambda, normal
/// approximation above 30 (plenty for per-packet match counts).
fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let sample: f64 = lambda + lambda.sqrt() * standard_normal(rng);
        return sample.round().max(0.0) as usize;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Box-Muller standard normal sample.
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yala_rxp::l7_default_ruleset;

    #[test]
    fn zero_mtbr_payload_never_matches() {
        let synth = PayloadSynthesizer::new();
        let rules = l7_default_ruleset();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let p = synth.generate(&mut rng, 1446, 0.0);
            assert_eq!(rules.scan(&p).total_matches, 0);
        }
    }

    #[test]
    fn payload_has_requested_length() {
        let synth = PayloadSynthesizer::new();
        let mut rng = StdRng::seed_from_u64(4);
        for len in [10usize, 100, 1446] {
            assert_eq!(synth.generate(&mut rng, len, 500.0).len(), len);
        }
    }

    #[test]
    fn measured_mtbr_tracks_target() {
        let synth = PayloadSynthesizer::new();
        let rules = l7_default_ruleset();
        for target in [200.0f64, 600.0, 1000.0] {
            let mut rng = StdRng::seed_from_u64(target as u64);
            let mut matches = 0usize;
            let mut bytes = 0usize;
            for _ in 0..400 {
                let p = synth.generate(&mut rng, 1446, target);
                let r = rules.scan(&p);
                matches += r.total_matches;
                bytes += r.bytes_scanned;
            }
            let measured = matches as f64 / bytes as f64 * 1e6;
            let rel_err = (measured - target).abs() / target;
            assert!(rel_err < 0.25, "target {target}, measured {measured}");
        }
    }

    #[test]
    fn tiny_payloads_do_not_panic() {
        let synth = PayloadSynthesizer::new();
        let mut rng = StdRng::seed_from_u64(5);
        for len in 1..30 {
            let p = synth.generate(&mut rng, len, 1200.0);
            assert_eq!(p.len(), len);
        }
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(6);
        for lambda in [0.5f64, 3.0, 50.0] {
            let n = 4000;
            let total: usize = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!((mean - lambda).abs() < lambda.max(1.0) * 0.1, "λ={lambda} mean={mean}");
        }
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }
}
