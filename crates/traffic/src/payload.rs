//! Payload synthesis with a controlled match-to-byte ratio — the exrex
//! substitute.
//!
//! The generator fills payloads with bytes from a "safe" alphabet that the
//! default ruleset cannot match, then plants whole match seeds (from
//! [`yala_rxp::ruleset::match_seeds`]) so the *expected* number of ruleset
//! matches per byte equals the requested MTBR.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yala_rxp::ruleset::match_seeds;

/// Filler alphabet chosen to be inert against the default ruleset: no
/// digits, no `<'/_$` metacharacters, no protocol keywords can form.
const FILLER: &[u8] = b"qwzjkvyxubnmfdgh QWZJKVYXUBNM";

/// Size of the pre-generated filler pool backing [`PayloadSynthesizer::
/// fill_pooled`]. Must comfortably exceed the largest payload (1446 B) so
/// wrapped copies still look diverse.
const POOL_BYTES: usize = 64 * 1024;

/// Fixed seed for the pool contents: the pool is a process-wide constant,
/// independent of any generator's traffic seed.
const POOL_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Synthesises payloads at a target MTBR against the default ruleset.
///
/// # Example
///
/// ```
/// use yala_traffic::PayloadSynthesizer;
/// use yala_rxp::l7_default_ruleset;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let synth = PayloadSynthesizer::new();
/// let mut rng = StdRng::seed_from_u64(1);
/// // 1 MB of payload at 300 matches/MB should contain ~300 matches.
/// let rules = l7_default_ruleset();
/// let mut matches = 0;
/// let mut bytes = 0;
/// for _ in 0..700 {
///     let p = synth.generate(&mut rng, 1446, 300.0);
///     let r = rules.scan(&p);
///     matches += r.total_matches;
///     bytes += r.bytes_scanned;
/// }
/// let mtbr = matches as f64 / bytes as f64 * 1e6;
/// assert!((mtbr - 300.0).abs() < 60.0, "measured {mtbr}");
/// ```
#[derive(Debug, Clone)]
pub struct PayloadSynthesizer {
    seeds: Vec<Vec<u8>>,
    /// Pre-generated inert filler bytes backing the pooled fast path
    /// (process-wide constant; see [`shared_pool`]).
    pool: &'static [u8],
}

impl Default for PayloadSynthesizer {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide filler pool: generated once from `POOL_SEED` on first
/// use and shared by every synthesizer, so constructing a generator (which
/// profiling sweeps do per traffic point) does not re-derive 64 KiB of
/// byte-identical state.
fn shared_pool() -> &'static [u8] {
    static POOL: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    POOL.get_or_init(|| {
        let mut pool_rng = StdRng::seed_from_u64(POOL_SEED);
        (0..POOL_BYTES)
            .map(|_| FILLER[pool_rng.gen_range(0..FILLER.len())])
            .collect()
    })
}

impl PayloadSynthesizer {
    /// Creates a synthesizer planting the default ruleset's match seeds.
    pub fn new() -> Self {
        Self {
            seeds: match_seeds().into_iter().map(|(_, s)| s.to_vec()).collect(),
            pool: shared_pool(),
        }
    }

    /// Generates one payload of `len` bytes whose expected ruleset match
    /// count is `mtbr / 1e6 * len` (Poisson-thinned Bernoulli planting).
    ///
    /// This is the legacy scalar path (one RNG draw *per byte*, one fresh
    /// `Vec` per payload); the batched dataplane uses [`Self::fill_pooled`].
    ///
    /// # Panics
    ///
    /// Panics if `mtbr` is negative.
    pub fn generate<R: Rng>(&self, rng: &mut R, len: usize, mtbr: f64) -> Vec<u8> {
        assert!(mtbr >= 0.0, "negative MTBR");
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(FILLER[rng.gen_range(0..FILLER.len())]);
        }
        self.plant(rng, &mut out, 0, len, mtbr);
        out
    }

    /// Appends one `len`-byte payload to `out` by copying from the inert
    /// filler pool at a random offset (wrapping), then planting match seeds
    /// exactly as [`Self::generate`] does. One RNG draw per *packet*
    /// instead of one per byte, and no allocation once `out` has capacity —
    /// this is what makes the batched measurement path fast.
    ///
    /// # Panics
    ///
    /// Panics if `mtbr` is negative.
    pub fn fill_pooled<R: Rng>(&self, rng: &mut R, out: &mut Vec<u8>, len: usize, mtbr: f64) {
        assert!(mtbr >= 0.0, "negative MTBR");
        let start = out.len();
        let mut at = rng.gen_range(0..self.pool.len());
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(self.pool.len() - at);
            out.extend_from_slice(&self.pool[at..at + take]);
            remaining -= take;
            at = 0; // wrap to the pool's start
        }
        self.plant(rng, out, start, len, mtbr);
    }

    /// Plants match seeds into `out[start..start + len]` so the expected
    /// ruleset match count is `mtbr / 1e6 * len` (Poisson-thinned Bernoulli
    /// planting).
    fn plant<R: Rng>(&self, rng: &mut R, out: &mut [u8], start: usize, len: usize, mtbr: f64) {
        let expected = mtbr / 1_000_000.0 * len as f64;
        let count = poisson(rng, expected);
        for _ in 0..count {
            let seed = &self.seeds[rng.gen_range(0..self.seeds.len())];
            if seed.len() + 2 >= len {
                continue; // payload too small to hold a separated seed
            }
            // Plant at a random offset, keeping one filler byte on each side
            // so adjacent seeds cannot merge into unintended matches.
            let at = start + rng.gen_range(1..len - seed.len() - 1);
            out[at..at + seed.len()].copy_from_slice(seed);
        }
    }
}

/// Sample from Poisson(lambda) — Knuth's method for small lambda, normal
/// approximation above 30 (plenty for per-packet match counts).
fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let sample: f64 = lambda + lambda.sqrt() * standard_normal(rng);
        return sample.round().max(0.0) as usize;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Box-Muller standard normal sample.
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yala_rxp::l7_default_ruleset;

    #[test]
    fn zero_mtbr_payload_never_matches() {
        let synth = PayloadSynthesizer::new();
        let rules = l7_default_ruleset();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let p = synth.generate(&mut rng, 1446, 0.0);
            assert_eq!(rules.scan(&p).total_matches, 0);
        }
    }

    #[test]
    fn payload_has_requested_length() {
        let synth = PayloadSynthesizer::new();
        let mut rng = StdRng::seed_from_u64(4);
        for len in [10usize, 100, 1446] {
            assert_eq!(synth.generate(&mut rng, len, 500.0).len(), len);
        }
    }

    #[test]
    fn measured_mtbr_tracks_target() {
        let synth = PayloadSynthesizer::new();
        let rules = l7_default_ruleset();
        for target in [200.0f64, 600.0, 1000.0] {
            let mut rng = StdRng::seed_from_u64(target as u64);
            let mut matches = 0usize;
            let mut bytes = 0usize;
            for _ in 0..400 {
                let p = synth.generate(&mut rng, 1446, target);
                let r = rules.scan(&p);
                matches += r.total_matches;
                bytes += r.bytes_scanned;
            }
            let measured = matches as f64 / bytes as f64 * 1e6;
            let rel_err = (measured - target).abs() / target;
            assert!(rel_err < 0.25, "target {target}, measured {measured}");
        }
    }

    #[test]
    fn tiny_payloads_do_not_panic() {
        let synth = PayloadSynthesizer::new();
        let mut rng = StdRng::seed_from_u64(5);
        for len in 1..30 {
            let p = synth.generate(&mut rng, len, 1200.0);
            assert_eq!(p.len(), len);
        }
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(6);
        for lambda in [0.5f64, 3.0, 50.0] {
            let n = 4000;
            let total: usize = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "λ={lambda} mean={mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn pooled_fill_is_inert_at_zero_mtbr() {
        let synth = PayloadSynthesizer::new();
        let rules = l7_default_ruleset();
        let mut rng = StdRng::seed_from_u64(8);
        let mut out = Vec::new();
        for _ in 0..200 {
            out.clear();
            synth.fill_pooled(&mut rng, &mut out, 1446, 0.0);
            assert_eq!(out.len(), 1446);
            assert_eq!(rules.scan(&out).total_matches, 0, "pool must be inert");
        }
    }

    #[test]
    fn pooled_fill_appends_exact_lengths() {
        let synth = PayloadSynthesizer::new();
        let mut rng = StdRng::seed_from_u64(9);
        let mut out = Vec::new();
        for len in [1usize, 10, 100, 1446, 70_000] {
            let before = out.len();
            synth.fill_pooled(&mut rng, &mut out, len, 400.0);
            assert_eq!(out.len(), before + len, "len {len}");
        }
    }

    #[test]
    fn pooled_mtbr_tracks_target() {
        let synth = PayloadSynthesizer::new();
        let rules = l7_default_ruleset();
        for target in [200.0f64, 600.0, 1000.0] {
            let mut rng = StdRng::seed_from_u64(100 + target as u64);
            let mut matches = 0usize;
            let mut bytes = 0usize;
            let mut p = Vec::new();
            for _ in 0..400 {
                p.clear();
                synth.fill_pooled(&mut rng, &mut p, 1446, target);
                let r = rules.scan(&p);
                matches += r.total_matches;
                bytes += r.bytes_scanned;
            }
            let measured = matches as f64 / bytes as f64 * 1e6;
            let rel_err = (measured - target).abs() / target;
            assert!(rel_err < 0.25, "target {target}, measured {measured}");
        }
    }

    #[test]
    fn pooled_fill_is_deterministic() {
        let synth = PayloadSynthesizer::new();
        let gen_with = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut out = Vec::new();
            synth.fill_pooled(&mut rng, &mut out, 512, 700.0);
            out
        };
        assert_eq!(gen_with(42), gen_with(42));
        assert_ne!(gen_with(42), gen_with(43));
    }
}
