//! Traffic profiles: the three attributes Yala's traffic-aware models use.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Minimum packet size we generate (Ethernet minimum).
pub const MIN_PACKET_SIZE: u32 = 64;
/// Maximum packet size we generate (standard MTU frame).
pub const MAX_PACKET_SIZE: u32 = 1500;
/// Largest flow count the evaluation sweeps (paper tests up to 500 K).
pub const MAX_FLOW_COUNT: u32 = 500_000;
/// Largest MTBR the evaluation sweeps (paper's diagnosis study reaches
/// 1100 matches/MB).
pub const MAX_MTBR: f64 = 1200.0;

/// A traffic profile `(flow count, packet size, MTBR)` — the paper denotes
/// the default as the vector `(16000, 1500, 600)` (§5.1).
///
/// # Example
///
/// ```
/// use yala_traffic::TrafficProfile;
/// let p = TrafficProfile::default();
/// assert_eq!(p.flow_count, 16_000);
/// assert_eq!(p.packet_size, 1500);
/// assert_eq!(p.mtbr, 600.0);
/// assert_eq!(p.as_vector(), [16_000.0, 1500.0, 600.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficProfile {
    /// Number of distinct flows in the stream.
    pub flow_count: u32,
    /// Wire length of each packet in bytes (headers + payload).
    pub packet_size: u32,
    /// Match-to-byte ratio of payloads, in matches per MB.
    pub mtbr: f64,
}

impl Default for TrafficProfile {
    /// The paper's default profile: 16 K flows, 1500 B packets,
    /// 600 matches/MB.
    fn default() -> Self {
        Self {
            flow_count: 16_000,
            packet_size: 1500,
            mtbr: 600.0,
        }
    }
}

impl TrafficProfile {
    /// Creates a profile, clamping values into the supported ranges.
    pub fn new(flow_count: u32, packet_size: u32, mtbr: f64) -> Self {
        Self {
            flow_count: flow_count.clamp(1, MAX_FLOW_COUNT),
            packet_size: packet_size.clamp(MIN_PACKET_SIZE, MAX_PACKET_SIZE),
            mtbr: mtbr.clamp(0.0, MAX_MTBR),
        }
    }

    /// The profile as the feature vector `(flows, pkt size, MTBR)` appended
    /// to the memory model's inputs (§5.1.2).
    pub fn as_vector(&self) -> [f64; 3] {
        [self.flow_count as f64, self.packet_size as f64, self.mtbr]
    }

    /// A uniformly random profile, used for the "100 distinct traffic
    /// profiles" experiments (§7.4). Flow count up to `max_flows`.
    pub fn random<R: Rng>(rng: &mut R, max_flows: u32) -> Self {
        let flow_count = rng.gen_range(1_000..=max_flows.max(1_000));
        let packet_size = rng.gen_range(MIN_PACKET_SIZE..=MAX_PACKET_SIZE);
        let mtbr = rng.gen_range(0.0..=MAX_MTBR);
        Self::new(flow_count, packet_size, mtbr)
    }

    /// The nine evaluation profiles used for Table 2 ("9 distinct traffic
    /// profiles for each NF"): the cross product of three flow counts and
    /// three (packet size, MTBR) pairs around the default.
    pub fn evaluation_grid() -> Vec<TrafficProfile> {
        let mut out = Vec::with_capacity(9);
        for &flows in &[4_000u32, 16_000, 64_000] {
            for &(size, mtbr) in &[(512u32, 200.0f64), (1024, 600.0), (1500, 1000.0)] {
                out.push(TrafficProfile::new(flows, size, mtbr));
            }
        }
        out
    }

    /// Linear interpolation between two profiles at `t ∈ [0, 1]`
    /// (clamped): the drift trajectories of a live fleet move an NF's
    /// traffic smoothly from one profile to another over its lifetime.
    /// `t = 0` returns `self` exactly and `t = 1` returns `other`
    /// exactly; every attribute is monotone in `t`.
    ///
    /// # Example
    ///
    /// ```
    /// use yala_traffic::TrafficProfile;
    /// let a = TrafficProfile::new(4_000, 512, 100.0);
    /// let b = TrafficProfile::new(64_000, 1500, 1100.0);
    /// assert_eq!(a.lerp(&b, 0.0), a);
    /// assert_eq!(a.lerp(&b, 1.0), b);
    /// assert_eq!(a.lerp(&b, 0.5).flow_count, 34_000);
    /// ```
    pub fn lerp(&self, other: &TrafficProfile, t: f64) -> TrafficProfile {
        let t = if t.is_finite() {
            t.clamp(0.0, 1.0)
        } else {
            0.0
        };
        // Pin the endpoints: `a + (b - a) * 1.0` can miss `b` by an ulp.
        let mix = |a: f64, b: f64| {
            if t <= 0.0 {
                a
            } else if t >= 1.0 {
                b
            } else {
                a + (b - a) * t
            }
        };
        TrafficProfile::new(
            mix(self.flow_count as f64, other.flow_count as f64).round() as u32,
            mix(self.packet_size as f64, other.packet_size as f64).round() as u32,
            mix(self.mtbr, other.mtbr),
        )
    }

    /// Bytes of payload per packet once headers are subtracted.
    pub fn payload_size(&self) -> u32 {
        self.packet_size
            .saturating_sub(crate::packet::HEADER_BYTES)
            .max(1)
    }

    /// Per-attribute relative changes from `self` to `now`, in
    /// `(flow count, packet size, MTBR)` order:
    /// `|now - base| / max(|base|, 1)` per attribute. The unit floor in
    /// the denominator keeps near-zero attributes (an MTBR of 0.01)
    /// from flagging drift on every epoch.
    pub fn relative_changes(&self, now: &TrafficProfile) -> [f64; 3] {
        let rel = |a: f64, b: f64| (b - a).abs() / a.abs().max(1.0);
        [
            rel(self.flow_count as f64, now.flow_count as f64),
            rel(self.packet_size as f64, now.packet_size as f64),
            rel(self.mtbr, now.mtbr),
        ]
    }

    /// The drift metric every threshold check in the workspace shares:
    /// the largest per-attribute relative change from `self` to `now`.
    /// Re-profile triggers compare this against a threshold, and
    /// [`crate::TrafficQuantizer`] sizes its buckets from the same
    /// metric — one source of truth for "how far has traffic moved".
    ///
    /// # Example
    ///
    /// ```
    /// use yala_traffic::TrafficProfile;
    /// let base = TrafficProfile::new(10_000, 1000, 100.0);
    /// let now = TrafficProfile::new(11_000, 1000, 100.0);
    /// assert!((base.relative_change(&now) - 0.1).abs() < 1e-12);
    /// ```
    pub fn relative_change(&self, now: &TrafficProfile) -> f64 {
        self.relative_changes(now)
            .into_iter()
            .fold(0.0f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_matches_paper() {
        let p = TrafficProfile::default();
        assert_eq!((p.flow_count, p.packet_size), (16_000, 1500));
        assert_eq!(p.mtbr, 600.0);
    }

    #[test]
    fn new_clamps() {
        let p = TrafficProfile::new(0, 9999, -5.0);
        assert_eq!(p.flow_count, 1);
        assert_eq!(p.packet_size, MAX_PACKET_SIZE);
        assert_eq!(p.mtbr, 0.0);
    }

    #[test]
    fn random_profiles_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let p = TrafficProfile::random(&mut rng, 500_000);
            assert!(p.flow_count >= 1_000 && p.flow_count <= 500_000);
            assert!(p.packet_size >= MIN_PACKET_SIZE && p.packet_size <= MAX_PACKET_SIZE);
            assert!(p.mtbr >= 0.0 && p.mtbr <= MAX_MTBR);
        }
    }

    #[test]
    fn evaluation_grid_has_nine_distinct() {
        let grid = TrafficProfile::evaluation_grid();
        assert_eq!(grid.len(), 9);
        for i in 0..9 {
            for j in i + 1..9 {
                assert_ne!(grid[i], grid[j]);
            }
        }
    }

    #[test]
    fn lerp_endpoints_are_exact() {
        let a = TrafficProfile::new(4_000, 512, 100.0);
        let b = TrafficProfile::new(64_000, 1500, 1_100.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(b.lerp(&a, 0.0), b);
        assert_eq!(b.lerp(&a, 1.0), a);
        // Out-of-range and non-finite t clamp to the endpoints.
        assert_eq!(a.lerp(&b, -3.0), a);
        assert_eq!(a.lerp(&b, 7.5), b);
        assert_eq!(a.lerp(&b, f64::NAN), a);
    }

    #[test]
    fn lerp_is_monotone_in_t() {
        let a = TrafficProfile::new(1_000, 64, 0.0);
        let b = TrafficProfile::new(500_000, 1500, 1_200.0);
        let mut prev = a;
        for step in 1..=100 {
            let p = a.lerp(&b, step as f64 / 100.0);
            assert!(p.flow_count >= prev.flow_count);
            assert!(p.packet_size >= prev.packet_size);
            assert!(p.mtbr >= prev.mtbr);
            prev = p;
        }
        assert_eq!(prev, b);
    }

    #[test]
    fn lerp_stays_in_supported_ranges() {
        let a = TrafficProfile::new(1, MIN_PACKET_SIZE, 0.0);
        let b = TrafficProfile::new(MAX_FLOW_COUNT, MAX_PACKET_SIZE, MAX_MTBR);
        for step in 0..=20 {
            let p = a.lerp(&b, step as f64 / 20.0);
            assert!(p.flow_count >= 1 && p.flow_count <= MAX_FLOW_COUNT);
            assert!(p.packet_size >= MIN_PACKET_SIZE && p.packet_size <= MAX_PACKET_SIZE);
            assert!(p.mtbr >= 0.0 && p.mtbr <= MAX_MTBR);
        }
    }

    #[test]
    fn relative_change_is_max_over_attributes() {
        let base = TrafficProfile::new(10_000, 1000, 100.0);
        let now = TrafficProfile::new(10_500, 1200, 101.0);
        let rels = base.relative_changes(&now);
        assert!((rels[0] - 0.05).abs() < 1e-12);
        assert!((rels[1] - 0.2).abs() < 1e-12);
        assert!((rels[2] - 0.01).abs() < 1e-12);
        assert!((base.relative_change(&now) - 0.2).abs() < 1e-12);
        assert_eq!(base.relative_change(&base), 0.0);
    }

    #[test]
    fn relative_change_floors_small_denominators_at_one() {
        // MTBR 0.2 -> 0.5 is a 0.3 *absolute* move, not a 1.5x relative
        // one: the unit floor in the denominator keeps tiny attributes
        // from dominating the drift metric.
        let base = TrafficProfile::new(1_000, 64, 0.2);
        let now = TrafficProfile::new(1_000, 64, 0.5);
        assert!((base.relative_change(&now) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn payload_size_subtracts_headers() {
        let p = TrafficProfile::new(1000, 1500, 0.0);
        assert_eq!(p.payload_size(), 1500 - crate::packet::HEADER_BYTES);
        let tiny = TrafficProfile::new(1000, 64, 0.0);
        assert!(tiny.payload_size() >= 1);
    }
}
