//! The packet generator: realises a [`TrafficProfile`] as a deterministic
//! packet stream (DPDK-Pktgen substitute).
//!
//! Two generation paths exist:
//!
//! * [`PacketGenerator::fill_batch`] — the batched dataplane: packets are
//!   written into a reusable [`PacketBatch`] arena (no per-packet
//!   allocation) with pooled payload synthesis (no per-byte RNG draws).
//!   This is what the profiling harness uses.
//! * [`PacketGenerator::next_packet`] / [`PacketGenerator::batch`] — the
//!   legacy scalar path producing owned [`Packet`]s, kept as the
//!   reference implementation and as the baseline side of the
//!   scalar-vs-batched microbenchmark.

use crate::batch::PacketBatch;
use crate::flow::{generate_flows, FiveTuple};
use crate::packet::Packet;
use crate::payload::PayloadSynthesizer;
use crate::profile::TrafficProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates packets for one traffic profile. Flows are pre-synthesised and
/// selected uniformly per packet; payload MTBR follows the profile.
///
/// # Example
///
/// ```
/// use yala_traffic::{PacketGenerator, TrafficProfile};
/// let mut gen = PacketGenerator::new(TrafficProfile::new(100, 256, 0.0), 7);
/// let pkts = gen.batch(10);
/// assert!(pkts.iter().all(|p| p.wire_len() == 256));
/// ```
#[derive(Debug, Clone)]
pub struct PacketGenerator {
    profile: TrafficProfile,
    flows: Vec<FiveTuple>,
    synth: PayloadSynthesizer,
    rng: StdRng,
}

impl PacketGenerator {
    /// Creates a generator for `profile`, deterministic in `seed`.
    pub fn new(profile: TrafficProfile, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let flows = generate_flows(&mut rng, profile.flow_count);
        Self {
            profile,
            flows,
            synth: PayloadSynthesizer::new(),
            rng,
        }
    }

    /// The profile being generated.
    pub fn profile(&self) -> TrafficProfile {
        self.profile
    }

    /// The synthesised flow set.
    pub fn flows(&self) -> &[FiveTuple] {
        &self.flows
    }

    /// Generates the next packet: uniform flow choice, profile-sized
    /// payload with planted matches.
    pub fn next_packet(&mut self) -> Packet {
        let flow = self.flows[self.rng.gen_range(0..self.flows.len())];
        let payload = self.synth.generate(
            &mut self.rng,
            self.profile.payload_size() as usize,
            self.profile.mtbr,
        );
        Packet::new(flow, payload)
    }

    /// Generates `n` packets.
    pub fn batch(&mut self, n: usize) -> Vec<Packet> {
        (0..n).map(|_| self.next_packet()).collect()
    }

    /// Refills `batch` with `n` packets, reusing its buffers: the
    /// zero-allocation dataplane entry point. Payloads come from the pooled
    /// fast path (one RNG draw per packet instead of one per byte) and are
    /// written straight into the batch's flat arena.
    pub fn fill_batch(&mut self, batch: &mut PacketBatch, n: usize) {
        batch.clear();
        let Self {
            profile,
            flows,
            synth,
            rng,
        } = self;
        let len = profile.payload_size() as usize;
        for _ in 0..n {
            let flow = flows[rng.gen_range(0..flows.len())];
            batch.push_with(flow, |buf| synth.fill_pooled(rng, buf, len, profile.mtbr));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn batch_sizes_and_lengths() {
        let mut g = PacketGenerator::new(TrafficProfile::new(50, 512, 100.0), 1);
        let pkts = g.batch(200);
        assert_eq!(pkts.len(), 200);
        assert!(pkts.iter().all(|p| p.wire_len() == 512));
    }

    #[test]
    fn packets_only_use_declared_flows() {
        let mut g = PacketGenerator::new(TrafficProfile::new(20, 128, 0.0), 2);
        let declared: HashSet<FiveTuple> = g.flows().iter().copied().collect();
        for p in g.batch(500) {
            assert!(declared.contains(&p.five_tuple));
        }
    }

    #[test]
    fn uniform_flow_usage_touches_most_flows() {
        let mut g = PacketGenerator::new(TrafficProfile::new(100, 128, 0.0), 3);
        let used: HashSet<FiveTuple> = g.batch(2_000).into_iter().map(|p| p.five_tuple).collect();
        assert!(
            used.len() > 90,
            "uniform draw should hit most of 100 flows, hit {}",
            used.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = PacketGenerator::new(TrafficProfile::default(), 11);
        let mut b = PacketGenerator::new(TrafficProfile::default(), 11);
        assert_eq!(a.batch(20), b.batch(20));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = PacketGenerator::new(TrafficProfile::default(), 11);
        let mut b = PacketGenerator::new(TrafficProfile::default(), 12);
        assert_ne!(a.batch(5), b.batch(5));
    }

    #[test]
    fn fill_batch_respects_profile() {
        let mut g = PacketGenerator::new(TrafficProfile::new(50, 512, 100.0), 1);
        let mut batch = PacketBatch::new();
        g.fill_batch(&mut batch, 200);
        assert_eq!(batch.len(), 200);
        assert!(batch.iter().all(|p| p.wire_len() == 512));
        let declared: HashSet<FiveTuple> = g.flows().iter().copied().collect();
        assert!(batch.iter().all(|p| declared.contains(&p.five_tuple)));
    }

    #[test]
    fn fill_batch_is_deterministic_and_refill_reuses_buffers() {
        let mut a = PacketGenerator::new(TrafficProfile::default(), 11);
        let mut b = PacketGenerator::new(TrafficProfile::default(), 11);
        let mut ba = PacketBatch::new();
        let mut bb = PacketBatch::new();
        a.fill_batch(&mut ba, 20);
        b.fill_batch(&mut bb, 20);
        let collect = |x: &PacketBatch| {
            x.iter()
                .map(|p| (p.five_tuple, p.payload.to_vec()))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(&ba), collect(&bb));
        // A refill continues the stream deterministically and reuses the
        // arena in place.
        a.fill_batch(&mut ba, 20);
        b.fill_batch(&mut bb, 20);
        assert_eq!(collect(&ba), collect(&bb));
    }

    #[test]
    fn fill_batch_and_scalar_draw_same_flows() {
        // Both paths must realise the same traffic profile; flows are drawn
        // from the identical declared set with the identical first draw.
        let profile = TrafficProfile::new(100, 256, 0.0);
        let mut scalar = PacketGenerator::new(profile, 5);
        let mut batched = PacketGenerator::new(profile, 5);
        let first_scalar = scalar.next_packet().five_tuple;
        let mut batch = PacketBatch::new();
        batched.fill_batch(&mut batch, 1);
        assert_eq!(first_scalar, batch.get(0).five_tuple);
    }
}
