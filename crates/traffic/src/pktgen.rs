//! The packet generator: realises a [`TrafficProfile`] as a deterministic
//! packet stream (DPDK-Pktgen substitute).

use crate::flow::{generate_flows, FiveTuple};
use crate::packet::Packet;
use crate::payload::PayloadSynthesizer;
use crate::profile::TrafficProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates packets for one traffic profile. Flows are pre-synthesised and
/// selected uniformly per packet; payload MTBR follows the profile.
///
/// # Example
///
/// ```
/// use yala_traffic::{PacketGenerator, TrafficProfile};
/// let mut gen = PacketGenerator::new(TrafficProfile::new(100, 256, 0.0), 7);
/// let pkts = gen.batch(10);
/// assert!(pkts.iter().all(|p| p.wire_len() == 256));
/// ```
#[derive(Debug, Clone)]
pub struct PacketGenerator {
    profile: TrafficProfile,
    flows: Vec<FiveTuple>,
    synth: PayloadSynthesizer,
    rng: StdRng,
}

impl PacketGenerator {
    /// Creates a generator for `profile`, deterministic in `seed`.
    pub fn new(profile: TrafficProfile, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let flows = generate_flows(&mut rng, profile.flow_count);
        Self { profile, flows, synth: PayloadSynthesizer::new(), rng }
    }

    /// The profile being generated.
    pub fn profile(&self) -> TrafficProfile {
        self.profile
    }

    /// The synthesised flow set.
    pub fn flows(&self) -> &[FiveTuple] {
        &self.flows
    }

    /// Generates the next packet: uniform flow choice, profile-sized
    /// payload with planted matches.
    pub fn next_packet(&mut self) -> Packet {
        let flow = self.flows[self.rng.gen_range(0..self.flows.len())];
        let payload = self.synth.generate(
            &mut self.rng,
            self.profile.payload_size() as usize,
            self.profile.mtbr,
        );
        Packet::new(flow, payload)
    }

    /// Generates `n` packets.
    pub fn batch(&mut self, n: usize) -> Vec<Packet> {
        (0..n).map(|_| self.next_packet()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn batch_sizes_and_lengths() {
        let mut g = PacketGenerator::new(TrafficProfile::new(50, 512, 100.0), 1);
        let pkts = g.batch(200);
        assert_eq!(pkts.len(), 200);
        assert!(pkts.iter().all(|p| p.wire_len() == 512));
    }

    #[test]
    fn packets_only_use_declared_flows() {
        let mut g = PacketGenerator::new(TrafficProfile::new(20, 128, 0.0), 2);
        let declared: HashSet<FiveTuple> = g.flows().iter().copied().collect();
        for p in g.batch(500) {
            assert!(declared.contains(&p.five_tuple));
        }
    }

    #[test]
    fn uniform_flow_usage_touches_most_flows() {
        let mut g = PacketGenerator::new(TrafficProfile::new(100, 128, 0.0), 3);
        let used: HashSet<FiveTuple> = g.batch(2_000).into_iter().map(|p| p.five_tuple).collect();
        assert!(used.len() > 90, "uniform draw should hit most of 100 flows, hit {}", used.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = PacketGenerator::new(TrafficProfile::default(), 11);
        let mut b = PacketGenerator::new(TrafficProfile::default(), 11);
        assert_eq!(a.batch(20), b.batch(20));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = PacketGenerator::new(TrafficProfile::default(), 11);
        let mut b = PacketGenerator::new(TrafficProfile::default(), 12);
        assert_ne!(a.batch(5), b.batch(5));
    }
}
