//! Flow identities (5-tuples) and deterministic flow-set synthesis.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A transport 5-tuple identifying a flow.
///
/// # Example
///
/// ```
/// use yala_traffic::FiveTuple;
/// let ft = FiveTuple::new(0x0a000001, 0x0a000002, 1234, 80, 6);
/// assert_eq!(ft.proto, 6);
/// assert_ne!(ft.hash64(), FiveTuple::new(0x0a000001, 0x0a000002, 1234, 81, 6).hash64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub proto: u8,
}

impl FiveTuple {
    /// Creates a 5-tuple.
    pub fn new(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, proto: u8) -> Self {
        Self {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
        }
    }

    /// A fast 64-bit mix of the tuple — the hash NF flow tables key on.
    /// (FxHash-style multiply-xor; deterministic across runs.)
    pub fn hash64(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [
            self.src_ip as u64,
            self.dst_ip as u64,
            self.src_port as u64,
            self.dst_port as u64,
            self.proto as u64,
        ] {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
            h ^= h >> 33;
        }
        h
    }

    /// The tuple with endpoints swapped (reverse direction), used by NAT.
    pub fn reversed(&self) -> Self {
        Self {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }
}

/// Generates `count` *distinct* flows with randomised endpoints.
///
/// Traffic is drawn uniformly over these flows, matching the paper's
/// "flow sizes following the uniform distribution" setup (§2.1).
pub fn generate_flows<R: Rng>(rng: &mut R, count: u32) -> Vec<FiveTuple> {
    let mut seen: HashSet<FiveTuple> = HashSet::with_capacity(count as usize);
    let mut out = Vec::with_capacity(count as usize);
    while out.len() < count as usize {
        let ft = FiveTuple::new(
            0x0a00_0000 | rng.gen_range(0u32..1 << 20), // 10.0.0.0/12 clients
            0xc0a8_0000 | rng.gen_range(0u32..1 << 12), // 192.168.0.0/20 servers
            rng.gen_range(1024..u16::MAX),
            *[80u16, 443, 22, 25, 53, 8080]
                .get(rng.gen_range(0..6))
                .expect("in range"),
            if rng.gen_bool(0.8) { 6 } else { 17 },
        );
        if seen.insert(ft) {
            out.push(ft);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_flows_are_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        let flows = generate_flows(&mut rng, 5_000);
        let set: HashSet<_> = flows.iter().collect();
        assert_eq!(set.len(), 5_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_flows(&mut StdRng::seed_from_u64(9), 100);
        let b = generate_flows(&mut StdRng::seed_from_u64(9), 100);
        assert_eq!(a, b);
    }

    #[test]
    fn hash64_spreads() {
        let mut rng = StdRng::seed_from_u64(2);
        let flows = generate_flows(&mut rng, 1_000);
        let hashes: HashSet<u64> = flows.iter().map(|f| f.hash64()).collect();
        assert_eq!(hashes.len(), 1_000, "hash collisions over tiny set");
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let ft = FiveTuple::new(1, 2, 3, 4, 6);
        let rev = ft.reversed();
        assert_eq!(rev.src_ip, 2);
        assert_eq!(rev.dst_ip, 1);
        assert_eq!(rev.src_port, 4);
        assert_eq!(rev.dst_port, 3);
        assert_eq!(rev.reversed(), ft);
    }
}
