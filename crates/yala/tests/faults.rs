//! End-to-end tests of fault injection and QoS-tiered degradation: a
//! failure-and-drain-heavy scenario must stay bit-identical across runs
//! and engine thread counts (faults are ordinary events in the static
//! event list, not a second clock), and the QoS-aware policy must shield
//! the guaranteed class — fewer guaranteed sheds and no more guaranteed
//! bad minutes than the QoS-blind baseline under the *same* fault
//! schedule. The per-decision invariant (never evict a guaranteed NF
//! while a best-effort co-resident remains feasible) is property-tested
//! in `yala-diagnosis`; here we check its fleet-level consequence.

use std::sync::OnceLock;
use yala::core::adaptive::AdaptiveConfig;
use yala::core::{Engine, ModelBank, TrainConfig, YalaModel};
use yala::fleet::{
    run_fleet, Diagnoser, FaultKind, FaultPlan, FleetConfig, FleetPolicy, FleetReport, FleetTrace,
    ProfiledTrace,
};
use yala::ml::GbrParams;
use yala::nf::NfKind;
use yala::placement::YalaPredictor;
use yala::sim::NicSpec;

const KINDS: [NfKind; 2] = [NfKind::FlowStats, NfKind::Nat];
const NOISE: f64 = 0.005;

/// Reduced-cost training: the tests probe the fault machinery, not
/// paper accuracy.
fn train_cfg() -> TrainConfig {
    TrainConfig {
        adaptive: AdaptiveConfig {
            quota: 120,
            ..AdaptiveConfig::default()
        },
        gbr: GbrParams {
            n_estimators: 120,
            learning_rate: 0.1,
            ..GbrParams::default()
        },
        seed: 13,
        ..TrainConfig::default()
    }
}

/// A failure-heavy afternoon: a 12-NIC fleet where every NIC fails about
/// once over the horizon and two maintenance drains are announced, with
/// a 50/50 guaranteed/best-effort tenant mix.
fn config(seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::small(seed);
    cfg.portfolio = vec![(NicSpec::bluefield2(), 12)];
    cfg.duration_s = 3 * 3_600;
    cfg.mean_interarrival_s = 200.0;
    cfg.mean_lifetime_s = 2_400.0;
    cfg.audit_period_s = 600;
    cfg.kinds = KINDS.to_vec();
    cfg.max_flows = 200_000;
    cfg.sla_drop_range = (0.05, 0.15);
    cfg.noise_sigma = NOISE;
    cfg.guaranteed_fraction = 0.5;
    cfg.faults = FaultPlan {
        mtbf_s: 10_800.0,
        mean_repair_s: 1_800.0,
        drains: 2,
        drain_notice_s: 900,
        drain_offline_s: 900,
    };
    cfg
}

struct Fixture {
    profiled: ProfiledTrace,
    bank: ModelBank<YalaModel>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let engine = Engine::auto();
        let bank = ModelBank::train_yala(
            &[NicSpec::bluefield2()],
            NOISE,
            &KINDS,
            &train_cfg(),
            &engine,
        );
        let profiled = ProfiledTrace::build(FleetTrace::generate(config(53)), &engine);
        Fixture { profiled, bank }
    })
}

fn run_policy(profiled: &ProfiledTrace, qos_aware: bool, engine: &Engine) -> FleetReport {
    let fx = fixture();
    let mut predictor = YalaPredictor::new(&fx.bank);
    run_fleet(
        profiled,
        FleetPolicy::ContentionAware {
            predictor: &mut predictor,
            diagnoser: Diagnoser::Yala(&fx.bank),
            online: None,
            qos_aware,
        },
        if qos_aware { "yala-qos" } else { "yala-blind" },
        engine,
    )
}

#[test]
fn scenario_actually_mixes_classes_and_faults() {
    let fx = fixture();
    let trace = &fx.profiled.trace;
    let guaranteed = trace
        .records
        .iter()
        .filter(|r| r.qos.is_guaranteed())
        .count();
    assert!(
        guaranteed > 0 && guaranteed < trace.records.len(),
        "a 0.5 guaranteed fraction must draw both classes \
         ({guaranteed}/{} guaranteed)",
        trace.records.len()
    );
    let fails = trace
        .faults
        .iter()
        .filter(|f| f.kind == FaultKind::Fail)
        .count();
    let drains = trace
        .faults
        .iter()
        .filter(|f| f.kind == FaultKind::DrainStart)
        .count();
    assert!(fails >= 2, "the plan must schedule hard failures ({fails})");
    assert!(drains >= 1, "the plan must schedule drains ({drains})");
}

#[test]
fn fault_injected_reports_are_bit_identical_across_thread_counts() {
    let fx = fixture();
    let a = run_policy(&fx.profiled, true, &Engine::sequential());
    let b = run_policy(&fx.profiled, true, &Engine::with_threads(4));
    assert_eq!(a, b, "audit fan-out must not affect a fault-injected run");
    // From-scratch rebuild (trace generation + profiling) on a parallel
    // engine, replayed sequentially: the fault schedule and QoS draws
    // are pure functions of the config, not of the engine.
    let rebuilt = ProfiledTrace::build(FleetTrace::generate(config(53)), &Engine::with_threads(4));
    let c = run_policy(&rebuilt, true, &Engine::sequential());
    assert_eq!(a, c, "trace/profiling fan-out must not affect the report");
    assert_eq!(a.to_json(), c.to_json());
    // The scenario exercised the machinery it claims to test.
    assert!(a.faults > 0, "hard failures must fire on-trace");
    assert!(a.drains > 0, "drains must fire on-trace");
    let evacuated = a.guaranteed.evacuations + a.best_effort.evacuations;
    let shed = a.guaranteed.shed + a.best_effort.shed;
    assert!(
        evacuated + shed > 0,
        "faults on an occupied fleet must displace at least one NF"
    );
}

#[test]
fn qos_aware_policy_shields_the_guaranteed_class() {
    let fx = fixture();
    let engine = Engine::sequential();
    let aware = run_policy(&fx.profiled, true, &engine);
    let blind = run_policy(&fx.profiled, false, &engine);
    // Identical fault schedule either way: faults come from the trace.
    assert_eq!(aware.faults, blind.faults);
    assert_eq!(aware.drains, blind.drains);
    // The headline claim: under the same faults, QoS-aware degradation
    // concentrates the damage on the best-effort class.
    assert!(
        aware.guaranteed.shed <= blind.guaranteed.shed,
        "aware must never shed more guaranteed NFs ({} vs {})",
        aware.guaranteed.shed,
        blind.guaranteed.shed
    );
    assert!(
        aware.guaranteed.bad_minutes() <= blind.guaranteed.bad_minutes(),
        "aware guaranteed bad minutes ({:.1}) must not exceed blind ({:.1})",
        aware.guaranteed.bad_minutes(),
        blind.guaranteed.bad_minutes()
    );
    // Parked best-effort NFs must eventually be readmitted (the backoff
    // loop runs) whenever the aware run parked anyone.
    if aware.best_effort.shed > 0 {
        assert!(
            aware.best_effort.readmitted > 0 || aware.best_effort.downtime_minutes > 0.0,
            "shed NFs must either re-enter or accrue downtime"
        );
    }
}
