//! End-to-end tests of the online-refinement loop: audit ground truth
//! flowing back into the trained banks. The invariants mirror the CI
//! gates — refinement is bit-deterministic across runs *and* engine
//! thread counts, an empty buffer is a strict no-op, observations can
//! never resurrect a capability-infeasible `(model, kind)` cell, and on
//! a drift-heavy scenario where the frozen (train-once) bank decays, the
//! online policy ends the episode with no more SLA-violation minutes
//! than the frozen one.
//!
//! The decay setup mimics production model rot: the bank trains while
//! flow counts live below `STALE_FLOW_CEILING`, then the fleet drifts
//! far past it, so the frozen memory curve extrapolates flat and
//! over-predicts throughput exactly where co-locations hurt the most.

use std::sync::OnceLock;
use yala::core::adaptive::{AdaptiveConfig, TrafficRanges};
use yala::core::{Engine, ModelBank, Observation, ObservationBuffer, TrainConfig, YalaModel};
use yala::fleet::{
    run_fleet, Diagnoser, FleetConfig, FleetPolicy, FleetReport, FleetTrace, OnlineRefine,
    ProfiledTrace,
};
use yala::ml::GbrParams;
use yala::nf::NfKind;
use yala::placement::YalaPredictor;
use yala::sim::{CounterSample, NicSpec, ResourceKind};
use yala::traffic::TrafficProfile;

const KINDS: [NfKind; 2] = [NfKind::FlowStats, NfKind::Nat];
const NOISE: f64 = 0.005;
/// Largest flow count the stale bank saw in training; the scenario
/// drifts to `config().max_flows` (far beyond it).
const STALE_FLOW_CEILING: u32 = 32_000;

/// Reduced-cost training: stale flow range, smaller profiling quota and
/// GBR — the tests probe the refinement *mechanics*, not paper accuracy.
fn train_cfg() -> TrainConfig {
    TrainConfig {
        ranges: TrafficRanges {
            flows: (1_000, STALE_FLOW_CEILING),
            ..TrafficRanges::default()
        },
        adaptive: AdaptiveConfig {
            quota: 120,
            ..AdaptiveConfig::default()
        },
        gbr: GbrParams {
            n_estimators: 120,
            learning_rate: 0.1,
            ..GbrParams::default()
        },
        seed: 11,
        ..TrainConfig::default()
    }
}

/// A small drift-heavy scenario: memory-heavy traffic drifting well past
/// the bank's training range, tight SLAs.
fn config(seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::small(seed);
    cfg.portfolio = vec![(NicSpec::bluefield2(), 16)];
    cfg.duration_s = 2 * 3_600;
    cfg.mean_interarrival_s = 240.0;
    cfg.mean_lifetime_s = 3_600.0;
    cfg.audit_period_s = 600;
    cfg.kinds = KINDS.to_vec();
    cfg.max_flows = 200_000;
    cfg.sla_drop_range = (0.04, 0.12);
    cfg.noise_sigma = NOISE;
    cfg
}

struct Fixture {
    profiled: ProfiledTrace,
    bank: ModelBank<YalaModel>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let engine = Engine::auto();
        let bank = ModelBank::train_yala(
            &[NicSpec::bluefield2()],
            NOISE,
            &KINDS,
            &train_cfg(),
            &engine,
        );
        let profiled = ProfiledTrace::build(FleetTrace::generate(config(41)), &engine);
        Fixture { profiled, bank }
    })
}

fn run_policy(
    profiled: &ProfiledTrace,
    online: Option<OnlineRefine>,
    engine: &Engine,
) -> (FleetReport, usize) {
    let fx = fixture();
    let mut predictor = YalaPredictor::new(&fx.bank);
    let label = if online.is_some() { "online" } else { "frozen" };
    let report = run_fleet(
        profiled,
        FleetPolicy::ContentionAware {
            predictor: &mut predictor,
            diagnoser: Diagnoser::Yala(&fx.bank),
            online,
            qos_aware: true,
        },
        label,
        engine,
    );
    (report, predictor.absorbed())
}

/// Synthetic drifted-regime observations for one cell: heavy competitor
/// counters at a flow count far beyond the training ceiling, with the
/// measured outcome well below what the stale curve believes.
fn drifted_observations(model: yala::sim::NicModelId, kind: NfKind, n: usize) -> Vec<Observation> {
    (0..n)
        .map(|i| {
            let car = 1.5e8 + i as f64 * 1e7;
            Observation {
                model,
                kind,
                traffic: TrafficProfile::new(150_000 + 2_000 * i as u32, 1_500, 0.0),
                competitors: CounterSample {
                    l2crd: car / 2.0,
                    l2cwr: car / 2.0,
                    wss: 8e6,
                    memrd: car * 0.05,
                    memwr: car * 0.05,
                    ipc: 0.5,
                    irt: car * 2.0,
                },
                accel_pressure: Vec::new(),
                solo_tput: 1.0e6,
                measured_tput: 2.5e5 + 1e3 * i as f64,
            }
        })
        .collect()
}

#[test]
fn refinement_is_bit_deterministic_across_runs_and_thread_counts() {
    let fx = fixture();
    let bf2 = NicSpec::bluefield2().model();
    let mut buf = ObservationBuffer::new();
    for kind in KINDS {
        for o in drifted_observations(bf2, kind, 8) {
            buf.push(o);
        }
    }
    let mut a = fx.bank.clone();
    let mut b = fx.bank.clone();
    let mut c = fx.bank.clone();
    let na = a.refine(&buf, &Engine::sequential());
    let nb = b.refine(&buf, &Engine::with_threads(4));
    let nc = c.refine(&buf, &Engine::sequential());
    assert!(na > 0, "observations must be absorbed");
    assert_eq!(na, nb);
    assert_eq!(na, nc);
    assert_eq!(a, b, "refined bank must not depend on thread count");
    assert_eq!(a, c, "refined bank must not depend on the run");
    // The refit actually changed the affected cells.
    assert_ne!(a, fx.bank);
    for (_, _, m) in a.iter() {
        assert_eq!(m.refits(), 1);
    }
}

#[test]
fn online_fleet_run_is_bit_identical_across_engine_thread_counts() {
    let fx = fixture();
    let online = Some(OnlineRefine {
        min_observations: 10,
    });
    let (a, absorbed_a) = run_policy(&fx.profiled, online, &Engine::sequential());
    let (b, absorbed_b) = run_policy(&fx.profiled, online, &Engine::with_threads(4));
    assert!(absorbed_a > 0, "the drift scenario must produce telemetry");
    assert_eq!(absorbed_a, absorbed_b);
    assert_eq!(a, b, "online refinement must stay engine-invariant");
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn refining_with_an_empty_buffer_is_a_noop() {
    let fx = fixture();
    let mut bank = fx.bank.clone();
    let absorbed = bank.refine(&ObservationBuffer::new(), &Engine::auto());
    assert_eq!(absorbed, 0);
    assert_eq!(
        bank, fx.bank,
        "empty refine must leave the bank bit-identical"
    );
    // Degenerate observations (non-positive outcomes) are skipped and
    // equally must not trigger a refit.
    let bf2 = NicSpec::bluefield2().model();
    let mut degenerate = ObservationBuffer::new();
    let mut bad = drifted_observations(bf2, NfKind::FlowStats, 1).remove(0);
    bad.measured_tput = 0.0;
    degenerate.push(bad);
    assert_eq!(bank.refine(&degenerate, &Engine::auto()), 0);
    assert_eq!(bank, fx.bank);
}

#[test]
fn online_never_worse_than_frozen_on_the_drift_episode() {
    let fx = fixture();
    let engine = Engine::auto();
    let (frozen, absorbed_frozen) = run_policy(&fx.profiled, None, &engine);
    let (online, absorbed_online) = run_policy(
        &fx.profiled,
        Some(OnlineRefine {
            min_observations: 10,
        }),
        &engine,
    );
    assert_eq!(absorbed_frozen, 0, "a frozen policy must not learn");
    assert!(absorbed_online > 0, "the online policy must learn");
    assert!(
        frozen.violation_minutes > 0.0,
        "the stale bank must decay under drift (otherwise this test probes nothing)"
    );
    assert!(
        online.violation_minutes <= frozen.violation_minutes,
        "online ({}) must not be worse than frozen ({})",
        online.violation_minutes,
        frozen.violation_minutes
    );
}

#[test]
fn absorbed_observations_shift_the_affected_cell_predictions() {
    let fx = fixture();
    let bf2 = NicSpec::bluefield2().model();
    let obs = drifted_observations(bf2, NfKind::FlowStats, 12);
    let mut bank = fx.bank.clone();
    let mut buf = ObservationBuffer::new();
    for o in &obs {
        buf.push(o.clone());
    }
    assert_eq!(bank.refine(&buf, &Engine::sequential()), obs.len());
    // The refined FlowStats cell now predicts materially lower
    // throughput at the observed operating point; the untouched Nat
    // cell is bit-identical.
    let probe = &obs[6];
    let contender = yala::core::Contender::memory_only("probe", probe.competitors);
    let frozen_pred = fx.bank.expect(bf2, NfKind::FlowStats).predict(
        probe.solo_tput,
        &probe.traffic,
        std::slice::from_ref(&contender),
    );
    let refined_pred = bank.expect(bf2, NfKind::FlowStats).predict(
        probe.solo_tput,
        &probe.traffic,
        std::slice::from_ref(&contender),
    );
    assert!(
        (refined_pred - probe.measured_tput).abs() < (frozen_pred - probe.measured_tput).abs(),
        "refined prediction ({refined_pred:.0}) must sit closer to the observed outcome \
         ({:.0}) than the frozen one ({frozen_pred:.0})",
        probe.measured_tput
    );
    assert_eq!(
        bank.expect(bf2, NfKind::Nat),
        fx.bank.expect(bf2, NfKind::Nat),
        "cells without observations stay untouched"
    );
}

#[test]
fn refinement_never_resurrects_capability_infeasible_cells() {
    // A mixed-portfolio bank: Nids (regex) trains on BlueField-2 only —
    // the (pensando, Nids) cell does not exist. Feeding observations for
    // it must not create it, while feasible cells absorb normally.
    let engine = Engine::sequential();
    let specs = [NicSpec::bluefield2(), NicSpec::pensando()];
    let kinds = [NfKind::FlowStats, NfKind::Nids];
    let mut bank = ModelBank::train_yala(&specs, NOISE, &kinds, &train_cfg(), &engine);
    let (bf2, pen) = (specs[0].model(), specs[1].model());
    assert!(bank.contains(bf2, NfKind::Nids));
    assert!(
        !bank.contains(pen, NfKind::Nids),
        "profiling matrix excludes it"
    );
    let cells_before = bank.len();

    let mut buf = ObservationBuffer::new();
    for o in drifted_observations(pen, NfKind::Nids, 4) {
        buf.push(o); // infeasible: must be ignored
    }
    let mut feasible = drifted_observations(bf2, NfKind::Nids, 4);
    for o in &mut feasible {
        // Give the regex NF's observation some accelerator pressure so
        // the composition-inversion path runs too.
        o.accel_pressure = vec![(ResourceKind::Regex, 1e-6)];
        buf.push(o.clone());
    }
    let absorbed = bank.refine(&buf, &engine);
    assert!(absorbed <= 4, "only the feasible cell's samples may count");
    assert!(absorbed > 0, "feasible observations must be absorbed");
    assert!(
        !bank.contains(pen, NfKind::Nids),
        "refinement must never resurrect an excluded cell"
    );
    assert_eq!(bank.len(), cells_before, "no cell added or removed");
}
