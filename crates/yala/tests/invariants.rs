//! Property-style tests on core invariants: solver work conservation and
//! monotonicity, composition bounds, ML sanity, regex counting.
//!
//! These were originally `proptest` properties; the offline build
//! environment has no crates.io access, so each property now runs a seeded
//! loop of randomized cases (same invariants, deterministic replay — the
//! failing case is recoverable from the seed and iteration index).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yala::core::composition::{compose_min, compose_rtc, compose_sum};
use yala::ml::{Dataset, LinearRegression};
use yala::rxp::{l7_default_ruleset, Regex, ScanReport};
use yala::sim::accel::{self, AccelInput};
use yala::traffic::PayloadSynthesizer;

/// Cases per property, matching the original proptest config.
const CASES: usize = 64;

/// Round-robin grants never exceed offers and conserve accelerator work.
#[test]
fn accel_waterfill_is_work_conserving() {
    let mut rng = StdRng::seed_from_u64(0xACCE1);
    for case in 0..CASES {
        let n = rng.gen_range(1..6usize);
        let inputs: Vec<AccelInput> = (0..n)
            .map(|_| AccelInput {
                queues: rng.gen_range(1u32..4),
                service_s: rng.gen_range(1e-8f64..1e-5),
                offered_rps: rng.gen_range(0f64..1e8),
            })
            .collect();
        let state = accel::solve(&inputs);
        let mut busy = 0.0;
        for (w, o) in inputs.iter().zip(&state.outcomes) {
            assert!(
                o.granted_rps <= w.offered_rps * 1.0001 + 1e-9,
                "case {case}: grant {} exceeds offer {}",
                o.granted_rps,
                w.offered_rps
            );
            assert!(o.capacity_rps >= o.granted_rps - 1e-6, "case {case}");
            assert!(o.sojourn_s >= w.service_s - 1e-15, "case {case}");
            busy += o.granted_rps * w.service_s;
        }
        assert!(
            busy <= 1.0 + 1e-6,
            "case {case}: accelerator over-committed: {busy}"
        );
    }
}

/// Composition outputs are bounded by solo and ordered
/// sum ≤ rtc ≤ min for any per-resource predictions.
#[test]
fn composition_orderings() {
    let mut rng = StdRng::seed_from_u64(0xC0BB);
    for case in 0..CASES {
        let t_solo = rng.gen_range(1e3f64..1e7);
        let n = rng.gen_range(1..4usize);
        let per: Vec<f64> = (0..n)
            .map(|_| rng.gen_range(0.01f64..1.0) * t_solo)
            .collect();
        let s = compose_sum(t_solo, &per);
        let r = compose_rtc(t_solo, &per);
        let m = compose_min(t_solo, &per);
        assert!(s <= r + 1e-6 * t_solo, "case {case}: sum {s} > rtc {r}");
        assert!(r <= m + 1e-6 * t_solo, "case {case}: rtc {r} > min {m}");
        assert!(m <= t_solo + 1e-9, "case {case}");
        assert!(s >= 0.0, "case {case}");
    }
}

/// OLS on exactly-linear data recovers the coefficients.
#[test]
fn ols_recovers_exact_lines() {
    let mut rng = StdRng::seed_from_u64(0x015);
    for case in 0..CASES {
        let slope = rng.gen_range(-100f64..100.0);
        let icpt = rng.gen_range(-100f64..100.0);
        let mut ds = Dataset::new(1);
        for i in 0..20 {
            let x = i as f64 * 0.7;
            ds.push(&[x], slope * x + icpt);
        }
        let m = LinearRegression::fit(&ds).expect("well-posed");
        assert!(
            (m.coefficients()[0] - slope).abs() < 1e-6,
            "case {case}: slope {} vs {slope}",
            m.coefficients()[0]
        );
        assert!(
            (m.intercept() - icpt).abs() < 1e-6,
            "case {case}: intercept {} vs {icpt}",
            m.intercept()
        );
    }
}

/// Literal match counting equals the straightforward count of
/// non-overlapping occurrences.
#[test]
fn regex_literal_counting() {
    let mut rng = StdRng::seed_from_u64(0x11735);
    for case in 0..CASES {
        // Needle: a literal of 2-4 chars over [a-c].
        let needle: String = (0..rng.gen_range(2..=4usize))
            .map(|_| (b'a' + rng.gen_range(0u8..3)) as char)
            .collect();
        // Haystack: 0-200 bytes over a slightly larger alphabet.
        let haystack: Vec<u8> = (0..rng.gen_range(0..200usize))
            .map(|_| b"abcxyz"[rng.gen_range(0..6usize)])
            .collect();
        let re = Regex::compile(&needle).expect("literal pattern");
        let expected = {
            // Reference: scan left to right, non-overlapping.
            let n = needle.as_bytes();
            let mut count = 0usize;
            let mut i = 0usize;
            while i + n.len() <= haystack.len() {
                if &haystack[i..i + n.len()] == n {
                    count += 1;
                    i += n.len();
                } else {
                    i += 1;
                }
            }
            count
        };
        assert_eq!(
            re.count_matches(&haystack),
            expected,
            "case {case}: needle {needle:?}"
        );
    }
}

/// The fused ruleset scan agrees with the per-rule oracle on real
/// traffic-generator payloads across the MTBR range the profiling sweeps
/// use (the rxp crate's parity suite covers synthetic corpora; this pins
/// the integration with the dataplane's actual payload synthesis).
#[test]
fn fused_scan_matches_oracle_on_generated_traffic() {
    let synth = PayloadSynthesizer::new();
    let rules = l7_default_ruleset();
    let mut scratch = ScanReport::default();
    let mut rng = StdRng::seed_from_u64(0xF05ED);
    for &mtbr in &[0.0f64, 100.0, 1000.0, 10_000.0] {
        for case in 0..CASES {
            let len = [60, 256, 1024, 1446][case % 4];
            let payload = synth.generate(&mut rng, len, mtbr);
            let oracle = rules.scan_per_rule(&payload);
            rules.scan_into(&payload, &mut scratch);
            assert_eq!(
                scratch, oracle,
                "case {case}: fused scan diverged at mtbr {mtbr}, len {len}"
            );
        }
    }
}
