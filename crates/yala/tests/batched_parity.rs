//! Parity guarantees of the batched dataplane and the parallel scenario
//! engine:
//!
//! 1. `build_workload` via `process_batch` produces **byte-identical**
//!    `WorkloadSpec`s to the per-packet path, for every NF kind, across
//!    traffic profiles and batch sizes.
//! 2. The parallel engine reproduces the sequential sweeps **exactly**:
//!    same seeds → same profiling datasets, same trained models, same
//!    placement preparation.

use yala::core::adaptive::{adaptive_profile_all, AdaptiveConfig, TrafficRanges};
use yala::core::{Engine, QosClass, TrainConfig, YalaModel};
use yala::nf::runtime::{build_workload_per_packet, Profiler, DEFAULT_SAMPLE_PACKETS};
use yala::nf::NfKind;
use yala::placement::{prepare_all, Arrival};
use yala::sim::NicSpec;
use yala::traffic::TrafficProfile;

/// `process_batch` must change *nothing* about the measured demand: the
/// batched workload equals the per-packet oracle bit for bit, for every NF
/// in the registry and for traffic profiles exercising all three
/// attributes.
#[test]
fn batched_workloads_match_per_packet_oracle_for_every_nf() {
    let profiles = [
        TrafficProfile::new(2_000, 1024, 600.0),
        TrafficProfile::new(16_000, 512, 0.0),
        TrafficProfile::new(500, 1500, 1_100.0),
    ];
    for kind in NfKind::ALL {
        for (p_idx, &profile) in profiles.iter().enumerate() {
            let seed = 31 * (p_idx as u64 + 1);
            let batched = kind.workload(profile, seed);
            let mut nf = kind.build();
            let oracle =
                build_workload_per_packet(nf.as_mut(), profile, DEFAULT_SAMPLE_PACKETS, seed);
            assert_eq!(batched, oracle, "{kind} diverges at profile {profile:?}");
        }
    }
}

/// The arena refill size is a pure performance knob: any batch size yields
/// the same workload.
#[test]
fn batch_size_is_invisible_in_the_measurement() {
    let profile = TrafficProfile::new(3_000, 900, 700.0);
    for kind in [NfKind::FlowStats, NfKind::Nids, NfKind::IpCompGateway] {
        let reference = kind.workload(profile, 5);
        for batch in [1usize, 17, 600] {
            let mut profiler = Profiler::new().with_batch_packets(batch);
            let w = kind.workload_with(&mut profiler, profile, 5);
            assert_eq!(w, reference, "{kind} diverges at batch size {batch}");
        }
    }
}

/// A reused profiler must not leak state between NFs or profiles.
#[test]
fn profiler_reuse_is_stateless_across_calls() {
    let mut profiler = Profiler::new();
    let a1 = NfKind::FlowMonitor.workload_with(
        &mut profiler,
        TrafficProfile::new(4_000, 1500, 900.0),
        1,
    );
    let _interleaved =
        NfKind::Nat.workload_with(&mut profiler, TrafficProfile::new(64_000, 256, 0.0), 2);
    let a2 = NfKind::FlowMonitor.workload_with(
        &mut profiler,
        TrafficProfile::new(4_000, 1500, 900.0),
        1,
    );
    assert_eq!(a1, a2, "profiler reuse must be invisible");
}

/// Parallel adaptive profiling is bit-identical to the sequential sweep:
/// the same datasets (features and targets), measurements, and pruning
/// decisions.
#[test]
fn parallel_adaptive_profiling_matches_sequential() {
    let spec = NicSpec::bluefield2();
    let kinds = [
        NfKind::FlowStats,
        NfKind::FlowMonitor,
        NfKind::Acl,
        NfKind::IpTunnel,
    ];
    let ranges = TrafficRanges::default();
    let cfg = AdaptiveConfig {
        quota: 60,
        ..AdaptiveConfig::default()
    };
    let seq = adaptive_profile_all(&spec, 0.005, &kinds, ranges, &cfg, &Engine::sequential());
    let par = adaptive_profile_all(&spec, 0.005, &kinds, ranges, &cfg, &Engine::with_threads(4));
    assert_eq!(seq.len(), par.len());
    for (kind, (s, p)) in kinds.iter().zip(seq.iter().zip(&par)) {
        assert_eq!(s.kept, p.kept, "{kind} pruning diverged");
        assert_eq!(s.measurements, p.measurements, "{kind} cost diverged");
        assert_eq!(s.dataset, p.dataset, "{kind} dataset diverged");
    }
}

/// Parallel fleet training yields bitwise-equal models: predictions agree
/// exactly on arbitrary queries.
#[test]
fn parallel_model_training_matches_sequential() {
    let spec = NicSpec::bluefield2();
    let kinds = [NfKind::FlowStats, NfKind::Acl];
    let cfg = TrainConfig {
        adaptive: AdaptiveConfig {
            quota: 50,
            ..AdaptiveConfig::default()
        },
        ..TrainConfig::default()
    };
    let seq = YalaModel::train_all(&spec, 0.005, &kinds, &cfg, &Engine::sequential());
    let par = YalaModel::train_all(&spec, 0.005, &kinds, &cfg, &Engine::with_threads(2));
    for ((k1, m1), (k2, m2)) in seq.iter().zip(&par) {
        assert_eq!(k1, k2);
        assert_eq!(m1.pattern, m2.pattern, "{k1} pattern diverged");
        assert_eq!(m1.kept_attributes, m2.kept_attributes);
        assert_eq!(m1.profiling_cost, m2.profiling_cost);
        let traffic = TrafficProfile::new(40_000, 1024, 300.0);
        let pred1 = m1.predict(1e6, &traffic, &[]);
        let pred2 = m2.predict(1e6, &traffic, &[]);
        assert_eq!(pred1, pred2, "{k1} predictions diverged");
    }
}

/// Parallel placement preparation reproduces the sequential arrival loop
/// exactly — workloads, solo measurements, counters.
#[test]
fn parallel_placement_preparation_matches_sequential() {
    let spec = NicSpec::bluefield2();
    let kinds = [NfKind::FlowStats, NfKind::Nat, NfKind::Acl, NfKind::Nids];
    let arrivals: Vec<Arrival> = (0..8)
        .map(|i| Arrival {
            kind: kinds[i % kinds.len()],
            traffic: TrafficProfile::new(2_000 + 500 * i as u32, 768, 200.0),
            sla_drop: 0.05 + 0.01 * i as f64,
            qos: QosClass::Guaranteed,
        })
        .collect();
    let model = spec.model();
    let seq = prepare_all(
        std::slice::from_ref(&spec),
        0.005,
        &arrivals,
        77,
        &Engine::sequential(),
    );
    let par = prepare_all(
        std::slice::from_ref(&spec),
        0.005,
        &arrivals,
        77,
        &Engine::with_threads(3),
    );
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(s.workload, p.workload);
        assert_eq!(s.solos, p.solos);
        assert_eq!(s.sla_floor(model), p.sla_floor(model));
    }
}
