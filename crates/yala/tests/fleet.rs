//! End-to-end fleet-orchestrator tests: determinism of the event loop
//! (bit-identical reports across runs and engine thread counts), the
//! policy ordering the paper's story predicts — monopolization never
//! violates but wastes the fleet, greedy packs tightest but bleeds
//! SLA-violation minutes, and the contention-aware predictor holds SLAs
//! with far fewer NICs than monopolization — and backward parity: an
//! all-BlueField-2 portfolio must reproduce the pre-heterogeneity
//! homogeneous `FleetReport`s bit for bit (golden fixture captured from
//! the last homogeneous-only commit).

use std::sync::OnceLock;
use yala::core::{Engine, ModelBank, TrainConfig, YalaModel};
use yala::fleet::{
    run_fleet, Diagnoser, FleetConfig, FleetPolicy, FleetReport, FleetTrace, ProfiledTrace,
};
use yala::nf::NfKind;
use yala::placement::YalaPredictor;
use yala::sim::NicSpec;

const KINDS: [NfKind; 3] = [NfKind::FlowStats, NfKind::Acl, NfKind::Nat];
const NOISE: f64 = 0.005;

fn config(seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::small(seed);
    cfg.portfolio = vec![(NicSpec::bluefield2(), 20)];
    cfg.kinds = KINDS.to_vec();
    // Memory-heavy traffic and tight SLAs: packing blindly must hurt.
    cfg.max_flows = 200_000;
    cfg.sla_drop_range = (0.05, 0.15);
    cfg.noise_sigma = NOISE;
    cfg
}

struct Fixture {
    profiled: ProfiledTrace,
    bank: ModelBank<YalaModel>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let engine = Engine::auto();
        let bank = ModelBank::train_yala(
            &[NicSpec::bluefield2()],
            NOISE,
            &KINDS,
            &TrainConfig::default(),
            &engine,
        );
        let profiled = ProfiledTrace::build(FleetTrace::generate(config(31)), &engine);
        Fixture { profiled, bank }
    })
}

fn run_yala(profiled: &ProfiledTrace, engine: &Engine) -> FleetReport {
    let fx = fixture();
    let mut predictor = YalaPredictor::new(&fx.bank);
    run_fleet(
        profiled,
        FleetPolicy::ContentionAware {
            predictor: &mut predictor,
            diagnoser: Diagnoser::Yala(&fx.bank),
            online: None,
            qos_aware: true,
        },
        "yala",
        engine,
    )
}

#[test]
fn reports_are_bit_identical_across_runs_and_thread_counts() {
    let fx = fixture();
    let seq = Engine::sequential();
    let par = Engine::with_threads(4);
    // Same profiled trace, same policy, different audit engines.
    let a = run_yala(&fx.profiled, &seq);
    let b = run_yala(&fx.profiled, &par);
    assert_eq!(a, b, "audit fan-out must not affect the report");
    // A from-scratch rebuild (trace + profiling) with a parallel engine
    // reproduces the same report bit for bit.
    let rebuilt = ProfiledTrace::build(FleetTrace::generate(config(31)), &par);
    let c = run_yala(&rebuilt, &seq);
    assert_eq!(a, c, "profiling fan-out must not affect the report");
    assert_eq!(a.to_json(), c.to_json());
}

#[test]
fn all_bluefield2_portfolio_reproduces_the_pre_refactor_golden_reports() {
    // The golden fixture was captured on the last commit before the
    // heterogeneous-portfolio refactor: the homogeneous 20-NIC
    // BlueField-2 scenario at seed 31 (sequential engine, three
    // policies). The per-model type spine — NicModelId, ModelBank,
    // per-model Placed solos, portfolio timelines, model-keyed audits —
    // must change *nothing* when the portfolio holds a single model.
    let fx = fixture();
    let engine = Engine::sequential();
    let mono = run_fleet(
        &fx.profiled,
        FleetPolicy::Monopolization,
        "monopolization",
        &engine,
    );
    let greedy = run_fleet(&fx.profiled, FleetPolicy::Greedy, "greedy", &engine);
    let yala = run_yala(&fx.profiled, &engine);
    let got = format!(
        "[\n{},\n{},\n{}\n]\n",
        mono.to_json(),
        greedy.to_json(),
        yala.to_json()
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        // Regeneration path for additive report-format changes:
        // `UPDATE_GOLDEN=1 cargo test -p yala --test fleet`. Policy
        // numerics must still be inspected by hand in the diff.
        std::fs::write("tests/fixtures/fleet_bf2_golden.json", &got).unwrap();
        return;
    }
    let golden = include_str!("fixtures/fleet_bf2_golden.json");
    assert_eq!(
        got, golden,
        "all-BlueField-2 portfolio must be bit-identical to the \
         pre-refactor homogeneous FleetReports"
    );
}

#[test]
fn policy_ordering_matches_the_paper_story() {
    let fx = fixture();
    let engine = Engine::auto();
    let mono = run_fleet(&fx.profiled, FleetPolicy::Monopolization, "mono", &engine);
    let greedy = run_fleet(&fx.profiled, FleetPolicy::Greedy, "greedy", &engine);
    let yala = run_yala(&fx.profiled, &engine);

    assert_eq!(mono.violation_minutes, 0.0, "monopolization never violates");
    assert!(
        greedy.violation_minutes > 0.0,
        "blind packing of memory-heavy NFs must violate"
    );
    assert!(
        yala.violation_minutes < greedy.violation_minutes,
        "yala ({}) must beat greedy ({}) on violation minutes",
        yala.violation_minutes,
        greedy.violation_minutes
    );
    assert!(
        yala.nic_minutes < mono.nic_minutes,
        "yala ({}) must use fewer NIC-minutes than monopolization ({})",
        yala.nic_minutes,
        mono.nic_minutes
    );
    assert_eq!(yala.rejected, 0, "the fleet is large enough");
    assert_eq!(mono.migrations, 0);
    assert_eq!(greedy.migrations, 0);
}

#[test]
fn drift_triggers_reprofiles_and_migrations() {
    let fx = fixture();
    // Drift produced at least one re-profile beyond the arrival snapshots.
    assert!(
        fx.profiled.snapshot_count() > fx.profiled.trace.records.len(),
        "drift must trigger re-profiling"
    );
    let yala = run_yala(&fx.profiled, &Engine::auto());
    assert!(
        yala.migrations > 0,
        "drift must trigger at least one reactive migration"
    );
    assert_eq!(
        yala.profile_snapshots as usize,
        fx.profiled.snapshot_count()
    );
}
