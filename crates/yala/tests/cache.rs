//! End-to-end profile-cache tests: the quantization key contract
//! (sub-threshold drift shares a key, above-threshold drift moves it),
//! bitwise parity between cached and fresh measurements across seeds,
//! and byte-identical quantized builds across engine thread counts —
//! the properties that make the cache safe to put in front of every
//! profiling entry point.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yala::core::{Engine, ProfileCache};
use yala::fleet::{run_fleet, FleetConfig, FleetPolicy, FleetTrace, ProfiledTrace, TrafficModel};
use yala::nf::NfKind;
use yala::sim::NicSpec;
use yala::traffic::{TrafficProfile, TrafficQuantizer};

/// A fast quantized-mode scenario: template-clustered tenants on a
/// small fleet, a couple of simulated hours.
fn cached_config(seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::small(seed);
    cfg.portfolio = vec![(NicSpec::bluefield2(), 20)];
    cfg.duration_s = 3_600;
    cfg.mean_interarrival_s = 150.0;
    cfg.mean_lifetime_s = 1_200.0;
    cfg.audit_period_s = 600;
    cfg.kinds = vec![NfKind::FlowStats, NfKind::Acl, NfKind::Nat];
    cfg.max_flows = 200_000;
    cfg.traffic_model = TrafficModel::Templates {
        count: 3,
        jitter: cfg.reprofile_threshold / 4.0,
    };
    cfg
}

/// A profile whose attributes sit far enough inside their clamp ranges
/// that a threshold-sized drift cannot saturate (the key-movement
/// guarantee legitimately degrades at clamped range edges).
fn interior_profile(rng: &mut StdRng) -> TrafficProfile {
    TrafficProfile::new(
        rng.gen_range(2_000..350_000),
        rng.gen_range(100..1_100),
        rng.gen_range(2.0..800.0),
    )
}

#[test]
fn sub_threshold_drift_never_changes_the_key_above_threshold_always_does() {
    for threshold in [0.10, 0.20] {
        let quantizer = TrafficQuantizer::new(threshold);
        let mut rng = StdRng::seed_from_u64(0xCAFE ^ threshold.to_bits());
        for _ in 0..500 {
            let (key, rep) = quantizer.canonicalize(&interior_profile(&mut rng));
            // Drift every attribute by up to half the threshold
            // (relative, same metric as the drift detector): same key.
            let f = 1.0 + rng.gen_range(-0.5..0.5) * threshold;
            let sub = TrafficProfile::new(
                (rep.flow_count as f64 * f).round() as u32,
                (rep.packet_size as f64 * f).round() as u32,
                rep.mtbr * f,
            );
            assert!(
                rep.relative_change(&sub) <= threshold,
                "drift construction stayed sub-threshold"
            );
            assert_eq!(
                quantizer.key(&sub),
                key,
                "sub-threshold drift moved the key"
            );
            // Push one attribute strictly past the threshold: new key.
            let g = 1.0 + 1.5 * threshold;
            let over = TrafficProfile::new(
                (rep.flow_count as f64 * g).round() as u32,
                rep.packet_size,
                rep.mtbr,
            );
            assert!(rep.relative_change(&over) > threshold);
            assert_ne!(
                quantizer.key(&over),
                key,
                "above-threshold drift kept the key"
            );
        }
    }
}

#[test]
fn cached_profiles_are_bitwise_identical_to_fresh_ones_across_seeds() {
    let engine = Engine::sequential();
    for seed in [3, 19, 77] {
        // Two independent fresh builds: the measurement is a pure
        // function of the key, so they agree bit for bit.
        let fresh_a =
            ProfiledTrace::build_cached(FleetTrace::generate(cached_config(seed)), &engine);
        let fresh_b =
            ProfiledTrace::build_cached(FleetTrace::generate(cached_config(seed)), &engine);
        // A warm build against a pre-populated cache: every lookup hits,
        // nothing is measured, and the bytes still match the fresh runs.
        let cache = ProfileCache::new();
        let _warmup = ProfiledTrace::build_cached_with(
            FleetTrace::generate(cached_config(seed)),
            &engine,
            &cache,
        );
        let warm = ProfiledTrace::build_cached_with(
            FleetTrace::generate(cached_config(seed)),
            &engine,
            &cache,
        );
        assert_eq!(warm.stats.misses, 0, "warm build must be all hits");
        assert_eq!(warm.stats.hits, warm.stats.lookups);
        for (x, label) in [(&fresh_b, "fresh"), (&warm, "warm")] {
            assert_eq!(fresh_a.timelines.len(), x.timelines.len());
            for (a, b) in fresh_a.timelines.iter().zip(&x.timelines) {
                assert_eq!(a.snapshots.len(), b.snapshots.len());
                for ((ta, pa), (tb, pb)) in a.snapshots.iter().zip(&b.snapshots) {
                    assert_eq!(ta, tb, "{label} snapshot time diverged (seed {seed})");
                    assert_eq!(
                        pa.workload, pb.workload,
                        "{label} workload diverged (seed {seed})"
                    );
                    assert_eq!(pa.solos, pb.solos, "{label} solos diverged (seed {seed})");
                }
            }
        }
    }
}

#[test]
fn quantized_build_and_report_are_byte_identical_across_thread_counts() {
    let seq = ProfiledTrace::build_cached(
        FleetTrace::generate(cached_config(41)),
        &Engine::sequential(),
    );
    let par = ProfiledTrace::build_cached(
        FleetTrace::generate(cached_config(41)),
        &Engine::with_threads(4),
    );
    assert_eq!(
        seq.stats, par.stats,
        "cache counters must be thread-invariant"
    );
    assert!(seq.stats.hits > 0, "template tenants must share profiles");
    let a = run_fleet(&seq, FleetPolicy::Greedy, "greedy", &Engine::sequential());
    let b = run_fleet(
        &par,
        FleetPolicy::Greedy,
        "greedy",
        &Engine::with_threads(4),
    );
    assert_eq!(a, b);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn exact_mode_counts_every_snapshot_as_a_miss() {
    let mut cfg = cached_config(7);
    cfg.traffic_model = TrafficModel::Uniform;
    let p = ProfiledTrace::build(FleetTrace::generate(cfg), &Engine::sequential());
    // A fresh exact-mode build shares nothing: the cache is a pure
    // pass-through and the stats say so.
    assert_eq!(p.stats.hits, 0);
    assert_eq!(p.stats.misses, p.snapshot_count() as u64);
    assert_eq!(p.stats.inserts, p.stats.misses);
    assert_eq!(p.stats.delta_reprofiles, 0, "exact keys share no buckets");
    assert_eq!(
        p.stats.full_reprofiles + p.timelines.len() as u64,
        p.stats.lookups
    );
}
