//! Determinism contract of the telemetry plane (ISSUE 8, satellite 3):
//!
//! * telemetry-enabled fleet runs are byte-identical between a sequential
//!   engine and `Engine::with_threads(4)` — journal JSONL, metrics JSON,
//!   and the Prometheus rendering all compare equal as strings;
//! * the wall-clock layer is excluded from the deterministic surface —
//!   a `with_wallclock` run exports the same bytes as a plain `enabled`
//!   run;
//! * instrumentation never perturbs the simulation: the observed
//!   pipeline's `FleetReport` serializes byte-identically to the
//!   unobserved pipeline's.

use yala::core::Engine;
use yala::fleet::{
    run_fleet, run_fleet_observed, verify_against, FleetConfig, FleetPolicy, FleetReport,
    FleetTrace, ProfiledTrace,
};
use yala::telemetry::Telemetry;

/// A short but non-trivial scenario: a handful of arrivals, several
/// audit epochs, and enough co-residency for migrations/violations to
/// appear in the journal.
fn config(seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::small(seed);
    cfg.duration_s = 2_400;
    cfg.mean_interarrival_s = 150.0;
    cfg.mean_lifetime_s = 900.0;
    cfg.audit_period_s = 600;
    cfg
}

/// Runs the full observed pipeline (profile build + greedy fleet run)
/// and returns the report plus every exported byte stream.
fn observed_exports(seed: u64, engine: &Engine, mut tel: Telemetry) -> (FleetReport, [String; 3]) {
    let profiled =
        ProfiledTrace::build_observed(FleetTrace::generate(config(seed)), engine, &mut tel);
    let report = run_fleet_observed(&profiled, FleetPolicy::Greedy, "greedy", engine, &mut tel);
    let sink = tel.sink().expect("enabled telemetry has a sink");
    verify_against(&report, &sink.journal).expect("journal replays to the report");
    let exports = [
        sink.journal.to_jsonl(),
        sink.metrics.to_json(),
        sink.metrics.to_prometheus(),
    ];
    (report, exports)
}

#[test]
fn telemetry_is_byte_identical_across_thread_counts() {
    let (seq_report, seq) = observed_exports(41, &Engine::sequential(), Telemetry::enabled());
    let (par_report, par) = observed_exports(41, &Engine::with_threads(4), Telemetry::enabled());
    assert_eq!(seq_report.to_json(), par_report.to_json());
    assert_eq!(
        seq[0], par[0],
        "journal JSONL diverged across thread counts"
    );
    assert_eq!(seq[1], par[1], "metrics JSON diverged across thread counts");
    assert_eq!(
        seq[2], par[2],
        "Prometheus text diverged across thread counts"
    );
    assert!(
        seq[0].lines().count() > 50,
        "scenario produced a non-trivial journal"
    );
}

#[test]
fn wall_clock_layer_is_outside_the_deterministic_surface() {
    // Same seed, same engine; one handle carries the wall-clock layer.
    // Journal and metrics must not know the difference.
    let (_, plain) = observed_exports(41, &Engine::sequential(), Telemetry::enabled());
    let (_, walled) = observed_exports(41, &Engine::sequential(), Telemetry::with_wallclock(41));
    assert_eq!(plain, walled);
}

#[test]
fn instrumentation_does_not_perturb_the_simulation() {
    let engine = Engine::sequential();

    // Unobserved pipeline: disabled telemetry end to end.
    let profiled = ProfiledTrace::build(FleetTrace::generate(config(41)), &engine);
    let baseline = run_fleet(&profiled, FleetPolicy::Greedy, "greedy", &engine);

    // Observed pipeline on a freshly generated (identical) trace.
    let (observed, _) = observed_exports(41, &engine, Telemetry::enabled());
    assert_eq!(
        baseline.to_json(),
        observed.to_json(),
        "enabling telemetry changed the simulation outcome"
    );

    // And a disabled handle through the observed entry points is inert:
    // no sink, same report.
    let mut off = Telemetry::disabled();
    let profiled2 =
        ProfiledTrace::build_observed(FleetTrace::generate(config(41)), &engine, &mut off);
    let report2 = run_fleet_observed(&profiled2, FleetPolicy::Greedy, "greedy", &engine, &mut off);
    assert!(off.sink().is_none());
    assert_eq!(baseline.to_json(), report2.to_json());
}
