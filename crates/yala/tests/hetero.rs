//! Heterogeneous-fleet property tests: across seeds, no placement
//! strategy — one-shot or fleet, blind or contention-aware — ever puts a
//! Regex- or Compression-submitting workload on a NIC whose hardware
//! model lacks that accelerator. The feasibility gate is structural (an
//! NF is never solo-profiled on hardware it cannot run on, so placement
//! has nothing to price there) and enforced at ground truth (the co-run
//! solver panics on any workload whose accelerator the NIC lacks, and
//! every audit co-runs every occupied NIC on its own hardware model).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use yala::core::{Engine, QosClass};
use yala::fleet::{run_fleet, Diagnoser, FleetConfig, FleetPolicy, FleetTrace, ProfiledTrace};
use yala::nf::NfKind;
use yala::placement::{place_sequence, prepare_all, Arrival, OraclePredictor, Strategy};
use yala::sim::{NicSpec, Simulator};
use yala::traffic::TrafficProfile;

/// NF mix exercising every capability class: memory-only (feasible
/// everywhere), regex, and regex+compression (BlueField-2 only).
const MIXED_KINDS: [NfKind; 6] = [
    NfKind::FlowStats,
    NfKind::Nat,
    NfKind::Acl,
    NfKind::Nids,
    NfKind::PacketFilter,
    NfKind::IpCompGateway,
];

fn mixed_cfg(seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::mixed(seed, 10);
    cfg.duration_s = 1_800;
    cfg.mean_interarrival_s = 100.0;
    cfg.mean_lifetime_s = 900.0;
    cfg.audit_period_s = 600;
    cfg.kinds = MIXED_KINDS.to_vec();
    cfg
}

#[test]
fn fleet_strategies_never_place_accelerator_nfs_on_incapable_nics() {
    let engine = Engine::auto();
    for seed in [3u64, 11, 29] {
        let cfg = mixed_cfg(seed);
        let specs = cfg.specs();
        let profiled = ProfiledTrace::build(FleetTrace::generate(cfg), &engine);
        // Structural: the profiling matrix never hands placement a solo
        // baseline on hardware that cannot serve the workload — on every
        // snapshot, every per-model baseline's hardware supports every
        // resource the workload touches.
        for tl in &profiled.timelines {
            for (_, snap) in &tl.snapshots {
                for (model, _) in &snap.solos {
                    let spec = specs
                        .iter()
                        .find(|s| s.model() == *model)
                        .expect("baseline model comes from the portfolio");
                    assert!(
                        spec.supports(&snap.workload),
                        "{} profiled on incapable model {model} (seed {seed})",
                        snap.workload.name
                    );
                }
            }
        }
        // Behavioral: every strategy completes its full run. The audit
        // epochs co-run every occupied NIC on a simulator of *that NIC's*
        // hardware, and the solver panics on a capability-infeasible
        // workload — so completion is a ground-truth assertion that no
        // strategy ever made an infeasible placement. The oracle-backed
        // contention-aware policy additionally ground-truth-co-runs every
        // candidate NIC it considers at placement and migration time.
        let mono = run_fleet(&profiled, FleetPolicy::Monopolization, "mono", &engine);
        let greedy = run_fleet(&profiled, FleetPolicy::Greedy, "greedy", &engine);
        let mut oracle = OraclePredictor::for_models(&specs);
        let aware = run_fleet(
            &profiled,
            FleetPolicy::ContentionAware {
                predictor: &mut oracle,
                diagnoser: Diagnoser::MemoryOnly,
                online: None,
                qos_aware: true,
            },
            "oracle",
            &engine,
        );
        assert_eq!(mono.total_arrivals, greedy.total_arrivals);
        assert_eq!(greedy.total_arrivals, aware.total_arrivals);
        assert!(
            mono.nic_minutes >= greedy.nic_minutes,
            "monopolization cannot pack tighter than greedy (seed {seed})"
        );
    }
}

#[test]
fn one_shot_strategies_reject_infeasible_arrivals_across_seeds() {
    let engine = Engine::sequential();
    let pen = NicSpec::pensando();
    let pen_model = pen.model();
    for seed in [5u64, 17, 41, 97] {
        let mut rng = StdRng::seed_from_u64(seed);
        let arrivals: Vec<Arrival> = (0..10)
            .map(|_| Arrival {
                kind: *MIXED_KINDS.choose(&mut rng).expect("nonempty"),
                traffic: TrafficProfile::random(&mut rng, 64_000),
                sla_drop: rng.gen_range(0.05..0.25),
                qos: QosClass::Guaranteed,
            })
            .collect();
        let infeasible = arrivals
            .iter()
            .filter(|a| !a.kind.feasible_on(&pen))
            .count();
        let placed = prepare_all(
            &[NicSpec::bluefield2(), pen.clone()],
            0.0,
            &arrivals,
            seed,
            &engine,
        );
        // An all-Pensando episode: every strategy must reject exactly the
        // accelerator-submitting arrivals and place the rest.
        let mut sim = Simulator::new(pen.clone());
        let mut oracle = OraclePredictor::new(pen.clone());
        for (name, strategy) in [
            ("monopolization", Strategy::Monopolization),
            ("greedy", Strategy::Greedy),
            ("oracle", Strategy::ContentionAware(&mut oracle)),
        ] {
            let out = place_sequence(&mut sim, &placed, strategy);
            assert_eq!(
                out.rejected, infeasible,
                "{name} must reject the {infeasible} infeasible arrivals (seed {seed})"
            );
            assert_eq!(out.placed + out.rejected, arrivals.len());
            for nic in &out.nics {
                for p in nic {
                    assert!(
                        p.supported_on(pen_model),
                        "{name} placed {} on incapable hardware (seed {seed})",
                        p.workload.name
                    );
                }
            }
        }
    }
}
