//! Cross-crate integration tests: the full pipeline from packets through
//! NFs, the simulator, model training, prediction, and the use cases.

use yala::core::profiler::{mem_bench_contender, MemLevel};
use yala::core::{TrainConfig, YalaModel};
use yala::ml::metrics;
use yala::nf::NfKind;
use yala::sim::{NicSpec, ResourceKind, Simulator};
use yala::traffic::TrafficProfile;

#[test]
fn packets_flow_through_every_nf() {
    // Every NF must process a realistic packet stream without panicking
    // and produce a consistent workload description.
    let profile = TrafficProfile::new(2_000, 1024, 600.0);
    for kind in NfKind::ALL {
        let w = kind.workload(profile, 1);
        assert_eq!(w.name, kind.name());
        assert!(w.cache_refs_per_pkt() > 0.0, "{kind} must touch memory");
        assert_eq!(w.uses(ResourceKind::Regex), kind.uses_regex(), "{kind}");
    }
}

#[test]
fn simulator_reproduces_contention_phenomenology() {
    let mut sim = Simulator::new(NicSpec::bluefield2());
    let target = NfKind::FlowStats.workload(TrafficProfile::default(), 2);
    let solo = sim.solo(&target).throughput_pps;
    // Fig. 3a: monotone degradation with competing CAR.
    let mut last = solo;
    for car in [4e7, 1.0e8, 1.8e8, 2.6e8] {
        let t = sim
            .co_run(&[target.clone(), yala::nf::bench::mem_bench(car, 8e6)])
            .outcomes[0]
            .throughput_pps;
        assert!(t <= last * 1.01, "CAR {car}: {t} vs {last}");
        last = t;
    }
    assert!(last < solo * 0.9, "heavy contention must bite");
}

#[test]
fn yala_end_to_end_beats_memory_only_view_under_regex_contention() {
    let mut sim = Simulator::with_noise(NicSpec::bluefield2(), 0.005, 5);
    let model = YalaModel::train(&mut sim, NfKind::Nids, &TrainConfig::default());
    let profile = TrafficProfile::default();
    let target = NfKind::Nids.workload(profile, 3);
    let solo = sim.solo(&target).throughput_pps;
    let bench = yala::nf::bench::regex_bench(3e6, 1446.0, 1_800.0);
    let truth = sim.co_run(&[target, bench]).outcomes[0].throughput_pps;
    let contender = yala::core::profiler::regex_bench_contender(&mut sim, 3e6, 1446.0, 1_800.0);
    let pred = model.predict(solo, &profile, std::slice::from_ref(&contender));
    assert!(
        metrics::ape(truth, pred) < 15.0,
        "Yala should track regex contention: pred {pred}, truth {truth}"
    );
}

#[test]
fn traffic_awareness_transfers_across_profiles() {
    // Train once, predict at profiles never used for co-run training.
    let mut sim = Simulator::with_noise(NicSpec::bluefield2(), 0.005, 6);
    let model = YalaModel::train(&mut sim, NfKind::Nat, &TrainConfig::default());
    let mut errs = Vec::new();
    for (flows, level) in [
        (
            6_000u32,
            MemLevel {
                car: 9e7,
                wss: 6e6,
                cycles: 600.0,
            },
        ),
        (
            90_000,
            MemLevel {
                car: 1.6e8,
                wss: 3e6,
                cycles: 60.0,
            },
        ),
        (
            250_000,
            MemLevel {
                car: 6e7,
                wss: 12e6,
                cycles: 2_400.0,
            },
        ),
    ] {
        let profile = TrafficProfile::new(flows, 1500, 0.0);
        let w = NfKind::Nat.workload(profile, 9);
        let solo = sim.solo(&w).throughput_pps;
        let truth = sim.co_run(&[w, level.bench()]).outcomes[0].throughput_pps;
        let c = mem_bench_contender(&mut sim, level);
        errs.push(metrics::ape(truth, model.predict(solo, &profile, &[c])));
    }
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    assert!(
        mean < 15.0,
        "traffic-aware prediction errors too high: {errs:?}"
    );
}

#[test]
fn pensando_pipeline_works_without_regex_engine() {
    let mut sim = Simulator::with_noise(NicSpec::pensando(), 0.005, 7);
    let model = YalaModel::train(&mut sim, NfKind::Firewall, &TrainConfig::default());
    assert!(
        model.accels.is_empty(),
        "no accelerators on the Pensando preset"
    );
    let profile = TrafficProfile::new(80_000, 512, 0.0);
    let w = NfKind::Firewall.workload(profile, 1);
    let solo = sim.solo(&w).throughput_pps;
    let level = MemLevel {
        car: 1.2e8,
        wss: 7e6,
        cycles: 600.0,
    };
    let truth = sim.co_run(&[w, level.bench()]).outcomes[0].throughput_pps;
    let c = mem_bench_contender(&mut sim, level);
    let pred = model.predict(solo, &profile, &[c]);
    assert!(
        metrics::ape(truth, pred) < 20.0,
        "pred {pred} truth {truth}"
    );
}
