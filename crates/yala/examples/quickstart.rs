//! Quickstart: train Yala for one NF and predict its throughput in a
//! proposed co-location, then check the prediction against ground truth.
//!
//! Run with `cargo run --release --example quickstart`.

use yala::core::profiler::{mem_bench_contender, MemLevel};
use yala::core::{TrainConfig, YalaModel};
use yala::nf::NfKind;
use yala::sim::{NicSpec, Simulator};
use yala::traffic::TrafficProfile;

fn main() {
    // The simulated BlueField-2 stands in for the paper's testbed.
    let mut sim = Simulator::with_noise(NicSpec::bluefield2(), 0.005, 42);

    // Offline: profile FlowMonitor and train its Yala model (adaptive
    // traffic profiling + white-box regex model + pattern detection).
    println!("training Yala model for FlowMonitor ...");
    let model = YalaModel::train(&mut sim, NfKind::FlowMonitor, &TrainConfig::default());
    println!(
        "  pattern: {}, accelerator models: {}, profiling cost: {} measurements",
        model.pattern,
        model.accels.len(),
        model.profiling_cost
    );

    // Online: an operator wants to co-locate FlowMonitor (64K flows,
    // 1024 B packets, 800 matches/MB) with a memory-hungry neighbour.
    let traffic = TrafficProfile::new(64_000, 1024, 800.0);
    let workload = NfKind::FlowMonitor.workload(traffic, 7);
    let solo = sim.solo(&workload).throughput_pps;
    let neighbour_level = MemLevel {
        car: 1.4e8,
        wss: 9e6,
        cycles: 600.0,
    };
    let neighbour = mem_bench_contender(&mut sim, neighbour_level);

    let predicted = model.predict(solo, &traffic, std::slice::from_ref(&neighbour));

    // Ground truth from the simulator (on hardware: deploy and measure).
    let truth = sim.co_run(&[workload, neighbour_level.bench()]).outcomes[0].throughput_pps;

    println!("solo throughput:      {:>10.0} pps", solo);
    println!("predicted co-located: {:>10.0} pps", predicted);
    println!("measured  co-located: {:>10.0} pps", truth);
    println!(
        "prediction error:     {:>9.1}%",
        ((predicted - truth) / truth * 100.0).abs()
    );
}
