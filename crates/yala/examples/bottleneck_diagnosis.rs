//! Bottleneck diagnosis (§7.5.2): as FlowMonitor's traffic MTBR rises, its
//! bottleneck shifts from the memory subsystem to the regex accelerator.
//! Yala's per-resource models pinpoint the shift without touching the NF.
//!
//! Run with `cargo run --release --example bottleneck_diagnosis`.

use yala::core::profiler::{mem_bench_contender, regex_bench_contender, MemLevel};
use yala::core::{TrainConfig, YalaModel};
use yala::diagnosis::diagnose_yala;
use yala::nf::NfKind;
use yala::sim::{NicSpec, Simulator};
use yala::traffic::TrafficProfile;

fn main() {
    let mut sim = Simulator::with_noise(NicSpec::bluefield2(), 0.005, 11);
    println!("training Yala model for FlowMonitor ...");
    let model = YalaModel::train(&mut sim, NfKind::FlowMonitor, &TrainConfig::default());

    // Fixed contention: moderate memory pressure + a heavy regex tenant.
    let mem_level = MemLevel {
        car: 1.0e8,
        wss: 5e6,
        cycles: 60.0,
    };
    let contenders = vec![
        mem_bench_contender(&mut sim, mem_level),
        regex_bench_contender(&mut sim, 1e12, 1446.0, 6_000.0),
    ];

    println!("\n{:>8} {:>14} {:>14}", "MTBR", "predicted", "ground truth");
    for mtbr in [0.0, 200.0, 400.0, 600.0, 800.0, 1_000.0, 1_100.0] {
        let traffic = TrafficProfile::new(16_000, 1500, mtbr);
        let workload = NfKind::FlowMonitor.workload(traffic, 3);
        let solo = sim.solo(&workload).throughput_pps;
        let verdict = diagnose_yala(&model, solo, &traffic, &contenders);
        let truth = sim
            .co_run(&[
                workload,
                mem_level.bench(),
                yala::nf::bench::regex_bench(1e12, 1446.0, 6_000.0),
            ])
            .outcomes[0]
            .bottleneck;
        println!(
            "{mtbr:>8.0} {:>14} {:>14}",
            verdict.bottleneck.to_string(),
            truth.to_string()
        );
    }
}
