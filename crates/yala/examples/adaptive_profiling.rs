//! Adaptive profiling (§5.2): watch Algorithm 1 prune the traffic
//! attributes an NF is insensitive to and spend its quota where throughput
//! actually moves — compared against random profiling at the same quota.
//!
//! Run with `cargo run --release --example adaptive_profiling`.

use yala::core::adaptive::{
    adaptive_profile, adaptive_profile_all, random_profile, AdaptiveConfig, TrafficRanges,
};
use yala::core::Engine;
use yala::nf::NfKind;
use yala::sim::{NicSpec, Simulator};

fn main() {
    let mut sim = Simulator::with_noise(NicSpec::bluefield2(), 0.005, 21);
    let ranges = TrafficRanges::default();
    let cfg = AdaptiveConfig::default();

    // Profile all four NFs in parallel: one deterministic simulator
    // scenario per NF, dispatched across the worker pool.
    let kinds = [
        NfKind::FlowStats,
        NfKind::FlowMonitor,
        NfKind::IpTunnel,
        NfKind::Acl,
    ];
    let runs = adaptive_profile_all(
        &NicSpec::bluefield2(),
        0.005,
        &kinds,
        ranges,
        &cfg,
        &Engine::auto(),
    );
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8}",
        "NF", "flows?", "pkt?", "MTBR?", "samples"
    );
    for (kind, run) in kinds.iter().zip(&runs) {
        println!(
            "{:<16} {:>8} {:>8} {:>8} {:>8}",
            kind.name(),
            run.kept[0],
            run.kept[1],
            run.kept[2],
            run.dataset.len()
        );
    }

    // Same quota, random sampling: spot how the flow-count coverage differs
    // for FlowStats (adaptive mass concentrates below the LLC knee).
    let adaptive = adaptive_profile(&mut sim, NfKind::FlowStats, ranges, &cfg);
    let random = random_profile(&mut sim, NfKind::FlowStats, ranges, cfg.quota, 3);
    let low_share = |ds: &yala::ml::Dataset| {
        let n = ds.len() as f64;
        (0..ds.len())
            .filter(|&i| ds.feature(i, 7) < 100_000.0)
            .count() as f64
            / n
            * 100.0
    };
    println!(
        "\nFlowStats samples below 100K flows: adaptive {:.0}%, random {:.0}%",
        low_share(&adaptive.dataset),
        low_share(&random.dataset)
    );
}
