//! NF placement (§7.5.1): place a stream of arriving NFs onto SmartNICs
//! with Greedy vs Yala-guided contention-aware scheduling and compare NICs
//! used and SLA violations.
//!
//! Run with `cargo run --release --example nf_placement`.

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use yala::core::{Engine, ModelBank, QosClass, TrainConfig};
use yala::nf::NfKind;
use yala::placement::{place_sequence, prepare_all, Arrival, Strategy, YalaPredictor};
use yala::sim::{NicSpec, Simulator};
use yala::traffic::TrafficProfile;

fn main() {
    let engine = Engine::auto();
    let mut sim = Simulator::with_noise(NicSpec::bluefield2(), 0.005, 1);
    let kinds = [
        NfKind::FlowStats,
        NfKind::Nat,
        NfKind::Acl,
        NfKind::IpRouter,
        NfKind::Nids,
    ];

    println!(
        "training Yala models for {} NF types across {} worker(s) ...",
        kinds.len(),
        engine.threads()
    );
    let cfg = TrainConfig::default();
    let bank = ModelBank::train_yala(&[NicSpec::bluefield2()], 0.005, &kinds, &cfg, &engine);

    // 40 arrivals with 5-20% SLA headroom each, profiled in parallel.
    let mut rng = StdRng::seed_from_u64(2);
    let specs: Vec<Arrival> = (0..40)
        .map(|_| Arrival {
            kind: *kinds.choose(&mut rng).expect("nonempty"),
            traffic: TrafficProfile::default(),
            sla_drop: rng.gen_range(0.05..0.20),
            qos: QosClass::Guaranteed,
        })
        .collect();
    let arrivals = prepare_all(&[NicSpec::bluefield2()], 0.005, &specs, 0, &engine);

    let greedy = place_sequence(&mut sim, &arrivals, Strategy::Greedy);
    let mut predictor = YalaPredictor::new(&bank);
    let yala = place_sequence(
        &mut sim,
        &arrivals,
        Strategy::ContentionAware(&mut predictor),
    );

    println!(
        "\n{:<10} {:>8} {:>16}",
        "strategy", "NICs", "SLA violations"
    );
    println!(
        "{:<10} {:>8} {:>13}/{}",
        "greedy",
        greedy.nics.len(),
        greedy.violations,
        greedy.placed
    );
    println!(
        "{:<10} {:>8} {:>13}/{}",
        "yala",
        yala.nics.len(),
        yala.violations,
        yala.placed
    );
}
