//! # yala — reproduction of *"Performance Prediction of On-NIC Network
//! Functions with Multi-Resource Contention and Traffic Awareness"*
//! (ASPLOS 2025)
//!
//! This facade crate re-exports every sub-crate of the workspace so examples
//! and downstream users can depend on a single `yala` crate:
//!
//! * [`ml`] — from-scratch gradient boosting / linear regression / metrics.
//! * [`rxp`] — regex engine standing in for the BlueField-2 RXP accelerator.
//! * [`traffic`] — traffic profiles, flows, packets, payload synthesis.
//! * [`sim`] — the SoC-SmartNIC simulator (memory subsystem, accelerators,
//!   performance counters, co-run contention solver).
//! * [`nf`] — network functions from Table 1 plus the synthetic bench NFs.
//! * [`core`] — the Yala prediction framework itself.
//! * [`slomo`] — the SLOMO baseline and naive composition baselines.
//! * [`placement`] — the contention-aware scheduling use case (§7.5.1).
//! * [`diagnosis`] — the performance-diagnosis use case (§7.5.2).
//! * [`fleet`] — the live-cluster orchestrator: traffic drift, periodic
//!   SLA audits, and reactive migration over simulated hours.
//! * [`telemetry`] — the deterministic observability plane: metrics
//!   registry, sim-time event journal, wall-clock layer, and the
//!   journal inspector behind the `fleet_inspect` bin.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory
//! and hardware-substitution notes.

pub use yala_core as core;
pub use yala_diagnosis as diagnosis;
pub use yala_fleet as fleet;
pub use yala_ml as ml;
pub use yala_nf as nf;
pub use yala_placement as placement;
pub use yala_rxp as rxp;
pub use yala_sim as sim;
pub use yala_slomo as slomo;
pub use yala_telemetry as telemetry;
pub use yala_traffic as traffic;
