//! Memory-subsystem contention model: shared-LLC occupancy, miss-ratio
//! curves, and DRAM-bandwidth queueing.
//!
//! The model is deliberately *richer* than the piecewise-linear abstraction
//! Yala's black-box GBR learns (paper §4.1.2): occupancy follows an
//! LRU-like pressure allocation, the miss ratio rises with the non-resident
//! fraction of the working set, and a shared DRAM-bandwidth queueing factor
//! couples all workloads. The phenomenology it produces matches the paper's
//! measurements: piecewise-linear-then-flat throughput drop as competing
//! cache-access rate (CAR) rises (Fig. 3a), flow-count sensitivity with an
//! LLC-saturation plateau (Fig. 6a), and WSS-dependent competitor pressure
//! (Fig. 6b).

use crate::spec::NicSpec;

/// Per-workload inputs to the memory model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemInput {
    /// LLC accesses per second (CAR) this workload currently issues.
    pub refs_per_s: f64,
    /// Bytes of working set it keeps live.
    pub wss_bytes: f64,
    /// Fraction of accesses that are writes.
    pub write_frac: f64,
}

/// Per-workload outcome of the memory model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemOutcome {
    /// LLC bytes this workload occupies at equilibrium.
    pub occupancy_bytes: f64,
    /// Its LLC miss ratio.
    pub miss_ratio: f64,
    /// Average stall added to each LLC access, seconds (includes the DRAM
    /// queueing factor).
    pub stall_per_ref_s: f64,
}

/// Global state of the memory subsystem for one solve.
#[derive(Debug, Clone, PartialEq)]
pub struct MemState {
    /// Per-workload outcomes, in input order.
    pub outcomes: Vec<MemOutcome>,
    /// Total DRAM traffic as a fraction of peak bandwidth (can exceed 1
    /// transiently during fixed-point iteration; the latency factor and
    /// throughput feedback push it back under).
    pub dram_utilization: f64,
    /// Latency multiplier applied to miss penalties.
    pub dram_queue_factor: f64,
}

/// Cap on the DRAM queueing multiplier (keeps fixed-point iterates finite).
const MAX_QUEUE_FACTOR: f64 = 20.0;
/// Utilisation knee of the M/M/1-style latency curve.
const UTIL_KNEE: f64 = 0.95;

/// Solves the memory subsystem for a set of co-located workloads.
///
/// Model:
/// 1. Demand `D_i = min(wss_i, C)`. If `Σ D ≤ C` everyone is fully
///    resident.
/// 2. Otherwise cache is allocated by pressure weights
///    `w_i = D_i · refs_i^alpha` with per-workload caps at `D_i`
///    (water-filling redistribution of unused share).
/// 3. Miss ratio `m_i = floor + (1-floor) · (1 - A_i/D_i)^gamma`.
/// 4. DRAM traffic `Σ refs_i · m_i · line` relative to peak bandwidth sets
///    a queueing factor `q = 1/(1 - min(U, knee))` (capped) multiplying the
///    miss penalty.
pub fn solve(spec: &NicSpec, inputs: &[MemInput]) -> MemState {
    let c = spec.llc_bytes;
    let demands: Vec<f64> = inputs.iter().map(|w| w.wss_bytes.min(c).max(0.0)).collect();
    let total_demand: f64 = demands.iter().sum();

    let occupancy = if total_demand <= c {
        demands.clone()
    } else {
        pressure_allocate(c, &demands, inputs, spec.occupancy_alpha)
    };

    // Miss ratios from resident fractions. Residency is measured against
    // the *full* working set (not the capacity-capped demand): a 32 MB
    // working set in a 6 MB cache is mostly non-resident even when it owns
    // the whole LLC. The slope term saturates the curve at miss ratio 1 —
    // the Fig. 6a plateau once the LLC is hopeless.
    let miss: Vec<f64> = inputs
        .iter()
        .zip(&occupancy)
        .map(|(w, &a)| {
            if w.wss_bytes <= 0.0 {
                spec.miss_floor
            } else {
                let nonresident = (1.0 - a / w.wss_bytes).clamp(0.0, 1.0);
                let eff = (spec.miss_slope * nonresident).min(1.0);
                spec.miss_floor + (1.0 - spec.miss_floor) * eff.powf(spec.miss_gamma)
            }
        })
        .collect();

    // DRAM bandwidth queueing.
    let traffic: f64 = inputs
        .iter()
        .zip(&miss)
        .map(|(w, &m)| w.refs_per_s * m * spec.line_bytes)
        .sum();
    let util = traffic / spec.dram_bw_bytes;
    let queue_factor = (1.0 / (1.0 - util.min(UTIL_KNEE))).min(MAX_QUEUE_FACTOR);

    let outcomes = inputs
        .iter()
        .zip(&occupancy)
        .zip(&miss)
        .map(|((_, &a), &m)| MemOutcome {
            occupancy_bytes: a,
            miss_ratio: m,
            stall_per_ref_s: spec.llc_hit_s + m * spec.dram_latency_s * queue_factor,
        })
        .collect();

    MemState {
        outcomes,
        dram_utilization: util,
        dram_queue_factor: queue_factor,
    }
}

/// Allocates `capacity` bytes among workloads by pressure weight
/// `w_i = D_i * refs_i^alpha`, capping each at its demand `D_i` and
/// redistributing the excess until stable.
fn pressure_allocate(capacity: f64, demands: &[f64], inputs: &[MemInput], alpha: f64) -> Vec<f64> {
    let n = demands.len();
    let mut alloc = vec![0.0f64; n];
    let mut open: Vec<usize> = (0..n).filter(|&i| demands[i] > 0.0).collect();
    let mut remaining = capacity;
    // At most n rounds: each round either finishes or closes >=1 workload.
    for _ in 0..n {
        if open.is_empty() || remaining <= 0.0 {
            break;
        }
        let weights: Vec<f64> = open
            .iter()
            .map(|&i| demands[i] * (inputs[i].refs_per_s.max(1.0)).powf(alpha))
            .collect();
        let total_w: f64 = weights.iter().sum();
        if total_w <= 0.0 {
            break;
        }
        let mut any_capped = false;
        let shares: Vec<f64> = weights.iter().map(|w| remaining * w / total_w).collect();
        let mut next_open = Vec::with_capacity(open.len());
        for (k, &i) in open.iter().enumerate() {
            if shares[k] >= demands[i] {
                alloc[i] = demands[i];
                remaining -= demands[i];
                any_capped = true;
            } else {
                next_open.push(i);
            }
        }
        if !any_capped {
            for (k, &i) in open.iter().enumerate() {
                alloc[i] = shares[k];
            }
            return alloc;
        }
        open = next_open;
    }
    // Degenerate exit: give what remains proportionally (only reachable if
    // every workload was capped, i.e. total demand <= capacity).
    for i in 0..n {
        if alloc[i] == 0.0 && demands[i] > 0.0 {
            alloc[i] = demands[i].min(remaining.max(0.0));
            remaining -= alloc[i];
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> NicSpec {
        NicSpec::bluefield2()
    }

    fn input(refs: f64, wss: f64) -> MemInput {
        MemInput {
            refs_per_s: refs,
            wss_bytes: wss,
            write_frac: 0.3,
        }
    }

    #[test]
    fn everything_fits_floor_miss_ratio() {
        let s = spec();
        let st = solve(&s, &[input(1e7, 1e6), input(1e7, 2e6)]);
        for o in &st.outcomes {
            assert!((o.miss_ratio - s.miss_floor).abs() < 1e-9);
        }
        assert_eq!(st.outcomes[0].occupancy_bytes, 1e6);
    }

    #[test]
    fn oversubscription_raises_miss_ratio() {
        let s = spec();
        // Two 5 MB working sets in a 6 MB cache.
        let st = solve(&s, &[input(1e8, 5e6), input(1e8, 5e6)]);
        for o in &st.outcomes {
            assert!(o.miss_ratio > s.miss_floor + 0.1, "miss {:?}", o.miss_ratio);
            assert!(o.occupancy_bytes < 5e6);
        }
        // Symmetric inputs -> symmetric outcomes.
        assert!((st.outcomes[0].miss_ratio - st.outcomes[1].miss_ratio).abs() < 1e-9);
    }

    #[test]
    fn hotter_workload_gets_more_cache() {
        let s = spec();
        let st = solve(&s, &[input(1e9, 5e6), input(1e7, 5e6)]);
        assert!(st.outcomes[0].occupancy_bytes > st.outcomes[1].occupancy_bytes);
        assert!(st.outcomes[0].miss_ratio < st.outcomes[1].miss_ratio);
    }

    #[test]
    fn rising_competitor_car_monotonically_hurts_target() {
        let s = spec();
        let mut last_stall = 0.0;
        for comp_car in [1e7, 5e7, 1e8, 2e8, 4e8] {
            let st = solve(&s, &[input(4e7, 2e6), input(comp_car, 8e6)]);
            let stall = st.outcomes[0].stall_per_ref_s;
            assert!(
                stall >= last_stall - 1e-15,
                "stall should not drop as competitor CAR grows"
            );
            last_stall = stall;
        }
        assert!(last_stall > solve(&s, &[input(4e7, 2e6)]).outcomes[0].stall_per_ref_s);
    }

    #[test]
    fn bigger_competitor_wss_hurts_more() {
        let s = spec();
        let small = solve(&s, &[input(4e7, 2e6), input(1e8, 0.5e6)]);
        let large = solve(&s, &[input(4e7, 2e6), input(1e8, 10e6)]);
        assert!(
            large.outcomes[0].miss_ratio > small.outcomes[0].miss_ratio,
            "10MB competitor should displace more than 0.5MB"
        );
    }

    #[test]
    fn target_wss_growth_saturates() {
        // Growing the target working set against a fixed competitor first
        // raises the miss ratio, then the *resident fraction* stabilises —
        // the Fig. 6a plateau.
        let s = spec();
        let miss_at = |wss: f64| -> f64 {
            solve(&s, &[input(5e7, wss), input(1e8, 10e6)]).outcomes[0].miss_ratio
        };
        let early_slope = miss_at(2e6) - miss_at(0.5e6);
        let late_slope = miss_at(40e6) - miss_at(20e6);
        assert!(early_slope > 0.0);
        assert!(late_slope < early_slope * 0.25, "curve should flatten");
    }

    #[test]
    fn dram_saturation_inflates_stall() {
        let s = spec();
        // Enormous miss traffic: 4 workloads each missing ~100% on 1e9 refs/s
        // = 64 GB/s >> 12 GB/s peak.
        let heavy: Vec<MemInput> = (0..4).map(|_| input(1e9, 50e6)).collect();
        let st = solve(&s, &heavy);
        assert!(st.dram_queue_factor > 2.0);
        let light = solve(&s, &[input(1e6, 1e5)]);
        assert!(light.dram_queue_factor < 1.1);
    }

    #[test]
    fn zero_wss_workload_is_immune_but_counted() {
        let s = spec();
        let st = solve(&s, &[input(1e8, 0.0), input(1e8, 10e6)]);
        // No working set -> floor miss ratio regardless of pressure.
        assert!((st.outcomes[0].miss_ratio - s.miss_floor).abs() < 1e-9);
    }

    #[test]
    fn occupancies_never_exceed_capacity() {
        let s = spec();
        let st = solve(
            &s,
            &[
                input(1e8, 4e6),
                input(2e8, 5e6),
                input(5e7, 3e6),
                input(9e7, 7e6),
            ],
        );
        let total: f64 = st.outcomes.iter().map(|o| o.occupancy_bytes).sum();
        assert!(total <= s.llc_bytes * 1.0 + 1.0);
        for o in &st.outcomes {
            assert!(o.occupancy_bytes >= 0.0);
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let st = solve(&spec(), &[]);
        assert!(st.outcomes.is_empty());
        assert_eq!(st.dram_utilization, 0.0);
    }
}
