//! Workload descriptions: what the solver needs to know about one
//! co-located NF (or synthetic bench) — its execution pattern, per-packet
//! resource demands, core allocation, and offered load.

use crate::spec::ResourceKind;
use serde::{Deserialize, Serialize};

/// How an NF schedules its stages (§4.2): a pipeline keeps packets flowing
/// through per-stage execution contexts (throughput = slowest stage), while
/// run-to-completion processes each packet through all stages before taking
/// the next (per-packet stage times add).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionPattern {
    /// Stage-per-context pipelining.
    Pipeline,
    /// One thread carries a packet through every stage.
    RunToCompletion,
}

impl std::fmt::Display for ExecutionPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Pipeline => f.write_str("pipeline"),
            Self::RunToCompletion => f.write_str("run-to-completion"),
        }
    }
}

/// Per-packet demand of one processing stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StageDemand {
    /// A compute + memory stage executed on the NF's cores.
    CpuMem {
        /// Pure compute cycles per packet (excludes memory stalls).
        cycles_per_pkt: f64,
        /// LLC accesses per packet.
        cache_refs_per_pkt: f64,
        /// Fraction of accesses that are writes.
        write_frac: f64,
        /// Working set size in bytes this stage keeps live.
        wss_bytes: f64,
    },
    /// A hardware-accelerator stage reached via request queues.
    Accelerator {
        /// Which accelerator.
        kind: ResourceKind,
        /// Request queues this NF opens on the accelerator.
        queues: u32,
        /// Requests issued per packet.
        reqs_per_pkt: f64,
        /// Payload bytes per request.
        bytes_per_req: f64,
        /// Expected rule matches per request (regex only; drives Eq. 4).
        matches_per_req: f64,
    },
}

impl StageDemand {
    /// The resource this stage occupies.
    pub fn resource(&self) -> ResourceKind {
        match self {
            Self::CpuMem { .. } => ResourceKind::CpuMem,
            Self::Accelerator { kind, .. } => *kind,
        }
    }
}

/// A complete workload description handed to the co-run solver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Display name (unique within a co-run).
    pub name: String,
    /// Dedicated cores (the paper gives each NF two; core-level isolation
    /// means cores are never shared between co-located NFs).
    pub cores: u32,
    /// Execution pattern used for stage composition.
    pub pattern: ExecutionPattern,
    /// Ordered stages a packet traverses.
    pub stages: Vec<StageDemand>,
    /// Offered packet arrival rate; `None` = open loop (arrival high enough
    /// to reach maximum throughput, the paper's measurement condition).
    pub offered_pps: Option<f64>,
    /// Wire size of this NF's packets in bytes (for port-rate capping).
    pub packet_bytes: f64,
}

impl WorkloadSpec {
    /// Creates an open-loop workload.
    pub fn new(
        name: impl Into<String>,
        cores: u32,
        pattern: ExecutionPattern,
        stages: Vec<StageDemand>,
    ) -> Self {
        assert!(cores > 0, "workload needs at least one core");
        assert!(!stages.is_empty(), "workload needs at least one stage");
        Self {
            name: name.into(),
            cores,
            pattern,
            stages,
            offered_pps: None,
            packet_bytes: 1500.0,
        }
    }

    /// Builder-style: cap the offered arrival rate (rate-limited benches).
    pub fn with_offered_pps(mut self, pps: f64) -> Self {
        assert!(pps > 0.0, "offered rate must be positive");
        self.offered_pps = Some(pps);
        self
    }

    /// Builder-style: set the wire packet size used for port capping.
    pub fn with_packet_bytes(mut self, bytes: f64) -> Self {
        assert!(bytes > 0.0, "packet size must be positive");
        self.packet_bytes = bytes;
        self
    }

    /// Total cache references per packet across CpuMem stages.
    pub fn cache_refs_per_pkt(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| match s {
                StageDemand::CpuMem {
                    cache_refs_per_pkt, ..
                } => *cache_refs_per_pkt,
                _ => 0.0,
            })
            .sum()
    }

    /// Total working set across CpuMem stages.
    pub fn wss_bytes(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| match s {
                StageDemand::CpuMem { wss_bytes, .. } => *wss_bytes,
                _ => 0.0,
            })
            .sum()
    }

    /// Demand-weighted write fraction across CpuMem stages.
    pub fn write_frac(&self) -> f64 {
        let mut refs = 0.0;
        let mut writes = 0.0;
        for s in &self.stages {
            if let StageDemand::CpuMem {
                cache_refs_per_pkt,
                write_frac,
                ..
            } = s
            {
                refs += cache_refs_per_pkt;
                writes += cache_refs_per_pkt * write_frac;
            }
        }
        if refs > 0.0 {
            writes / refs
        } else {
            0.0
        }
    }

    /// Whether any stage uses the given resource.
    pub fn uses(&self, kind: ResourceKind) -> bool {
        self.stages.iter().any(|s| s.resource() == kind)
    }

    /// The distinct resources this workload touches, in stage order.
    pub fn resources(&self) -> Vec<ResourceKind> {
        let mut out = Vec::new();
        for s in &self.stages {
            let r = s.resource();
            if !out.contains(&r) {
                out.push(r);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_stage(cycles: f64, refs: f64, wf: f64, wss: f64) -> StageDemand {
        StageDemand::CpuMem {
            cycles_per_pkt: cycles,
            cache_refs_per_pkt: refs,
            write_frac: wf,
            wss_bytes: wss,
        }
    }

    fn regex_stage() -> StageDemand {
        StageDemand::Accelerator {
            kind: ResourceKind::Regex,
            queues: 1,
            reqs_per_pkt: 1.0,
            bytes_per_req: 1446.0,
            matches_per_req: 0.8,
        }
    }

    #[test]
    fn aggregates_across_stages() {
        let w = WorkloadSpec::new(
            "x",
            2,
            ExecutionPattern::RunToCompletion,
            vec![
                cpu_stage(1000.0, 30.0, 0.5, 1e6),
                regex_stage(),
                cpu_stage(500.0, 10.0, 0.0, 5e5),
            ],
        );
        assert_eq!(w.cache_refs_per_pkt(), 40.0);
        assert_eq!(w.wss_bytes(), 1.5e6);
        // write fraction: (30*0.5 + 10*0.0) / 40
        assert!((w.write_frac() - 0.375).abs() < 1e-12);
        assert!(w.uses(ResourceKind::Regex));
        assert!(!w.uses(ResourceKind::Compression));
        assert_eq!(
            w.resources(),
            vec![ResourceKind::CpuMem, ResourceKind::Regex]
        );
    }

    #[test]
    fn builders_set_fields() {
        let w = WorkloadSpec::new(
            "y",
            1,
            ExecutionPattern::Pipeline,
            vec![cpu_stage(1.0, 1.0, 0.0, 0.0)],
        )
        .with_offered_pps(1e6)
        .with_packet_bytes(64.0);
        assert_eq!(w.offered_pps, Some(1e6));
        assert_eq!(w.packet_bytes, 64.0);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_stages_panics() {
        WorkloadSpec::new("z", 1, ExecutionPattern::Pipeline, vec![]);
    }

    #[test]
    fn zero_ref_workload_write_frac_is_zero() {
        let w = WorkloadSpec::new("a", 1, ExecutionPattern::Pipeline, vec![regex_stage()]);
        assert_eq!(w.write_frac(), 0.0);
        assert_eq!(w.cache_refs_per_pkt(), 0.0);
    }
}
