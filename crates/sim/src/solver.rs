//! The co-run contention solver: a damped fixed point over every
//! co-located workload's throughput, coupling the memory-subsystem model
//! and the per-accelerator round-robin models through throughput feedback.
//!
//! This is the "ground truth" generator of the reproduction — the stand-in
//! for running real NFs on a BlueField-2 and measuring them. It is richer
//! than anything Yala's models assume: occupancy dynamics, DRAM queueing,
//! cross-resource feedback (an NF slowed on the regex engine issues fewer
//! memory references, relieving cache pressure), port-rate caps, and
//! measurement noise.

use crate::accel::{self, AccelInput};
use crate::counters::CounterSample;
use crate::memory::{self, MemInput};
use crate::spec::{NicSpec, ResourceKind};
use crate::workload::{ExecutionPattern, StageDemand, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum fixed-point iterations.
const MAX_ITERS: usize = 600;
/// Relative-change convergence tolerance.
const TOL: f64 = 1e-10;
/// Damping factor for throughput updates.
const DAMPING: f64 = 0.5;
/// Floor on throughput iterates to avoid division blow-ups.
const MIN_PPS: f64 = 1.0;

/// Measured outcome for one workload in a co-run.
#[derive(Debug, Clone, PartialEq)]
pub struct NfOutcome {
    /// Workload name.
    pub name: String,
    /// Achieved throughput, packets/second.
    pub throughput_pps: f64,
    /// Table 11 counters observed for this NF.
    pub counters: CounterSample,
    /// Per-resource time one packet spends on each resource it uses,
    /// seconds (service + contention-induced waiting).
    pub per_resource_time_s: Vec<(ResourceKind, f64)>,
    /// The resource limiting throughput (ground truth for diagnosis).
    pub bottleneck: ResourceKind,
    /// LLC miss ratio at equilibrium.
    pub miss_ratio: f64,
}

impl NfOutcome {
    /// Time per packet spent on `kind`, or 0 if unused.
    pub fn resource_time(&self, kind: ResourceKind) -> f64 {
        self.per_resource_time_s
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, t)| *t)
            .unwrap_or(0.0)
    }
}

/// Result of simulating a set of co-located workloads to equilibrium.
#[derive(Debug, Clone, PartialEq)]
pub struct CoRunReport {
    /// Per-workload outcomes, in input order.
    pub outcomes: Vec<NfOutcome>,
    /// DRAM bandwidth utilisation at equilibrium.
    pub dram_utilization: f64,
    /// Utilisation of each accelerator present on the NIC.
    pub accel_utilization: Vec<(ResourceKind, f64)>,
}

impl CoRunReport {
    /// Outcome for a workload by name.
    ///
    /// # Panics
    ///
    /// Panics if no workload has that name.
    pub fn outcome(&self, name: &str) -> &NfOutcome {
        self.outcomes
            .iter()
            .find(|o| o.name == name)
            .unwrap_or_else(|| panic!("no workload named {name}"))
    }
}

/// The SmartNIC simulator: owns a hardware spec and (optionally) a noise
/// model for measurement realism.
///
/// # Example
///
/// ```
/// use yala_sim::{NicSpec, Simulator, WorkloadSpec, ExecutionPattern, StageDemand};
/// let mut sim = Simulator::new(NicSpec::bluefield2());
/// let nf = WorkloadSpec::new(
///     "toy",
///     2,
///     ExecutionPattern::RunToCompletion,
///     vec![StageDemand::CpuMem {
///         cycles_per_pkt: 2_000.0,
///         cache_refs_per_pkt: 40.0,
///         write_frac: 0.3,
///         wss_bytes: 1e6,
///     }],
/// );
/// let report = sim.co_run(&[nf]);
/// assert!(report.outcomes[0].throughput_pps > 1e6); // ~2 cores of work
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    spec: NicSpec,
    noise_sigma: f64,
    rng: StdRng,
}

impl Simulator {
    /// Noise-free simulator (exact fixed-point outputs).
    pub fn new(spec: NicSpec) -> Self {
        Self {
            spec,
            noise_sigma: 0.0,
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// Simulator with multiplicative Gaussian measurement noise of relative
    /// standard deviation `sigma` applied to throughputs and counters.
    pub fn with_noise(spec: NicSpec, sigma: f64, seed: u64) -> Self {
        assert!((0.0..0.3).contains(&sigma), "noise sigma out of sane range");
        Self {
            spec,
            noise_sigma: sigma,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The NIC spec in use.
    pub fn spec(&self) -> &NicSpec {
        &self.spec
    }

    /// Runs one workload alone on the NIC.
    pub fn solo(&mut self, w: &WorkloadSpec) -> NfOutcome {
        let mut report = self.co_run(std::slice::from_ref(w));
        report.outcomes.remove(0)
    }

    /// Simulates the co-located `workloads` to equilibrium.
    ///
    /// # Panics
    ///
    /// Panics if a workload uses an accelerator the NIC doesn't have, or if
    /// two workloads share a name.
    pub fn co_run(&mut self, workloads: &[WorkloadSpec]) -> CoRunReport {
        self.validate(workloads);
        let n = workloads.len();
        if n == 0 {
            return CoRunReport {
                outcomes: Vec::new(),
                dram_utilization: 0.0,
                accel_utilization: Vec::new(),
            };
        }
        // Initial iterate: uncontended throughput estimates.
        let mut tput: Vec<f64> = workloads
            .iter()
            .map(|w| self.uncontended_estimate(w))
            .collect();

        let mut equil = self.evaluate(workloads, &tput);
        for _ in 0..MAX_ITERS {
            let mut max_delta = 0.0f64;
            for (slot, new) in tput.iter_mut().zip(&equil.tput) {
                let new = new.max(MIN_PPS);
                let old = *slot;
                let next = old * (1.0 - DAMPING) + new * DAMPING;
                max_delta = max_delta.max((next - old).abs() / old.max(MIN_PPS));
                *slot = next;
            }
            equil = self.evaluate(workloads, &tput);
            if max_delta < TOL {
                break;
            }
        }

        // Assemble outcomes (with optional measurement noise).
        let outcomes = (0..n)
            .map(|i| {
                let w = &workloads[i];
                let t = tput[i].max(MIN_PPS);
                let mem = equil.mem.outcomes[i];
                let counters = self.counters(w, t, mem.miss_ratio, mem.stall_per_ref_s);
                NfOutcome {
                    name: w.name.clone(),
                    throughput_pps: self.noisy(t),
                    counters,
                    per_resource_time_s: equil.resource_times[i].clone(),
                    bottleneck: equil.bottleneck[i],
                    miss_ratio: mem.miss_ratio,
                }
            })
            .collect();

        CoRunReport {
            outcomes,
            dram_utilization: equil.mem.dram_utilization,
            accel_utilization: equil.accel_utilization,
        }
    }

    fn validate(&self, workloads: &[WorkloadSpec]) {
        let mut names = std::collections::HashSet::new();
        let mut total_cores = 0u32;
        for w in workloads {
            assert!(
                names.insert(w.name.as_str()),
                "duplicate workload name {}",
                w.name
            );
            total_cores += w.cores;
            for s in &w.stages {
                if let StageDemand::Accelerator { kind, .. } = s {
                    assert!(
                        self.spec.accel(*kind).is_some(),
                        "{} uses {kind} but {} has none",
                        w.name,
                        self.spec.name
                    );
                }
            }
        }
        assert!(
            total_cores <= self.spec.cores,
            "workloads demand {total_cores} cores, NIC has {}",
            self.spec.cores
        );
    }

    /// Uncontended throughput estimate used to seed the fixed point.
    fn uncontended_estimate(&self, w: &WorkloadSpec) -> f64 {
        let stall = self.spec.llc_hit_s + self.spec.miss_floor * self.spec.dram_latency_s;
        let mut cpu_time = 0.0f64;
        let mut accel_time = 0.0f64;
        for s in &w.stages {
            match s {
                StageDemand::CpuMem {
                    cycles_per_pkt,
                    cache_refs_per_pkt,
                    ..
                } => {
                    cpu_time += cycles_per_pkt / self.spec.freq_hz + cache_refs_per_pkt * stall;
                }
                StageDemand::Accelerator {
                    kind,
                    reqs_per_pkt,
                    bytes_per_req,
                    matches_per_req,
                    ..
                } => {
                    let spec = self.spec.accel(*kind).expect("validated");
                    accel_time +=
                        reqs_per_pkt * spec.service_time(*bytes_per_req, *matches_per_req);
                }
            }
        }
        let total = (cpu_time + accel_time).max(1e-12);
        let t = w.cores as f64 / total;
        self.apply_caps(w, t)
    }

    fn apply_caps(&self, w: &WorkloadSpec, t: f64) -> f64 {
        let port_cap = self.spec.port_bps / (w.packet_bytes * 8.0);
        let mut out = t.min(port_cap);
        if let Some(offered) = w.offered_pps {
            out = out.min(offered);
        }
        out.max(MIN_PPS)
    }

    /// One sweep of the contention models at the current throughput iterate.
    fn evaluate(&self, workloads: &[WorkloadSpec], tput: &[f64]) -> Equilibrium {
        let n = workloads.len();
        // Memory subsystem.
        let mem_inputs: Vec<MemInput> = workloads
            .iter()
            .zip(tput)
            .map(|(w, &t)| MemInput {
                refs_per_s: t * w.cache_refs_per_pkt(),
                wss_bytes: w.wss_bytes(),
                write_frac: w.write_frac(),
            })
            .collect();
        let mem = memory::solve(&self.spec, &mem_inputs);

        // Accelerators: group users per kind, solve each once.
        let mut accel_results: Vec<Vec<Option<accel::AccelOutcome>>> =
            vec![vec![None; n]; ResourceKind::ACCELERATORS.len()];
        let mut accel_utilization = Vec::new();
        for (k_idx, kind) in ResourceKind::ACCELERATORS.iter().enumerate() {
            let mut users: Vec<usize> = Vec::new();
            let mut inputs: Vec<AccelInput> = Vec::new();
            for (i, w) in workloads.iter().enumerate() {
                for s in &w.stages {
                    if let StageDemand::Accelerator {
                        kind: k,
                        queues,
                        reqs_per_pkt,
                        bytes_per_req,
                        matches_per_req,
                    } = s
                    {
                        if k == kind {
                            let spec = self.spec.accel(*kind).expect("validated");
                            users.push(i);
                            // Rate-limited workloads (the synthetic benches)
                            // submit fire-and-forget at their configured
                            // arrival rate; open-loop NFs submit at their
                            // achieved throughput.
                            let arrival_pps = w.offered_pps.unwrap_or(tput[i]);
                            inputs.push(AccelInput {
                                queues: *queues,
                                service_s: spec.service_time(*bytes_per_req, *matches_per_req),
                                offered_rps: arrival_pps * reqs_per_pkt,
                            });
                        }
                    }
                }
            }
            if inputs.is_empty() {
                continue;
            }
            let state = accel::solve(&inputs);
            accel_utilization.push((*kind, state.utilization));
            for (slot, outcome) in users.iter().zip(state.outcomes) {
                accel_results[k_idx][*slot] = Some(outcome);
            }
        }

        // Compose per-workload throughput.
        let mut new_tput = Vec::with_capacity(n);
        let mut resource_times = Vec::with_capacity(n);
        let mut bottleneck = Vec::with_capacity(n);
        for (i, w) in workloads.iter().enumerate() {
            let stall = mem.outcomes[i].stall_per_ref_s;
            let (t, times, bn) = self.compose(w, stall, |kind| {
                let k_idx = ResourceKind::ACCELERATORS
                    .iter()
                    .position(|k| *k == kind)
                    .expect("accelerator kind");
                accel_results[k_idx][i].expect("user has outcome")
            });
            new_tput.push(self.apply_caps(w, t));
            resource_times.push(times);
            bottleneck.push(bn);
        }

        Equilibrium {
            tput: new_tput,
            mem,
            accel_utilization,
            resource_times,
            bottleneck,
        }
    }

    /// Pattern-based composition of stage times into end-to-end throughput.
    /// Returns `(throughput, per-resource packet times, bottleneck)`.
    fn compose(
        &self,
        w: &WorkloadSpec,
        stall_per_ref: f64,
        accel_outcome: impl Fn(ResourceKind) -> accel::AccelOutcome,
    ) -> (f64, Vec<(ResourceKind, f64)>, ResourceKind) {
        // Per-stage packet service times on their resource.
        let mut stage_time: Vec<(ResourceKind, f64)> = Vec::with_capacity(w.stages.len());
        // Accelerator grant caps (requests/s / reqs_per_pkt) limiting T.
        let mut accel_caps: Vec<(ResourceKind, f64)> = Vec::new();
        for s in &w.stages {
            match s {
                StageDemand::CpuMem {
                    cycles_per_pkt,
                    cache_refs_per_pkt,
                    ..
                } => {
                    let t = cycles_per_pkt / self.spec.freq_hz + cache_refs_per_pkt * stall_per_ref;
                    stage_time.push((ResourceKind::CpuMem, t));
                }
                StageDemand::Accelerator {
                    kind, reqs_per_pkt, ..
                } => {
                    let o = accel_outcome(*kind);
                    stage_time.push((*kind, reqs_per_pkt * o.sojourn_s));
                    accel_caps.push((*kind, o.capacity_rps / reqs_per_pkt.max(1e-12)));
                }
            }
        }
        // Merge repeated resources into per-resource totals.
        let mut merged: Vec<(ResourceKind, f64)> = Vec::new();
        for &(k, t) in &stage_time {
            match merged.iter_mut().find(|(mk, _)| *mk == k) {
                Some((_, mt)) => *mt += t,
                None => merged.push((k, t)),
            }
        }

        match w.pattern {
            ExecutionPattern::RunToCompletion => {
                // Times add; the NF's cores process packets in parallel.
                let total: f64 = merged.iter().map(|(_, t)| t).sum();
                let mut t = w.cores as f64 / total.max(1e-12);
                // A packet cannot complete faster than its accelerator grants.
                for &(_, cap) in &accel_caps {
                    t = t.min(cap);
                }
                let bottleneck = merged
                    .iter()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
                    .map(|(k, _)| *k)
                    .unwrap_or(ResourceKind::CpuMem);
                (t, merged, bottleneck)
            }
            ExecutionPattern::Pipeline => {
                // Each CPU stage gets an equal share of the NF's cores; each
                // accelerator stage runs at its granted capacity.
                let n_cpu_stages = w
                    .stages
                    .iter()
                    .filter(|s| matches!(s, StageDemand::CpuMem { .. }))
                    .count()
                    .max(1);
                let cores_per_stage = w.cores as f64 / n_cpu_stages as f64;
                let mut best: Option<(ResourceKind, f64)> = None; // (resource, rate)
                for &(k, t) in &stage_time {
                    let rate = match k {
                        ResourceKind::CpuMem => cores_per_stage / t.max(1e-12),
                        _ => {
                            let (_, cap) = *accel_caps
                                .iter()
                                .find(|(ck, _)| *ck == k)
                                .expect("accel stage has cap");
                            cap
                        }
                    };
                    if best.map(|(_, r)| rate < r).unwrap_or(true) {
                        best = Some((k, rate));
                    }
                }
                let (bn, rate) = best.expect("at least one stage");
                (rate, merged, bn)
            }
        }
    }

    /// Table 11 counters from the equilibrium state of one workload.
    fn counters(
        &mut self,
        w: &WorkloadSpec,
        tput: f64,
        miss_ratio: f64,
        stall_per_ref: f64,
    ) -> CounterSample {
        let refs_pp = w.cache_refs_per_pkt();
        let wf = w.write_frac();
        let cycles_pp: f64 = w
            .stages
            .iter()
            .map(|s| match s {
                StageDemand::CpuMem { cycles_per_pkt, .. } => *cycles_per_pkt,
                _ => 0.0,
            })
            .sum();
        // Synthetic-but-consistent instruction count: compute instructions
        // plus ~2 per memory access.
        let inst_pp = 1.2 * cycles_pp + 2.0 * refs_pp;
        let actual_cycles_pp = cycles_pp + refs_pp * stall_per_ref * self.spec.freq_hz;
        let refs_rate = tput * refs_pp;
        let miss_rate = refs_rate * miss_ratio;
        CounterSample {
            ipc: self.noisy(inst_pp / actual_cycles_pp.max(1.0)),
            irt: self.noisy(inst_pp * tput),
            l2crd: self.noisy(refs_rate * (1.0 - wf)),
            l2cwr: self.noisy(refs_rate * wf),
            memrd: self.noisy(miss_rate * (1.0 - wf)),
            memwr: self.noisy(miss_rate * wf),
            wss: self.noisy(w.wss_bytes()),
        }
    }

    /// Applies multiplicative measurement noise.
    fn noisy(&mut self, value: f64) -> f64 {
        if self.noise_sigma == 0.0 {
            return value;
        }
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (value * (1.0 + self.noise_sigma * z)).max(0.0)
    }
}

/// Internal snapshot of one evaluation sweep.
struct Equilibrium {
    tput: Vec<f64>,
    mem: memory::MemState,
    accel_utilization: Vec<(ResourceKind, f64)>,
    resource_times: Vec<Vec<(ResourceKind, f64)>>,
    bottleneck: Vec<ResourceKind>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_nf(name: &str, cycles: f64, refs: f64, wss: f64) -> WorkloadSpec {
        WorkloadSpec::new(
            name,
            2,
            ExecutionPattern::RunToCompletion,
            vec![StageDemand::CpuMem {
                cycles_per_pkt: cycles,
                cache_refs_per_pkt: refs,
                write_frac: 0.3,
                wss_bytes: wss,
            }],
        )
    }

    fn regex_nf(name: &str, pattern: ExecutionPattern, matches_per_req: f64) -> WorkloadSpec {
        WorkloadSpec::new(
            name,
            2,
            pattern,
            vec![
                StageDemand::CpuMem {
                    cycles_per_pkt: 1_500.0,
                    cache_refs_per_pkt: 30.0,
                    write_frac: 0.3,
                    wss_bytes: 1e6,
                },
                StageDemand::Accelerator {
                    kind: ResourceKind::Regex,
                    queues: 1,
                    reqs_per_pkt: 1.0,
                    bytes_per_req: 1446.0,
                    matches_per_req,
                },
            ],
        )
    }

    fn mem_bench(car: f64, wss: f64) -> WorkloadSpec {
        let refs_per_pkt = 100.0;
        WorkloadSpec::new(
            "mem-bench",
            2,
            ExecutionPattern::RunToCompletion,
            vec![StageDemand::CpuMem {
                cycles_per_pkt: 50.0,
                cache_refs_per_pkt: refs_per_pkt,
                write_frac: 0.5,
                wss_bytes: wss,
            }],
        )
        .with_offered_pps(car / refs_per_pkt)
    }

    #[test]
    fn solo_throughput_is_sane() {
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let o = sim.solo(&cpu_nf("a", 2_000.0, 40.0, 1e6));
        // 2 cores / (0.8us + 40 * ~6ns) ≈ 1.9 Mpps.
        assert!(
            o.throughput_pps > 1.0e6 && o.throughput_pps < 3.0e6,
            "{}",
            o.throughput_pps
        );
        assert_eq!(o.bottleneck, ResourceKind::CpuMem);
    }

    #[test]
    fn co_location_degrades_throughput() {
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let solo = sim.solo(&cpu_nf("a", 2_000.0, 40.0, 4e6)).throughput_pps;
        let report = sim.co_run(&[cpu_nf("a", 2_000.0, 40.0, 4e6), mem_bench(2e8, 8e6)]);
        let contended = report.outcome("a").throughput_pps;
        assert!(
            contended < solo * 0.9,
            "contended {contended} should be well below solo {solo}"
        );
    }

    #[test]
    fn contention_is_monotone_in_competitor_car() {
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let mut last = f64::INFINITY;
        for car in [2e7, 6e7, 1.2e8, 2.0e8, 3.0e8] {
            let report = sim.co_run(&[cpu_nf("a", 2_000.0, 40.0, 4e6), mem_bench(car, 8e6)]);
            let t = report.outcome("a").throughput_pps;
            assert!(
                t <= last * 1.001,
                "tput must fall as CAR rises: {t} after {last}"
            );
            last = t;
        }
    }

    #[test]
    fn regex_equilibrium_matches_eq1() {
        // Two identical regex-backlogged NFs with one queue each must end at
        // the same throughput (paper Fig. 4's equilibrium).
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let a = regex_nf("a", ExecutionPattern::Pipeline, 1.0);
        let b = regex_nf("b", ExecutionPattern::Pipeline, 1.0);
        let report = sim.co_run(&[a, b]);
        let (ta, tb) = (
            report.outcome("a").throughput_pps,
            report.outcome("b").throughput_pps,
        );
        assert!((ta - tb).abs() / ta < 0.01, "{ta} vs {tb}");
    }

    #[test]
    fn pipeline_insensitive_to_memory_when_regex_bound() {
        // Fig. 5 (top): with heavy regex contention, a pipeline NF with a
        // light memory stage barely moves as memory contention rises — until
        // the memory stage would cross below the regex cap (not reached
        // here).
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let p_nf = || {
            WorkloadSpec::new(
                "p",
                2,
                ExecutionPattern::Pipeline,
                vec![
                    StageDemand::CpuMem {
                        cycles_per_pkt: 1_500.0,
                        cache_refs_per_pkt: 10.0,
                        write_frac: 0.3,
                        wss_bytes: 1e6,
                    },
                    StageDemand::Accelerator {
                        kind: ResourceKind::Regex,
                        queues: 1,
                        reqs_per_pkt: 1.0,
                        bytes_per_req: 1446.0,
                        matches_per_req: 1.0,
                    },
                ],
            )
        };
        let regex_hog = WorkloadSpec::new(
            "hog",
            2,
            ExecutionPattern::RunToCompletion,
            vec![StageDemand::Accelerator {
                kind: ResourceKind::Regex,
                queues: 1,
                reqs_per_pkt: 1.0,
                bytes_per_req: 1446.0,
                matches_per_req: 4.0,
            }],
        );
        let t_low_mem = {
            let r = sim.co_run(&[p_nf(), regex_hog.clone()]);
            assert_eq!(r.outcome("p").bottleneck, ResourceKind::Regex);
            r.outcome("p").throughput_pps
        };
        let t_high_mem = {
            let r = sim.co_run(&[p_nf(), regex_hog, mem_bench(1.5e8, 6e6)]);
            r.outcome("p").throughput_pps
        };
        let drop = (t_low_mem - t_high_mem) / t_low_mem;
        assert!(
            drop < 0.05,
            "pipeline regex-bound NF dropped {drop} with memory contention"
        );
    }

    #[test]
    fn rtc_compounds_both_contentions() {
        // Fig. 5 (bottom): RTC throughput falls under memory contention even
        // when regex contention is present.
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let hog = WorkloadSpec::new(
            "hog",
            2,
            ExecutionPattern::RunToCompletion,
            vec![StageDemand::Accelerator {
                kind: ResourceKind::Regex,
                queues: 1,
                reqs_per_pkt: 1.0,
                bytes_per_req: 1446.0,
                matches_per_req: 2.0,
            }],
        );
        let nf = || {
            let mut w = regex_nf("r", ExecutionPattern::RunToCompletion, 1.0);
            // More memory-heavy so the memory share is visible.
            if let StageDemand::CpuMem {
                cache_refs_per_pkt,
                wss_bytes,
                ..
            } = &mut w.stages[0]
            {
                *cache_refs_per_pkt = 80.0;
                *wss_bytes = 4e6;
            }
            w
        };
        let base = sim.co_run(&[nf(), hog.clone()]).outcome("r").throughput_pps;
        let with_mem = sim
            .co_run(&[nf(), hog, mem_bench(1.5e8, 8e6)])
            .outcome("r")
            .throughput_pps;
        assert!(
            with_mem < base * 0.95,
            "RTC should drop further with memory contention: {with_mem} vs {base}"
        );
    }

    #[test]
    fn offered_load_caps_throughput() {
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let w = cpu_nf("a", 1_000.0, 10.0, 1e5).with_offered_pps(50_000.0);
        let o = sim.solo(&w);
        assert!((o.throughput_pps - 50_000.0).abs() < 1.0);
    }

    #[test]
    fn port_rate_caps_throughput() {
        let mut sim = Simulator::new(NicSpec::bluefield2());
        // Nearly free NF: would run at absurd pps without the port cap.
        let w = WorkloadSpec::new(
            "tiny",
            2,
            ExecutionPattern::RunToCompletion,
            vec![StageDemand::CpuMem {
                cycles_per_pkt: 10.0,
                cache_refs_per_pkt: 0.0,
                write_frac: 0.0,
                wss_bytes: 0.0,
            }],
        )
        .with_packet_bytes(1500.0);
        let o = sim.solo(&w);
        let cap = 100e9 / (1500.0 * 8.0);
        assert!(o.throughput_pps <= cap * 1.001);
    }

    #[test]
    fn counters_reflect_contention() {
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let solo = sim.solo(&cpu_nf("a", 2_000.0, 40.0, 4e6));
        let report = sim.co_run(&[cpu_nf("a", 2_000.0, 40.0, 4e6), mem_bench(2.5e8, 8e6)]);
        let contended = report.outcome("a");
        assert!(
            contended.counters.ipc < solo.counters.ipc,
            "IPC falls under contention"
        );
        assert!(contended.miss_ratio > solo.miss_ratio, "miss ratio rises");
        assert!(
            contended.counters.car() < solo.counters.car(),
            "CAR falls with tput"
        );
        assert_eq!(contended.counters.wss, 4e6);
    }

    #[test]
    fn deterministic_without_noise() {
        let mut s1 = Simulator::new(NicSpec::bluefield2());
        let mut s2 = Simulator::new(NicSpec::bluefield2());
        let w = [cpu_nf("a", 2_000.0, 40.0, 2e6), mem_bench(1e8, 4e6)];
        assert_eq!(
            s1.co_run(&w).outcome("a").throughput_pps,
            s2.co_run(&w).outcome("a").throughput_pps
        );
    }

    #[test]
    fn noise_perturbs_but_is_bounded() {
        let mut sim = Simulator::with_noise(NicSpec::bluefield2(), 0.01, 7);
        let w = cpu_nf("a", 2_000.0, 40.0, 2e6);
        let t1 = sim.solo(&w).throughput_pps;
        let t2 = sim.solo(&w).throughput_pps;
        assert_ne!(t1, t2, "noise should differ per measurement");
        assert!((t1 - t2).abs() / t1 < 0.1, "1% noise should stay small");
    }

    #[test]
    #[should_panic(expected = "cores")]
    fn over_allocating_cores_panics() {
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let ws: Vec<WorkloadSpec> = (0..5)
            .map(|i| cpu_nf(&format!("w{i}"), 1000.0, 10.0, 1e5))
            .collect();
        sim.co_run(&ws); // 5 * 2 = 10 > 8 cores
    }

    #[test]
    #[should_panic(expected = "duplicate workload name")]
    fn duplicate_names_panic() {
        let mut sim = Simulator::new(NicSpec::bluefield2());
        sim.co_run(&[cpu_nf("a", 1e3, 1.0, 1e5), cpu_nf("a", 1e3, 1.0, 1e5)]);
    }

    #[test]
    #[should_panic(expected = "has none")]
    fn missing_accelerator_panics() {
        let mut sim = Simulator::new(NicSpec::pensando());
        sim.co_run(&[regex_nf("r", ExecutionPattern::Pipeline, 1.0)]);
    }

    #[test]
    fn report_lookup_by_name() {
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let r = sim.co_run(&[cpu_nf("alpha", 1e3, 10.0, 1e5)]);
        assert_eq!(r.outcome("alpha").name, "alpha");
    }

    #[test]
    fn resource_time_accessor() {
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let o = sim.solo(&regex_nf("r", ExecutionPattern::RunToCompletion, 1.0));
        assert!(o.resource_time(ResourceKind::Regex) > 0.0);
        assert!(o.resource_time(ResourceKind::CpuMem) > 0.0);
        assert_eq!(o.resource_time(ResourceKind::Crypto), 0.0);
    }
}
