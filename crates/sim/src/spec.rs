//! NIC hardware specifications: core complex, memory subsystem, and
//! accelerator service parameters. Presets model the paper's two testbeds
//! (NVIDIA BlueField-2, AMD Pensando).

use serde::{Deserialize, Serialize};
use std::sync::{Mutex, OnceLock};

/// The kinds of shared resources an on-NIC NF can contend on.
///
/// `CpuMem` covers the core + memory-subsystem path (per-packet compute and
/// cache/DRAM accesses); the remaining variants are hardware accelerators
/// reached through round-robin request queues (§4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// CPU cycles plus cache/DRAM accesses (the memory subsystem of §4.1.2).
    CpuMem,
    /// The regex-matching accelerator (RXP on BlueField-2).
    Regex,
    /// The (de)compression accelerator.
    Compression,
    /// The public-key/crypto accelerator (paper §4.1.1 "other accelerators").
    Crypto,
}

impl ResourceKind {
    /// All accelerator kinds (everything except `CpuMem`).
    pub const ACCELERATORS: [ResourceKind; 3] = [
        ResourceKind::Regex,
        ResourceKind::Compression,
        ResourceKind::Crypto,
    ];
}

impl std::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::CpuMem => "cpu-mem",
            Self::Regex => "regex",
            Self::Compression => "compression",
            Self::Crypto => "crypto",
        };
        f.write_str(s)
    }
}

/// Interned identity of a NIC hardware *model* (e.g. `"bluefield2"`,
/// `"pensando"`): the key every layer above the simulator uses to select
/// per-model trained predictors, solo baselines, and capability checks in
/// a heterogeneous fleet.
///
/// Identity is the model *name*: two [`NicSpec`]s with the same name
/// intern to the same id, so `NicModelId` is `Copy + Eq + Hash + Ord` and
/// cheap to thread through placement and orchestration state. Ordering
/// and `Display` follow the name (not the interning order), so sorted
/// output is deterministic regardless of which model was interned first.
#[derive(Clone, Copy, Eq)]
pub struct NicModelId(u32);

fn intern_table() -> &'static Mutex<Vec<&'static str>> {
    static TABLE: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

impl NicModelId {
    /// Interns `name` and returns its stable id. Repeated calls with the
    /// same name return the same id for the life of the process.
    pub fn intern(name: &str) -> Self {
        let mut table = intern_table().lock().expect("intern table poisoned");
        if let Some(i) = table.iter().position(|&n| n == name) {
            return Self(i as u32);
        }
        table.push(Box::leak(name.to_string().into_boxed_str()));
        Self(table.len() as u32 - 1)
    }

    /// The interned model name.
    pub fn as_str(self) -> &'static str {
        intern_table().lock().expect("intern table poisoned")[self.0 as usize]
    }
}

impl PartialEq for NicModelId {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl std::hash::Hash for NicModelId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl PartialOrd for NicModelId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NicModelId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl std::fmt::Debug for NicModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NicModelId({:?})", self.as_str())
    }
}

impl std::fmt::Display for NicModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Service-time parameters of one accelerator: a request costs
/// `base_s + bytes * per_byte_s + matches * per_match_s` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccelSpec {
    /// Fixed per-request overhead (doorbell + descriptor fetch), seconds.
    pub base_s: f64,
    /// Scan/processing time per payload byte, seconds.
    pub per_byte_s: f64,
    /// Extra time per reported match (regex only; 0 for others), seconds.
    pub per_match_s: f64,
}

impl AccelSpec {
    /// Service time of a request with the given size and match count.
    pub fn service_time(&self, bytes: f64, matches: f64) -> f64 {
        self.base_s + bytes * self.per_byte_s + matches * self.per_match_s
    }
}

/// Full NIC hardware description consumed by the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NicSpec {
    /// Human-readable name, e.g. `"bluefield2"`.
    pub name: String,
    /// Number of SoC cores.
    pub cores: u32,
    /// Core frequency in Hz.
    pub freq_hz: f64,
    /// Last-level cache capacity in bytes.
    pub llc_bytes: f64,
    /// LLC hit service time per access, seconds.
    pub llc_hit_s: f64,
    /// DRAM access latency on an LLC miss (unloaded), seconds.
    pub dram_latency_s: f64,
    /// Peak DRAM bandwidth, bytes/second.
    pub dram_bw_bytes: f64,
    /// Cache line size in bytes (miss traffic granularity).
    pub line_bytes: f64,
    /// Floor (compulsory) miss ratio when a working set fully fits.
    pub miss_floor: f64,
    /// Exponent shaping the miss-ratio curve vs. non-resident fraction.
    pub miss_gamma: f64,
    /// Slope of the miss-ratio curve: the miss ratio saturates once
    /// `slope · (1 - resident fraction)` reaches 1 — the LLC-saturation
    /// plateau of Fig. 6a.
    pub miss_slope: f64,
    /// Cache-occupancy pressure exponent (occupancy weight is
    /// `demand * access_rate^alpha`).
    pub occupancy_alpha: f64,
    /// Port line rate in bits/second (both ConnectX-6 ports bonded).
    pub port_bps: f64,
    /// Regex accelerator parameters; `None` if the NIC has no such engine.
    pub regex: Option<AccelSpec>,
    /// Compression accelerator parameters.
    pub compression: Option<AccelSpec>,
    /// Crypto accelerator parameters.
    pub crypto: Option<AccelSpec>,
}

impl NicSpec {
    /// The paper's primary testbed: NVIDIA BlueField-2 — 8 ARMv8 A72 cores
    /// @ 2.5 GHz, 6 MB L3, 16 GB DDR4, 100 GbE, RXP regex + compression
    /// accelerators.
    pub fn bluefield2() -> Self {
        Self {
            name: "bluefield2".to_string(),
            cores: 8,
            freq_hz: 2.5e9,
            llc_bytes: 6.0 * 1024.0 * 1024.0,
            llc_hit_s: 4e-9,
            dram_latency_s: 95e-9,
            dram_bw_bytes: 12.0e9,
            line_bytes: 64.0,
            miss_floor: 0.02,
            miss_gamma: 1.0,
            miss_slope: 1.2,
            occupancy_alpha: 0.5,
            port_bps: 100e9,
            regex: Some(AccelSpec {
                base_s: 5e-9,
                per_byte_s: 0.08e-9,
                per_match_s: 180e-9,
            }),
            compression: Some(AccelSpec {
                base_s: 10e-9,
                per_byte_s: 0.25e-9,
                per_match_s: 0.0,
            }),
            crypto: Some(AccelSpec {
                base_s: 20e-9,
                per_byte_s: 0.10e-9,
                per_match_s: 0.0,
            }),
        }
    }

    /// The generalisation testbed of §8/Table 9: an AMD Pensando DPU — more
    /// cores, larger LLC, higher memory bandwidth, crypto/compression but no
    /// regex engine.
    pub fn pensando() -> Self {
        Self {
            name: "pensando".to_string(),
            cores: 16,
            freq_hz: 2.8e9,
            llc_bytes: 8.0 * 1024.0 * 1024.0,
            llc_hit_s: 3.5e-9,
            dram_latency_s: 85e-9,
            dram_bw_bytes: 20.0e9,
            line_bytes: 64.0,
            miss_floor: 0.02,
            miss_gamma: 1.0,
            miss_slope: 1.2,
            occupancy_alpha: 0.5,
            port_bps: 200e9,
            regex: None,
            compression: Some(AccelSpec {
                base_s: 8e-9,
                per_byte_s: 0.20e-9,
                per_match_s: 0.0,
            }),
            crypto: Some(AccelSpec {
                base_s: 15e-9,
                per_byte_s: 0.08e-9,
                per_match_s: 0.0,
            }),
        }
    }

    /// Accelerator spec for a resource kind, if present on this NIC.
    ///
    /// # Panics
    ///
    /// Panics if called with [`ResourceKind::CpuMem`], which is not an
    /// accelerator.
    pub fn accel(&self, kind: ResourceKind) -> Option<&AccelSpec> {
        match kind {
            ResourceKind::Regex => self.regex.as_ref(),
            ResourceKind::Compression => self.compression.as_ref(),
            ResourceKind::Crypto => self.crypto.as_ref(),
            ResourceKind::CpuMem => panic!("CpuMem is not an accelerator"),
        }
    }

    /// This spec's interned model identity (derived from [`Self::name`]).
    pub fn model(&self) -> NicModelId {
        NicModelId::intern(&self.name)
    }

    /// Capability query: whether this NIC can serve work on `kind`.
    /// Every NIC has the CPU/memory path; accelerators are present only
    /// when the spec carries their service parameters.
    pub fn has_accel(&self, kind: ResourceKind) -> bool {
        match kind {
            ResourceKind::CpuMem => true,
            ResourceKind::Regex => self.regex.is_some(),
            ResourceKind::Compression => self.compression.is_some(),
            ResourceKind::Crypto => self.crypto.is_some(),
        }
    }

    /// Whether every resource `workload` touches exists on this NIC — the
    /// feasibility predicate capability-aware placement must uphold (an
    /// NF submitting regex requests is infeasible on a regex-less NIC).
    pub fn supports(&self, workload: &crate::workload::WorkloadSpec) -> bool {
        workload.resources().iter().all(|&r| self.has_accel(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bluefield2_matches_paper_headline_numbers() {
        let s = NicSpec::bluefield2();
        assert_eq!(s.cores, 8);
        assert_eq!(s.freq_hz, 2.5e9);
        assert_eq!(s.llc_bytes, 6.0 * 1024.0 * 1024.0);
        assert!(s.regex.is_some());
        assert!(s.compression.is_some());
    }

    #[test]
    fn pensando_has_no_regex() {
        let s = NicSpec::pensando();
        assert!(s.regex.is_none());
        assert!(s.accel(ResourceKind::Regex).is_none());
        assert!(s.accel(ResourceKind::Crypto).is_some());
    }

    #[test]
    fn service_time_is_affine() {
        let a = AccelSpec {
            base_s: 1e-9,
            per_byte_s: 2e-9,
            per_match_s: 3e-9,
        };
        assert!((a.service_time(10.0, 2.0) - (1e-9 + 20e-9 + 6e-9)).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "not an accelerator")]
    fn cpumem_accel_lookup_panics() {
        NicSpec::bluefield2().accel(ResourceKind::CpuMem);
    }

    #[test]
    fn display_names() {
        assert_eq!(ResourceKind::Regex.to_string(), "regex");
        assert_eq!(ResourceKind::CpuMem.to_string(), "cpu-mem");
    }

    #[test]
    fn model_ids_intern_by_name() {
        let bf2 = NicSpec::bluefield2();
        let pen = NicSpec::pensando();
        assert_eq!(bf2.model(), NicSpec::bluefield2().model());
        assert_ne!(bf2.model(), pen.model());
        assert_eq!(bf2.model().as_str(), "bluefield2");
        assert_eq!(pen.model().to_string(), "pensando");
        // Identity follows the name, not the struct: a tweaked spec with
        // the same name is the same model.
        let mut tweaked = NicSpec::bluefield2();
        tweaked.cores = 4;
        assert_eq!(tweaked.model(), bf2.model());
    }

    #[test]
    fn model_id_orders_by_name_not_intern_order() {
        // "zeta" interned before "alpha" must still sort after it.
        let z = NicModelId::intern("zeta-test-model");
        let a = NicModelId::intern("alpha-test-model");
        assert!(a < z);
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn capability_queries() {
        use crate::workload::{ExecutionPattern, StageDemand, WorkloadSpec};
        let bf2 = NicSpec::bluefield2();
        let pen = NicSpec::pensando();
        assert!(bf2.has_accel(ResourceKind::CpuMem));
        assert!(bf2.has_accel(ResourceKind::Regex));
        assert!(pen.has_accel(ResourceKind::CpuMem));
        assert!(!pen.has_accel(ResourceKind::Regex));
        assert!(pen.has_accel(ResourceKind::Compression));

        let regex_w = WorkloadSpec::new(
            "r",
            1,
            ExecutionPattern::RunToCompletion,
            vec![
                StageDemand::CpuMem {
                    cycles_per_pkt: 100.0,
                    cache_refs_per_pkt: 5.0,
                    write_frac: 0.1,
                    wss_bytes: 1e4,
                },
                StageDemand::Accelerator {
                    kind: ResourceKind::Regex,
                    queues: 1,
                    reqs_per_pkt: 1.0,
                    bytes_per_req: 1446.0,
                    matches_per_req: 0.5,
                },
            ],
        );
        assert!(bf2.supports(&regex_w));
        assert!(!pen.supports(&regex_w));
    }
}
