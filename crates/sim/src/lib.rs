//! # yala-sim — a mechanistic SoC-SmartNIC simulator
//!
//! The Yala paper measures network functions on an NVIDIA BlueField-2
//! SmartNIC. This crate is the hardware substitute (see `DESIGN.md`): a
//! fluid-model simulator of the NIC's shared resources that produces the
//! same contention phenomenology the paper's models are built on:
//!
//! * [`memory`] — shared last-level cache with pressure-proportional
//!   occupancy, miss-ratio curves, and DRAM-bandwidth queueing (piecewise
//!   throughput drop vs. competing cache-access rate; Fig. 3a/5/6 shapes).
//! * [`accel`] — hardware accelerators (regex / compression / crypto)
//!   scheduled round-robin across per-NF request queues; reduces exactly to
//!   the paper's Eq. 1 when all queues are backlogged and reproduces
//!   Fig. 4's linear-decline-then-equilibrium curves.
//! * [`solver`] — the co-run fixed point coupling everything through
//!   throughput feedback, emitting per-NF throughput, Table 11 performance
//!   [`counters`], per-resource packet times, and ground-truth bottlenecks.
//! * [`spec`] — NIC hardware presets ([`NicSpec::bluefield2`],
//!   [`NicSpec::pensando`]).
//!
//! Execution patterns follow §4.2 of the paper: [`ExecutionPattern::Pipeline`]
//! NFs run at the rate of their slowest stage; run-to-completion NFs add
//! per-stage times.
//!
//! # Example
//!
//! ```
//! use yala_sim::{ExecutionPattern, NicSpec, Simulator, StageDemand, WorkloadSpec};
//!
//! let mut sim = Simulator::new(NicSpec::bluefield2());
//! let nf = WorkloadSpec::new(
//!     "flowstats",
//!     2,
//!     ExecutionPattern::RunToCompletion,
//!     vec![StageDemand::CpuMem {
//!         cycles_per_pkt: 2_000.0,
//!         cache_refs_per_pkt: 40.0,
//!         write_frac: 0.3,
//!         wss_bytes: 1.0e6,
//!     }],
//! );
//! let solo = sim.solo(&nf);
//! assert!(solo.throughput_pps > 0.0);
//! ```

pub mod accel;
pub mod counters;
pub mod memory;
pub mod solver;
pub mod spec;
pub mod workload;

pub use counters::CounterSample;
pub use solver::{CoRunReport, NfOutcome, Simulator};
pub use spec::{AccelSpec, NicModelId, NicSpec, ResourceKind};
pub use workload::{ExecutionPattern, StageDemand, WorkloadSpec};
