//! Accelerator contention model: fluid round-robin over per-NF request
//! queues with water-filling equilibrium.
//!
//! The BlueField-2 regex driver schedules request queues round-robin
//! (paper §4.1.1, confirmed from the mlx-regex driver). In fluid
//! approximation, each *backlogged* queue receives the same turn rate `r`,
//! while queues whose arrival rate is below `r` are fully served. The busy
//! fraction balances:
//!
//! ```text
//! Σ_i n_i · min(λ_i / n_i, r) · s_i = 1        (at saturation)
//! ```
//!
//! In the all-backlogged regime this reduces exactly to the paper's Eq. 1:
//! `T_i = n_i / Σ_j n_j t_j`. Below saturation everyone gets their offered
//! rate — which produces the linear-decline-then-equilibrium shape of
//! Fig. 4.

/// One NF's presence on an accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelInput {
    /// Number of request queues the NF opened.
    pub queues: u32,
    /// Service time of one of its requests, seconds.
    pub service_s: f64,
    /// Request arrival rate (requests/second) it currently offers.
    pub offered_rps: f64,
}

/// Equilibrium outcome for one NF on an accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelOutcome {
    /// Requests/second actually served.
    pub granted_rps: f64,
    /// Maximum requests/second this NF *could* get if it backlogged its
    /// queues, holding every other NF's offered load fixed. This is the
    /// capacity a pipeline stage sees.
    pub capacity_rps: f64,
    /// Per-request sojourn time (queueing + service) a run-to-completion
    /// NF experiences when operating at its capacity, seconds.
    pub sojourn_s: f64,
}

/// Result of one accelerator solve.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelState {
    /// Per-NF outcomes in input order.
    pub outcomes: Vec<AccelOutcome>,
    /// Fraction of accelerator time in use (≤ 1).
    pub utilization: f64,
}

/// Solves the round-robin equilibrium for one accelerator.
///
/// # Panics
///
/// Panics if any input has zero queues or non-positive service time.
pub fn solve(inputs: &[AccelInput]) -> AccelState {
    for w in inputs {
        assert!(
            w.queues > 0,
            "accelerator user must open at least one queue"
        );
        assert!(w.service_s > 0.0, "service time must be positive");
        assert!(w.offered_rps >= 0.0, "offered rate cannot be negative");
    }
    let grants = grant_rates(inputs, None);
    let utilization: f64 = inputs
        .iter()
        .zip(&grants)
        .map(|(w, &g)| g * w.service_s)
        .sum::<f64>()
        .min(1.0);

    let outcomes = (0..inputs.len())
        .map(|i| {
            // Capacity: re-solve with NF i backlogged (infinite offer).
            let caps = grant_rates(inputs, Some(i));
            let capacity_rps = caps[i];
            // Per-queue turn rate when i is backlogged; one request is
            // served per queue per round, so per-request sojourn at
            // capacity is one round interval (floor: its own service).
            let per_queue = capacity_rps / inputs[i].queues as f64;
            let sojourn_s = (1.0 / per_queue).max(inputs[i].service_s);
            AccelOutcome {
                granted_rps: grants[i],
                capacity_rps,
                sojourn_s,
            }
        })
        .collect();

    AccelState {
        outcomes,
        utilization,
    }
}

/// Computes granted request rates under fluid round-robin. When
/// `backlogged` is `Some(i)`, NF `i`'s offer is treated as infinite.
fn grant_rates(inputs: &[AccelInput], backlogged: Option<usize>) -> Vec<f64> {
    let offered = |i: usize| -> f64 {
        if backlogged == Some(i) {
            f64::INFINITY
        } else {
            inputs[i].offered_rps
        }
    };
    // Total busy fraction if everyone were fully served.
    let full: f64 = (0..inputs.len())
        .map(|i| {
            let o = offered(i);
            if o.is_infinite() {
                f64::INFINITY
            } else {
                o * inputs[i].service_s
            }
        })
        .sum();
    if full <= 1.0 {
        return (0..inputs.len()).map(offered).collect();
    }
    // Saturated: find per-queue fair rate r by bisection on
    // W(r) = Σ n_i min(λ_i/n_i, r) s_i  (monotone increasing in r).
    let work_at = |r: f64| -> f64 {
        (0..inputs.len())
            .map(|i| {
                let n = inputs[i].queues as f64;
                let per_queue = (offered(i) / n).min(r);
                n * per_queue * inputs[i].service_s
            })
            .sum()
    };
    let mut lo = 0.0f64;
    // Upper bound: serving only the fastest queue continuously.
    let mut hi = inputs
        .iter()
        .map(|w| 1.0 / w.service_s)
        .fold(0.0f64, f64::max);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if work_at(mid) < 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let r = 0.5 * (lo + hi);
    (0..inputs.len())
        .map(|i| {
            let n = inputs[i].queues as f64;
            n * (offered(i) / n).min(r)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(queues: u32, service_s: f64, offered: f64) -> AccelInput {
        AccelInput {
            queues,
            service_s,
            offered_rps: offered,
        }
    }

    #[test]
    fn undersubscribed_everyone_served() {
        let st = solve(&[user(1, 1e-6, 1e5), user(1, 1e-6, 2e5)]);
        assert!((st.outcomes[0].granted_rps - 1e5).abs() < 1.0);
        assert!((st.outcomes[1].granted_rps - 2e5).abs() < 1.0);
        assert!(st.utilization < 0.5);
    }

    #[test]
    fn equation_1_all_backlogged_equal_queues() {
        // Two NFs, one queue each, service times t1 = 2 µs, t2 = 6 µs.
        // Eq. 1: T_i = n_i / Σ n_j t_j = 1 / 8 µs = 125 000 rps each.
        let st = solve(&[user(1, 2e-6, 1e12), user(1, 6e-6, 1e12)]);
        for o in &st.outcomes {
            assert!((o.granted_rps - 125_000.0).abs() < 50.0, "{o:?}");
        }
        assert!((st.utilization - 1.0).abs() < 1e-6);
    }

    #[test]
    fn equation_1_weighted_by_queue_count() {
        // n1 = 2, n2 = 1, t = 1 µs each: T1 = 2/3 Mrps, T2 = 1/3 Mrps.
        let st = solve(&[user(2, 1e-6, 1e12), user(1, 1e-6, 1e12)]);
        assert!((st.outcomes[0].granted_rps - 2.0 / 3.0e-6).abs() < 1e3);
        assert!((st.outcomes[1].granted_rps - 1.0 / 3.0e-6).abs() < 1e3);
    }

    #[test]
    fn linear_decline_then_equilibrium_fig4_shape() {
        // Target NF backlogged; competitor's offered rate sweeps up.
        // Target's capacity should fall ~linearly then flatten once the
        // competitor is itself backlogged (equilibrium).
        let t_service = 10e-9;
        let caps: Vec<f64> = (0..12)
            .map(|k| {
                let comp = k as f64 * 10e6; // 0..110 Mrps offered
                let st = solve(&[user(1, t_service, 1e12), user(1, t_service, comp)]);
                st.outcomes[0].capacity_rps
            })
            .collect();
        // Initially: full accelerator to itself.
        assert!((caps[0] - 1.0 / t_service).abs() < 1e4);
        // Declines monotonically.
        for w in caps.windows(2) {
            assert!(w[1] <= w[0] + 1.0);
        }
        // Equilibrium: both backlogged -> each gets half.
        let eq = 0.5 / t_service;
        assert!(
            (caps[11] - eq).abs() < eq * 0.01,
            "cap {} vs eq {}",
            caps[11],
            eq
        );
        // The early decline is steeper than the late (flattening).
        let early = caps[0] - caps[3];
        let late = caps[8] - caps[11];
        assert!(late < early * 0.2, "late {late} early {early}");
    }

    #[test]
    fn equilibrium_depends_on_competitor_service_time() {
        // Higher competitor MTBR (longer service) lowers the equilibrium.
        let st_fast = solve(&[user(1, 10e-9, 1e12), user(1, 10e-9, 1e12)]);
        let st_slow = solve(&[user(1, 10e-9, 1e12), user(1, 40e-9, 1e12)]);
        assert!(
            st_slow.outcomes[0].granted_rps < st_fast.outcomes[0].granted_rps,
            "longer competitor requests must hurt more"
        );
    }

    #[test]
    fn capacity_exceeds_grant_for_underloaded() {
        let st = solve(&[user(1, 1e-6, 1e5), user(1, 1e-6, 9e5)]);
        let o = &st.outcomes[0];
        assert!(o.capacity_rps > o.granted_rps);
        assert!(o.sojourn_s >= 1e-6);
    }

    #[test]
    fn sojourn_floor_is_service_time() {
        let st = solve(&[user(1, 5e-6, 1e3)]);
        assert!((st.outcomes[0].sojourn_s - 5e-6).abs() < 1e-12);
    }

    #[test]
    fn work_conservation_at_saturation() {
        let st = solve(&[user(1, 3e-6, 1e12), user(2, 1e-6, 1e12), user(1, 2e-6, 5e4)]);
        let busy: f64 = [
            st.outcomes[0].granted_rps * 3e-6,
            st.outcomes[1].granted_rps * 1e-6,
            st.outcomes[2].granted_rps * 2e-6,
        ]
        .iter()
        .sum();
        assert!((busy - 1.0).abs() < 1e-3, "busy {busy}");
    }

    #[test]
    fn empty_input() {
        let st = solve(&[]);
        assert!(st.outcomes.is_empty());
        assert_eq!(st.utilization, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one queue")]
    fn zero_queues_panics() {
        solve(&[user(0, 1e-6, 1.0)]);
    }
}
