//! Hardware performance counters (paper Table 11): the seven signals the
//! memory-subsystem models train on. SmartNIC accelerators expose *no*
//! fine-grained counters (§4.1.1) — that asymmetry is why Yala models them
//! white-box — so none are emitted here.

use serde::{Deserialize, Serialize};

/// One sample of the Table 11 counters for a single NF.
///
/// | Counter | Definition |
/// |---------|------------|
/// | IPC     | Instructions per cycle |
/// | IRT     | Instructions retired (per second) |
/// | L2CRD   | L2 data cache read accesses (per second) |
/// | L2CWR   | L2 data cache write accesses (per second) |
/// | MEMRD   | Data memory read accesses (per second) |
/// | MEMWR   | Data memory write accesses (per second) |
/// | WSS     | Working set size (bytes) |
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CounterSample {
    /// Instructions per cycle.
    pub ipc: f64,
    /// Instructions retired per second.
    pub irt: f64,
    /// L2 cache read accesses per second.
    pub l2crd: f64,
    /// L2 cache write accesses per second.
    pub l2cwr: f64,
    /// DRAM read accesses per second.
    pub memrd: f64,
    /// DRAM write accesses per second.
    pub memwr: f64,
    /// Working set size in bytes.
    pub wss: f64,
}

impl CounterSample {
    /// Cache access rate: L2 read + write accesses per second. This is the
    /// "competing CAR" the paper sweeps in Figs. 3/5/6.
    pub fn car(&self) -> f64 {
        self.l2crd + self.l2cwr
    }

    /// The 7-dimensional feature vector used by SLOMO-style models, in
    /// Table 11 order.
    pub fn as_features(&self) -> [f64; 7] {
        [
            self.ipc, self.irt, self.l2crd, self.l2cwr, self.memrd, self.memwr, self.wss,
        ]
    }

    /// Element-wise sum — used to aggregate the contentiousness of a set of
    /// competitors into one feature vector (as SLOMO composes competing
    /// workloads).
    pub fn aggregate<'a, I: IntoIterator<Item = &'a CounterSample>>(samples: I) -> Self {
        let mut out = CounterSample::default();
        for s in samples {
            out.ipc += s.ipc;
            out.irt += s.irt;
            out.l2crd += s.l2crd;
            out.l2cwr += s.l2cwr;
            out.memrd += s.memrd;
            out.memwr += s.memwr;
            out.wss += s.wss;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn car_is_read_plus_write() {
        let c = CounterSample {
            l2crd: 3.0,
            l2cwr: 4.0,
            ..Default::default()
        };
        assert_eq!(c.car(), 7.0);
    }

    #[test]
    fn feature_vector_order() {
        let c = CounterSample {
            ipc: 1.0,
            irt: 2.0,
            l2crd: 3.0,
            l2cwr: 4.0,
            memrd: 5.0,
            memwr: 6.0,
            wss: 7.0,
        };
        assert_eq!(c.as_features(), [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn aggregate_sums() {
        let a = CounterSample {
            ipc: 1.0,
            wss: 10.0,
            ..Default::default()
        };
        let b = CounterSample {
            ipc: 0.5,
            wss: 20.0,
            ..Default::default()
        };
        let s = CounterSample::aggregate([&a, &b]);
        assert_eq!(s.ipc, 1.5);
        assert_eq!(s.wss, 30.0);
    }

    #[test]
    fn aggregate_empty_is_zero() {
        let s = CounterSample::aggregate(std::iter::empty());
        assert_eq!(s.as_features(), [0.0; 7]);
    }
}
