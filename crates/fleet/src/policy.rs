//! Fleet policies: how arrivals are placed and how the control loop
//! reacts to (predicted) SLA violations.
//!
//! Placement mirrors the one-shot strategies of §7.5.1 — monopolization,
//! greedy most-available-cores, contention-aware first-fit behind a
//! [`PlacementPredictor`] — adapted to a *fixed* fleet: strategies pack
//! into already-occupied NICs first and power on an empty NIC only when
//! nothing occupied is feasible (otherwise a mostly-empty fleet would
//! turn every strategy into monopolization).
//!
//! The reactive half is new to the fleet: at each audit epoch the
//! contention-aware policies re-evaluate every NIC through the
//! predictor's [`PlacementPredictor::reevaluate`] hook and, on a
//! predicted violation, drain one resident — chosen by diagnosis
//! ([`yala_diagnosis::select_victim`]) as the co-resident pressing
//! hardest on the violator's bottleneck resource — and re-place it
//! elsewhere under the same predictor.

use yala_core::{Contender, ModelBank, YalaModel};
use yala_diagnosis::diagnose_yala;
use yala_nf::NfKind;
use yala_placement::{Placed, PlacementPredictor};
use yala_sim::{NicModelId, ResourceKind};

/// How the migration loop diagnoses a predicted violator's bottleneck.
/// Every verdict is relative to a NIC *model*: the diagnoser consults
/// the trained models — and the residents' solo baselines — for the
/// hardware of the NIC under audit.
pub enum Diagnoser<'a> {
    /// Yala's per-resource models: the bottleneck is the resource whose
    /// model predicts the lowest throughput, and contenders carry their
    /// fitted accelerator pressure — victim selection can tell a regex
    /// hog from a cache hog.
    Yala(&'a ModelBank<YalaModel>),
    /// A memory-only worldview (SLOMO's): every violation is blamed on
    /// the memory subsystem, so the victim is always the highest-CAR
    /// co-resident — wrong whenever the real bottleneck is an
    /// accelerator.
    MemoryOnly,
}

impl Diagnoser<'_> {
    fn model(&self, nic_model: NicModelId, kind: NfKind) -> Option<&YalaModel> {
        match self {
            Diagnoser::Yala(bank) => Some(bank.expect(nic_model, kind)),
            Diagnoser::MemoryOnly => None,
        }
    }

    /// Contender descriptions for every resident except `exclude`, as
    /// seen on NICs of `nic_model`.
    pub fn contenders(
        &self,
        nic_model: NicModelId,
        residents: &[Placed],
        exclude: usize,
    ) -> Vec<Contender> {
        residents
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != exclude)
            .map(|(_, p)| {
                let counters = p.solo(nic_model).counters;
                match self.model(nic_model, p.arrival.kind) {
                    Some(m) => m.as_contender(counters, p.arrival.traffic.mtbr),
                    None => Contender::memory_only(p.workload.name.clone(), counters),
                }
            })
            .collect()
    }

    /// The predicted bottleneck of `residents[violator]` on `nic_model`
    /// under this diagnoser's worldview; `co` must be the violator's
    /// contender slate from [`Self::contenders`] (built once by the
    /// caller, which also feeds it to victim selection).
    pub fn bottleneck(
        &self,
        nic_model: NicModelId,
        residents: &[Placed],
        violator: usize,
        co: &[Contender],
    ) -> ResourceKind {
        match self {
            Diagnoser::MemoryOnly => ResourceKind::CpuMem,
            Diagnoser::Yala(_) => {
                let v = &residents[violator];
                let model = self
                    .model(nic_model, v.arrival.kind)
                    .expect("yala diagnoser");
                diagnose_yala(model, v.solo(nic_model).solo_tput, &v.arrival.traffic, co).bottleneck
            }
        }
    }
}

/// Online-refinement knobs for a contention-aware policy: the SLA audits
/// already measure ground-truth co-run outcomes, so a policy may feed
/// them back into its predictor ([`PlacementPredictor::absorb`])
/// mid-episode. Refits are rate-limited by batch size — a refit re-fits
/// whole model cells, so absorbing one sample at a time would burn the
/// control loop's budget for no extra signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlineRefine {
    /// Buffered observations required before an absorb pass runs (the
    /// buffer is drained on absorb). At most one pass per audit epoch.
    pub min_observations: usize,
}

impl Default for OnlineRefine {
    fn default() -> Self {
        Self {
            min_observations: 48,
        }
    }
}

/// A fleet policy: placement rule + (for contention-aware) the reactive
/// migration machinery.
pub enum FleetPolicy<'a> {
    /// One NF per NIC; no migration (nothing to migrate away from).
    Monopolization,
    /// Pack onto the occupied NIC with the most available cores,
    /// prediction-free; no migration.
    Greedy,
    /// Place and migrate only where `predictor` foresees no SLA
    /// violation; diagnose predicted violators with `diagnoser` to pick
    /// migration victims.
    ContentionAware {
        /// Judges candidate and drifted co-locations.
        predictor: &'a mut dyn PlacementPredictor,
        /// Attributes predicted violations to a bottleneck resource.
        diagnoser: Diagnoser<'a>,
        /// `Some` feeds audit ground truth back into the predictor
        /// (online refinement); `None` keeps the predictor frozen at its
        /// offline training (the paper's train-once setup).
        online: Option<OnlineRefine>,
        /// Whether placement, evacuation, and victim selection honor QoS
        /// tiers: guaranteed NFs are evacuated first (best ordering of
        /// scarce re-placement slots), best-effort NFs are shed/parked
        /// first, and no guaranteed NF is ever picked as a migration
        /// victim while a best-effort co-resident remains. With `false`
        /// the policy is QoS-blind — the pre-tier behavior, kept as the
        /// degradation baseline.
        qos_aware: bool,
    },
}
