//! An incrementally maintained placement-candidate index: free-core
//! buckets keyed by `(portfolio position, cores free)` plus a
//! per-position set of empty NICs, so each placement decision walks a
//! deterministically ordered shortlist instead of scanning every NIC in
//! the fleet. This is what keeps per-arrival cost sublinear in fleet
//! size on 10k-NIC days.
//!
//! ## Invariants
//!
//! - A NIC appears in `empty[pos]` or in exactly one `buckets[pos][f]`
//!   iff it is *admitting* (state `Up`); `Draining`/`Down` NICs are
//!   unlinked but their `used`/`occupants` accounting keeps ticking so
//!   a later restore re-links them correctly.
//! - `used[nic]` equals the sum of the residents' core footprints under
//!   the profile snapshots currently in force; audit-epoch drift may
//!   change a resident's footprint, so the event loop re-prices every
//!   occupied NIC via [`PlacementIndex::set_used`] right after it moves
//!   the snapshot cursors.
//! - `f` is the NIC's free-core count, so a query for an NF needing `c`
//!   cores reads exactly the buckets `f >= c`.
//! - All sets iterate in ascending NIC index, which is the tie-break
//!   order of the pre-index linear scans; every query below reproduces
//!   the corresponding linear scan's answer byte-for-byte (the debug
//!   builds of the choosers in `sim.rs` assert this on every decision).

use std::collections::BTreeSet;

/// The index. One instance lives for the duration of a fleet run and is
/// updated on place/evict/fault/drain/migrate/readmit transitions.
pub(crate) struct PlacementIndex {
    /// Portfolio position of each NIC (same-model NICs share one).
    pos: Vec<usize>,
    /// Total cores of each NIC.
    cores: Vec<u32>,
    /// Cores used by residents under the snapshots in force.
    used: Vec<u32>,
    /// Resident count (emptiness is resident-count, not core, based).
    occupants: Vec<u32>,
    /// Whether the NIC admits placements (state `Up`).
    active: Vec<bool>,
    /// Per position: empty admitting NICs, ascending.
    empty: Vec<BTreeSet<usize>>,
    /// Per position: occupied admitting NICs bucketed by free cores.
    buckets: Vec<Vec<BTreeSet<usize>>>,
}

impl PlacementIndex {
    /// A fresh index over an all-`Up`, all-empty fleet. `spec_pos[nic]`
    /// is the NIC's portfolio position, `nic_cores[nic]` its core
    /// count, `positions` the portfolio length.
    pub(crate) fn new(spec_pos: &[usize], nic_cores: &[u32], positions: usize) -> Self {
        let n = spec_pos.len();
        let mut empty: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); positions];
        let mut pos_cores = vec![0u32; positions];
        for nic in 0..n {
            empty[spec_pos[nic]].insert(nic);
            pos_cores[spec_pos[nic]] = nic_cores[nic];
        }
        let buckets = pos_cores
            .iter()
            .map(|&c| vec![BTreeSet::new(); c as usize + 1])
            .collect();
        Self {
            pos: spec_pos.to_vec(),
            cores: nic_cores.to_vec(),
            used: vec![0; n],
            occupants: vec![0; n],
            active: vec![true; n],
            empty,
            buckets,
        }
    }

    /// Free cores, saturating so a transiently overfull NIC (snapshot
    /// drift can grow footprints before anyone reacts) reads as zero —
    /// which excludes it from every `need >= 1` query, exactly as the
    /// linear scans' `used + need > cores` test does.
    fn free(&self, nic: usize) -> usize {
        self.cores[nic].saturating_sub(self.used[nic]) as usize
    }

    fn unlink(&mut self, nic: usize) {
        let p = self.pos[nic];
        if self.occupants[nic] == 0 {
            self.empty[p].remove(&nic);
        } else {
            let f = self.free(nic);
            self.buckets[p][f].remove(&nic);
        }
    }

    fn link(&mut self, nic: usize) {
        let p = self.pos[nic];
        if self.occupants[nic] == 0 {
            self.empty[p].insert(nic);
        } else {
            let f = self.free(nic);
            self.buckets[p][f].insert(nic);
        }
    }

    /// Accounts one NF of `nf_cores` cores placed on `nic`.
    pub(crate) fn place(&mut self, nic: usize, nf_cores: u32) {
        if self.active[nic] {
            self.unlink(nic);
        }
        self.occupants[nic] += 1;
        self.used[nic] += nf_cores;
        debug_assert!(
            self.used[nic] <= self.cores[nic],
            "placement overfilled NIC {nic}"
        );
        if self.active[nic] {
            self.link(nic);
        }
    }

    /// Accounts one NF of `nf_cores` cores leaving `nic` (departure,
    /// eviction, preemption, or migration source).
    pub(crate) fn remove(&mut self, nic: usize, nf_cores: u32) {
        if self.active[nic] {
            self.unlink(nic);
        }
        self.occupants[nic] -= 1;
        self.used[nic] -= nf_cores;
        if self.active[nic] {
            self.link(nic);
        }
    }

    /// Takes `nic` out of the candidate sets (`Draining`/`Down`).
    /// Idempotent: a `DrainEnd` after a `DrainStart` is a no-op here.
    pub(crate) fn retire(&mut self, nic: usize) {
        if self.active[nic] {
            self.unlink(nic);
            self.active[nic] = false;
        }
    }

    /// Returns a recovered `nic` to the candidate sets. Idempotent.
    pub(crate) fn restore(&mut self, nic: usize) {
        if !self.active[nic] {
            self.active[nic] = true;
            self.link(nic);
        }
    }

    /// Zeroes a retired NIC's accounting after a bulk eviction — `Fail`
    /// and `DrainEnd` take the whole resident list in one move rather
    /// than removing NFs one by one.
    pub(crate) fn clear_retired(&mut self, nic: usize) {
        debug_assert!(!self.active[nic], "bulk clear is only for retired NICs");
        self.occupants[nic] = 0;
        self.used[nic] = 0;
    }

    /// Re-prices `nic` after snapshot drift may have changed its
    /// residents' aggregate core footprint.
    pub(crate) fn set_used(&mut self, nic: usize, used: u32) {
        if used == self.used[nic] {
            return;
        }
        if self.active[nic] {
            self.unlink(nic);
        }
        self.used[nic] = used;
        if self.active[nic] {
            self.link(nic);
        }
    }

    /// Lowest-index empty admitting NIC over the supported positions
    /// `sup`, skipping `exclude` — the linear `choose_empty` answer.
    pub(crate) fn first_empty(&self, sup: &[usize], exclude: Option<usize>) -> Option<usize> {
        sup.iter()
            .filter_map(|&p| self.empty[p].iter().copied().find(|&n| Some(n) != exclude))
            .min()
    }

    /// Occupied admitting NIC with the most free cores among those with
    /// at least `need` free, ties to the lowest index — the linear
    /// greedy answer. Walks free-core values from the largest bucket
    /// down, so the cost is bounded by the portfolio's core counts, not
    /// the fleet size.
    pub(crate) fn most_free(
        &self,
        sup: &[usize],
        need: u32,
        exclude: Option<usize>,
    ) -> Option<usize> {
        let top = sup
            .iter()
            .map(|&p| self.buckets[p].len())
            .max()?
            .checked_sub(1)?;
        let need = need as usize;
        for f in (need..=top).rev() {
            let hit = sup
                .iter()
                .filter_map(|&p| self.buckets[p].get(f))
                .filter_map(|b| b.iter().copied().find(|&n| Some(n) != exclude))
                .min();
            if hit.is_some() {
                return hit;
            }
        }
        None
    }

    /// All occupied admitting NICs with at least `need` free cores over
    /// the supported positions, ascending by NIC index, into `out` — the
    /// exact set and order the linear contention-aware scan evaluates.
    pub(crate) fn fitting(
        &self,
        sup: &[usize],
        need: u32,
        exclude: Option<usize>,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        for &p in sup {
            for b in self.buckets[p].iter().skip(need as usize) {
                out.extend(b.iter().copied().filter(|&n| Some(n) != exclude));
            }
        }
        // A NIC lives in exactly one bucket of one position, so the
        // concatenation has no duplicates; one sort restores the
        // ascending-index evaluation order of the linear scan.
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two positions: pos 0 has 8-core NICs {0, 2}, pos 1 a 4-core {1}.
    fn mixed() -> PlacementIndex {
        PlacementIndex::new(&[0, 1, 0], &[8, 4, 8], 2)
    }

    #[test]
    fn place_remove_moves_between_empty_and_buckets() {
        let mut ix = mixed();
        assert_eq!(ix.first_empty(&[0], None), Some(0));
        assert_eq!(ix.most_free(&[0, 1], 1, None), None, "nothing occupied yet");
        ix.place(0, 3);
        assert_eq!(ix.first_empty(&[0], None), Some(2));
        assert_eq!(ix.most_free(&[0, 1], 1, None), Some(0));
        assert_eq!(ix.most_free(&[0, 1], 6, None), None, "only 5 cores free");
        ix.place(1, 1);
        // NIC 0 has 5 free, NIC 1 has 3: most-free prefers NIC 0.
        assert_eq!(ix.most_free(&[0, 1], 1, None), Some(0));
        assert_eq!(ix.most_free(&[0, 1], 1, Some(0)), Some(1));
        let mut out = Vec::new();
        ix.fitting(&[0, 1], 1, None, &mut out);
        assert_eq!(out, vec![0, 1]);
        ix.remove(0, 3);
        assert_eq!(ix.first_empty(&[0], None), Some(0));
        ix.fitting(&[0, 1], 1, None, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn ties_break_to_the_lowest_index_across_positions() {
        let mut ix = mixed();
        ix.place(1, 1);
        ix.place(2, 5);
        // Both occupied NICs have 3 free cores; the tie goes to NIC 1.
        assert_eq!(ix.most_free(&[0, 1], 1, None), Some(1));
        let mut out = Vec::new();
        ix.fitting(&[0, 1], 3, None, &mut out);
        assert_eq!(out, vec![1, 2], "merged ascending across positions");
    }

    #[test]
    fn retire_restore_and_bulk_clear() {
        let mut ix = mixed();
        ix.place(0, 2);
        ix.retire(0);
        assert_eq!(ix.most_free(&[0], 1, None), None);
        // Accounting keeps ticking while retired (graceful drain moves
        // residents off one at a time).
        ix.remove(0, 2);
        ix.place(0, 4);
        ix.restore(0);
        assert_eq!(ix.most_free(&[0], 4, None), Some(0));
        ix.retire(0);
        ix.clear_retired(0);
        ix.restore(0);
        assert_eq!(
            ix.first_empty(&[0], None),
            Some(0),
            "cleared NIC is empty again"
        );
    }

    #[test]
    fn set_used_reprices_occupied_nics() {
        let mut ix = mixed();
        ix.place(0, 2);
        assert_eq!(ix.most_free(&[0], 6, None), Some(0));
        ix.set_used(0, 7);
        assert_eq!(ix.most_free(&[0], 6, None), None);
        assert_eq!(ix.most_free(&[0], 1, None), Some(0));
    }
}
