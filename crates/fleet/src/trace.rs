//! Scenario traces: Poisson NF arrivals, exponential lifetimes, and
//! per-NF traffic-drift trajectories. Everything the event loop will
//! consume is generated up front as a pure function of the config seed,
//! so a trace — and every report derived from it — is reproducible
//! bit-for-bit.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use yala_nf::NfKind;
use yala_sim::NicSpec;
use yala_traffic::TrafficProfile;

/// Milliseconds per second: fleet time is integer milliseconds so event
/// ordering is exact (no float-comparison ties).
pub const MS_PER_S: u64 = 1_000;

/// Parameters of one fleet scenario.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Hardware of every NIC in the fleet (homogeneous).
    pub spec: NicSpec,
    /// Fleet size: NICs available to the operator.
    pub nics: usize,
    /// Simulated duration in seconds.
    pub duration_s: u64,
    /// Mean inter-arrival time of the Poisson NF arrival process, seconds.
    pub mean_interarrival_s: f64,
    /// Mean NF lifetime (exponential), seconds.
    pub mean_lifetime_s: f64,
    /// SLA audit period, seconds. Audits are the fleet's control-loop
    /// tick: ground truth is sampled, drifted NFs are re-profiled, and
    /// migration policies react.
    pub audit_period_s: u64,
    /// NF kinds arriving (uniformly chosen).
    pub kinds: Vec<NfKind>,
    /// SLA drop tolerance range (uniform), e.g. `(0.05, 0.20)`.
    pub sla_drop_range: (f64, f64),
    /// Whether per-NF traffic drifts over the NF's lifetime (start and end
    /// profiles are drawn independently and interpolated); with drift off,
    /// traffic is constant at the start profile.
    pub drift: bool,
    /// Largest flow count drawn for a traffic profile.
    pub max_flows: u32,
    /// Relative change in any traffic attribute (flows, packet size,
    /// MTBR) that triggers a re-profile at the next audit epoch.
    pub reprofile_threshold: f64,
    /// Migration budget per audit epoch (drains are operationally
    /// expensive; a real operator rate-limits them).
    pub max_migrations_per_audit: usize,
    /// Measurement noise sigma for profiling and ground-truth audits.
    pub noise_sigma: f64,
    /// Master seed: every random stream in the scenario derives from it.
    pub seed: u64,
}

impl FleetConfig {
    /// A small smoke-test scenario: a couple of simulated hours on a
    /// 16-NIC fleet. Benchmarks override the fields they sweep.
    pub fn small(seed: u64) -> Self {
        Self {
            spec: NicSpec::bluefield2(),
            nics: 16,
            duration_s: 2 * 3_600,
            mean_interarrival_s: 180.0,
            mean_lifetime_s: 1_200.0,
            audit_period_s: 600,
            kinds: vec![NfKind::FlowStats, NfKind::Acl, NfKind::Nat],
            sla_drop_range: (0.05, 0.20),
            drift: true,
            max_flows: 128_000,
            reprofile_threshold: 0.10,
            max_migrations_per_audit: 8,
            noise_sigma: 0.005,
            seed,
        }
    }

    /// Number of audit epochs in the scenario.
    pub fn epochs(&self) -> u64 {
        self.duration_s / self.audit_period_s
    }
}

/// One NF's life in the scenario: when it arrives and departs, what it
/// is, how its traffic drifts, and how tight its SLA is.
#[derive(Debug, Clone)]
pub struct NfRecord {
    /// Dense instance id (index into the trace).
    pub id: u32,
    /// Which NF.
    pub kind: NfKind,
    /// Arrival time, milliseconds.
    pub arrival_ms: u64,
    /// Departure time, milliseconds (may exceed the scenario horizon;
    /// such NFs simply never depart on-trace).
    pub departure_ms: u64,
    /// Traffic profile at arrival.
    pub start: TrafficProfile,
    /// Traffic profile reached at departure (equals `start` when drift is
    /// disabled).
    pub end: TrafficProfile,
    /// Maximum tolerated throughput drop vs. solo.
    pub sla_drop: f64,
}

impl NfRecord {
    /// The instantaneous traffic profile at time `t_ms`: linear
    /// interpolation along the drift trajectory, clamped to the lifetime.
    pub fn traffic_at(&self, t_ms: u64) -> TrafficProfile {
        let span = self.departure_ms.saturating_sub(self.arrival_ms).max(1);
        let frac = t_ms.saturating_sub(self.arrival_ms) as f64 / span as f64;
        self.start.lerp(&self.end, frac)
    }
}

/// A fully materialized scenario: config plus every NF's record, in
/// arrival order.
#[derive(Debug, Clone)]
pub struct FleetTrace {
    /// The generating config.
    pub config: FleetConfig,
    /// NF records in arrival order; `records[i].id == i`.
    pub records: Vec<NfRecord>,
}

impl FleetTrace {
    /// Generates the scenario from `config.seed`: Poisson arrivals over
    /// the horizon, exponential lifetimes (floored at one minute so every
    /// NF survives at least a fraction of an audit period), uniform NF
    /// kinds, random start/end traffic, uniform SLA tightness.
    pub fn generate(config: FleetConfig) -> Self {
        assert!(!config.kinds.is_empty(), "at least one NF kind");
        assert!(config.audit_period_s > 0, "audit period must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let horizon_ms = config.duration_s * MS_PER_S;
        let mut records = Vec::new();
        let mut t_ms = 0.0f64;
        loop {
            t_ms += exponential_ms(&mut rng, config.mean_interarrival_s);
            let arrival_ms = t_ms as u64;
            if arrival_ms >= horizon_ms {
                break;
            }
            let lifetime_ms = exponential_ms(&mut rng, config.mean_lifetime_s).max(60_000.0);
            let kind = *config.kinds.choose(&mut rng).expect("nonempty kinds");
            let start = TrafficProfile::random(&mut rng, config.max_flows);
            let end = if config.drift {
                TrafficProfile::random(&mut rng, config.max_flows)
            } else {
                start
            };
            let sla_drop = rng.gen_range(config.sla_drop_range.0..config.sla_drop_range.1);
            records.push(NfRecord {
                id: records.len() as u32,
                kind,
                arrival_ms,
                departure_ms: arrival_ms + lifetime_ms as u64,
                start,
                end,
                sla_drop,
            });
        }
        Self { config, records }
    }
}

/// An exponential draw with the given mean, in milliseconds. Uses the
/// inverse CDF over `1 - u` so `u = 0` is safe.
fn exponential_ms<R: Rng>(rng: &mut R, mean_s: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() * mean_s * MS_PER_S as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FleetTrace::generate(FleetConfig::small(5));
        let b = FleetTrace::generate(FleetConfig::small(5));
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.arrival_ms, y.arrival_ms);
            assert_eq!(x.departure_ms, y.departure_ms);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.start, y.start);
            assert_eq!(x.end, y.end);
            assert_eq!(x.sla_drop, y.sla_drop);
        }
        let c = FleetTrace::generate(FleetConfig::small(6));
        let identical = a.records.len() == c.records.len()
            && a.records
                .iter()
                .zip(&c.records)
                .all(|(x, y)| x.arrival_ms == y.arrival_ms);
        assert!(!identical, "different seeds must differ");
    }

    #[test]
    fn arrival_counts_track_the_poisson_mean() {
        let mut cfg = FleetConfig::small(11);
        cfg.duration_s = 24 * 3_600;
        cfg.mean_interarrival_s = 144.0;
        let trace = FleetTrace::generate(cfg);
        let expected = 24.0 * 3_600.0 / 144.0; // 600
        let n = trace.records.len() as f64;
        assert!(
            (n - expected).abs() < 5.0 * expected.sqrt(),
            "got {n} arrivals, expected ~{expected}"
        );
    }

    #[test]
    fn records_are_ordered_and_well_formed() {
        let trace = FleetTrace::generate(FleetConfig::small(3));
        let horizon = trace.config.duration_s * MS_PER_S;
        let mut last = 0;
        for (i, r) in trace.records.iter().enumerate() {
            assert_eq!(r.id as usize, i);
            assert!(r.arrival_ms >= last);
            assert!(r.arrival_ms < horizon);
            assert!(r.departure_ms >= r.arrival_ms + 60_000);
            assert!(r.sla_drop >= 0.05 && r.sla_drop < 0.20);
            last = r.arrival_ms;
        }
    }

    #[test]
    fn traffic_drifts_from_start_to_end() {
        let trace = FleetTrace::generate(FleetConfig::small(9));
        let r = trace
            .records
            .iter()
            .find(|r| r.start != r.end)
            .expect("drift enabled: some record must have distinct start/end profiles");
        assert_eq!(r.traffic_at(r.arrival_ms), r.start);
        assert_eq!(r.traffic_at(r.departure_ms), r.end);
        assert_eq!(r.traffic_at(r.departure_ms + 999), r.end, "clamped");
        let mid = r.traffic_at((r.arrival_ms + r.departure_ms) / 2);
        assert!(mid != r.start || mid != r.end);
    }

    #[test]
    fn drift_disabled_freezes_traffic() {
        let mut cfg = FleetConfig::small(4);
        cfg.drift = false;
        let trace = FleetTrace::generate(cfg);
        for r in &trace.records {
            assert_eq!(r.start, r.end);
            assert_eq!(r.traffic_at((r.arrival_ms + r.departure_ms) / 2), r.start);
        }
    }
}
