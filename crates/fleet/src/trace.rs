//! Scenario traces: Poisson NF arrivals, exponential lifetimes, and
//! per-NF traffic-drift trajectories. Everything the event loop will
//! consume is generated up front as a pure function of the config seed,
//! so a trace — and every report derived from it — is reproducible
//! bit-for-bit.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use yala_nf::NfKind;
use yala_sim::NicSpec;
use yala_traffic::{TrafficProfile, TrafficQuantizer};

/// Milliseconds per second: fleet time is integer milliseconds so event
/// ordering is exact (no float-comparison ties).
pub const MS_PER_S: u64 = 1_000;

/// Salt decorrelating the template table's stream from the per-record
/// generation stream.
const TEMPLATE_SALT: u64 = 0x7E3A_917E;

/// How per-NF traffic profiles are drawn at trace generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficModel {
    /// Every profile drawn independently and uniformly at random — the
    /// original fleet behavior, maximal traffic diversity.
    Uniform,
    /// Tenants cluster around `count` canonical traffic templates, each
    /// drawn profile a template plus per-attribute relative jitter
    /// uniform in `[-jitter, +jitter]`. This is the realistic
    /// multi-tenant shape — fleets run a handful of NF configurations,
    /// not a continuum — and what makes quantized profile caching pay:
    /// with `jitter` below half the re-profile threshold, every tenant
    /// of a template lands in the template's quantization bucket.
    Templates {
        /// Number of canonical templates.
        count: u32,
        /// Per-attribute relative jitter half-width.
        jitter: f64,
    },
}

/// Parameters of one fleet scenario.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The NIC hardware portfolio: `(model spec, NIC count)` per hardware
    /// model, expanded in order to NIC indices — NICs `0..count₀` are the
    /// first model, the next `count₁` the second, and so on. A
    /// single-entry portfolio is the old homogeneous fleet; model names
    /// must be distinct.
    pub portfolio: Vec<(NicSpec, usize)>,
    /// Simulated duration in seconds.
    pub duration_s: u64,
    /// Mean inter-arrival time of the Poisson NF arrival process, seconds.
    pub mean_interarrival_s: f64,
    /// Mean NF lifetime (exponential), seconds.
    pub mean_lifetime_s: f64,
    /// SLA audit period, seconds. Audits are the fleet's control-loop
    /// tick: ground truth is sampled, drifted NFs are re-profiled, and
    /// migration policies react.
    pub audit_period_s: u64,
    /// NF kinds arriving (uniformly chosen).
    pub kinds: Vec<NfKind>,
    /// SLA drop tolerance range (uniform), e.g. `(0.05, 0.20)`.
    pub sla_drop_range: (f64, f64),
    /// Whether per-NF traffic drifts over the NF's lifetime (start and end
    /// profiles are drawn independently and interpolated); with drift off,
    /// traffic is constant at the start profile.
    pub drift: bool,
    /// How traffic profiles are drawn ([`TrafficModel`]).
    pub traffic_model: TrafficModel,
    /// Largest flow count drawn for a traffic profile.
    pub max_flows: u32,
    /// Relative change in any traffic attribute (flows, packet size,
    /// MTBR) that triggers a re-profile at the next audit epoch.
    pub reprofile_threshold: f64,
    /// Migration budget per audit epoch (drains are operationally
    /// expensive; a real operator rate-limits them).
    pub max_migrations_per_audit: usize,
    /// Measurement noise sigma for profiling and ground-truth audits.
    pub noise_sigma: f64,
    /// Master seed: every random stream in the scenario derives from it.
    pub seed: u64,
}

impl FleetConfig {
    /// A small smoke-test scenario: a couple of simulated hours on a
    /// 16-NIC fleet. Benchmarks override the fields they sweep.
    pub fn small(seed: u64) -> Self {
        Self {
            portfolio: vec![(NicSpec::bluefield2(), 16)],
            duration_s: 2 * 3_600,
            mean_interarrival_s: 180.0,
            mean_lifetime_s: 1_200.0,
            audit_period_s: 600,
            kinds: vec![NfKind::FlowStats, NfKind::Acl, NfKind::Nat],
            sla_drop_range: (0.05, 0.20),
            drift: true,
            traffic_model: TrafficModel::Uniform,
            max_flows: 128_000,
            reprofile_threshold: 0.10,
            max_migrations_per_audit: 8,
            noise_sigma: 0.005,
            seed,
        }
    }

    /// A mixed 50/50 BlueField-2 + Pensando portfolio of `nics` total
    /// NICs (BlueField-2 gets the odd one), otherwise the
    /// [`Self::small`] defaults — the heterogeneous smoke scenario.
    pub fn mixed(seed: u64, nics: usize) -> Self {
        let mut cfg = Self::small(seed);
        cfg.portfolio = vec![
            (NicSpec::bluefield2(), nics - nics / 2),
            (NicSpec::pensando(), nics / 2),
        ];
        cfg
    }

    /// Total NICs across the portfolio.
    pub fn nics(&self) -> usize {
        self.portfolio.iter().map(|(_, n)| n).sum()
    }

    /// The portfolio's model specs, in portfolio order.
    pub fn specs(&self) -> Vec<NicSpec> {
        self.portfolio.iter().map(|(s, _)| s.clone()).collect()
    }

    /// The portfolio position (model index) of NIC `nic`.
    ///
    /// # Panics
    ///
    /// Panics if `nic` is outside the fleet.
    pub fn nic_model_pos(&self, nic: usize) -> usize {
        let mut base = 0usize;
        for (m, (_, count)) in self.portfolio.iter().enumerate() {
            if nic < base + count {
                return m;
            }
            base += count;
        }
        panic!("NIC {nic} outside a {}-NIC fleet", self.nics());
    }

    /// The hardware spec of NIC `nic`.
    pub fn nic_spec(&self, nic: usize) -> &NicSpec {
        &self.portfolio[self.nic_model_pos(nic)].0
    }

    /// Number of audit epochs in the scenario.
    pub fn epochs(&self) -> u64 {
        self.duration_s / self.audit_period_s
    }

    /// The canonical template table for [`TrafficModel::Templates`]:
    /// `count` profiles from a stream decorrelated from the per-record
    /// generation stream, canonicalized to quantization-bucket
    /// representatives at the config's re-profile threshold — so an
    /// unjittered tenant keys exactly onto its template's bucket. Empty
    /// under [`TrafficModel::Uniform`].
    pub fn traffic_templates(&self) -> Vec<TrafficProfile> {
        match self.traffic_model {
            TrafficModel::Uniform => Vec::new(),
            TrafficModel::Templates { count, .. } => {
                let quantizer = TrafficQuantizer::new(self.reprofile_threshold);
                let mut rng = StdRng::seed_from_u64(self.seed ^ TEMPLATE_SALT);
                (0..count)
                    .map(|_| {
                        quantizer
                            .canonicalize(&TrafficProfile::random(&mut rng, self.max_flows))
                            .1
                    })
                    .collect()
            }
        }
    }
}

/// One NF's life in the scenario: when it arrives and departs, what it
/// is, how its traffic drifts, and how tight its SLA is.
#[derive(Debug, Clone)]
pub struct NfRecord {
    /// Dense instance id (index into the trace).
    pub id: u32,
    /// Which NF.
    pub kind: NfKind,
    /// Arrival time, milliseconds.
    pub arrival_ms: u64,
    /// Departure time, milliseconds (may exceed the scenario horizon;
    /// such NFs simply never depart on-trace).
    pub departure_ms: u64,
    /// Traffic profile at arrival.
    pub start: TrafficProfile,
    /// Traffic profile reached at departure (equals `start` when drift is
    /// disabled).
    pub end: TrafficProfile,
    /// Maximum tolerated throughput drop vs. solo.
    pub sla_drop: f64,
}

impl NfRecord {
    /// The instantaneous traffic profile at time `t_ms`: linear
    /// interpolation along the drift trajectory, clamped to the lifetime.
    pub fn traffic_at(&self, t_ms: u64) -> TrafficProfile {
        let span = self.departure_ms.saturating_sub(self.arrival_ms).max(1);
        let frac = t_ms.saturating_sub(self.arrival_ms) as f64 / span as f64;
        self.start.lerp(&self.end, frac)
    }
}

/// A fully materialized scenario: config plus every NF's record, in
/// arrival order.
#[derive(Debug, Clone)]
pub struct FleetTrace {
    /// The generating config.
    pub config: FleetConfig,
    /// NF records in arrival order; `records[i].id == i`.
    pub records: Vec<NfRecord>,
}

impl FleetTrace {
    /// Builds a trace from explicit records — the entry point for
    /// *empirical* arrival traces (diurnal load, flash crowds, recorded
    /// production arrivals) that no Poisson generator reproduces. The
    /// event loop consumes arbitrary records; this constructor only
    /// validates the invariants it relies on:
    ///
    /// * `records[i].id == i` (dense ids, used as indices),
    /// * arrivals ascend and fall inside the scenario horizon,
    /// * every departure is strictly after its arrival (the event loop
    ///   orders same-timestamp departures *before* arrivals, so a
    ///   zero-lifetime record would fire its no-op departure first and
    ///   then occupy a NIC until the horizon),
    /// * the config names at least one NF kind and a positive audit
    ///   period, and every portfolio model name is distinct.
    ///
    /// # Panics
    ///
    /// Panics if any invariant fails.
    pub fn from_records(config: FleetConfig, records: Vec<NfRecord>) -> Self {
        assert!(!config.kinds.is_empty(), "at least one NF kind");
        assert!(config.audit_period_s > 0, "audit period must be positive");
        if let TrafficModel::Templates { count, jitter } = config.traffic_model {
            assert!(count > 0, "template count must be positive");
            assert!(
                (0.0..1.0).contains(&jitter),
                "template jitter must be in [0, 1)"
            );
        }
        assert!(!config.portfolio.is_empty(), "empty NIC portfolio");
        for (i, (spec, _)) in config.portfolio.iter().enumerate() {
            assert!(
                config.portfolio[..i]
                    .iter()
                    .all(|(s, _)| s.name != spec.name),
                "duplicate NIC model {} in portfolio",
                spec.name
            );
        }
        let horizon_ms = config.duration_s * MS_PER_S;
        let mut last_arrival = 0u64;
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.id as usize, i, "record ids must be dense (0..n)");
            assert!(
                r.arrival_ms >= last_arrival,
                "arrivals must ascend (record {i})"
            );
            assert!(
                r.arrival_ms < horizon_ms,
                "record {i} arrives after the horizon"
            );
            assert!(
                r.departure_ms > r.arrival_ms,
                "record {i} must depart strictly after it arrives"
            );
            last_arrival = r.arrival_ms;
        }
        Self { config, records }
    }

    /// Generates the scenario from `config.seed`: Poisson arrivals over
    /// the horizon, exponential lifetimes (floored at one minute so every
    /// NF survives at least a fraction of an audit period), uniform NF
    /// kinds, random start/end traffic, uniform SLA tightness.
    pub fn generate(config: FleetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let horizon_ms = config.duration_s * MS_PER_S;
        let templates = config.traffic_templates();
        let mut records = Vec::new();
        let mut t_ms = 0.0f64;
        loop {
            t_ms += exponential_ms(&mut rng, config.mean_interarrival_s);
            let arrival_ms = t_ms as u64;
            if arrival_ms >= horizon_ms {
                break;
            }
            let lifetime_ms = exponential_ms(&mut rng, config.mean_lifetime_s).max(60_000.0);
            let kind = *config.kinds.choose(&mut rng).expect("nonempty kinds");
            // Uniform mode must keep the pre-template draw order exactly:
            // committed bench records pin traces byte-for-byte.
            let (start, end) = match config.traffic_model {
                TrafficModel::Uniform => {
                    let start = TrafficProfile::random(&mut rng, config.max_flows);
                    let end = if config.drift {
                        TrafficProfile::random(&mut rng, config.max_flows)
                    } else {
                        start
                    };
                    (start, end)
                }
                TrafficModel::Templates { jitter, .. } => {
                    let start = jittered(
                        templates.choose(&mut rng).expect("nonempty template table"),
                        jitter,
                        &mut rng,
                    );
                    let end = if config.drift {
                        jittered(
                            templates.choose(&mut rng).expect("nonempty template table"),
                            jitter,
                            &mut rng,
                        )
                    } else {
                        start
                    };
                    (start, end)
                }
            };
            let sla_drop = rng.gen_range(config.sla_drop_range.0..config.sla_drop_range.1);
            records.push(NfRecord {
                id: records.len() as u32,
                kind,
                arrival_ms,
                departure_ms: arrival_ms + lifetime_ms as u64,
                start,
                end,
                sla_drop,
            });
        }
        Self::from_records(config, records)
    }
}

/// An exponential draw with the given mean, in milliseconds. Uses the
/// inverse CDF over `1 - u` so `u = 0` is safe.
fn exponential_ms<R: Rng>(rng: &mut R, mean_s: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() * mean_s * MS_PER_S as f64
}

/// A template profile with per-attribute relative jitter: each attribute
/// moves by a uniform fraction of itself (floored at 1, matching the
/// drift metric's denominator), so `jitter` composes directly with
/// [`TrafficProfile::relative_change`] and the quantizer's bucket radius.
fn jittered<R: Rng>(template: &TrafficProfile, jitter: f64, rng: &mut R) -> TrafficProfile {
    let mut wiggle = |v: f64| v + rng.gen_range(-jitter..=jitter) * v.abs().max(1.0);
    TrafficProfile::new(
        wiggle(template.flow_count as f64).round() as u32,
        wiggle(template.packet_size as f64).round() as u32,
        wiggle(template.mtbr),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FleetTrace::generate(FleetConfig::small(5));
        let b = FleetTrace::generate(FleetConfig::small(5));
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.arrival_ms, y.arrival_ms);
            assert_eq!(x.departure_ms, y.departure_ms);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.start, y.start);
            assert_eq!(x.end, y.end);
            assert_eq!(x.sla_drop, y.sla_drop);
        }
        let c = FleetTrace::generate(FleetConfig::small(6));
        let identical = a.records.len() == c.records.len()
            && a.records
                .iter()
                .zip(&c.records)
                .all(|(x, y)| x.arrival_ms == y.arrival_ms);
        assert!(!identical, "different seeds must differ");
    }

    #[test]
    fn arrival_counts_track_the_poisson_mean() {
        let mut cfg = FleetConfig::small(11);
        cfg.duration_s = 24 * 3_600;
        cfg.mean_interarrival_s = 144.0;
        let trace = FleetTrace::generate(cfg);
        let expected = 24.0 * 3_600.0 / 144.0; // 600
        let n = trace.records.len() as f64;
        assert!(
            (n - expected).abs() < 5.0 * expected.sqrt(),
            "got {n} arrivals, expected ~{expected}"
        );
    }

    #[test]
    fn records_are_ordered_and_well_formed() {
        let trace = FleetTrace::generate(FleetConfig::small(3));
        let horizon = trace.config.duration_s * MS_PER_S;
        let mut last = 0;
        for (i, r) in trace.records.iter().enumerate() {
            assert_eq!(r.id as usize, i);
            assert!(r.arrival_ms >= last);
            assert!(r.arrival_ms < horizon);
            assert!(r.departure_ms >= r.arrival_ms + 60_000);
            assert!(r.sla_drop >= 0.05 && r.sla_drop < 0.20);
            last = r.arrival_ms;
        }
    }

    #[test]
    fn traffic_drifts_from_start_to_end() {
        let trace = FleetTrace::generate(FleetConfig::small(9));
        let r = trace
            .records
            .iter()
            .find(|r| r.start != r.end)
            .expect("drift enabled: some record must have distinct start/end profiles");
        assert_eq!(r.traffic_at(r.arrival_ms), r.start);
        assert_eq!(r.traffic_at(r.departure_ms), r.end);
        assert_eq!(r.traffic_at(r.departure_ms + 999), r.end, "clamped");
        let mid = r.traffic_at((r.arrival_ms + r.departure_ms) / 2);
        assert!(mid != r.start || mid != r.end);
    }

    #[test]
    fn from_records_accepts_generated_and_empirical_records() {
        let gen = FleetTrace::generate(FleetConfig::small(17));
        let rebuilt = FleetTrace::from_records(gen.config.clone(), gen.records.clone());
        assert_eq!(rebuilt.records.len(), gen.records.len());
        // A non-Poisson flash crowd: five NFs arriving in the same
        // millisecond, constant traffic, staggered departures.
        let cfg = FleetConfig::small(0);
        let records: Vec<NfRecord> = (0..5)
            .map(|i| NfRecord {
                id: i,
                kind: NfKind::FlowStats,
                arrival_ms: 60_000,
                departure_ms: 60_000 + (i as u64 + 1) * 600_000,
                start: TrafficProfile::default(),
                end: TrafficProfile::default(),
                sla_drop: 0.1,
            })
            .collect();
        let trace = FleetTrace::from_records(cfg, records);
        assert_eq!(trace.records.len(), 5);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn from_records_rejects_sparse_ids() {
        let cfg = FleetConfig::small(0);
        let r = NfRecord {
            id: 3,
            kind: NfKind::Acl,
            arrival_ms: 0,
            departure_ms: 1,
            start: TrafficProfile::default(),
            end: TrafficProfile::default(),
            sla_drop: 0.1,
        };
        FleetTrace::from_records(cfg, vec![r]);
    }

    #[test]
    #[should_panic(expected = "strictly after")]
    fn from_records_rejects_zero_lifetime_records() {
        // The event loop orders same-timestamp departures before
        // arrivals, so a zero-lifetime NF would be placed after its
        // no-op departure and squat on a NIC until the horizon.
        let cfg = FleetConfig::small(0);
        let r = NfRecord {
            id: 0,
            kind: NfKind::Acl,
            arrival_ms: 5_000,
            departure_ms: 5_000,
            start: TrafficProfile::default(),
            end: TrafficProfile::default(),
            sla_drop: 0.1,
        };
        FleetTrace::from_records(cfg, vec![r]);
    }

    #[test]
    #[should_panic(expected = "after the horizon")]
    fn from_records_rejects_off_horizon_arrivals() {
        let cfg = FleetConfig::small(0);
        let r = NfRecord {
            id: 0,
            kind: NfKind::Acl,
            arrival_ms: cfg.duration_s * MS_PER_S,
            departure_ms: cfg.duration_s * MS_PER_S + 1,
            start: TrafficProfile::default(),
            end: TrafficProfile::default(),
            sla_drop: 0.1,
        };
        FleetTrace::from_records(cfg, vec![r]);
    }

    #[test]
    #[should_panic(expected = "duplicate NIC model")]
    fn duplicate_portfolio_models_rejected() {
        let mut cfg = FleetConfig::small(0);
        cfg.portfolio = vec![(NicSpec::bluefield2(), 4), (NicSpec::bluefield2(), 4)];
        FleetTrace::from_records(cfg, Vec::new());
    }

    #[test]
    fn portfolio_expansion_maps_nics_to_models() {
        let cfg = FleetConfig::mixed(1, 7);
        assert_eq!(cfg.nics(), 7);
        assert_eq!(cfg.portfolio[0].1, 4, "BF-2 gets the odd NIC");
        for nic in 0..4 {
            assert_eq!(cfg.nic_model_pos(nic), 0);
            assert_eq!(cfg.nic_spec(nic).name, "bluefield2");
        }
        for nic in 4..7 {
            assert_eq!(cfg.nic_model_pos(nic), 1);
            assert_eq!(cfg.nic_spec(nic).name, "pensando");
        }
        let specs = cfg.specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[1].name, "pensando");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn nic_beyond_fleet_panics() {
        FleetConfig::small(0).nic_model_pos(16);
    }

    #[test]
    fn template_traffic_clusters_on_bucket_representatives() {
        let mut cfg = FleetConfig::small(21);
        cfg.traffic_model = TrafficModel::Templates {
            count: 4,
            jitter: cfg.reprofile_threshold / 4.0,
        };
        let templates = cfg.traffic_templates();
        assert_eq!(templates.len(), 4);
        let quantizer = TrafficQuantizer::new(cfg.reprofile_threshold);
        // Templates are bucket representatives: canonicalization is a
        // no-op on them.
        for t in &templates {
            assert_eq!(quantizer.canonicalize(t).1, *t);
        }
        let template_keys: Vec<_> = templates.iter().map(|t| quantizer.key(t)).collect();
        let trace = FleetTrace::generate(cfg);
        assert!(!trace.records.is_empty());
        // Jitter at threshold/4 stays within the safe same-key radius:
        // every tenant's start profile keys onto some template's bucket.
        for r in &trace.records {
            let k = quantizer.key(&r.start);
            assert!(
                template_keys.contains(&k),
                "start {:?} escaped its template bucket",
                r.start
            );
        }
        // And the draw is deterministic in the seed.
        let mut cfg2 = FleetConfig::small(21);
        cfg2.traffic_model = TrafficModel::Templates {
            count: 4,
            jitter: cfg2.reprofile_threshold / 4.0,
        };
        let again = FleetTrace::generate(cfg2);
        assert_eq!(trace.records.len(), again.records.len());
        for (a, b) in trace.records.iter().zip(&again.records) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.end, b.end);
        }
    }

    #[test]
    fn drift_disabled_freezes_traffic() {
        let mut cfg = FleetConfig::small(4);
        cfg.drift = false;
        let trace = FleetTrace::generate(cfg);
        for r in &trace.records {
            assert_eq!(r.start, r.end);
            assert_eq!(r.traffic_at((r.arrival_ms + r.departure_ms) / 2), r.start);
        }
    }
}
