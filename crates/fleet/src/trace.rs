//! Scenario traces: Poisson NF arrivals, exponential lifetimes, and
//! per-NF traffic-drift trajectories. Everything the event loop will
//! consume is generated up front as a pure function of the config seed,
//! so a trace — and every report derived from it — is reproducible
//! bit-for-bit.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use yala_core::QosClass;
use yala_nf::NfKind;
use yala_sim::NicSpec;
use yala_traffic::{TrafficProfile, TrafficQuantizer};

/// Milliseconds per second: fleet time is integer milliseconds so event
/// ordering is exact (no float-comparison ties).
pub const MS_PER_S: u64 = 1_000;

/// Salt decorrelating the template table's stream from the per-record
/// generation stream.
const TEMPLATE_SALT: u64 = 0x7E3A_917E;

/// Salt decorrelating the per-record QoS-class stream from the arrival
/// stream, so turning tiers on (or changing the guaranteed fraction)
/// never perturbs arrival times, lifetimes, kinds, or traffic draws.
const QOS_SALT: u64 = 0x9057_1E25;

/// Salt decorrelating the fault schedule from every other stream: a
/// fault-free config generates byte-identical records to the pre-fault
/// trace generator.
const FAULT_SALT: u64 = 0xFA17_5EED;

/// Salt for the shaped-arrival candidate stream used by
/// [`FleetTrace::diurnal`] and [`FleetTrace::flash_crowd`]: arrival
/// *times* come from their own stream so the per-record attribute draws
/// (lifetime, kind, traffic, SLA) see an identical stream under every
/// arrival shape — record `i` is the same NF in a diurnal trace and a
/// flash crowd, only its arrival time moves.
const SHAPE_SALT: u64 = 0x5EA5_0A1D;

/// How per-NF traffic profiles are drawn at trace generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficModel {
    /// Every profile drawn independently and uniformly at random — the
    /// original fleet behavior, maximal traffic diversity.
    Uniform,
    /// Tenants cluster around `count` canonical traffic templates, each
    /// drawn profile a template plus per-attribute relative jitter
    /// uniform in `[-jitter, +jitter]`. This is the realistic
    /// multi-tenant shape — fleets run a handful of NF configurations,
    /// not a continuum — and what makes quantized profile caching pay:
    /// with `jitter` below half the re-profile threshold, every tenant
    /// of a template lands in the template's quantization bucket.
    Templates {
        /// Number of canonical templates.
        count: u32,
        /// Per-attribute relative jitter half-width.
        jitter: f64,
    },
}

/// What happened to a NIC, as scheduled by the fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Hard failure: the NIC drops out instantly, every resident NF is
    /// evicted with no notice.
    Fail,
    /// The NIC returns to service (after a failure's repair time or a
    /// drain's offline window), empty.
    Recover,
    /// A maintenance drain is announced: the NIC stops admitting NFs and
    /// the orchestrator has the notice window to evacuate residents
    /// gracefully.
    DrainStart,
    /// The drain notice expires: any NF still resident is force-evicted
    /// and the NIC goes offline for maintenance.
    DrainEnd,
}

impl FaultKind {
    /// Same-millisecond processing rank: capacity-returning events fire
    /// before capacity-removing ones, so an evacuation triggered at time
    /// `t` can use a NIC that recovered at `t`.
    pub fn rank(self) -> u8 {
        match self {
            FaultKind::Recover => 0,
            FaultKind::DrainEnd => 1,
            FaultKind::DrainStart => 2,
            FaultKind::Fail => 3,
        }
    }

    /// Stable lowercase name (used in logs and reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Fail => "fail",
            FaultKind::Recover => "recover",
            FaultKind::DrainStart => "drain_start",
            FaultKind::DrainEnd => "drain_end",
        }
    }
}

/// One scheduled fault event. The whole schedule is a pure function of
/// the config (seed, portfolio, plan), generated up front like the NF
/// records, so fault-injected runs stay bit-identical across runs and
/// engine thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the event fires, milliseconds.
    pub t_ms: u64,
    /// Which NIC (fleet index).
    pub nic: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// The fault-injection plan: how often NICs fail, how long repairs
/// take, and how many maintenance drains the horizon sees.
/// [`FaultPlan::none`] (the default) schedules nothing, leaving every
/// pre-fault trace byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Per-NIC mean time between hard failures, seconds. `0.0` disables
    /// failures.
    pub mtbf_s: f64,
    /// Mean repair time after a hard failure, seconds (exponential,
    /// floored at one minute).
    pub mean_repair_s: f64,
    /// Number of maintenance drains to attempt over the horizon (drains
    /// that would overlap another incident on the same NIC are skipped
    /// deterministically).
    pub drains: u32,
    /// Advance notice between a drain's announcement and its deadline —
    /// the graceful-evacuation window, seconds.
    pub drain_notice_s: u64,
    /// How long a drained NIC stays offline for maintenance after the
    /// deadline, seconds.
    pub drain_offline_s: u64,
}

impl FaultPlan {
    /// No failures, no drains: the fault-free plan every existing
    /// scenario uses.
    pub fn none() -> Self {
        Self {
            mtbf_s: 0.0,
            mean_repair_s: 0.0,
            drains: 0,
            drain_notice_s: 0,
            drain_offline_s: 0,
        }
    }

    /// Whether the plan can schedule any event at all.
    pub fn is_none(&self) -> bool {
        self.mtbf_s <= 0.0 && self.drains == 0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Parameters of one fleet scenario.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The NIC hardware portfolio: `(model spec, NIC count)` per hardware
    /// model, expanded in order to NIC indices — NICs `0..count₀` are the
    /// first model, the next `count₁` the second, and so on. A
    /// single-entry portfolio is the old homogeneous fleet; model names
    /// must be distinct.
    pub portfolio: Vec<(NicSpec, usize)>,
    /// Simulated duration in seconds.
    pub duration_s: u64,
    /// Mean inter-arrival time of the Poisson NF arrival process, seconds.
    pub mean_interarrival_s: f64,
    /// Mean NF lifetime (exponential), seconds.
    pub mean_lifetime_s: f64,
    /// SLA audit period, seconds. Audits are the fleet's control-loop
    /// tick: ground truth is sampled, drifted NFs are re-profiled, and
    /// migration policies react.
    pub audit_period_s: u64,
    /// NF kinds arriving (uniformly chosen).
    pub kinds: Vec<NfKind>,
    /// SLA drop tolerance range (uniform), e.g. `(0.05, 0.20)`.
    pub sla_drop_range: (f64, f64),
    /// Whether per-NF traffic drifts over the NF's lifetime (start and end
    /// profiles are drawn independently and interpolated); with drift off,
    /// traffic is constant at the start profile.
    pub drift: bool,
    /// How traffic profiles are drawn ([`TrafficModel`]).
    pub traffic_model: TrafficModel,
    /// Largest flow count drawn for a traffic profile.
    pub max_flows: u32,
    /// Relative change in any traffic attribute (flows, packet size,
    /// MTBR) that triggers a re-profile at the next audit epoch.
    pub reprofile_threshold: f64,
    /// Migration budget per audit epoch (drains are operationally
    /// expensive; a real operator rate-limits them).
    pub max_migrations_per_audit: usize,
    /// Measurement noise sigma for profiling and ground-truth audits.
    pub noise_sigma: f64,
    /// Fraction of arriving NFs drawn as [`QosClass::Guaranteed`]; the
    /// rest are best-effort. Drawn from a stream decorrelated from the
    /// arrival process, so `1.0` (the default) reproduces the pre-tier
    /// traces byte-for-byte.
    pub guaranteed_fraction: f64,
    /// The fault-injection plan ([`FaultPlan::none`] by default).
    pub faults: FaultPlan,
    /// Master seed: every random stream in the scenario derives from it.
    pub seed: u64,
}

impl FleetConfig {
    /// A small smoke-test scenario: a couple of simulated hours on a
    /// 16-NIC fleet. Benchmarks override the fields they sweep.
    pub fn small(seed: u64) -> Self {
        Self {
            portfolio: vec![(NicSpec::bluefield2(), 16)],
            duration_s: 2 * 3_600,
            mean_interarrival_s: 180.0,
            mean_lifetime_s: 1_200.0,
            audit_period_s: 600,
            kinds: vec![NfKind::FlowStats, NfKind::Acl, NfKind::Nat],
            sla_drop_range: (0.05, 0.20),
            drift: true,
            traffic_model: TrafficModel::Uniform,
            max_flows: 128_000,
            reprofile_threshold: 0.10,
            max_migrations_per_audit: 8,
            noise_sigma: 0.005,
            guaranteed_fraction: 1.0,
            faults: FaultPlan::none(),
            seed,
        }
    }

    /// A mixed 50/50 BlueField-2 + Pensando portfolio of `nics` total
    /// NICs (BlueField-2 gets the odd one), otherwise the
    /// [`Self::small`] defaults — the heterogeneous smoke scenario.
    pub fn mixed(seed: u64, nics: usize) -> Self {
        let mut cfg = Self::small(seed);
        cfg.portfolio = vec![
            (NicSpec::bluefield2(), nics - nics / 2),
            (NicSpec::pensando(), nics / 2),
        ];
        cfg
    }

    /// Total NICs across the portfolio.
    pub fn nics(&self) -> usize {
        self.portfolio.iter().map(|(_, n)| n).sum()
    }

    /// The portfolio's model specs, in portfolio order.
    pub fn specs(&self) -> Vec<NicSpec> {
        self.portfolio.iter().map(|(s, _)| s.clone()).collect()
    }

    /// The portfolio position (model index) of NIC `nic`.
    ///
    /// # Panics
    ///
    /// Panics if `nic` is outside the fleet.
    pub fn nic_model_pos(&self, nic: usize) -> usize {
        let mut base = 0usize;
        for (m, (_, count)) in self.portfolio.iter().enumerate() {
            if nic < base + count {
                return m;
            }
            base += count;
        }
        panic!("NIC {nic} outside a {}-NIC fleet", self.nics());
    }

    /// The hardware spec of NIC `nic`.
    pub fn nic_spec(&self, nic: usize) -> &NicSpec {
        &self.portfolio[self.nic_model_pos(nic)].0
    }

    /// Number of audit epochs in the scenario.
    pub fn epochs(&self) -> u64 {
        self.duration_s / self.audit_period_s
    }

    /// The canonical template table for [`TrafficModel::Templates`]:
    /// `count` profiles from a stream decorrelated from the per-record
    /// generation stream, canonicalized to quantization-bucket
    /// representatives at the config's re-profile threshold — so an
    /// unjittered tenant keys exactly onto its template's bucket. Empty
    /// under [`TrafficModel::Uniform`].
    pub fn traffic_templates(&self) -> Vec<TrafficProfile> {
        match self.traffic_model {
            TrafficModel::Uniform => Vec::new(),
            TrafficModel::Templates { count, .. } => {
                let quantizer = TrafficQuantizer::new(self.reprofile_threshold);
                let mut rng = StdRng::seed_from_u64(self.seed ^ TEMPLATE_SALT);
                (0..count)
                    .map(|_| {
                        quantizer
                            .canonicalize(&TrafficProfile::random(&mut rng, self.max_flows))
                            .1
                    })
                    .collect()
            }
        }
    }

    /// The scenario's fault schedule: a pure function of the seed,
    /// portfolio size, and fault plan, sorted by
    /// `(t_ms, kind rank, nic)` — the total order the event loop
    /// replays. Failures are per-NIC renewal processes (exponential
    /// time-to-failure, exponential repair floored at one minute);
    /// drains pick a NIC and a start time uniformly, retrying a bounded
    /// number of times and then skipping deterministically if the window
    /// would overlap another incident on the same NIC. Empty under
    /// [`FaultPlan::none`].
    pub fn fault_schedule(&self) -> Vec<FaultEvent> {
        let plan = &self.faults;
        if plan.is_none() {
            return Vec::new();
        }
        let horizon_ms = self.duration_s * MS_PER_S;
        let nics = self.nics();
        let mut rng = StdRng::seed_from_u64(self.seed ^ FAULT_SALT);
        let mut events = Vec::new();
        // Per-NIC incident windows `[start, end)` already claimed, used
        // to keep drains from overlapping failures or other drains.
        let mut busy: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nics];
        if plan.mtbf_s > 0.0 {
            for (nic, busy_nic) in busy.iter_mut().enumerate() {
                let mut t = 0.0f64;
                loop {
                    t += exponential_ms(&mut rng, plan.mtbf_s);
                    let fail_ms = (t as u64).max(1);
                    if fail_ms >= horizon_ms {
                        break;
                    }
                    let repair_ms = exponential_ms(&mut rng, plan.mean_repair_s).max(60_000.0);
                    let recover_ms = fail_ms + repair_ms as u64;
                    events.push(FaultEvent {
                        t_ms: fail_ms,
                        nic,
                        kind: FaultKind::Fail,
                    });
                    if recover_ms < horizon_ms {
                        events.push(FaultEvent {
                            t_ms: recover_ms,
                            nic,
                            kind: FaultKind::Recover,
                        });
                    }
                    busy_nic.push((fail_ms, recover_ms));
                    t = recover_ms as f64;
                }
            }
        }
        let drain_span_ms = (plan.drain_notice_s + plan.drain_offline_s) * MS_PER_S;
        if plan.drains > 0 && drain_span_ms > 0 && drain_span_ms < horizon_ms {
            for _ in 0..plan.drains {
                // Bounded retries keep the draw deterministic even when
                // a candidate window collides with an existing incident.
                for _attempt in 0..8 {
                    let nic = rng.gen_range(0..nics);
                    let start = rng.gen_range(1..horizon_ms - drain_span_ms);
                    let end = start + drain_span_ms;
                    if busy[nic].iter().any(|&(s, e)| start < e && s < end) {
                        continue;
                    }
                    let deadline = start + plan.drain_notice_s * MS_PER_S;
                    events.push(FaultEvent {
                        t_ms: start,
                        nic,
                        kind: FaultKind::DrainStart,
                    });
                    events.push(FaultEvent {
                        t_ms: deadline,
                        nic,
                        kind: FaultKind::DrainEnd,
                    });
                    if end < horizon_ms {
                        events.push(FaultEvent {
                            t_ms: end,
                            nic,
                            kind: FaultKind::Recover,
                        });
                    }
                    busy[nic].push((start, end));
                    break;
                }
            }
        }
        events.sort_by_key(|e| (e.t_ms, e.kind.rank(), e.nic));
        events
    }
}

/// One NF's life in the scenario: when it arrives and departs, what it
/// is, how its traffic drifts, and how tight its SLA is.
#[derive(Debug, Clone)]
pub struct NfRecord {
    /// Dense instance id (index into the trace).
    pub id: u32,
    /// Which NF.
    pub kind: NfKind,
    /// Arrival time, milliseconds.
    pub arrival_ms: u64,
    /// Departure time, milliseconds (may exceed the scenario horizon;
    /// such NFs simply never depart on-trace).
    pub departure_ms: u64,
    /// Traffic profile at arrival.
    pub start: TrafficProfile,
    /// Traffic profile reached at departure (equals `start` when drift is
    /// disabled).
    pub end: TrafficProfile,
    /// Maximum tolerated throughput drop vs. solo.
    pub sla_drop: f64,
    /// Service tier: guaranteed NFs are protected during degradation;
    /// best-effort NFs are shed/parked first.
    pub qos: QosClass,
}

impl NfRecord {
    /// The instantaneous traffic profile at time `t_ms`: linear
    /// interpolation along the drift trajectory, clamped to the lifetime.
    pub fn traffic_at(&self, t_ms: u64) -> TrafficProfile {
        let span = self.departure_ms.saturating_sub(self.arrival_ms).max(1);
        let frac = t_ms.saturating_sub(self.arrival_ms) as f64 / span as f64;
        self.start.lerp(&self.end, frac)
    }
}

/// Why [`FleetTrace::from_records`] rejected its inputs. Each variant
/// names the offending record (or config field) so empirical-trace
/// loaders can report actionable errors instead of panicking mid-load.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The config names no NF kinds.
    NoKinds,
    /// The audit period is zero (the control loop would never tick).
    ZeroAuditPeriod,
    /// A template traffic model with zero templates.
    ZeroTemplates,
    /// Template jitter outside `[0, 1)`.
    BadTemplateJitter(f64),
    /// The NIC portfolio is empty.
    EmptyPortfolio,
    /// Two portfolio entries share a model name.
    DuplicateModel(String),
    /// `guaranteed_fraction` outside `[0, 1]` or non-finite.
    BadGuaranteedFraction(f64),
    /// A fault-plan rate or duration is negative or non-finite.
    BadFaultPlan(&'static str),
    /// `records[index].id` is not `index` (ids must be dense `0..n`).
    SparseIds { index: usize, id: u32 },
    /// Record `index` arrives before its predecessor.
    OutOfOrderArrival { index: usize },
    /// Record `index` arrives at or after the horizon.
    OffHorizonArrival { index: usize },
    /// Record `index` departs at or before its arrival. The event loop
    /// orders same-timestamp departures before arrivals, so a
    /// zero-lifetime NF would fire its no-op departure first and then
    /// squat on a NIC until the horizon.
    ZeroLifetime { index: usize },
    /// Record `index` carries a non-finite traffic attribute.
    NonFiniteTraffic { index: usize },
    /// Record `index` has a non-finite or out-of-range SLA drop.
    BadSla { index: usize, sla_drop: f64 },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::NoKinds => write!(f, "config names no NF kinds"),
            TraceError::ZeroAuditPeriod => write!(f, "audit period must be positive"),
            TraceError::ZeroTemplates => write!(f, "template count must be positive"),
            TraceError::BadTemplateJitter(j) => {
                write!(f, "template jitter {j} outside [0, 1)")
            }
            TraceError::EmptyPortfolio => write!(f, "empty NIC portfolio"),
            TraceError::DuplicateModel(name) => {
                write!(f, "duplicate NIC model {name} in portfolio")
            }
            TraceError::BadGuaranteedFraction(g) => {
                write!(f, "guaranteed fraction {g} outside [0, 1]")
            }
            TraceError::BadFaultPlan(field) => {
                write!(f, "fault plan {field} must be finite and non-negative")
            }
            TraceError::SparseIds { index, id } => {
                write!(f, "record {index} has id {id}: ids must be dense (0..n)")
            }
            TraceError::OutOfOrderArrival { index } => {
                write!(f, "arrivals must ascend (record {index})")
            }
            TraceError::OffHorizonArrival { index } => {
                write!(f, "record {index} arrives after the horizon")
            }
            TraceError::ZeroLifetime { index } => {
                write!(f, "record {index} must depart strictly after it arrives")
            }
            TraceError::NonFiniteTraffic { index } => {
                write!(f, "record {index} has a non-finite traffic attribute")
            }
            TraceError::BadSla { index, sla_drop } => {
                write!(f, "record {index} has SLA drop {sla_drop} outside [0, 1)")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A fully materialized scenario: config plus every NF's record, in
/// arrival order, plus the fault schedule the event loop will replay.
#[derive(Debug, Clone)]
pub struct FleetTrace {
    /// The generating config.
    pub config: FleetConfig,
    /// NF records in arrival order; `records[i].id == i`.
    pub records: Vec<NfRecord>,
    /// Scheduled NIC faults, sorted by `(t_ms, kind rank, nic)` — see
    /// [`FleetConfig::fault_schedule`]. Empty for fault-free configs.
    pub faults: Vec<FaultEvent>,
}

impl FleetTrace {
    /// Builds a trace from explicit records — the entry point for
    /// *empirical* arrival traces (diurnal load, flash crowds, recorded
    /// production arrivals) that no Poisson generator reproduces. The
    /// event loop consumes arbitrary records; this constructor only
    /// validates the invariants it relies on:
    ///
    /// * `records[i].id == i` (dense ids, used as indices),
    /// * arrivals ascend and fall inside the scenario horizon,
    /// * every departure is strictly after its arrival,
    /// * traffic attributes and SLA drops are finite (a NaN profile
    ///   would poison every prediction touching the NIC),
    /// * the config names at least one NF kind and a positive audit
    ///   period, every portfolio model name is distinct, and the
    ///   guaranteed fraction and fault plan are well-formed.
    ///
    /// Returns a descriptive [`TraceError`] naming the offending record
    /// instead of panicking, so callers loading external traces can
    /// surface actionable diagnostics.
    pub fn from_records(config: FleetConfig, records: Vec<NfRecord>) -> Result<Self, TraceError> {
        if config.kinds.is_empty() {
            return Err(TraceError::NoKinds);
        }
        if config.audit_period_s == 0 {
            return Err(TraceError::ZeroAuditPeriod);
        }
        if let TrafficModel::Templates { count, jitter } = config.traffic_model {
            if count == 0 {
                return Err(TraceError::ZeroTemplates);
            }
            if !(0.0..1.0).contains(&jitter) {
                return Err(TraceError::BadTemplateJitter(jitter));
            }
        }
        if config.portfolio.is_empty() {
            return Err(TraceError::EmptyPortfolio);
        }
        for (i, (spec, _)) in config.portfolio.iter().enumerate() {
            if config.portfolio[..i]
                .iter()
                .any(|(s, _)| s.name == spec.name)
            {
                return Err(TraceError::DuplicateModel(spec.name.to_string()));
            }
        }
        if !(0.0..=1.0).contains(&config.guaranteed_fraction) {
            return Err(TraceError::BadGuaranteedFraction(
                config.guaranteed_fraction,
            ));
        }
        let plan = &config.faults;
        if !plan.mtbf_s.is_finite() || plan.mtbf_s < 0.0 {
            return Err(TraceError::BadFaultPlan("mtbf_s"));
        }
        if !plan.mean_repair_s.is_finite() || plan.mean_repair_s < 0.0 {
            return Err(TraceError::BadFaultPlan("mean_repair_s"));
        }
        let horizon_ms = config.duration_s * MS_PER_S;
        let mut last_arrival = 0u64;
        for (i, r) in records.iter().enumerate() {
            if r.id as usize != i {
                return Err(TraceError::SparseIds { index: i, id: r.id });
            }
            if r.arrival_ms < last_arrival {
                return Err(TraceError::OutOfOrderArrival { index: i });
            }
            if r.arrival_ms >= horizon_ms {
                return Err(TraceError::OffHorizonArrival { index: i });
            }
            if r.departure_ms <= r.arrival_ms {
                return Err(TraceError::ZeroLifetime { index: i });
            }
            if !r.start.mtbr.is_finite() || !r.end.mtbr.is_finite() {
                return Err(TraceError::NonFiniteTraffic { index: i });
            }
            if !r.sla_drop.is_finite() || !(0.0..1.0).contains(&r.sla_drop) {
                return Err(TraceError::BadSla {
                    index: i,
                    sla_drop: r.sla_drop,
                });
            }
            last_arrival = r.arrival_ms;
        }
        let faults = config.fault_schedule();
        Ok(Self {
            config,
            records,
            faults,
        })
    }

    /// Generates the scenario from `config.seed`: Poisson arrivals over
    /// the horizon, exponential lifetimes (floored at one minute so every
    /// NF survives at least a fraction of an audit period), uniform NF
    /// kinds, random start/end traffic, uniform SLA tightness, and QoS
    /// classes Bernoulli(`guaranteed_fraction`) from their own stream.
    pub fn generate(config: FleetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut qos_rng = StdRng::seed_from_u64(config.seed ^ QOS_SALT);
        let horizon_ms = config.duration_s * MS_PER_S;
        let templates = config.traffic_templates();
        let mut records = Vec::new();
        let mut t_ms = 0.0f64;
        loop {
            t_ms += exponential_ms(&mut rng, config.mean_interarrival_s);
            let arrival_ms = t_ms as u64;
            if arrival_ms >= horizon_ms {
                break;
            }
            records.push(draw_record(
                &config,
                &templates,
                records.len() as u32,
                arrival_ms,
                &mut rng,
                &mut qos_rng,
            ));
        }
        Self::from_records(config, records).expect("generated records satisfy trace invariants")
    }

    /// A trace with a diurnal arrival pattern: the Poisson rate is
    /// modulated by `0.2 + 1.6·sin²(π·t/T)` over the horizon — a 0.2×
    /// overnight trough rising to a 1.8× midday peak, averaging the
    /// config's base rate. Arrival times come from a thinned
    /// non-homogeneous Poisson process on a salted stream; every other
    /// per-NF attribute is drawn exactly as [`FleetTrace::generate`]
    /// draws it, so shaping the load never changes what the NFs *are*.
    pub fn diurnal(config: FleetConfig) -> Self {
        Self::generate_shaped(config, 1.8, |frac| {
            let s = (std::f64::consts::PI * frac).sin();
            0.2 + 1.6 * s * s
        })
    }

    /// A trace with a flash crowd: the base Poisson rate with a 6× burst
    /// over the window `[0.40, 0.50)` of the horizon — the
    /// capacity-pressure regime where admission, parking, and
    /// readmission policies actually separate. Same thinning scheme and
    /// attribute streams as [`FleetTrace::diurnal`].
    pub fn flash_crowd(config: FleetConfig) -> Self {
        Self::generate_shaped(config, 6.0, |frac| {
            if (0.40..0.50).contains(&frac) {
                6.0
            } else {
                1.0
            }
        })
    }

    /// Shared non-homogeneous Poisson generator: candidate arrivals at
    /// `peak` times the base rate on the [`SHAPE_SALT`] stream, thinned
    /// by `intensity(frac)/peak` where `frac` is the fraction of the
    /// horizon elapsed. `intensity` must never exceed `peak` (thinning
    /// would silently clip the rate).
    fn generate_shaped(config: FleetConfig, peak: f64, intensity: impl Fn(f64) -> f64) -> Self {
        let mut arrival_rng = StdRng::seed_from_u64(config.seed ^ SHAPE_SALT);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut qos_rng = StdRng::seed_from_u64(config.seed ^ QOS_SALT);
        let horizon_ms = config.duration_s * MS_PER_S;
        let templates = config.traffic_templates();
        let mut records = Vec::new();
        let mean_candidate_s = config.mean_interarrival_s / peak;
        let mut t_ms = 0.0f64;
        loop {
            t_ms += exponential_ms(&mut arrival_rng, mean_candidate_s);
            let arrival_ms = t_ms as u64;
            if arrival_ms >= horizon_ms {
                break;
            }
            let keep: f64 = arrival_rng.gen();
            if keep * peak >= intensity(t_ms / horizon_ms as f64) {
                continue;
            }
            records.push(draw_record(
                &config,
                &templates,
                records.len() as u32,
                arrival_ms,
                &mut rng,
                &mut qos_rng,
            ));
        }
        Self::from_records(config, records).expect("generated records satisfy trace invariants")
    }
}

/// Draws one NF's attributes — lifetime, kind, traffic trajectory, SLA,
/// QoS — in the exact order [`FleetTrace::generate`] has always drawn
/// them. Factored out so shaped generators reuse the streams verbatim;
/// committed bench records pin the uniform-mode byte stream, so the
/// draw order here must never change.
fn draw_record(
    config: &FleetConfig,
    templates: &[TrafficProfile],
    id: u32,
    arrival_ms: u64,
    rng: &mut StdRng,
    qos_rng: &mut StdRng,
) -> NfRecord {
    let lifetime_ms = exponential_ms(rng, config.mean_lifetime_s).max(60_000.0);
    let kind = *config.kinds.choose(rng).expect("nonempty kinds");
    // Uniform mode must keep the pre-template draw order exactly:
    // committed bench records pin traces byte-for-byte.
    let (start, end) = match config.traffic_model {
        TrafficModel::Uniform => {
            let start = TrafficProfile::random(rng, config.max_flows);
            let end = if config.drift {
                TrafficProfile::random(rng, config.max_flows)
            } else {
                start
            };
            (start, end)
        }
        TrafficModel::Templates { jitter, .. } => {
            let start = jittered(
                templates.choose(rng).expect("nonempty template table"),
                jitter,
                rng,
            );
            let end = if config.drift {
                jittered(
                    templates.choose(rng).expect("nonempty template table"),
                    jitter,
                    rng,
                )
            } else {
                start
            };
            (start, end)
        }
    };
    let sla_drop = rng.gen_range(config.sla_drop_range.0..config.sla_drop_range.1);
    // The QoS draw lives on its own stream: `guaranteed_fraction = 1.0`
    // (the default) consumes the draw but always yields Guaranteed, so
    // pre-tier traces are reproduced exactly.
    let qos = if qos_rng.gen::<f64>() < config.guaranteed_fraction {
        QosClass::Guaranteed
    } else {
        QosClass::BestEffort
    };
    NfRecord {
        id,
        kind,
        arrival_ms,
        departure_ms: arrival_ms + lifetime_ms as u64,
        start,
        end,
        sla_drop,
        qos,
    }
}

/// An exponential draw with the given mean, in milliseconds. Uses the
/// inverse CDF over `1 - u` so `u = 0` is safe.
fn exponential_ms<R: Rng>(rng: &mut R, mean_s: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() * mean_s * MS_PER_S as f64
}

/// A template profile with per-attribute relative jitter: each attribute
/// moves by a uniform fraction of itself (floored at 1, matching the
/// drift metric's denominator), so `jitter` composes directly with
/// [`TrafficProfile::relative_change`] and the quantizer's bucket radius.
fn jittered<R: Rng>(template: &TrafficProfile, jitter: f64, rng: &mut R) -> TrafficProfile {
    let mut wiggle = |v: f64| v + rng.gen_range(-jitter..=jitter) * v.abs().max(1.0);
    TrafficProfile::new(
        wiggle(template.flow_count as f64).round() as u32,
        wiggle(template.packet_size as f64).round() as u32,
        wiggle(template.mtbr),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FleetTrace::generate(FleetConfig::small(5));
        let b = FleetTrace::generate(FleetConfig::small(5));
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.arrival_ms, y.arrival_ms);
            assert_eq!(x.departure_ms, y.departure_ms);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.start, y.start);
            assert_eq!(x.end, y.end);
            assert_eq!(x.sla_drop, y.sla_drop);
        }
        let c = FleetTrace::generate(FleetConfig::small(6));
        let identical = a.records.len() == c.records.len()
            && a.records
                .iter()
                .zip(&c.records)
                .all(|(x, y)| x.arrival_ms == y.arrival_ms);
        assert!(!identical, "different seeds must differ");
    }

    #[test]
    fn arrival_counts_track_the_poisson_mean() {
        let mut cfg = FleetConfig::small(11);
        cfg.duration_s = 24 * 3_600;
        cfg.mean_interarrival_s = 144.0;
        let trace = FleetTrace::generate(cfg);
        let expected = 24.0 * 3_600.0 / 144.0; // 600
        let n = trace.records.len() as f64;
        assert!(
            (n - expected).abs() < 5.0 * expected.sqrt(),
            "got {n} arrivals, expected ~{expected}"
        );
    }

    #[test]
    fn records_are_ordered_and_well_formed() {
        let trace = FleetTrace::generate(FleetConfig::small(3));
        let horizon = trace.config.duration_s * MS_PER_S;
        let mut last = 0;
        for (i, r) in trace.records.iter().enumerate() {
            assert_eq!(r.id as usize, i);
            assert!(r.arrival_ms >= last);
            assert!(r.arrival_ms < horizon);
            assert!(r.departure_ms >= r.arrival_ms + 60_000);
            assert!(r.sla_drop >= 0.05 && r.sla_drop < 0.20);
            last = r.arrival_ms;
        }
    }

    #[test]
    fn traffic_drifts_from_start_to_end() {
        let trace = FleetTrace::generate(FleetConfig::small(9));
        let r = trace
            .records
            .iter()
            .find(|r| r.start != r.end)
            .expect("drift enabled: some record must have distinct start/end profiles");
        assert_eq!(r.traffic_at(r.arrival_ms), r.start);
        assert_eq!(r.traffic_at(r.departure_ms), r.end);
        assert_eq!(r.traffic_at(r.departure_ms + 999), r.end, "clamped");
        let mid = r.traffic_at((r.arrival_ms + r.departure_ms) / 2);
        assert!(mid != r.start || mid != r.end);
    }

    /// A well-formed single record for error-path tests; callers break
    /// one field at a time.
    fn ok_record() -> NfRecord {
        NfRecord {
            id: 0,
            kind: NfKind::Acl,
            arrival_ms: 5_000,
            departure_ms: 65_000,
            start: TrafficProfile::default(),
            end: TrafficProfile::default(),
            sla_drop: 0.1,
            qos: QosClass::Guaranteed,
        }
    }

    #[test]
    fn from_records_accepts_generated_and_empirical_records() {
        let gen = FleetTrace::generate(FleetConfig::small(17));
        let rebuilt = FleetTrace::from_records(gen.config.clone(), gen.records.clone())
            .expect("generated records round-trip");
        assert_eq!(rebuilt.records.len(), gen.records.len());
        // A non-Poisson flash crowd: five NFs arriving in the same
        // millisecond, constant traffic, staggered departures.
        let cfg = FleetConfig::small(0);
        let records: Vec<NfRecord> = (0..5)
            .map(|i| NfRecord {
                id: i,
                arrival_ms: 60_000,
                departure_ms: 60_000 + (i as u64 + 1) * 600_000,
                ..ok_record()
            })
            .collect();
        let trace = FleetTrace::from_records(cfg, records).expect("flash crowd is valid");
        assert_eq!(trace.records.len(), 5);
    }

    #[test]
    fn from_records_rejects_sparse_ids() {
        let cfg = FleetConfig::small(0);
        let r = NfRecord {
            id: 3,
            ..ok_record()
        };
        assert_eq!(
            FleetTrace::from_records(cfg, vec![r]).unwrap_err(),
            TraceError::SparseIds { index: 0, id: 3 }
        );
    }

    #[test]
    fn from_records_rejects_zero_lifetime_records() {
        // The event loop orders same-timestamp departures before
        // arrivals, so a zero-lifetime NF would be placed after its
        // no-op departure and squat on a NIC until the horizon.
        let cfg = FleetConfig::small(0);
        let r = NfRecord {
            departure_ms: 5_000,
            ..ok_record()
        };
        assert_eq!(
            FleetTrace::from_records(cfg, vec![r]).unwrap_err(),
            TraceError::ZeroLifetime { index: 0 }
        );
    }

    #[test]
    fn from_records_rejects_off_horizon_arrivals() {
        let cfg = FleetConfig::small(0);
        let r = NfRecord {
            arrival_ms: cfg.duration_s * MS_PER_S,
            departure_ms: cfg.duration_s * MS_PER_S + 1,
            ..ok_record()
        };
        assert_eq!(
            FleetTrace::from_records(cfg, vec![r]).unwrap_err(),
            TraceError::OffHorizonArrival { index: 0 }
        );
    }

    #[test]
    fn from_records_rejects_out_of_order_arrivals() {
        let cfg = FleetConfig::small(0);
        let records = vec![
            NfRecord {
                arrival_ms: 10_000,
                departure_ms: 80_000,
                ..ok_record()
            },
            NfRecord {
                id: 1,
                arrival_ms: 9_000,
                departure_ms: 70_000,
                ..ok_record()
            },
        ];
        assert_eq!(
            FleetTrace::from_records(cfg, records).unwrap_err(),
            TraceError::OutOfOrderArrival { index: 1 }
        );
    }

    #[test]
    fn from_records_rejects_non_finite_traffic_and_bad_sla() {
        let cfg = FleetConfig::small(0);
        let r = NfRecord {
            start: TrafficProfile::new(100, 512, f64::NAN),
            ..ok_record()
        };
        assert_eq!(
            FleetTrace::from_records(cfg.clone(), vec![r]).unwrap_err(),
            TraceError::NonFiniteTraffic { index: 0 }
        );
        let r = NfRecord {
            sla_drop: 1.5,
            ..ok_record()
        };
        assert!(matches!(
            FleetTrace::from_records(cfg, vec![r]).unwrap_err(),
            TraceError::BadSla { index: 0, .. }
        ));
    }

    #[test]
    fn from_records_rejects_bad_config() {
        let mut cfg = FleetConfig::small(0);
        cfg.guaranteed_fraction = 1.5;
        assert_eq!(
            FleetTrace::from_records(cfg, Vec::new()).unwrap_err(),
            TraceError::BadGuaranteedFraction(1.5)
        );
        let mut cfg = FleetConfig::small(0);
        cfg.faults.mtbf_s = f64::NAN;
        assert_eq!(
            FleetTrace::from_records(cfg, Vec::new()).unwrap_err(),
            TraceError::BadFaultPlan("mtbf_s")
        );
        let mut cfg = FleetConfig::small(0);
        cfg.kinds.clear();
        assert_eq!(
            FleetTrace::from_records(cfg, Vec::new()).unwrap_err(),
            TraceError::NoKinds
        );
    }

    #[test]
    fn duplicate_portfolio_models_rejected() {
        let mut cfg = FleetConfig::small(0);
        cfg.portfolio = vec![(NicSpec::bluefield2(), 4), (NicSpec::bluefield2(), 4)];
        assert_eq!(
            FleetTrace::from_records(cfg, Vec::new()).unwrap_err(),
            TraceError::DuplicateModel("bluefield2".to_string())
        );
    }

    #[test]
    fn default_config_draws_all_guaranteed_and_no_faults() {
        let trace = FleetTrace::generate(FleetConfig::small(5));
        assert!(trace.records.iter().all(|r| r.qos.is_guaranteed()));
        assert!(trace.faults.is_empty());
    }

    #[test]
    fn qos_draw_does_not_perturb_the_arrival_stream() {
        let all_guaranteed = FleetTrace::generate(FleetConfig::small(5));
        let mut cfg = FleetConfig::small(5);
        cfg.guaranteed_fraction = 0.5;
        let mixed = FleetTrace::generate(cfg);
        assert_eq!(all_guaranteed.records.len(), mixed.records.len());
        for (a, b) in all_guaranteed.records.iter().zip(&mixed.records) {
            assert_eq!(a.arrival_ms, b.arrival_ms);
            assert_eq!(a.departure_ms, b.departure_ms);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.start, b.start);
            assert_eq!(a.sla_drop, b.sla_drop);
        }
        let best_effort = mixed
            .records
            .iter()
            .filter(|r| !r.qos.is_guaranteed())
            .count();
        let n = mixed.records.len();
        assert!(
            best_effort > n / 5 && best_effort < 4 * n / 5,
            "Bernoulli(0.5) draw badly skewed: {best_effort}/{n} best-effort"
        );
    }

    #[test]
    fn fault_schedule_is_deterministic_and_well_formed() {
        let mut cfg = FleetConfig::small(13);
        cfg.faults = FaultPlan {
            mtbf_s: 4.0 * 3_600.0,
            mean_repair_s: 900.0,
            drains: 3,
            drain_notice_s: 600,
            drain_offline_s: 600,
        };
        let a = cfg.fault_schedule();
        let b = cfg.fault_schedule();
        assert_eq!(a, b, "fault schedule must be a pure function of the config");
        assert!(!a.is_empty(), "a failure-heavy plan schedules events");
        let horizon_ms = cfg.duration_s * MS_PER_S;
        for w in a.windows(2) {
            assert!(
                (w[0].t_ms, w[0].kind.rank(), w[0].nic) <= (w[1].t_ms, w[1].kind.rank(), w[1].nic),
                "schedule must be sorted by (time, rank, nic)"
            );
        }
        for e in &a {
            assert!(e.t_ms < horizon_ms);
            assert!(e.nic < cfg.nics());
        }
        // Every DrainStart has a matching DrainEnd exactly the notice
        // window later on the same NIC.
        for e in a.iter().filter(|e| e.kind == FaultKind::DrainStart) {
            let deadline = e.t_ms + cfg.faults.drain_notice_s * MS_PER_S;
            assert!(
                a.iter()
                    .any(|d| d.kind == FaultKind::DrainEnd && d.nic == e.nic && d.t_ms == deadline),
                "drain on NIC {} lacks its deadline",
                e.nic
            );
        }
        // Incidents never overlap on one NIC: replay the schedule as a
        // per-NIC state machine and require legal transitions only.
        #[derive(PartialEq, Clone, Copy)]
        enum S {
            Up,
            Draining,
            Down,
        }
        let mut state = vec![S::Up; cfg.nics()];
        for e in &a {
            let s = &mut state[e.nic];
            match e.kind {
                FaultKind::Fail => {
                    assert!(*s == S::Up, "failure on a non-Up NIC");
                    *s = S::Down;
                }
                FaultKind::DrainStart => {
                    assert!(*s == S::Up, "drain announced on a non-Up NIC");
                    *s = S::Draining;
                }
                FaultKind::DrainEnd => {
                    assert!(*s == S::Draining, "deadline without a drain");
                    *s = S::Down;
                }
                FaultKind::Recover => {
                    assert!(*s == S::Down, "recovery of a non-Down NIC");
                    *s = S::Up;
                }
            }
        }
    }

    #[test]
    fn fault_free_plan_schedules_nothing() {
        assert!(FleetConfig::small(7).fault_schedule().is_empty());
        assert!(FaultPlan::none().is_none());
    }

    #[test]
    fn portfolio_expansion_maps_nics_to_models() {
        let cfg = FleetConfig::mixed(1, 7);
        assert_eq!(cfg.nics(), 7);
        assert_eq!(cfg.portfolio[0].1, 4, "BF-2 gets the odd NIC");
        for nic in 0..4 {
            assert_eq!(cfg.nic_model_pos(nic), 0);
            assert_eq!(cfg.nic_spec(nic).name, "bluefield2");
        }
        for nic in 4..7 {
            assert_eq!(cfg.nic_model_pos(nic), 1);
            assert_eq!(cfg.nic_spec(nic).name, "pensando");
        }
        let specs = cfg.specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[1].name, "pensando");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn nic_beyond_fleet_panics() {
        FleetConfig::small(0).nic_model_pos(16);
    }

    #[test]
    fn template_traffic_clusters_on_bucket_representatives() {
        let mut cfg = FleetConfig::small(21);
        cfg.traffic_model = TrafficModel::Templates {
            count: 4,
            jitter: cfg.reprofile_threshold / 4.0,
        };
        let templates = cfg.traffic_templates();
        assert_eq!(templates.len(), 4);
        let quantizer = TrafficQuantizer::new(cfg.reprofile_threshold);
        // Templates are bucket representatives: canonicalization is a
        // no-op on them.
        for t in &templates {
            assert_eq!(quantizer.canonicalize(t).1, *t);
        }
        let template_keys: Vec<_> = templates.iter().map(|t| quantizer.key(t)).collect();
        let trace = FleetTrace::generate(cfg);
        assert!(!trace.records.is_empty());
        // Jitter at threshold/4 stays within the safe same-key radius:
        // every tenant's start profile keys onto some template's bucket.
        for r in &trace.records {
            let k = quantizer.key(&r.start);
            assert!(
                template_keys.contains(&k),
                "start {:?} escaped its template bucket",
                r.start
            );
        }
        // And the draw is deterministic in the seed.
        let mut cfg2 = FleetConfig::small(21);
        cfg2.traffic_model = TrafficModel::Templates {
            count: 4,
            jitter: cfg2.reprofile_threshold / 4.0,
        };
        let again = FleetTrace::generate(cfg2);
        assert_eq!(trace.records.len(), again.records.len());
        for (a, b) in trace.records.iter().zip(&again.records) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.end, b.end);
        }
    }

    #[test]
    fn diurnal_trace_is_deterministic_and_shaped() {
        let mut cfg = FleetConfig::small(31);
        cfg.duration_s = 24 * 3_600;
        let a = FleetTrace::diurnal(cfg.clone());
        let b = FleetTrace::diurnal(cfg.clone());
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.arrival_ms, y.arrival_ms);
            assert_eq!(x.start, y.start);
            assert_eq!(x.sla_drop, y.sla_drop);
        }
        // The midday peak (middle third) must out-arrive the overnight
        // trough (outer thirds combined carry 0.2–1.0× rate vs 1.2–1.8×
        // in the middle).
        let horizon = cfg.duration_s * MS_PER_S;
        let third = horizon / 3;
        let outer = a
            .records
            .iter()
            .filter(|r| r.arrival_ms < third || r.arrival_ms >= 2 * third)
            .count();
        let middle = a.records.len() - outer;
        assert!(
            middle > outer,
            "diurnal peak must dominate: middle {middle} vs outer {outer}"
        );
        // Mean rate ≈ the base Poisson rate.
        let expected = cfg.duration_s as f64 / cfg.mean_interarrival_s;
        let n = a.records.len() as f64;
        assert!(
            (n - expected).abs() < 6.0 * expected.sqrt(),
            "got {n} arrivals, expected ~{expected}"
        );
    }

    #[test]
    fn flash_crowd_bursts_in_its_window() {
        let mut cfg = FleetConfig::small(33);
        cfg.duration_s = 24 * 3_600;
        let trace = FleetTrace::flash_crowd(cfg.clone());
        let horizon = cfg.duration_s * MS_PER_S;
        let (lo, hi) = (horizon * 40 / 100, horizon * 50 / 100);
        let burst = trace
            .records
            .iter()
            .filter(|r| (lo..hi).contains(&r.arrival_ms))
            .count() as f64;
        let calm = (trace.records.len() as f64 - burst).max(1.0);
        // The 10% window at 6× rate should hold ~40% of all arrivals;
        // require its *density* (per unit time) to be clearly elevated.
        let density_ratio = (burst / 0.10) / (calm / 0.90);
        assert!(
            density_ratio > 3.0,
            "burst density only {density_ratio:.2}× the calm density"
        );
    }

    #[test]
    fn shaped_generators_draw_the_same_attribute_streams() {
        // Same seed, same record index → same lifetime/kind/traffic/SLA
        // regardless of the arrival *shape*: shaping only moves when NFs
        // arrive, never what they are, because arrival times live on the
        // salted candidate stream and attributes on their own stream.
        let cfg = FleetConfig::small(35);
        let flash = FleetTrace::flash_crowd(cfg.clone());
        let diurnal = FleetTrace::diurnal(cfg);
        let n = flash.records.len().min(diurnal.records.len());
        assert!(n > 0);
        for i in 0..n {
            let (p, d) = (&flash.records[i], &diurnal.records[i]);
            assert_eq!(p.kind, d.kind);
            assert_eq!(p.start, d.start);
            assert_eq!(p.end, d.end);
            assert_eq!(p.sla_drop, d.sla_drop);
            assert_eq!(p.qos, d.qos);
            assert_eq!(p.departure_ms - p.arrival_ms, d.departure_ms - d.arrival_ms);
        }
    }

    #[test]
    fn drift_disabled_freezes_traffic() {
        let mut cfg = FleetConfig::small(4);
        cfg.drift = false;
        let trace = FleetTrace::generate(cfg);
        for r in &trace.records {
            assert_eq!(r.start, r.end);
            assert_eq!(r.traffic_at((r.arrival_ms + r.departure_ms) / 2), r.start);
        }
    }
}
