//! Versioned fleet snapshots: serialize everything a running
//! [`FleetSim`] cannot re-derive, so kill → [`restore_fleet`] →
//! continue is bit-identical to the uninterrupted run.
//!
//! The determinism surface is the final [`FleetReport`](crate::FleetReport)
//! and the telemetry event journal. Three kinds of state make that
//! work:
//!
//! * **Authoritative simulation state** — residents, cursors, NIC
//!   states, the parked set, the event-list position, and every report
//!   accumulator. Serialized field by field; floats use Rust's
//!   shortest-exact `Display`, which `str::parse` round-trips
//!   losslessly.
//! * **Derived state** — the `location` map and the
//!   [`PlacementIndex`](crate::sim) mirror. Never serialized; rebuilt
//!   from the authoritative fields on restore.
//! * **Refined predictor state** — never serialized either. The
//!   snapshot instead carries the *absorbed-observation log*: the exact
//!   batches the run has fed to `PlacementPredictor::absorb`, in order.
//!   Restoring replays them through a freshly trained predictor, which
//!   reaches bit-identical refined cells (restore-by-replay). This
//!   keeps model internals out of the format entirely.
//!
//! The journal rides along as a verbatim section: its already-emitted
//! record lines plus the cursor ([`JournalResume`]) a resumed
//! [`Journal`] needs to continue the sequence byte-for-byte.
//!
//! What is deliberately *not* snapshotted: the metrics registry and
//! wall-clock reservoirs (operational telemetry, not part of the
//! determinism surface) and the profile cache (keyed re-computation —
//! hits only change speed, never results).

use crate::sim::{FleetSim, NicState, Parked};
use crate::{FleetPolicy, FleetSample, ProfiledTrace};
use std::fmt::Write as _;
use yala_core::engine::Engine;
use yala_core::Observation;
use yala_nf::NfKind;
use yala_sim::{CounterSample, NicModelId, ResourceKind};
use yala_telemetry::{parse_line, Journal, RawEvent};
use yala_traffic::TrafficProfile;

/// Format version written in the header's `yala_snapshot` field.
pub const SNAPSHOT_VERSION: i64 = 1;

/// Why a snapshot failed to load.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The first line is missing, unparseable, or not a snapshot header.
    BadHeader(String),
    /// The header announces a version this reader does not speak.
    UnsupportedVersion(i64),
    /// The snapshot was taken from a different run (label, seed, or
    /// trace length mismatch) than the one being restored.
    WrongRun(String),
    /// A body line (1-based, counting the header as line 1) is
    /// malformed.
    BadLine { line: usize, reason: String },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadHeader(why) => write!(f, "bad snapshot header: {why}"),
            SnapshotError::UnsupportedVersion(v) => write!(
                f,
                "unsupported snapshot version {v} (reader speaks {SNAPSHOT_VERSION})"
            ),
            SnapshotError::WrongRun(why) => write!(f, "snapshot is from a different run: {why}"),
            SnapshotError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The journal cursor carried by a snapshot: everything
/// [`Journal::resume`] needs, plus the verbatim prefix text for
/// byte-exact stitching.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalResume {
    /// Records emitted before the snapshot (the resumed journal's base
    /// sequence number).
    pub events: u64,
    /// Records dropped at the capacity bound before the snapshot.
    pub dropped: u64,
    /// The shared capacity bound.
    pub capacity: usize,
    /// Timestamp of the last pre-snapshot record (trailer fallback).
    pub last_t_ms: u64,
    /// The pre-snapshot record lines, verbatim. Concatenating this with
    /// the resumed journal's `to_jsonl()` reproduces the uninterrupted
    /// journal byte-for-byte.
    pub prefix: String,
}

impl JournalResume {
    /// A resumed [`Journal`] continuing this cursor's sequence.
    pub fn resume(&self) -> Journal {
        Journal::resume(self.capacity, self.events, self.dropped, self.last_t_ms)
    }
}

/// Serializes one observation as a flat JSONL line tagged with its
/// batch: `-1` = still pending, `k ≥ 0` = absorbed in batch `k`. Public
/// because the serving daemon's `observe` wire message reuses exactly
/// this field layout.
pub fn write_observation(out: &mut String, batch: i64, o: &Observation) {
    let _ = write!(
        out,
        "{{\"sn\":\"obs\",\"batch\":{batch},\"model\":\"{}\",\"kind\":\"{}\",\"flows\":{},\"psize\":{},\"mtbr\":{}",
        o.model.as_str(),
        o.kind.name(),
        o.traffic.flow_count,
        o.traffic.packet_size,
        o.traffic.mtbr,
    );
    let c = &o.competitors;
    let _ = write!(
        out,
        ",\"ipc\":{},\"irt\":{},\"l2crd\":{},\"l2cwr\":{},\"memrd\":{},\"memwr\":{},\"wss\":{}",
        c.ipc, c.irt, c.l2crd, c.l2cwr, c.memrd, c.memwr, c.wss
    );
    // Accelerator pressure flattens to one "kind:value" list (the wire
    // grammar has no arrays).
    let press: Vec<String> = o
        .accel_pressure
        .iter()
        .map(|(k, v)| format!("{k}:{v}"))
        .collect();
    let _ = writeln!(
        out,
        ",\"press\":\"{}\",\"solo\":{},\"measured\":{}}}",
        press.join(","),
        o.solo_tput,
        o.measured_tput
    );
}

fn parse_resource_kind(name: &str) -> Option<ResourceKind> {
    match name {
        "cpu-mem" => Some(ResourceKind::CpuMem),
        "regex" => Some(ResourceKind::Regex),
        "compression" => Some(ResourceKind::Compression),
        "crypto" => Some(ResourceKind::Crypto),
        _ => None,
    }
}

/// Decodes one observation from a parsed flat-JSONL line — the inverse
/// of [`write_observation`]. `line` is the 1-based line number used in
/// error messages.
pub fn read_observation(ev: &RawEvent, line: usize) -> Result<Observation, SnapshotError> {
    let bad = |reason: String| SnapshotError::BadLine { line, reason };
    let str_of = |key: &str| {
        ev.str(key)
            .ok_or_else(|| bad(format!("missing string field {key}")))
    };
    let int_of = |key: &str| {
        ev.int(key)
            .ok_or_else(|| bad(format!("missing integer field {key}")))
    };
    let num_of = |key: &str| {
        ev.num(key)
            .ok_or_else(|| bad(format!("missing numeric field {key}")))
    };
    let kind_name = str_of("kind")?;
    let kind =
        NfKind::from_name(kind_name).ok_or_else(|| bad(format!("unknown NF kind {kind_name}")))?;
    let mut accel_pressure = Vec::new();
    for entry in str_of("press")?.split(',').filter(|s| !s.is_empty()) {
        let (k, v) = entry
            .split_once(':')
            .ok_or_else(|| bad(format!("pressure entry {entry} is not kind:value")))?;
        let k = parse_resource_kind(k).ok_or_else(|| bad(format!("unknown resource {k}")))?;
        let v: f64 = v
            .parse()
            .map_err(|_| bad(format!("pressure value in {entry} is not a number")))?;
        accel_pressure.push((k, v));
    }
    Ok(Observation {
        model: NicModelId::intern(str_of("model")?),
        kind,
        traffic: TrafficProfile::new(
            int_of("flows")? as u32,
            int_of("psize")? as u32,
            num_of("mtbr")?,
        ),
        competitors: CounterSample {
            ipc: num_of("ipc")?,
            irt: num_of("irt")?,
            l2crd: num_of("l2crd")?,
            l2cwr: num_of("l2cwr")?,
            memrd: num_of("memrd")?,
            memwr: num_of("memwr")?,
            wss: num_of("wss")?,
        },
        accel_pressure,
        solo_tput: num_of("solo")?,
        measured_tput: num_of("measured")?,
    })
}

/// Serializes a running simulation — and, optionally, its telemetry
/// journal — to versioned snapshot text. Meaningful at any event
/// boundary; callers wanting epoch-aligned checkpoints stop on
/// [`Processed::Audit`](crate::Processed).
pub fn snapshot_fleet(sim: &FleetSim<'_>, journal: Option<&Journal>) -> String {
    let cfg = &sim.profiled.trace.config;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"yala_snapshot\":{SNAPSHOT_VERSION},\"label\":\"{}\",\"seed\":\"{}\",\"trace_len\":{},\"nics\":{},\"next_event\":{}",
        sim.label,
        cfg.seed,
        sim.profiled.trace.records.len(),
        cfg.nics(),
        sim.next_event,
    );
    let _ = write!(
        out,
        ",\"rejected\":{},\"migrations\":{},\"violation_minutes\":{},\"nic_minutes\":{},\"oracle_lb_nic_minutes\":{},\"wasted_core_minutes\":{},\"peak_nics\":{},\"faults\":{},\"drains\":{}",
        sim.rejected,
        sim.migrations_total,
        sim.violation_minutes,
        sim.nic_minutes,
        sim.oracle_lb_nic_minutes,
        sim.wasted_core_minutes,
        sim.peak_nics,
        sim.faults_total,
        sim.drains_total,
    );
    let _ = writeln!(
        out,
        ",\"violation_min_g\":{},\"violation_min_b\":{},\"downtime_min_g\":{},\"downtime_min_b\":{},\"evac_g\":{},\"evac_b\":{},\"shed_g\":{},\"shed_b\":{},\"readmit_g\":{},\"readmit_b\":{}}}",
        sim.violation_min[0],
        sim.violation_min[1],
        sim.downtime_min[0],
        sim.downtime_min[1],
        sim.evacuations[0],
        sim.evacuations[1],
        sim.shed[0],
        sim.shed[1],
        sim.readmitted[0],
        sim.readmitted[1],
    );
    // NIC states, comma-joined in fleet order.
    let states: Vec<&str> = sim
        .state
        .iter()
        .map(|s| match s {
            NicState::Up => "up",
            NicState::Draining => "draining",
            NicState::Down => "down",
        })
        .collect();
    let _ = writeln!(
        out,
        "{{\"sn\":\"states\",\"list\":\"{}\"}}",
        states.join(",")
    );
    // Residents per occupied NIC (empty NICs are implicit).
    for (nic, res) in sim.residents.iter().enumerate() {
        if res.is_empty() {
            continue;
        }
        let ids: Vec<String> = res.iter().map(|id| id.to_string()).collect();
        let _ = writeln!(
            out,
            "{{\"sn\":\"residents\",\"nic\":{nic},\"ids\":\"{}\"}}",
            ids.join(",")
        );
    }
    // Drift cursors, sparse (zero is the reset value).
    let cursors: Vec<String> = sim
        .cursor
        .iter()
        .enumerate()
        .filter(|(_, &c)| c != 0)
        .map(|(id, &c)| format!("{id}:{c}"))
        .collect();
    let _ = writeln!(
        out,
        "{{\"sn\":\"cursor\",\"list\":\"{}\"}}",
        cursors.join(",")
    );
    for p in &sim.parked {
        let _ = writeln!(
            out,
            "{{\"sn\":\"parked\",\"id\":{},\"retry_ms\":{},\"backoff\":{}}}",
            p.id, p.next_retry_ms, p.backoff_epochs
        );
    }
    for s in &sim.samples {
        let _ = writeln!(
            out,
            "{{\"sn\":\"sample\",\"t_s\":{},\"active\":{},\"nics\":{},\"violating\":{},\"migrations\":{},\"wasted\":{},\"oracle_lb\":{},\"parked\":{},\"down\":{}}}",
            s.t_s,
            s.active_nfs,
            s.nics_in_use,
            s.violating_nfs,
            s.migrations,
            s.wasted_cores,
            s.oracle_lb_nics,
            s.parked,
            s.down_nics,
        );
    }
    for (k, batch) in sim.absorb_log.iter().enumerate() {
        for o in batch {
            write_observation(&mut out, k as i64, o);
        }
    }
    for o in sim.pending.iter() {
        write_observation(&mut out, -1, o);
    }
    if let Some(j) = journal {
        let last_t_ms = j.records().last().map(|r| r.t_ms).unwrap_or(0);
        let _ = writeln!(
            out,
            "{{\"sn\":\"journal\",\"events\":{},\"dropped\":{},\"capacity\":{},\"last_t_ms\":{last_t_ms}}}",
            j.base() + j.len() as u64,
            j.dropped(),
            j.capacity(),
        );
        out.push_str(&j.records_jsonl());
    }
    out
}

/// Restores a run from snapshot text: rebuilds a fresh [`FleetSim`]
/// over the same profiled trace and policy, overwrites its
/// authoritative state from the snapshot, rebuilds derived structures,
/// and replays the absorbed-observation log through the policy's
/// predictor. Returns the simulation, positioned exactly where the
/// snapshot was taken, plus the journal cursor if one was recorded.
///
/// The caller must supply the same `profiled` trace, an equivalently
/// *freshly trained* `policy`, and the same `label` as the original
/// run — the snapshot's header fields are cross-checked and a mismatch
/// is [`SnapshotError::WrongRun`].
pub fn restore_fleet<'a>(
    profiled: &'a ProfiledTrace,
    policy: FleetPolicy<'a>,
    label: &str,
    text: &str,
    engine: &Engine,
) -> Result<(FleetSim<'a>, Option<JournalResume>), SnapshotError> {
    let mut lines = text.lines().enumerate();
    let (_, header_line) = lines
        .next()
        .ok_or_else(|| SnapshotError::BadHeader("empty snapshot".to_string()))?;
    let header = parse_line(header_line)
        .ok_or_else(|| SnapshotError::BadHeader("unparseable first line".to_string()))?;
    let version = header
        .int("yala_snapshot")
        .ok_or_else(|| SnapshotError::BadHeader("missing yala_snapshot version".to_string()))?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let cfg = &profiled.trace.config;
    if header.str("label") != Some(label) {
        return Err(SnapshotError::WrongRun(format!(
            "label {:?} != {label:?}",
            header.str("label").unwrap_or("<missing>")
        )));
    }
    let seed = header.str("seed").and_then(|s| s.parse::<u64>().ok());
    if seed != Some(cfg.seed) {
        return Err(SnapshotError::WrongRun(format!(
            "seed {seed:?} != {}",
            cfg.seed
        )));
    }
    if header.int("trace_len") != Some(profiled.trace.records.len() as i64) {
        return Err(SnapshotError::WrongRun("trace length differs".to_string()));
    }
    if header.int("nics") != Some(cfg.nics() as i64) {
        return Err(SnapshotError::WrongRun("fleet size differs".to_string()));
    }
    let need_int = |key: &str| {
        header
            .int(key)
            .ok_or_else(|| SnapshotError::BadHeader(format!("missing {key}")))
    };
    let need_num = |key: &str| {
        header
            .num(key)
            .ok_or_else(|| SnapshotError::BadHeader(format!("missing {key}")))
    };

    let mut sim = FleetSim::new(profiled, policy, label);
    sim.next_event = need_int("next_event")? as usize;
    if sim.next_event > sim.events.len() {
        return Err(SnapshotError::BadHeader(format!(
            "next_event {} beyond the {}-event run",
            sim.next_event,
            sim.events.len()
        )));
    }
    sim.rejected = need_int("rejected")? as u32;
    sim.migrations_total = need_int("migrations")? as u32;
    sim.violation_minutes = need_num("violation_minutes")?;
    sim.nic_minutes = need_num("nic_minutes")?;
    sim.oracle_lb_nic_minutes = need_num("oracle_lb_nic_minutes")?;
    sim.wasted_core_minutes = need_num("wasted_core_minutes")?;
    sim.peak_nics = need_int("peak_nics")? as u32;
    sim.faults_total = need_int("faults")? as u32;
    sim.drains_total = need_int("drains")? as u32;
    sim.violation_min = [need_num("violation_min_g")?, need_num("violation_min_b")?];
    sim.downtime_min = [need_num("downtime_min_g")?, need_num("downtime_min_b")?];
    sim.evacuations = [need_int("evac_g")? as u32, need_int("evac_b")? as u32];
    sim.shed = [need_int("shed_g")? as u32, need_int("shed_b")? as u32];
    sim.readmitted = [need_int("readmit_g")? as u32, need_int("readmit_b")? as u32];

    sim.parked.clear();
    sim.samples.clear();
    let mut absorb_log: Vec<Vec<Observation>> = Vec::new();
    let mut journal: Option<JournalResume> = None;
    for (i, raw) in lines {
        let line_no = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        if let Some(j) = journal.as_mut() {
            // Everything after the journal marker is a verbatim record
            // line of the pre-snapshot journal.
            j.prefix.push_str(raw);
            j.prefix.push('\n');
            continue;
        }
        let ev = parse_line(raw).ok_or_else(|| SnapshotError::BadLine {
            line: line_no,
            reason: "unparseable line".to_string(),
        })?;
        let bad = |reason: String| SnapshotError::BadLine {
            line: line_no,
            reason,
        };
        let int_of = |key: &str| {
            ev.int(key)
                .ok_or_else(|| bad(format!("missing integer field {key}")))
        };
        match ev.str("sn") {
            Some("states") => {
                let list = ev
                    .str("list")
                    .ok_or_else(|| bad("missing list".to_string()))?;
                let states: Vec<NicState> = list
                    .split(',')
                    .map(|s| match s {
                        "up" => Ok(NicState::Up),
                        "draining" => Ok(NicState::Draining),
                        "down" => Ok(NicState::Down),
                        other => Err(bad(format!("unknown NIC state {other}"))),
                    })
                    .collect::<Result<_, _>>()?;
                if states.len() != sim.state.len() {
                    return Err(bad(format!(
                        "{} NIC states for a {}-NIC fleet",
                        states.len(),
                        sim.state.len()
                    )));
                }
                sim.state = states;
            }
            Some("residents") => {
                let nic = int_of("nic")? as usize;
                if nic >= sim.residents.len() {
                    return Err(bad(format!("NIC {nic} outside the fleet")));
                }
                let ids = ev
                    .str("ids")
                    .ok_or_else(|| bad("missing ids".to_string()))?;
                let mut res = Vec::new();
                for tok in ids.split(',').filter(|s| !s.is_empty()) {
                    let id: u32 = tok
                        .parse()
                        .map_err(|_| bad(format!("resident id {tok} is not a number")))?;
                    if id as usize >= profiled.trace.records.len() {
                        return Err(bad(format!("resident {id} outside the trace")));
                    }
                    res.push(id);
                }
                sim.residents[nic] = res;
            }
            Some("cursor") => {
                let list = ev
                    .str("list")
                    .ok_or_else(|| bad("missing list".to_string()))?;
                for entry in list.split(',').filter(|s| !s.is_empty()) {
                    let (id, c) = entry
                        .split_once(':')
                        .ok_or_else(|| bad(format!("cursor entry {entry} is not id:index")))?;
                    let id: usize = id
                        .parse()
                        .map_err(|_| bad(format!("cursor id in {entry} is not a number")))?;
                    let c: usize = c
                        .parse()
                        .map_err(|_| bad(format!("cursor index in {entry} is not a number")))?;
                    if id >= sim.cursor.len() {
                        return Err(bad(format!("cursor id {id} outside the trace")));
                    }
                    sim.cursor[id] = c;
                }
            }
            Some("parked") => {
                sim.parked.push(Parked {
                    id: int_of("id")? as u32,
                    next_retry_ms: int_of("retry_ms")? as u64,
                    backoff_epochs: int_of("backoff")? as u64,
                });
            }
            Some("sample") => {
                sim.samples.push(FleetSample {
                    t_s: int_of("t_s")? as u64,
                    active_nfs: int_of("active")? as u32,
                    nics_in_use: int_of("nics")? as u32,
                    violating_nfs: int_of("violating")? as u32,
                    migrations: int_of("migrations")? as u32,
                    wasted_cores: int_of("wasted")? as u32,
                    oracle_lb_nics: int_of("oracle_lb")? as u32,
                    parked: int_of("parked")? as u32,
                    down_nics: int_of("down")? as u32,
                });
            }
            Some("obs") => {
                let batch = int_of("batch")?;
                let o = read_observation(&ev, line_no)?;
                if batch < 0 {
                    sim.pending.push(o);
                } else {
                    let k = batch as usize;
                    if k >= absorb_log.len() {
                        absorb_log.resize_with(k + 1, Vec::new);
                    }
                    absorb_log[k].push(o);
                }
            }
            Some("journal") => {
                journal = Some(JournalResume {
                    events: int_of("events")? as u64,
                    dropped: int_of("dropped")? as u64,
                    capacity: int_of("capacity")? as usize,
                    last_t_ms: int_of("last_t_ms")? as u64,
                    prefix: String::new(),
                });
            }
            other => {
                return Err(bad(format!("unknown section {other:?}")));
            }
        }
    }
    sim.absorb_log = absorb_log;
    sim.rebuild_derived();
    sim.replay_absorbs(engine);
    Ok((sim, journal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FleetConfig, FleetTrace, Processed};
    use yala_telemetry::Telemetry;

    fn profiled(seed: u64) -> ProfiledTrace {
        let mut cfg = FleetConfig::mixed(seed, 8);
        cfg.duration_s = 3_000;
        cfg.mean_interarrival_s = 120.0;
        cfg.mean_lifetime_s = 900.0;
        cfg.audit_period_s = 600;
        cfg.guaranteed_fraction = 0.6;
        cfg.faults = crate::FaultPlan {
            mtbf_s: 3_600.0,
            mean_repair_s: 600.0,
            drains: 1,
            drain_notice_s: 300,
            drain_offline_s: 300,
        };
        ProfiledTrace::build(FleetTrace::generate(cfg), &Engine::sequential())
    }

    #[test]
    fn snapshot_mid_run_restores_bit_identically() {
        let engine = Engine::sequential();
        let p = profiled(51);
        // Uninterrupted greedy run with a journal.
        let mut tel = Telemetry::enabled();
        let whole = crate::run_fleet_observed(&p, FleetPolicy::Greedy, "greedy", &engine, &mut tel);
        let whole_journal = tel.sink().expect("enabled").journal.to_jsonl();
        // Interrupted run: stop at the second audit, snapshot, drop
        // everything, restore, finish.
        let mut tel1 = Telemetry::enabled();
        let mut sim = FleetSim::new(&p, FleetPolicy::Greedy, "greedy");
        let mut audits = 0;
        while let Some(ev) = sim.step(&engine, &mut tel1) {
            if matches!(ev, Processed::Audit(_)) {
                audits += 1;
                if audits == 2 {
                    break;
                }
            }
        }
        let text = snapshot_fleet(&sim, Some(&tel1.sink().expect("enabled").journal));
        drop(sim);
        drop(tel1);
        let (mut sim2, resume) =
            restore_fleet(&p, FleetPolicy::Greedy, "greedy", &text, &engine).expect("restore");
        let resume = resume.expect("journal section present");
        let mut tel2 = Telemetry::enabled();
        tel2.sink_mut().expect("enabled").journal = resume.resume();
        while sim2.step(&engine, &mut tel2).is_some() {}
        let stitched = format!(
            "{}{}",
            resume.prefix,
            tel2.sink().expect("enabled").journal.to_jsonl()
        );
        let report2 = sim2.into_report();
        assert_eq!(report2, whole, "restored report must be bit-identical");
        assert_eq!(report2.to_json(), whole.to_json());
        assert_eq!(
            stitched, whole_journal,
            "stitched journal must be byte-identical"
        );
    }

    #[test]
    fn restore_rejects_mismatched_runs() {
        let engine = Engine::sequential();
        let p = profiled(52);
        let sim = FleetSim::new(&p, FleetPolicy::Greedy, "greedy");
        let text = snapshot_fleet(&sim, None);
        assert!(matches!(
            restore_fleet(&p, FleetPolicy::Greedy, "other-label", &text, &engine),
            Err(SnapshotError::WrongRun(_))
        ));
        let p2 = profiled(53);
        assert!(matches!(
            restore_fleet(&p2, FleetPolicy::Greedy, "greedy", &text, &engine),
            Err(SnapshotError::WrongRun(_))
        ));
        assert!(matches!(
            restore_fleet(&p, FleetPolicy::Greedy, "greedy", "", &engine),
            Err(SnapshotError::BadHeader(_))
        ));
        let vandalized = text.replacen("\"yala_snapshot\":1", "\"yala_snapshot\":9", 1);
        assert!(matches!(
            restore_fleet(&p, FleetPolicy::Greedy, "greedy", &vandalized, &engine),
            Err(SnapshotError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn observations_round_trip_through_snapshot_text() {
        let o = Observation {
            model: NicModelId::intern("bluefield2"),
            kind: NfKind::Nids,
            traffic: TrafficProfile::new(12_345, 512, 733.25),
            competitors: CounterSample {
                ipc: 1.25,
                irt: 9.5e8,
                l2crd: 1.5e7,
                l2cwr: 2.5e6,
                memrd: 3.75e6,
                memwr: 1.125e6,
                wss: 6.5e7,
            },
            accel_pressure: vec![(ResourceKind::Regex, 0.375)],
            solo_tput: 1.0e7,
            measured_tput: 8.25e6,
        };
        let mut text = String::new();
        write_observation(&mut text, 0, &o);
        let ev = parse_line(text.trim()).expect("parseable");
        let back = read_observation(&ev, 1).expect("decodable");
        assert_eq!(back, o, "observation must round-trip exactly");
    }
}
