//! Journal replay: reconstructs a [`FleetReport`]'s headline counters
//! from the event journal alone, and checks them against the report the
//! run actually produced.
//!
//! This is the observability plane's self-test. The journal claims to be
//! a complete causal record of the run; if it is, a cold reader that has
//! never seen the simulator state — only the ordered event stream — must
//! be able to re-derive every headline number. The reconstruction uses
//! the same accumulation order as the event loop (per-event class
//! minutes, per-epoch totals, park-set membership at each epoch), so the
//! comparison is exact, not approximate: any drift between journal and
//! report is a bug in one of them.

use crate::report::{ClassStats, FleetReport};
use yala_telemetry::{Event, Journal};

/// Headline counters re-derived from a journal by [`replay_journal`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplaySummary {
    /// `Arrival` events (should equal the report's `total_arrivals`).
    pub arrivals: u32,
    /// `Reject` events.
    pub rejected: u32,
    /// `Migrate` events.
    pub migrations: u32,
    /// `Fault` events with kind `fail`.
    pub faults: u32,
    /// `Fault` events with kind `drain_start`.
    pub drains: u32,
    /// Per-epoch `violating × period` integral from `Audit` events.
    pub violation_minutes: f64,
    /// Guaranteed-class degradation accounting.
    pub guaranteed: ClassStats,
    /// Best-effort-class degradation accounting.
    pub best_effort: ClassStats,
}

impl ReplaySummary {
    fn class_mut(&mut self, qos: &str) -> &mut ClassStats {
        if qos == "guaranteed" {
            &mut self.guaranteed
        } else {
            &mut self.best_effort
        }
    }
}

/// Replays a journal into a [`ReplaySummary`], walking the records in
/// insertion order and applying the event loop's own accounting rules:
/// violation minutes accrue per `Violation` (class) and per `Audit`
/// (total), downtime accrues at each `Epoch` for every NF parked at
/// that moment (`Park` adds membership, `Readmit`/`Depart` remove it).
pub fn replay_journal(journal: &Journal, audit_period_s: u64) -> ReplaySummary {
    let period_min = audit_period_s as f64 / 60.0;
    let mut s = ReplaySummary::default();
    // Parked set as `(id, guaranteed?)`, in park order like the sim's.
    let mut parked: Vec<(u32, bool)> = Vec::new();
    for r in journal.records() {
        match &r.event {
            Event::Arrival { .. } => s.arrivals += 1,
            Event::Reject { .. } => s.rejected += 1,
            Event::Migrate { .. } => s.migrations += 1,
            Event::Fault { kind, .. } => match *kind {
                "fail" => s.faults += 1,
                "drain_start" => s.drains += 1,
                _ => {}
            },
            Event::Violation { qos, .. } => {
                s.class_mut(qos).violation_minutes += period_min;
            }
            Event::Evacuate { qos, .. } => s.class_mut(qos).evacuations += 1,
            Event::Park { id, qos, .. } => {
                s.class_mut(qos).shed += 1;
                parked.push((*id, *qos == "guaranteed"));
            }
            Event::Readmit { id, qos, .. } => {
                s.class_mut(qos).readmitted += 1;
                parked.retain(|&(p, _)| p != *id);
            }
            Event::Depart { id, .. } => parked.retain(|&(p, _)| p != *id),
            Event::Audit { violating, .. } => {
                s.violation_minutes += *violating as f64 * period_min;
            }
            Event::Epoch { .. } => {
                for &(_, guaranteed) in &parked {
                    let c = if guaranteed {
                        &mut s.guaranteed
                    } else {
                        &mut s.best_effort
                    };
                    c.downtime_minutes += period_min;
                }
            }
            _ => {}
        }
    }
    s
}

/// Replays `journal` and checks every reconstructed counter against
/// `report`, **exactly** — the accumulation sequences match the event
/// loop's, so even the float fields must be bitwise equal. Returns the
/// summary on success and a list of mismatches otherwise.
pub fn verify_against(report: &FleetReport, journal: &Journal) -> Result<ReplaySummary, String> {
    let s = replay_journal(journal, report.audit_period_s);
    let mut errs: Vec<String> = Vec::new();
    let check_u32 = |errs: &mut Vec<String>, name: &str, got: u32, want: u32| {
        if got != want {
            errs.push(format!("{name}: journal {got} != report {want}"));
        }
    };
    check_u32(&mut errs, "arrivals", s.arrivals, report.total_arrivals);
    check_u32(&mut errs, "rejected", s.rejected, report.rejected);
    check_u32(&mut errs, "migrations", s.migrations, report.migrations);
    check_u32(&mut errs, "faults", s.faults, report.faults);
    check_u32(&mut errs, "drains", s.drains, report.drains);
    for (label, got, want) in [
        ("guaranteed", &s.guaranteed, &report.guaranteed),
        ("best_effort", &s.best_effort, &report.best_effort),
    ] {
        check_u32(
            &mut errs,
            &format!("{label}.evacuations"),
            got.evacuations,
            want.evacuations,
        );
        check_u32(&mut errs, &format!("{label}.shed"), got.shed, want.shed);
        check_u32(
            &mut errs,
            &format!("{label}.readmitted"),
            got.readmitted,
            want.readmitted,
        );
        for (field, g, w) in [
            (
                "violation_minutes",
                got.violation_minutes,
                want.violation_minutes,
            ),
            (
                "downtime_minutes",
                got.downtime_minutes,
                want.downtime_minutes,
            ),
        ] {
            if g != w {
                errs.push(format!("{label}.{field}: journal {g} != report {w}"));
            }
        }
    }
    if s.violation_minutes != report.violation_minutes {
        errs.push(format!(
            "violation_minutes: journal {} != report {}",
            s.violation_minutes, report.violation_minutes
        ));
    }
    if errs.is_empty() {
        Ok(s)
    } else {
        Err(errs.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FleetPolicy;
    use crate::sim::run_fleet_observed;
    use crate::timeline::ProfiledTrace;
    use crate::trace::{FleetConfig, FleetTrace};
    use yala_core::Engine;
    use yala_telemetry::Telemetry;

    fn observed_run(seed: u64) -> (FleetReport, Journal) {
        let mut cfg = FleetConfig::small(seed);
        cfg.duration_s = 2_400;
        cfg.mean_interarrival_s = 150.0;
        cfg.mean_lifetime_s = 900.0;
        cfg.audit_period_s = 600;
        let engine = Engine::sequential();
        let mut tel = Telemetry::enabled();
        let profiled = ProfiledTrace::build_observed(FleetTrace::generate(cfg), &engine, &mut tel);
        let report =
            run_fleet_observed(&profiled, FleetPolicy::Greedy, "greedy", &engine, &mut tel);
        let journal = tel
            .sink()
            .map(|s| s.journal.clone())
            .expect("enabled telemetry has a sink");
        (report, journal)
    }

    #[test]
    fn replay_reconstructs_the_report() {
        let (report, journal) = observed_run(31);
        let s = verify_against(&report, &journal).expect("journal replays to the report");
        assert_eq!(s.arrivals, report.total_arrivals);
        assert!(s.arrivals > 0, "scenario produced arrivals");
    }

    #[test]
    fn verify_catches_a_corrupted_report() {
        let (mut report, journal) = observed_run(32);
        report.migrations += 1;
        report.guaranteed.violation_minutes += 1.0;
        let err = verify_against(&report, &journal).expect_err("mismatch must be reported");
        assert!(err.contains("migrations"), "err was: {err}");
        assert!(
            err.contains("guaranteed.violation_minutes"),
            "err was: {err}"
        );
    }

    #[test]
    fn empty_journal_replays_to_zero() {
        let s = replay_journal(&Journal::new(), 600);
        assert_eq!(s, ReplaySummary::default());
    }
}
