//! The `.yala-trace` recorded-arrivals file format: a versioned JSONL
//! encoding of a [`FleetTrace`] — config header, one line per NF
//! record, one line per scheduled fault. The same file serves as a CI
//! fixture, a production audit log, and the input to `yalad --replay`:
//! writer and reader round-trip a trace exactly (floats are rendered
//! with Rust's shortest-exact `Display` and re-parsed with
//! `str::parse`, which is lossless by construction), so every consumer
//! of a recorded file sees bit-identical records.
//!
//! The wire grammar is the telemetry journal's flat JSONL subset
//! (string / bool / integer / float scalars, no nesting, no escapes),
//! parsed with [`yala_telemetry::parse_line`] — one parser for
//! journals, traces, snapshots, and the daemon protocol. `u64` values
//! that can exceed `i64::MAX` (the seed) travel as quoted decimal
//! strings.

use crate::trace::{
    FaultEvent, FaultKind, FleetConfig, FleetTrace, NfRecord, TraceError, TrafficModel,
};
use std::fmt::Write as _;
use yala_core::QosClass;
use yala_nf::NfKind;
use yala_sim::NicSpec;
use yala_telemetry::{parse_line, RawEvent};
use yala_traffic::TrafficProfile;

/// Format version written in the header's `yala_trace` field. Bump on
/// any schema change; readers reject versions they do not understand.
pub const TRACE_VERSION: i64 = 1;

/// Why a `.yala-trace` file failed to load. Every variant carries
/// enough context to point at the offending line.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceIoError {
    /// The first line is missing, unparseable, or not a trace header.
    BadHeader(String),
    /// The header announces a version this reader does not speak.
    UnsupportedVersion(i64),
    /// A body line (1-based, counting the header as line 1) is
    /// malformed.
    BadLine { line: usize, reason: String },
    /// The decoded records failed [`FleetTrace::from_records`]
    /// validation.
    Invalid(TraceError),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::BadHeader(why) => write!(f, "bad trace header: {why}"),
            TraceIoError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (reader speaks {TRACE_VERSION})"
                )
            }
            TraceIoError::BadLine { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            TraceIoError::Invalid(e) => write!(f, "invalid trace: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<TraceError> for TraceIoError {
    fn from(e: TraceError) -> Self {
        TraceIoError::Invalid(e)
    }
}

/// Serializes a trace to `.yala-trace` JSONL text.
pub fn write_trace(trace: &FleetTrace) -> String {
    let cfg = &trace.config;
    let mut out = String::new();
    out.push_str(&format!("{{\"yala_trace\":{TRACE_VERSION}"));
    let _ = write!(out, ",\"seed\":\"{}\"", cfg.seed);
    let _ = write!(out, ",\"duration_s\":{}", cfg.duration_s);
    let _ = write!(out, ",\"mean_interarrival_s\":{}", cfg.mean_interarrival_s);
    let _ = write!(out, ",\"mean_lifetime_s\":{}", cfg.mean_lifetime_s);
    let _ = write!(out, ",\"audit_period_s\":{}", cfg.audit_period_s);
    let kinds: Vec<&str> = cfg.kinds.iter().map(|k| k.name()).collect();
    let _ = write!(out, ",\"kinds\":\"{}\"", kinds.join(","));
    let _ = write!(out, ",\"sla_lo\":{}", cfg.sla_drop_range.0);
    let _ = write!(out, ",\"sla_hi\":{}", cfg.sla_drop_range.1);
    let _ = write!(out, ",\"drift\":{}", cfg.drift);
    match cfg.traffic_model {
        TrafficModel::Uniform => {
            out.push_str(",\"traffic\":\"uniform\"");
        }
        TrafficModel::Templates { count, jitter } => {
            let _ = write!(
                out,
                ",\"traffic\":\"templates\",\"templates\":{count},\"jitter\":{jitter}"
            );
        }
    }
    let _ = write!(out, ",\"max_flows\":{}", cfg.max_flows);
    let _ = write!(out, ",\"reprofile_threshold\":{}", cfg.reprofile_threshold);
    let _ = write!(out, ",\"max_migrations\":{}", cfg.max_migrations_per_audit);
    let _ = write!(out, ",\"noise_sigma\":{}", cfg.noise_sigma);
    let _ = write!(out, ",\"guaranteed_fraction\":{}", cfg.guaranteed_fraction);
    let portfolio: Vec<String> = cfg
        .portfolio
        .iter()
        .map(|(s, n)| format!("{}:{n}", s.name))
        .collect();
    let _ = write!(out, ",\"portfolio\":\"{}\"", portfolio.join(","));
    let _ = write!(out, ",\"mtbf_s\":{}", cfg.faults.mtbf_s);
    let _ = write!(out, ",\"mean_repair_s\":{}", cfg.faults.mean_repair_s);
    let _ = write!(out, ",\"drains\":{}", cfg.faults.drains);
    let _ = write!(out, ",\"drain_notice_s\":{}", cfg.faults.drain_notice_s);
    let _ = write!(out, ",\"drain_offline_s\":{}", cfg.faults.drain_offline_s);
    let _ = writeln!(
        out,
        ",\"records\":{},\"faults\":{}}}",
        trace.records.len(),
        trace.faults.len()
    );
    for r in &trace.records {
        let _ = writeln!(
            out,
            "{{\"ev\":\"nf\",\"id\":{},\"kind\":\"{}\",\"qos\":\"{}\",\"arrival_ms\":{},\"departure_ms\":{},\"flows0\":{},\"psize0\":{},\"mtbr0\":{},\"flows1\":{},\"psize1\":{},\"mtbr1\":{},\"sla_drop\":{}}}",
            r.id,
            r.kind.name(),
            r.qos.name(),
            r.arrival_ms,
            r.departure_ms,
            r.start.flow_count,
            r.start.packet_size,
            r.start.mtbr,
            r.end.flow_count,
            r.end.packet_size,
            r.end.mtbr,
            r.sla_drop,
        );
    }
    for f in &trace.faults {
        let _ = writeln!(
            out,
            "{{\"ev\":\"fault\",\"t_ms\":{},\"nic\":{},\"kind\":\"{}\"}}",
            f.t_ms,
            f.nic,
            f.kind.name()
        );
    }
    out
}

/// Resolves a portfolio model name back to its hardware spec. The spec
/// table is code, not data, so only models the simulator implements can
/// appear in a trace file.
fn spec_by_name(name: &str) -> Option<NicSpec> {
    match name {
        "bluefield2" => Some(NicSpec::bluefield2()),
        "pensando" => Some(NicSpec::pensando()),
        _ => None,
    }
}

fn parse_fault_kind(name: &str) -> Option<FaultKind> {
    match name {
        "fail" => Some(FaultKind::Fail),
        "recover" => Some(FaultKind::Recover),
        "drain_start" => Some(FaultKind::DrainStart),
        "drain_end" => Some(FaultKind::DrainEnd),
        _ => None,
    }
}

fn parse_qos(name: &str) -> Option<QosClass> {
    match name {
        "guaranteed" => Some(QosClass::Guaranteed),
        "best_effort" => Some(QosClass::BestEffort),
        _ => None,
    }
}

/// Required string field, with a line-anchored error.
fn need_str<'e>(ev: &'e RawEvent, key: &str, line: usize) -> Result<&'e str, TraceIoError> {
    ev.str(key).ok_or_else(|| TraceIoError::BadLine {
        line,
        reason: format!("missing string field {key}"),
    })
}

fn need_int(ev: &RawEvent, key: &str, line: usize) -> Result<i64, TraceIoError> {
    ev.int(key).ok_or_else(|| TraceIoError::BadLine {
        line,
        reason: format!("missing integer field {key}"),
    })
}

fn need_num(ev: &RawEvent, key: &str, line: usize) -> Result<f64, TraceIoError> {
    ev.num(key).ok_or_else(|| TraceIoError::BadLine {
        line,
        reason: format!("missing numeric field {key}"),
    })
}

/// Parses `.yala-trace` JSONL text back into a [`FleetTrace`]. The
/// recorded fault lines are authoritative: they overwrite the schedule
/// recomputed from the config (for generated traces the two are
/// identical, but the file must stand alone).
pub fn read_trace(text: &str) -> Result<FleetTrace, TraceIoError> {
    let mut lines = text.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| TraceIoError::BadHeader("empty file".to_string()))?;
    let header = parse_line(header_line)
        .ok_or_else(|| TraceIoError::BadHeader("unparseable first line".to_string()))?;
    let version = header
        .int("yala_trace")
        .ok_or_else(|| TraceIoError::BadHeader("missing yala_trace version".to_string()))?;
    if version != TRACE_VERSION {
        return Err(TraceIoError::UnsupportedVersion(version));
    }
    let bad_header = |why: &str| TraceIoError::BadHeader(why.to_string());
    let seed: u64 = header
        .str("seed")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_header("missing or non-numeric seed"))?;
    let kinds_raw = header
        .str("kinds")
        .ok_or_else(|| bad_header("missing kinds"))?;
    let mut kinds = Vec::new();
    for name in kinds_raw.split(',').filter(|s| !s.is_empty()) {
        kinds.push(
            NfKind::from_name(name)
                .ok_or_else(|| bad_header(&format!("unknown NF kind {name}")))?,
        );
    }
    let portfolio_raw = header
        .str("portfolio")
        .ok_or_else(|| bad_header("missing portfolio"))?;
    let mut portfolio = Vec::new();
    for entry in portfolio_raw.split(',').filter(|s| !s.is_empty()) {
        let (name, count) = entry
            .split_once(':')
            .ok_or_else(|| bad_header(&format!("portfolio entry {entry} is not model:count")))?;
        let count: usize = count
            .parse()
            .map_err(|_| bad_header(&format!("portfolio count in {entry} is not a number")))?;
        let spec =
            spec_by_name(name).ok_or_else(|| bad_header(&format!("unknown NIC model {name}")))?;
        portfolio.push((spec, count));
    }
    let traffic_model = match header.str("traffic") {
        Some("uniform") | None => TrafficModel::Uniform,
        Some("templates") => TrafficModel::Templates {
            count: header
                .int("templates")
                .ok_or_else(|| bad_header("templates traffic without a template count"))?
                as u32,
            jitter: header
                .num("jitter")
                .ok_or_else(|| bad_header("templates traffic without a jitter"))?,
        },
        Some(other) => return Err(bad_header(&format!("unknown traffic model {other}"))),
    };
    let config = FleetConfig {
        portfolio,
        duration_s: header
            .int("duration_s")
            .ok_or_else(|| bad_header("missing duration_s"))? as u64,
        mean_interarrival_s: header
            .num("mean_interarrival_s")
            .ok_or_else(|| bad_header("missing mean_interarrival_s"))?,
        mean_lifetime_s: header
            .num("mean_lifetime_s")
            .ok_or_else(|| bad_header("missing mean_lifetime_s"))?,
        audit_period_s: header
            .int("audit_period_s")
            .ok_or_else(|| bad_header("missing audit_period_s"))? as u64,
        kinds,
        sla_drop_range: (
            header
                .num("sla_lo")
                .ok_or_else(|| bad_header("missing sla_lo"))?,
            header
                .num("sla_hi")
                .ok_or_else(|| bad_header("missing sla_hi"))?,
        ),
        drift: matches!(
            header.get("drift"),
            Some(yala_telemetry::journal::FieldValue::Bool(true))
        ),
        traffic_model,
        max_flows: header
            .int("max_flows")
            .ok_or_else(|| bad_header("missing max_flows"))? as u32,
        reprofile_threshold: header
            .num("reprofile_threshold")
            .ok_or_else(|| bad_header("missing reprofile_threshold"))?,
        max_migrations_per_audit: header
            .int("max_migrations")
            .ok_or_else(|| bad_header("missing max_migrations"))?
            as usize,
        noise_sigma: header
            .num("noise_sigma")
            .ok_or_else(|| bad_header("missing noise_sigma"))?,
        guaranteed_fraction: header
            .num("guaranteed_fraction")
            .ok_or_else(|| bad_header("missing guaranteed_fraction"))?,
        faults: crate::trace::FaultPlan {
            mtbf_s: header.num("mtbf_s").unwrap_or(0.0),
            mean_repair_s: header.num("mean_repair_s").unwrap_or(0.0),
            drains: header.int("drains").unwrap_or(0) as u32,
            drain_notice_s: header.int("drain_notice_s").unwrap_or(0) as u64,
            drain_offline_s: header.int("drain_offline_s").unwrap_or(0) as u64,
        },
        seed,
    };
    let expect_records = header.int("records").unwrap_or(-1);
    let expect_faults = header.int("faults").unwrap_or(-1);

    let nics = config.nics();
    let mut records = Vec::new();
    let mut faults = Vec::new();
    for (i, raw) in lines.enumerate() {
        let line_no = i + 2;
        if raw.trim().is_empty() {
            continue;
        }
        let ev = parse_line(raw).ok_or_else(|| TraceIoError::BadLine {
            line: line_no,
            reason: "unparseable line".to_string(),
        })?;
        match need_str(&ev, "ev", line_no)? {
            "nf" => {
                let kind_name = need_str(&ev, "kind", line_no)?;
                let kind = NfKind::from_name(kind_name).ok_or_else(|| TraceIoError::BadLine {
                    line: line_no,
                    reason: format!("unknown NF kind {kind_name}"),
                })?;
                let qos_name = need_str(&ev, "qos", line_no)?;
                let qos = parse_qos(qos_name).ok_or_else(|| TraceIoError::BadLine {
                    line: line_no,
                    reason: format!("unknown QoS class {qos_name}"),
                })?;
                records.push(NfRecord {
                    id: need_int(&ev, "id", line_no)? as u32,
                    kind,
                    arrival_ms: need_int(&ev, "arrival_ms", line_no)? as u64,
                    departure_ms: need_int(&ev, "departure_ms", line_no)? as u64,
                    start: TrafficProfile::new(
                        need_int(&ev, "flows0", line_no)? as u32,
                        need_int(&ev, "psize0", line_no)? as u32,
                        need_num(&ev, "mtbr0", line_no)?,
                    ),
                    end: TrafficProfile::new(
                        need_int(&ev, "flows1", line_no)? as u32,
                        need_int(&ev, "psize1", line_no)? as u32,
                        need_num(&ev, "mtbr1", line_no)?,
                    ),
                    sla_drop: need_num(&ev, "sla_drop", line_no)?,
                    qos,
                });
            }
            "fault" => {
                let kind_name = need_str(&ev, "kind", line_no)?;
                let kind = parse_fault_kind(kind_name).ok_or_else(|| TraceIoError::BadLine {
                    line: line_no,
                    reason: format!("unknown fault kind {kind_name}"),
                })?;
                let nic = need_int(&ev, "nic", line_no)? as usize;
                if nic >= nics {
                    return Err(TraceIoError::BadLine {
                        line: line_no,
                        reason: format!("fault NIC {nic} outside a {nics}-NIC fleet"),
                    });
                }
                faults.push(FaultEvent {
                    t_ms: need_int(&ev, "t_ms", line_no)? as u64,
                    nic,
                    kind,
                });
            }
            other => {
                return Err(TraceIoError::BadLine {
                    line: line_no,
                    reason: format!("unknown event type {other}"),
                })
            }
        }
    }
    if expect_records >= 0 && records.len() as i64 != expect_records {
        return Err(TraceIoError::BadHeader(format!(
            "header promises {expect_records} records, file has {}",
            records.len()
        )));
    }
    if expect_faults >= 0 && faults.len() as i64 != expect_faults {
        return Err(TraceIoError::BadHeader(format!(
            "header promises {expect_faults} faults, file has {}",
            faults.len()
        )));
    }
    let mut trace = FleetTrace::from_records(config, records)?;
    // The file is authoritative for faults: a recorded production
    // incident log need not match any generator's schedule.
    trace.faults = faults;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FaultPlan;

    fn faulty_config(seed: u64) -> FleetConfig {
        let mut cfg = FleetConfig::mixed(seed, 10);
        cfg.guaranteed_fraction = 0.7;
        cfg.traffic_model = TrafficModel::Templates {
            count: 4,
            jitter: 0.02,
        };
        cfg.faults = FaultPlan {
            mtbf_s: 2.0 * 3_600.0,
            mean_repair_s: 900.0,
            drains: 2,
            drain_notice_s: 600,
            drain_offline_s: 600,
        };
        cfg
    }

    #[test]
    fn trace_round_trips_exactly() {
        let trace = FleetTrace::diurnal(faulty_config(41));
        assert!(!trace.faults.is_empty());
        let text = write_trace(&trace);
        let back = read_trace(&text).expect("round trip");
        assert_eq!(back.records.len(), trace.records.len());
        assert_eq!(back.faults, trace.faults);
        for (a, b) in trace.records.iter().zip(&back.records) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.qos, b.qos);
            assert_eq!(a.arrival_ms, b.arrival_ms);
            assert_eq!(a.departure_ms, b.departure_ms);
            assert_eq!(a.start, b.start, "f64 Display must round-trip exactly");
            assert_eq!(a.end, b.end);
            assert_eq!(a.sla_drop, b.sla_drop);
        }
        assert_eq!(back.config.seed, trace.config.seed);
        assert_eq!(back.config.nics(), trace.config.nics());
        assert_eq!(back.config.traffic_model, trace.config.traffic_model);
        // And writing the parsed trace reproduces the file byte-for-byte.
        assert_eq!(write_trace(&back), text);
    }

    #[test]
    fn reader_rejects_bad_inputs() {
        assert!(matches!(read_trace(""), Err(TraceIoError::BadHeader(_))));
        assert!(matches!(
            read_trace("{\"yala_trace\":99,\"seed\":\"0\"}\n"),
            Err(TraceIoError::UnsupportedVersion(99))
        ));
        let trace = FleetTrace::generate(FleetConfig::small(1));
        let text = write_trace(&trace);
        // Corrupt one NF kind.
        let bad = text.replacen("\"kind\":\"", "\"kind\":\"bogus_", 1);
        assert!(matches!(
            read_trace(&bad),
            Err(TraceIoError::BadLine { .. })
        ));
        // Drop a record so the header count no longer matches.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.remove(1);
        let truncated = lines.join("\n");
        assert!(matches!(
            read_trace(&truncated),
            Err(TraceIoError::BadHeader(_))
        ));
    }
}
