//! The fleet's output: a per-epoch time series plus scenario totals,
//! comparable across policies because every policy replays the same
//! profiled trace. `FleetReport` derives `PartialEq` and serializes to a
//! canonical JSON string — the determinism contract is *bit-identical
//! reports* for identical `(config, policy)`.

/// Degradation accounting for one QoS class: how much service the class
/// lost (SLA-violation minutes while placed, downtime minutes while
/// parked) and how the fault machinery handled it (evacuations, sheds,
/// readmissions).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassStats {
    /// NF-minutes below the SLA floor while placed.
    pub violation_minutes: f64,
    /// NF-minutes spent parked (alive but unserved).
    pub downtime_minutes: f64,
    /// NFs relocated to another NIC because of a failure or drain.
    pub evacuations: u32,
    /// Park events: NFs that could not be re-placed after a fault (or
    /// were preempted to make room for a guaranteed NF).
    pub shed: u32,
    /// Parked NFs successfully re-placed at a later audit.
    pub readmitted: u32,
}

impl ClassStats {
    /// The class's total bad minutes — violation while placed plus
    /// downtime while parked. The headline degradation metric: a
    /// QoS-aware policy's job is to keep this low for the guaranteed
    /// class.
    pub fn bad_minutes(&self) -> f64 {
        self.violation_minutes + self.downtime_minutes
    }

    /// Flat JSON object (hand-rolled; no serde_json in the workspace).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"violation_minutes\": {:.3}, \"downtime_minutes\": {:.3}, \
             \"bad_minutes\": {:.3}, \"evacuations\": {}, \"shed\": {}, \"readmitted\": {}}}",
            self.violation_minutes,
            self.downtime_minutes,
            self.bad_minutes(),
            self.evacuations,
            self.shed,
            self.readmitted
        )
    }
}

/// One audit epoch's observation of the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSample {
    /// Epoch time, seconds since scenario start.
    pub t_s: u64,
    /// NFs currently placed.
    pub active_nfs: u32,
    /// NICs with at least one resident.
    pub nics_in_use: u32,
    /// Residents below their SLA floor at ground truth this epoch.
    pub violating_nfs: u32,
    /// Migrations executed this epoch.
    pub migrations: u32,
    /// Idle cores summed over occupied NICs.
    pub wasted_cores: u32,
    /// Bin-packing lower bound on NICs for the active set: what a perfect
    /// packer (the oracle reference) could not go below.
    pub oracle_lb_nics: u32,
    /// NFs parked (shed, awaiting readmission) at this epoch.
    pub parked: u32,
    /// NICs offline (failed or under maintenance) at this epoch.
    pub down_nics: u32,
}

/// Scenario totals and time series for one policy run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Policy label (e.g. `"yala"`, `"greedy"`).
    pub policy: String,
    /// Scenario seed.
    pub seed: u64,
    /// Fleet size.
    pub nics: usize,
    /// Scenario duration, seconds.
    pub duration_s: u64,
    /// Audit period, seconds.
    pub audit_period_s: u64,
    /// NFs that arrived on-trace.
    pub total_arrivals: u32,
    /// Arrivals that found no feasible NIC (fleet exhausted).
    pub rejected: u32,
    /// Total migrations executed.
    pub migrations: u32,
    /// Profile snapshots consumed (arrivals + drift re-profiles).
    pub profile_snapshots: u32,
    /// NF-minutes spent below the SLA floor (each violating resident
    /// contributes one audit period per violating epoch).
    pub violation_minutes: f64,
    /// NIC-minutes powered (integral of occupied NICs over time).
    pub nic_minutes: f64,
    /// Integral of the oracle packing bound over time: the NIC-minutes a
    /// perfect packer would need for the same active set.
    pub oracle_lb_nic_minutes: f64,
    /// Core-minutes idle on occupied NICs.
    pub wasted_core_minutes: f64,
    /// Largest number of NICs simultaneously occupied.
    pub peak_nics: u32,
    /// Hard NIC failures that fired on-trace.
    pub faults: u32,
    /// Maintenance drains announced on-trace.
    pub drains: u32,
    /// Degradation accounting for the guaranteed class.
    pub guaranteed: ClassStats,
    /// Degradation accounting for the best-effort class.
    pub best_effort: ClassStats,
    /// Per-epoch observations, ascending in time.
    pub samples: Vec<FleetSample>,
}

impl FleetReport {
    /// Mean NICs in use across epochs.
    pub fn mean_nics(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| s.nics_in_use as f64)
            .sum::<f64>()
            / self.samples.len() as f64
    }

    /// Resource wastage vs. the oracle packing bound:
    /// `(nic_minutes - oracle_lb) / oracle_lb`.
    pub fn wastage_vs_oracle(&self) -> f64 {
        if self.oracle_lb_nic_minutes == 0.0 {
            0.0
        } else {
            (self.nic_minutes - self.oracle_lb_nic_minutes) / self.oracle_lb_nic_minutes
        }
    }

    /// Fraction of audited NF-epochs in violation.
    pub fn violation_rate(&self) -> f64 {
        let audited: u64 = self.samples.iter().map(|s| s.active_nfs as u64).sum();
        if audited == 0 {
            return 0.0;
        }
        let violating: u64 = self.samples.iter().map(|s| s.violating_nfs as u64).sum();
        violating as f64 / audited as f64
    }

    /// Canonical JSON rendering (hand-rolled; the offline workspace has
    /// no serde_json). Floats are printed with `{:.3}` — identical
    /// reports produce identical strings.
    pub fn to_json(&self) -> String {
        let samples: Vec<String> = self
            .samples
            .iter()
            .map(|s| {
                format!(
                    "      {{\"t_s\": {}, \"active\": {}, \"nics\": {}, \"violating\": {}, \
                     \"migrations\": {}, \"wasted_cores\": {}, \"oracle_lb\": {}, \
                     \"parked\": {}, \"down\": {}}}",
                    s.t_s,
                    s.active_nfs,
                    s.nics_in_use,
                    s.violating_nfs,
                    s.migrations,
                    s.wasted_cores,
                    s.oracle_lb_nics,
                    s.parked,
                    s.down_nics
                )
            })
            .collect();
        format!(
            "  {{\n    \"policy\": \"{}\",\n    \"seed\": {},\n    \"nics\": {},\n    \
             \"duration_s\": {},\n    \"audit_period_s\": {},\n    \"total_arrivals\": {},\n    \
             \"rejected\": {},\n    \"migrations\": {},\n    \"profile_snapshots\": {},\n    \
             \"violation_minutes\": {:.3},\n    \"nic_minutes\": {:.3},\n    \
             \"oracle_lb_nic_minutes\": {:.3},\n    \"wasted_core_minutes\": {:.3},\n    \
             \"wastage_vs_oracle\": {:.4},\n    \"violation_rate\": {:.5},\n    \
             \"mean_nics\": {:.3},\n    \"peak_nics\": {},\n    \"faults\": {},\n    \
             \"drains\": {},\n    \"guaranteed\": {},\n    \"best_effort\": {},\n    \
             \"samples\": [\n{}\n    ]\n  }}",
            self.policy,
            self.seed,
            self.nics,
            self.duration_s,
            self.audit_period_s,
            self.total_arrivals,
            self.rejected,
            self.migrations,
            self.profile_snapshots,
            self.violation_minutes,
            self.nic_minutes,
            self.oracle_lb_nic_minutes,
            self.wasted_core_minutes,
            self.wastage_vs_oracle(),
            self.violation_rate(),
            self.mean_nics(),
            self.peak_nics,
            self.faults,
            self.drains,
            self.guaranteed.to_json(),
            self.best_effort.to_json(),
            samples.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> FleetReport {
        FleetReport {
            policy: "test".into(),
            seed: 1,
            nics: 8,
            duration_s: 1_200,
            audit_period_s: 600,
            total_arrivals: 4,
            rejected: 0,
            migrations: 1,
            profile_snapshots: 6,
            violation_minutes: 10.0,
            nic_minutes: 40.0,
            oracle_lb_nic_minutes: 20.0,
            wasted_core_minutes: 60.0,
            peak_nics: 3,
            faults: 2,
            drains: 1,
            guaranteed: ClassStats {
                violation_minutes: 10.0,
                downtime_minutes: 0.0,
                evacuations: 2,
                shed: 0,
                readmitted: 0,
            },
            best_effort: ClassStats {
                violation_minutes: 0.0,
                downtime_minutes: 20.0,
                evacuations: 1,
                shed: 2,
                readmitted: 1,
            },
            samples: vec![
                FleetSample {
                    t_s: 600,
                    active_nfs: 2,
                    nics_in_use: 1,
                    violating_nfs: 1,
                    migrations: 1,
                    wasted_cores: 4,
                    oracle_lb_nics: 1,
                    parked: 2,
                    down_nics: 1,
                },
                FleetSample {
                    t_s: 1_200,
                    active_nfs: 4,
                    nics_in_use: 3,
                    violating_nfs: 0,
                    migrations: 0,
                    wasted_cores: 16,
                    oracle_lb_nics: 1,
                    parked: 0,
                    down_nics: 0,
                },
            ],
        }
    }

    #[test]
    fn summary_math() {
        let r = report();
        assert!((r.mean_nics() - 2.0).abs() < 1e-12);
        assert!((r.wastage_vs_oracle() - 1.0).abs() < 1e-12);
        assert!((r.violation_rate() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn json_is_stable_and_well_formed() {
        let r = report();
        let j = r.to_json();
        assert_eq!(j, r.clone().to_json(), "identical reports, identical JSON");
        assert!(j.contains("\"policy\": \"test\""));
        assert!(j.contains("\"violation_minutes\": 10.000"));
        assert!(j.contains("\"faults\": 2"));
        assert!(j.contains("\"guaranteed\": {"));
        assert!(j.contains("\"bad_minutes\": 10.000"));
        assert!(j.contains("\"parked\": 2"));
        assert_eq!(j.matches("\"t_s\"").count(), 2);
        // Balanced braces/brackets.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn empty_report_edges() {
        let mut r = report();
        r.samples.clear();
        r.oracle_lb_nic_minutes = 0.0;
        assert_eq!(r.mean_nics(), 0.0);
        assert_eq!(r.wastage_vs_oracle(), 0.0);
        assert_eq!(r.violation_rate(), 0.0);
    }
}
