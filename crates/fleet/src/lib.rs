//! # yala-fleet — event-driven cluster orchestration over simulated hours
//!
//! The paper's scheduling evaluation (§7.5.1) is one-shot: a fixed
//! arrival sequence placed once, violations counted at the end. A real
//! operator fleet is not one-shot — NFs come and go (Poisson arrivals,
//! exponential lifetimes), their traffic *drifts* (flow counts, packet
//! sizes, and match rates move over an NF's lifetime), and yesterday's
//! safe co-location is today's SLA violation. This crate closes that
//! loop: a deterministic discrete-event simulator of a fleet of hundreds
//! of NICs in which the predictor runs *continuously* —
//!
//! * [`trace`] — scenario generation: arrivals, lifetimes, per-NF drift
//!   trajectories (interpolated through [`yala_traffic::TrafficProfile::lerp`]),
//!   all a pure function of one seed.
//! * [`timeline`] — the offline profiling bill, paid once: every drift
//!   re-profile any policy will need, built in parallel on the
//!   [`yala_core::engine::Engine`] and shared across policy runs.
//! * [`policy`] — placement rules (monopolization / greedy /
//!   contention-aware behind any [`yala_placement::PlacementPredictor`])
//!   plus the reactive half: predicted-violation migration with
//!   diagnosis-guided victim selection ([`yala_diagnosis::select_victim`]).
//! * [`sim`] — the event loop: departures, arrivals, and periodic SLA
//!   audits (ground-truth co-runs fanned across engine workers with
//!   per-`(epoch, NIC)` seeding) in a statically ordered event list.
//!   Audits double as free telemetry: an online policy
//!   ([`policy::OnlineRefine`]) harvests every multi-tenant outcome into
//!   an observation buffer and feeds it back into its predictor
//!   ([`yala_placement::PlacementPredictor::absorb`]) between the
//!   ground-truth sample and the migration decisions.
//! * [`report`] — the [`FleetReport`] time series: NICs in use,
//!   SLA-violation minutes, migrations, wasted cores vs. the oracle
//!   packing bound. Same `(config, policy)` ⇒ bit-identical report.
//! * [`replay`] — the observability self-test: reconstructs the
//!   report's headline counters from the [`yala_telemetry`] event
//!   journal alone and checks them exactly (an observed run via
//!   [`run_fleet_observed`] journals every decision the loop makes).
//!
//! ```
//! use yala_core::Engine;
//! use yala_fleet::{run_fleet, FleetConfig, FleetPolicy, FleetTrace, ProfiledTrace};
//!
//! let mut cfg = FleetConfig::small(7);
//! cfg.duration_s = 1_200; // keep the doctest cheap: two audit epochs
//! cfg.mean_interarrival_s = 240.0;
//! cfg.audit_period_s = 600;
//! let profiled = ProfiledTrace::build(FleetTrace::generate(cfg), &Engine::sequential());
//! let report = run_fleet(&profiled, FleetPolicy::Greedy, "greedy", &Engine::sequential());
//! assert_eq!(report.samples.len(), 2);
//! ```

mod index;
pub mod policy;
pub mod record_io;
pub mod replay;
pub mod report;
pub mod sim;
pub mod snapshot;
pub mod timeline;
pub mod trace;

pub use policy::{Diagnoser, FleetPolicy, OnlineRefine};
pub use record_io::{read_trace, write_trace, TraceIoError, TRACE_VERSION};
pub use replay::{replay_journal, verify_against, ReplaySummary};
pub use report::{ClassStats, FleetReport, FleetSample};
pub use sim::{run_fleet, run_fleet_observed, FleetSim, Processed};
pub use snapshot::{
    read_observation, restore_fleet, snapshot_fleet, write_observation, JournalResume,
    SnapshotError, SNAPSHOT_VERSION,
};
pub use timeline::{NfTimeline, ProfileStats, ProfiledTrace};
pub use trace::{
    FaultEvent, FaultKind, FaultPlan, FleetConfig, FleetTrace, NfRecord, TraceError, TrafficModel,
    MS_PER_S,
};

#[cfg(test)]
mod tests {
    use super::*;
    use yala_core::Engine;

    fn tiny_profiled(seed: u64) -> ProfiledTrace {
        let mut cfg = FleetConfig::small(seed);
        cfg.duration_s = 1_800;
        cfg.mean_interarrival_s = 200.0;
        cfg.mean_lifetime_s = 900.0;
        cfg.audit_period_s = 600;
        ProfiledTrace::build(FleetTrace::generate(cfg), &Engine::sequential())
    }

    #[test]
    fn monopolization_smoke() {
        let p = tiny_profiled(21);
        let engine = Engine::sequential();
        let r = run_fleet(&p, FleetPolicy::Monopolization, "mono", &engine);
        assert_eq!(r.samples.len(), 3);
        assert_eq!(r.total_arrivals as usize, p.trace.records.len());
        assert_eq!(r.migrations, 0, "monopolization never migrates");
        assert_eq!(
            r.violation_minutes, 0.0,
            "solo NFs cannot violate their own solo-referenced SLA"
        );
        for s in &r.samples {
            assert_eq!(s.active_nfs, s.nics_in_use, "one NF per NIC");
        }
    }

    #[test]
    fn greedy_packs_tighter_than_monopolization() {
        let p = tiny_profiled(22);
        let engine = Engine::sequential();
        let mono = run_fleet(&p, FleetPolicy::Monopolization, "mono", &engine);
        let greedy = run_fleet(&p, FleetPolicy::Greedy, "greedy", &engine);
        assert!(greedy.nic_minutes < mono.nic_minutes);
        assert!(greedy.wasted_core_minutes < mono.wasted_core_minutes);
        assert_eq!(greedy.total_arrivals, mono.total_arrivals);
    }

    #[test]
    fn runs_are_bit_identical() {
        let p1 = tiny_profiled(23);
        let p2 = tiny_profiled(23);
        let engine = Engine::sequential();
        let a = run_fleet(&p1, FleetPolicy::Greedy, "greedy", &engine);
        let b = run_fleet(&p2, FleetPolicy::Greedy, "greedy", &engine);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn mixed_portfolio_respects_capabilities_end_to_end() {
        use yala_nf::NfKind;
        use yala_sim::NicSpec;
        let mut cfg = FleetConfig::mixed(27, 8);
        cfg.duration_s = 1_800;
        cfg.mean_interarrival_s = 150.0;
        cfg.mean_lifetime_s = 900.0;
        cfg.audit_period_s = 600;
        // A regex NF in the mix: feasible on BlueField-2 only.
        cfg.kinds = vec![NfKind::FlowStats, NfKind::Nids];
        let p = ProfiledTrace::build(FleetTrace::generate(cfg), &Engine::sequential());
        // Regex NFs carry a BF-2 baseline but no Pensando baseline.
        let (bf2, pen) = (NicSpec::bluefield2().model(), NicSpec::pensando().model());
        for (rec, tl) in p.trace.records.iter().zip(&p.timelines) {
            let first = &tl.snapshots[0].1;
            assert!(first.supported_on(bf2));
            assert_eq!(first.supported_on(pen), rec.kind != NfKind::Nids);
        }
        // The audit co-runs every occupied NIC on its own hardware: a
        // capability-infeasible placement would panic in the solver, so a
        // completed run is itself the ground-truth feasibility check.
        let r = run_fleet(&p, FleetPolicy::Greedy, "greedy", &Engine::sequential());
        assert_eq!(r.nics, 8);
        assert_eq!(r.total_arrivals as usize, p.trace.records.len());
    }

    #[test]
    fn chunked_audit_fanout_is_thread_invariant_past_one_chunk() {
        // Enough simultaneously occupied NICs that the audit fan-out
        // spans multiple work-stealing chunks (AUDIT_CHUNK = 16): the
        // parallel claim/merge path actually engages and must still
        // produce the sequential report bit for bit.
        let mut cfg = FleetConfig::small(31);
        cfg.portfolio = vec![(yala_sim::NicSpec::bluefield2(), 48)];
        cfg.duration_s = 3_600;
        cfg.mean_interarrival_s = 40.0; // ~90 arrivals over the hour
        cfg.mean_lifetime_s = 3_000.0; // most stay the whole hour
        cfg.audit_period_s = 600;
        cfg.traffic_model = TrafficModel::Templates {
            count: 4,
            jitter: 0.0,
        };
        let p = ProfiledTrace::build_cached(FleetTrace::generate(cfg), &Engine::sequential());
        let seq = run_fleet(
            &p,
            FleetPolicy::Monopolization,
            "mono",
            &Engine::sequential(),
        );
        let par = run_fleet(
            &p,
            FleetPolicy::Monopolization,
            "mono",
            &Engine::with_threads(4),
        );
        assert_eq!(seq, par, "chunked audit fan-out must be thread-invariant");
        assert_eq!(seq.to_json(), par.to_json());
        let peak = seq.samples.iter().map(|s| s.nics_in_use).max().unwrap();
        assert!(
            peak > 16,
            "scenario too small to cross a chunk boundary (peak {peak} occupied NICs)"
        );
    }

    #[test]
    fn empirical_trace_replay_is_deterministic() {
        use crate::trace::NfRecord;
        use yala_nf::NfKind;
        use yala_traffic::TrafficProfile;
        // A non-Poisson flash crowd no exponential generator produces:
        // six NFs in two simultaneous waves with linear drift.
        let mut cfg = FleetConfig::small(77);
        cfg.duration_s = 1_800;
        cfg.audit_period_s = 600;
        let records: Vec<NfRecord> = (0..6)
            .map(|i| NfRecord {
                id: i,
                kind: if i % 2 == 0 {
                    NfKind::FlowStats
                } else {
                    NfKind::Nat
                },
                arrival_ms: if i < 3 { 30_000 } else { 630_000 },
                departure_ms: 1_700_000,
                start: TrafficProfile::new(8_000, 512, 0.0),
                end: TrafficProfile::new(96_000, 1500, 0.0),
                sla_drop: 0.10,
                qos: yala_core::QosClass::Guaranteed,
            })
            .collect();
        let build = || {
            ProfiledTrace::build(
                FleetTrace::from_records(cfg.clone(), records.clone()).expect("valid records"),
                &Engine::sequential(),
            )
        };
        let a = run_fleet(
            &build(),
            FleetPolicy::Greedy,
            "greedy",
            &Engine::sequential(),
        );
        let b = run_fleet(
            &build(),
            FleetPolicy::Greedy,
            "greedy",
            &Engine::with_threads(4),
        );
        assert_eq!(a, b, "empirical replay must be bit-identical");
        assert_eq!(a.total_arrivals, 6);
        assert!(
            a.profile_snapshots > 6,
            "drifting empirical records re-profile"
        );
        let c = run_fleet(
            &build(),
            FleetPolicy::Monopolization,
            "mono",
            &Engine::sequential(),
        );
        assert_eq!(c.violation_minutes, 0.0);
    }
}
