//! The fleet event loop: a deterministic discrete-event simulation of an
//! operator fleet over simulated hours.
//!
//! Events — departures, arrivals, audit epochs — are known up front from
//! the trace, so the "queue" is a statically sorted list with a total
//! order `(time_ms, class, index)`; at equal times departures free
//! capacity before arrivals claim it, and the audit observes the settled
//! state. Ground-truth audits co-run every occupied NIC on private,
//! per-`(epoch, nic)`-seeded simulators dispatched across the engine's
//! workers, so the loop is bit-identical for any thread count.
//!
//! The fleet may be heterogeneous: each NIC carries the hardware model of
//! its portfolio entry, placement only considers NICs whose model the NF
//! was profiled on (capability feasibility), predictors and SLA floors
//! are keyed by the model of the NIC under evaluation, and migration may
//! move an NF *across* models — the victim's SLA floor on the
//! destination hardware is its solo baseline there.

use crate::index::PlacementIndex;
use crate::policy::{Diagnoser, FleetPolicy};
use crate::report::{ClassStats, FleetReport, FleetSample};
use crate::timeline::ProfiledTrace;
use crate::trace::{FaultKind, MS_PER_S};
use yala_core::contender::{aggregate_counters, total_pressure};
use yala_core::engine::{scenario_seed, simulator_for, Engine};
use yala_core::{Observation, ObservationBuffer, QosClass};
use yala_diagnosis::{select_victim, select_victim_qos, victim_pressure};
use yala_placement::{Placed, PlacementPredictor};
use yala_sim::{CoRunReport, NicModelId, ResourceKind, WorkloadSpec};
use yala_telemetry::{Event, Telemetry};

/// Per-resident predicted-vs-floor margins a contention-aware placement
/// gathered on the NIC it accepted: `(slot, predicted, floor_with_margin)`.
/// `None` disables collection entirely (the telemetry-off path).
type MarginSink<'a> = Option<&'a mut Vec<(usize, f64, f64)>>;

/// Salt separating the audit seed stream from the timeline stream.
const AUDIT_SALT: u64 = 0xAD17_0CA5;

/// Work-stealing granularity for the audit co-run fan-out: workers
/// claim runs of this many NICs per atomic increment, so a 10k-NIC
/// epoch costs ~hundreds of claims instead of ~10k. Chunking only
/// shapes scheduling — each co-run is a pure function of
/// `(epoch, occupied position)`, and the merge is by index — so the
/// reports are identical for any chunk size or thread count.
const AUDIT_CHUNK: usize = 16;

/// Event classes, in processing order at equal timestamps. Faults fire
/// after departures (a departing NF is gone before its NIC fails) and
/// before arrivals (a NIC that recovered this millisecond can admit
/// them); fault-free traces have no fault events, so their event order
/// is exactly the pre-fault one.
const CLASS_DEPARTURE: u8 = 0;
const CLASS_FAULT: u8 = 1;
const CLASS_ARRIVAL: u8 = 2;
const CLASS_AUDIT: u8 = 3;

/// Hysteresis margin for re-admitting a parked NF: the predictor must
/// clear the SLA floor by this relative slack, so a readmitted NF does
/// not immediately bounce back out on the next prediction wobble.
const READMIT_MARGIN: f64 = 0.05;

/// Cap on the parked-NF retry backoff, in audit epochs (delays double
/// per failed attempt: 1, 2, 4, 8, 8, ...).
const BACKOFF_CAP_EPOCHS: u64 = 8;

/// Operational state of a NIC under the fault machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NicState {
    /// In service: admits placements.
    Up,
    /// Maintenance announced: residents keep running until the deadline
    /// but no new placements are admitted.
    Draining,
    /// Failed or offline for maintenance: empty, admits nothing.
    Down,
}

/// A shed NF waiting to re-enter the fleet: retried at audit epochs
/// with exponential backoff.
pub(crate) struct Parked {
    pub(crate) id: u32,
    /// Earliest time a retry may run (audits at or after this qualify).
    pub(crate) next_retry_ms: u64,
    /// Current backoff, in audit epochs; doubles per failed retry.
    pub(crate) backoff_epochs: u64,
}

/// Per-NIC hardware facts expanded from the portfolio: the model and
/// core count of every NIC index, plus the portfolio position used to
/// build ground-truth simulators.
pub(crate) struct NicMap {
    model: Vec<NicModelId>,
    cores: Vec<u32>,
    spec_pos: Vec<usize>,
    /// Model of each portfolio position, so feasibility can be decided
    /// once per position instead of once per NIC.
    pos_models: Vec<NicModelId>,
}

impl NicMap {
    /// Expands the portfolio through the config's own NIC→model mapping
    /// ([`crate::trace::FleetConfig::nic_model_pos`]), so the expansion
    /// order invariant lives in exactly one place.
    fn new(cfg: &crate::trace::FleetConfig) -> Self {
        let n = cfg.nics();
        let mut map = Self {
            model: Vec::with_capacity(n),
            cores: Vec::with_capacity(n),
            spec_pos: Vec::with_capacity(n),
            pos_models: cfg.portfolio.iter().map(|(s, _)| s.model()).collect(),
        };
        for nic in 0..n {
            let pos = cfg.nic_model_pos(nic);
            let spec = &cfg.portfolio[pos].0;
            map.model.push(spec.model());
            map.cores.push(spec.cores);
            map.spec_pos.push(pos);
        }
        map
    }
}

/// Portfolio positions whose hardware model supports `nf`, ascending.
fn supported_positions(nics_map: &NicMap, nf: &Placed) -> Vec<usize> {
    (0..nics_map.pos_models.len())
        .filter(|&p| nf.supported_on(nics_map.pos_models[p]))
        .collect()
}

/// Builds a [`PlacementIndex`] mirroring an existing fleet state — the
/// event loop's bootstrap (everything `Up` and empty) and the parity
/// tests' entry point for hand-built states.
fn build_index(
    profiled: &ProfiledTrace,
    cursor: &[usize],
    residents: &[Vec<u32>],
    state: &[NicState],
    nics_map: &NicMap,
) -> PlacementIndex {
    let mut index = PlacementIndex::new(
        &nics_map.spec_pos,
        &nics_map.cores,
        nics_map.pos_models.len(),
    );
    for (nic, res) in residents.iter().enumerate() {
        for &id in res {
            index.place(nic, snapshot(profiled, cursor, id).workload.cores);
        }
    }
    for (nic, &s) in state.iter().enumerate() {
        if s != NicState::Up {
            index.retire(nic);
        }
    }
    index
}

/// Runs one policy over a profiled trace and returns its report.
/// `label` names the run in the report (e.g. `"yala"`); `engine`
/// parallelizes the per-NIC ground-truth audits.
pub fn run_fleet<'a>(
    profiled: &'a ProfiledTrace,
    policy: FleetPolicy<'a>,
    label: &str,
    engine: &Engine,
) -> FleetReport {
    run_fleet_observed(profiled, policy, label, engine, &mut Telemetry::disabled())
}

/// [`run_fleet`] with an observability sink: every decision the loop
/// takes — placements with their predicted-vs-floor margins, rejections,
/// ground-truth violations with a diagnosed bottleneck, migrations with
/// the victim's pressure rationale, fault transitions, evacuations,
/// park/readmit, absorb passes, and a per-epoch fleet snapshot — is
/// journaled at logical event time and tallied into the metrics
/// registry. With a disabled handle this *is* `run_fleet`: the
/// instrumentation adds only skipped branches and pure extra reads, so
/// the report is bit-identical with telemetry on, off, or absent.
pub fn run_fleet_observed<'a>(
    profiled: &'a ProfiledTrace,
    policy: FleetPolicy<'a>,
    label: &str,
    engine: &Engine,
    tel: &mut Telemetry,
) -> FleetReport {
    let mut sim = FleetSim::new(profiled, policy, label);
    while sim.step(engine, tel).is_some() {}
    sim.into_report()
}

/// What one [`FleetSim::step`] consumed, carrying the event's index —
/// the NF id for departures/arrivals, the fault-schedule position for
/// faults, the epoch number for audits. Checkpointing callers watch for
/// `Audit(epoch)`: the state between two audits is mid-decision and not
/// a snapshot boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Processed {
    /// A departure freed its NIC slot.
    Departure(u32),
    /// A fault-machine transition ran.
    Fault(u32),
    /// An arrival was placed or rejected.
    Arrival(u32),
    /// A full audit epoch settled: ground truth, refinement, migration,
    /// readmission, and the epoch sample.
    Audit(u32),
}

/// The fleet event loop as a steppable value: [`FleetSim::new`] builds
/// the static event list and the empty fleet, [`FleetSim::step`]
/// consumes one event, [`FleetSim::into_report`] closes the books.
/// [`run_fleet_observed`] is exactly `new` + `step`-to-exhaustion +
/// `into_report`, so driving the loop one event at a time — as the
/// checkpointing daemon does — is bit-identical to the one-shot run.
///
/// Everything a resumed run cannot re-derive lives in named fields; the
/// absorbed-observation log exists so a restore can replay the online
/// refinement history through a freshly trained predictor instead of
/// serializing model internals (`location` and the placement index are
/// derived from `residents`/`state` and rebuilt on restore).
pub struct FleetSim<'a> {
    pub(crate) profiled: &'a ProfiledTrace,
    pub(crate) policy: FleetPolicy<'a>,
    pub(crate) label: String,
    pub(crate) nics_map: NicMap,
    /// The static event list: (time, class, index). Index is the NF id
    /// for departures/arrivals, the position in the fault schedule for
    /// faults, and the epoch number for audits.
    pub(crate) events: Vec<(u64, u8, u32)>,
    /// Position of the next unconsumed event.
    pub(crate) next_event: usize,
    // Mutable fleet state.
    pub(crate) residents: Vec<Vec<u32>>,
    pub(crate) location: Vec<Option<usize>>,
    pub(crate) cursor: Vec<usize>,
    pub(crate) state: Vec<NicState>,
    pub(crate) parked: Vec<Parked>,
    /// The placement-candidate index, kept in lockstep with `residents`
    /// and `state` at every mutation so each decision walks a shortlist
    /// instead of the whole fleet.
    pub(crate) pidx: PlacementIndex,
    /// Audit ground truth pending absorption (online-refining policies).
    pub(crate) pending: ObservationBuffer,
    /// Every batch already absorbed, in absorb order — the replay script
    /// that rebuilds a predictor's refined state on restore.
    pub(crate) absorb_log: Vec<Vec<Observation>>,
    // Per-epoch scratch, hoisted: reused across epochs instead of
    // reallocated. Never part of a snapshot.
    occupied: Vec<usize>,
    order: Vec<usize>,
    admitted: Vec<u32>,
    margin_buf: Vec<(usize, f64, f64)>,
    // Report accumulators.
    pub(crate) period_min: f64,
    pub(crate) samples: Vec<FleetSample>,
    pub(crate) rejected: u32,
    pub(crate) migrations_total: u32,
    pub(crate) violation_minutes: f64,
    pub(crate) nic_minutes: f64,
    pub(crate) oracle_lb_nic_minutes: f64,
    pub(crate) wasted_core_minutes: f64,
    pub(crate) peak_nics: u32,
    pub(crate) faults_total: u32,
    pub(crate) drains_total: u32,
    // Per-class degradation accounting, indexed by `QosClass as usize`.
    pub(crate) violation_min: [f64; 2],
    pub(crate) downtime_min: [f64; 2],
    pub(crate) evacuations: [u32; 2],
    pub(crate) shed: [u32; 2],
    pub(crate) readmitted: [u32; 2],
    // Per-model packing-bound facts, precomputed in `new`.
    model_cores: Vec<u32>,
    masks: Vec<u32>,
    cache_hit_rate: f64,
}

impl<'a> FleetSim<'a> {
    /// Builds the static event list and the empty fleet for one policy
    /// run. `label` names the run in the final report.
    pub fn new(profiled: &'a ProfiledTrace, policy: FleetPolicy<'a>, label: &str) -> Self {
        let cfg = &profiled.trace.config;
        let records = &profiled.trace.records;
        let nic_count = cfg.nics();
        let nics_map = NicMap::new(cfg);
        let horizon_ms = cfg.duration_s * MS_PER_S;
        let period_ms = cfg.audit_period_s * MS_PER_S;

        let mut events: Vec<(u64, u8, u32)> =
            Vec::with_capacity(2 * records.len() + profiled.trace.faults.len() + 64);
        for r in records {
            events.push((r.arrival_ms, CLASS_ARRIVAL, r.id));
            if r.departure_ms <= horizon_ms {
                events.push((r.departure_ms, CLASS_DEPARTURE, r.id));
            }
        }
        for (i, f) in profiled.trace.faults.iter().enumerate() {
            events.push((f.t_ms, CLASS_FAULT, i as u32));
        }
        for epoch in 1..=cfg.epochs() {
            events.push((epoch * period_ms, CLASS_AUDIT, epoch as u32));
        }
        events.sort_unstable();

        let residents: Vec<Vec<u32>> = vec![Vec::new(); nic_count];
        let location: Vec<Option<usize>> = vec![None; records.len()];
        let cursor: Vec<usize> = vec![0; records.len()];
        let state: Vec<NicState> = vec![NicState::Up; nic_count];
        let pidx = build_index(profiled, &cursor, &residents, &state, &nics_map);

        // Per-model packing-bound facts: each NF's capability mask over
        // portfolio positions, and each model's core count.
        let model_cores: Vec<u32> = cfg.portfolio.iter().map(|(s, _)| s.cores).collect();
        let models: Vec<NicModelId> = cfg.portfolio.iter().map(|(s, _)| s.model()).collect();
        let masks: Vec<u32> = profiled
            .timelines
            .iter()
            .map(|tl| {
                let first = &tl.snapshots[0].1;
                models
                    .iter()
                    .enumerate()
                    .filter(|(_, &m)| first.supported_on(m))
                    .fold(0u32, |acc, (p, _)| acc | (1 << p))
            })
            .collect();
        let cache_hit_rate = if profiled.stats.lookups > 0 {
            profiled.stats.hits as f64 / profiled.stats.lookups as f64
        } else {
            0.0
        };

        Self {
            profiled,
            policy,
            label: label.to_string(),
            nics_map,
            events,
            next_event: 0,
            residents,
            location,
            cursor,
            state,
            parked: Vec::new(),
            pidx,
            pending: ObservationBuffer::new(),
            absorb_log: Vec::new(),
            occupied: Vec::new(),
            order: Vec::new(),
            admitted: Vec::new(),
            margin_buf: Vec::new(),
            period_min: cfg.audit_period_s as f64 / 60.0,
            samples: Vec::with_capacity(cfg.epochs() as usize),
            rejected: 0,
            migrations_total: 0,
            violation_minutes: 0.0,
            nic_minutes: 0.0,
            oracle_lb_nic_minutes: 0.0,
            wasted_core_minutes: 0.0,
            peak_nics: 0,
            faults_total: 0,
            drains_total: 0,
            violation_min: [0.0; 2],
            downtime_min: [0.0; 2],
            evacuations: [0; 2],
            shed: [0; 2],
            readmitted: [0; 2],
            model_cores,
            masks,
            cache_hit_rate,
        }
    }

    /// The run's report label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Events consumed so far (the snapshot's resume point).
    pub fn events_consumed(&self) -> usize {
        self.next_event
    }

    /// Rebuilds the derived structures — `location` and the placement
    /// index — from `residents`, `cursor`, and `state` after a restore
    /// overwrote the authoritative state.
    pub(crate) fn rebuild_derived(&mut self) {
        self.location = vec![None; self.profiled.trace.records.len()];
        for (nic, res) in self.residents.iter().enumerate() {
            for &id in res {
                self.location[id as usize] = Some(nic);
            }
        }
        self.pidx = build_index(
            self.profiled,
            &self.cursor,
            &self.residents,
            &self.state,
            &self.nics_map,
        );
    }

    /// Replays the absorbed-observation log through the policy's
    /// predictor — the restore path's substitute for serializing refined
    /// model internals. A freshly trained predictor fed the same batches
    /// in the same order reaches bit-identical refined cells.
    pub(crate) fn replay_absorbs(&mut self, engine: &Engine) {
        if let FleetPolicy::ContentionAware { predictor, .. } = &mut self.policy {
            for batch in &self.absorb_log {
                let mut buf = ObservationBuffer::new();
                for o in batch {
                    buf.push(o.clone());
                }
                predictor.absorb(&buf, engine);
            }
        }
    }

    /// Consumes one event; `None` once the run is complete. The engine
    /// parallelizes audit ground-truth co-runs exactly as in
    /// [`run_fleet_observed`]; any stepping pattern produces the same
    /// decisions, report, and journal as the one-shot loop.
    pub fn step(&mut self, engine: &Engine, tel: &mut Telemetry) -> Option<Processed> {
        let &(t_ms, class, index) = self.events.get(self.next_event)?;
        self.next_event += 1;
        let profiled = self.profiled;
        let cfg = &profiled.trace.config;
        let records = &profiled.trace.records;
        let period_ms = cfg.audit_period_s * MS_PER_S;
        let observing = tel.is_enabled();
        tel.wall_tick();
        match class {
            CLASS_DEPARTURE => {
                let id = index as usize;
                let at = self.location[id].map(|n| n as i64).unwrap_or(-1);
                if let Some(nic) = self.location[id].take() {
                    self.residents[nic].retain(|&r| r != index);
                    self.pidx
                        .remove(nic, snapshot(profiled, &self.cursor, index).workload.cores);
                }
                self.parked.retain(|p| p.id != index);
                tel.rec(t_ms, || Event::Depart { id: index, nic: at });
                Some(Processed::Departure(index))
            }
            CLASS_FAULT => {
                let ev = profiled.trace.faults[index as usize];
                tel.rec(t_ms, || Event::Fault {
                    nic: ev.nic as u32,
                    kind: ev.kind.name(),
                });
                match ev.kind {
                    FaultKind::Fail => {
                        self.faults_total += 1;
                        tel.inc("fleet.faults", 1);
                        self.state[ev.nic] = NicState::Down;
                        self.pidx.retire(ev.nic);
                        let evicted = std::mem::take(&mut self.residents[ev.nic]);
                        for &id in &evicted {
                            self.location[id as usize] = None;
                        }
                        self.pidx.clear_retired(ev.nic);
                        evacuate(
                            profiled,
                            &mut self.residents,
                            &mut self.location,
                            &self.cursor,
                            &self.nics_map,
                            &self.state,
                            &mut self.pidx,
                            &mut self.policy,
                            evicted,
                            ev.nic,
                            true,
                            t_ms,
                            &mut self.parked,
                            &mut self.evacuations,
                            &mut self.shed,
                            tel,
                        );
                    }
                    FaultKind::DrainStart => {
                        self.drains_total += 1;
                        tel.inc("fleet.drains", 1);
                        self.state[ev.nic] = NicState::Draining;
                        self.pidx.retire(ev.nic);
                        let ids = self.residents[ev.nic].clone();
                        evacuate(
                            profiled,
                            &mut self.residents,
                            &mut self.location,
                            &self.cursor,
                            &self.nics_map,
                            &self.state,
                            &mut self.pidx,
                            &mut self.policy,
                            ids,
                            ev.nic,
                            false,
                            t_ms,
                            &mut self.parked,
                            &mut self.evacuations,
                            &mut self.shed,
                            tel,
                        );
                    }
                    FaultKind::DrainEnd => {
                        self.state[ev.nic] = NicState::Down;
                        self.pidx.retire(ev.nic);
                        let evicted = std::mem::take(&mut self.residents[ev.nic]);
                        for &id in &evicted {
                            self.location[id as usize] = None;
                        }
                        self.pidx.clear_retired(ev.nic);
                        evacuate(
                            profiled,
                            &mut self.residents,
                            &mut self.location,
                            &self.cursor,
                            &self.nics_map,
                            &self.state,
                            &mut self.pidx,
                            &mut self.policy,
                            evicted,
                            ev.nic,
                            true,
                            t_ms,
                            &mut self.parked,
                            &mut self.evacuations,
                            &mut self.shed,
                            tel,
                        );
                    }
                    FaultKind::Recover => {
                        self.state[ev.nic] = NicState::Up;
                        self.pidx.restore(ev.nic);
                    }
                }
                Some(Processed::Fault(index))
            }
            CLASS_ARRIVAL => {
                let id = index as usize;
                let nf = profiled.timelines[id].snapshots[0].1.clone();
                tel.inc("fleet.arrivals", 1);
                tel.rec(t_ms, || Event::Arrival {
                    id: index,
                    kind: nf.arrival.kind.name(),
                    qos: nf.qos().name(),
                    sla_drop: nf.arrival.sla_drop,
                });
                let w0 = tel.wall_start();
                self.margin_buf.clear();
                let mut reason = "arrival";
                let slot = choose_slot(
                    profiled,
                    &self.residents,
                    &self.cursor,
                    &self.nics_map,
                    &self.state,
                    &self.pidx,
                    &mut self.policy,
                    &nf,
                    None,
                    0.0,
                    observing.then_some(&mut self.margin_buf),
                )
                .or_else(|| {
                    // A guaranteed arrival that found no safe slot may,
                    // under a QoS-aware policy, park best-effort
                    // residents to make room. All-guaranteed fleets (the
                    // default) never take this path.
                    if let FleetPolicy::ContentionAware {
                        predictor,
                        qos_aware: true,
                        ..
                    } = &mut self.policy
                    {
                        if nf.qos().is_guaranteed() {
                            let r = try_preempt_best_effort(
                                profiled,
                                &mut self.residents,
                                &mut self.location,
                                &self.cursor,
                                &self.nics_map,
                                &self.state,
                                &mut self.pidx,
                                *predictor,
                                &nf,
                                None,
                                0.0,
                                t_ms,
                                &mut self.parked,
                                &mut self.shed,
                                tel,
                            );
                            if r.is_some() {
                                reason = "preempt";
                            }
                            return r;
                        }
                    }
                    None
                });
                tel.wall_decision(w0);
                match slot {
                    Some(nic) => {
                        debug_assert!(nf.supported_on(self.nics_map.model[nic]));
                        tel.rec(t_ms, || Event::Place {
                            id: index,
                            nic: nic as u32,
                            reason,
                        });
                        // The margins refer to the accepted NIC's
                        // candidate vector: its residents *before* this
                        // push, then the arriving NF.
                        for &(slot_idx, predicted, floor) in &self.margin_buf {
                            let mid = self.residents[nic].get(slot_idx).copied().unwrap_or(index);
                            tel.rec(t_ms, || Event::Margin {
                                id: mid,
                                nic: nic as u32,
                                predicted,
                                floor,
                            });
                        }
                        self.residents[nic].push(index);
                        self.location[id] = Some(nic);
                        self.cursor[id] = 0;
                        self.pidx.place(nic, nf.workload.cores);
                    }
                    None => {
                        self.rejected += 1;
                        tel.inc("fleet.rejected", 1);
                        tel.rec(t_ms, || Event::Reject {
                            id: index,
                            kind: nf.arrival.kind.name(),
                            qos: nf.qos().name(),
                        });
                    }
                }
                Some(Processed::Arrival(index))
            }
            CLASS_AUDIT => {
                let epoch = index as u64;
                let w0 = tel.wall_start();
                // 1. Drift: bring every placed NF to its snapshot in
                // force at this epoch (re-profiles are epoch-aligned).
                for (id, loc) in self.location.iter().enumerate() {
                    if loc.is_some() {
                        self.cursor[id] = profiled.timelines[id].index_at(t_ms);
                    }
                }
                // 2. Ground truth: co-run every occupied NIC on a private
                // deterministically seeded simulator — built from the
                // hardware of *that* NIC — across the engine. The
                // occupied list doubles as the index's drift re-pricing
                // pass: the cursor moves above may have changed resident
                // core footprints.
                self.occupied.clear();
                for (n, res) in self.residents.iter().enumerate() {
                    if !res.is_empty() {
                        self.occupied.push(n);
                        self.pidx
                            .set_used(n, cores_used(profiled, &self.cursor, res));
                    }
                }
                let audit_base = scenario_seed(cfg.seed ^ AUDIT_SALT, epoch as usize);
                let occupied = &self.occupied;
                let residents = &self.residents;
                let cursor = &self.cursor;
                let nics_map = &self.nics_map;
                let reports: Vec<CoRunReport> =
                    engine.run_chunked(occupied.len(), AUDIT_CHUNK, |j| {
                        let nic = occupied[j];
                        let spec = &cfg.portfolio[nics_map.spec_pos[nic]].0;
                        let mut sim =
                            simulator_for(spec, cfg.noise_sigma, scenario_seed(audit_base, j));
                        let workloads: Vec<WorkloadSpec> = residents[nic]
                            .iter()
                            .map(|&id| snapshot(profiled, cursor, id).workload.clone())
                            .collect();
                        sim.co_run(&workloads)
                    });
                let mut violating = 0u32;
                for (&nic, report) in self.occupied.iter().zip(&reports) {
                    let model = self.nics_map.model[nic];
                    if observing {
                        tel.observe_log2(
                            "fleet.co_residents",
                            1.0,
                            6,
                            self.residents[nic].len() as f64,
                        );
                    }
                    for (pos, (&id, outcome)) in
                        self.residents[nic].iter().zip(&report.outcomes).enumerate()
                    {
                        let floor = snapshot(profiled, &self.cursor, id).sla_floor(model);
                        if outcome.throughput_pps < floor {
                            violating += 1;
                            let qos = records[id as usize].qos;
                            self.violation_min[qos as usize] += self.period_min;
                            tel.inc(&format!("fleet.violations.{}", qos.name()), 1);
                            if observing {
                                // Diagnose the measured violation for the
                                // journal. The diagnoser is pure (&self),
                                // so the extra call cannot perturb the
                                // run; solo NFs and diagnoser-free
                                // policies record "none".
                                let bottleneck = match (&self.policy, self.residents[nic].len()) {
                                    (FleetPolicy::ContentionAware { diagnoser, .. }, n)
                                        if n >= 2 =>
                                    {
                                        let placed: Vec<Placed> = self.residents[nic]
                                            .iter()
                                            .map(|&r| snapshot(profiled, &self.cursor, r).clone())
                                            .collect();
                                        let co = diagnoser.contenders(model, &placed, pos);
                                        diagnoser.bottleneck(model, &placed, pos, &co).to_string()
                                    }
                                    _ => "none".to_string(),
                                };
                                tel.rec(t_ms, || Event::Violation {
                                    id,
                                    nic: nic as u32,
                                    qos: qos.name(),
                                    measured: outcome.throughput_pps,
                                    floor,
                                    bottleneck,
                                });
                            }
                        }
                    }
                }
                tel.rec(t_ms, || Event::Audit {
                    epoch: index,
                    occupied: self.occupied.len() as u32,
                    violating,
                });
                // 3. Learn: online-refining policies feed the audit's
                // ground truth straight back into the predictor — the
                // (context, outcome) pairs were measured anyway, so the
                // refit is free telemetry. Runs *before* migration so the
                // refreshed models inform this epoch's decisions. The
                // harvest order (NIC index, resident index) and the
                // batch-size rate limit are deterministic, so an
                // online run is still bit-identical across thread counts.
                if let FleetPolicy::ContentionAware {
                    predictor,
                    diagnoser,
                    online: Some(online),
                    ..
                } = &mut self.policy
                {
                    harvest_observations(
                        profiled,
                        &self.residents,
                        &self.cursor,
                        &self.nics_map,
                        &self.occupied,
                        &reports,
                        diagnoser,
                        &mut self.pending,
                    );
                    if self.pending.len() >= online.min_observations.max(1) {
                        let observations = self.pending.len() as u32;
                        // Log the batch before draining it: a restored
                        // run replays these batches through a freshly
                        // trained predictor to rebuild the refined state.
                        self.absorb_log.push(self.pending.iter().cloned().collect());
                        let refined = predictor.absorb(&self.pending, engine) as u64;
                        tel.inc("fleet.absorb.passes", 1);
                        tel.inc("fleet.absorb.observations", observations as u64);
                        tel.inc("fleet.absorb.refined_cells", refined);
                        tel.rec(t_ms, || Event::Absorb {
                            epoch: index,
                            observations,
                        });
                        self.pending.clear();
                    }
                }
                // 4. React: predicted-violation migration (contention-
                // aware policies only).
                let mut epoch_migrations = 0u32;
                if let FleetPolicy::ContentionAware {
                    predictor,
                    diagnoser,
                    qos_aware,
                    ..
                } = &mut self.policy
                {
                    let aware = *qos_aware;
                    epoch_migrations = migrate(
                        profiled,
                        &mut self.residents,
                        &mut self.location,
                        &self.cursor,
                        &self.nics_map,
                        &self.state,
                        &mut self.pidx,
                        *predictor,
                        diagnoser,
                        aware,
                        cfg.max_migrations_per_audit,
                        t_ms,
                        tel,
                    );
                    self.migrations_total += epoch_migrations;
                }
                // 4b. Readmission: parked NFs whose backoff expired
                // retry admission — guaranteed first under a QoS-aware
                // policy — against a hysteresis margin
                // (`READMIT_MARGIN`), so a readmitted NF must clear its
                // floor with slack rather than re-enter marginally and
                // bounce on the next audit. Failed retries double their
                // backoff (capped at `BACKOFF_CAP_EPOCHS`).
                if !self.parked.is_empty() {
                    let aware = matches!(
                        &self.policy,
                        FleetPolicy::ContentionAware {
                            qos_aware: true,
                            ..
                        }
                    );
                    self.order.clear();
                    self.order.extend(0..self.parked.len());
                    let parked_now = &self.parked;
                    self.order.sort_by_key(|&k| {
                        let q = records[parked_now[k].id as usize].qos as u8;
                        (if aware { q } else { 0 }, parked_now[k].id)
                    });
                    self.admitted.clear();
                    for &k in &self.order {
                        if self.parked[k].next_retry_ms > t_ms {
                            continue;
                        }
                        let id = self.parked[k].id;
                        self.cursor[id as usize] = profiled.timelines[id as usize].index_at(t_ms);
                        let nf = snapshot(profiled, &self.cursor, id).clone();
                        let slot = choose_slot(
                            profiled,
                            &self.residents,
                            &self.cursor,
                            &self.nics_map,
                            &self.state,
                            &self.pidx,
                            &mut self.policy,
                            &nf,
                            None,
                            READMIT_MARGIN,
                            None,
                        )
                        .or_else(|| {
                            // A parked guaranteed NF re-enters by
                            // preempting best-effort residents, exactly
                            // as during evacuation — otherwise one bad
                            // epoch parks it behind a full fleet for
                            // the whole backoff ladder.
                            if let FleetPolicy::ContentionAware {
                                predictor,
                                qos_aware: true,
                                ..
                            } = &mut self.policy
                            {
                                if nf.qos().is_guaranteed() {
                                    return try_preempt_best_effort(
                                        profiled,
                                        &mut self.residents,
                                        &mut self.location,
                                        &self.cursor,
                                        &self.nics_map,
                                        &self.state,
                                        &mut self.pidx,
                                        *predictor,
                                        &nf,
                                        None,
                                        READMIT_MARGIN,
                                        t_ms,
                                        &mut self.parked,
                                        &mut self.shed,
                                        tel,
                                    );
                                }
                            }
                            None
                        });
                        match slot {
                            Some(nic) => {
                                self.residents[nic].push(id);
                                self.location[id as usize] = Some(nic);
                                self.pidx.place(nic, nf.workload.cores);
                                self.readmitted[nf.qos() as usize] += 1;
                                tel.inc(&format!("fleet.readmitted.{}", nf.qos().name()), 1);
                                tel.rec(t_ms, || Event::Readmit {
                                    id,
                                    nic: nic as u32,
                                    qos: nf.qos().name(),
                                });
                                self.admitted.push(id);
                            }
                            None => {
                                let p = &mut self.parked[k];
                                p.next_retry_ms = t_ms + p.backoff_epochs * period_ms;
                                p.backoff_epochs = (p.backoff_epochs * 2).min(BACKOFF_CAP_EPOCHS);
                            }
                        }
                    }
                    let admitted = &self.admitted;
                    self.parked.retain(|p| !admitted.contains(&p.id));
                }
                // 5. Observe.
                let active: u32 = self.residents.iter().map(|r| r.len() as u32).sum();
                let nics_in_use = self.residents.iter().filter(|r| !r.is_empty()).count() as u32;
                let mut wasted_cores = 0u32;
                let mut cores_by_mask = vec![0u32; 1 << self.model_cores.len()];
                for (nic, res) in self.residents.iter().enumerate() {
                    if res.is_empty() {
                        continue;
                    }
                    let mut used = 0u32;
                    for &id in res {
                        let c = snapshot(profiled, &self.cursor, id).workload.cores;
                        used += c;
                        cores_by_mask[self.masks[id as usize] as usize] += c;
                    }
                    wasted_cores += self.nics_map.cores[nic] - used;
                }
                let oracle_lb_nics = oracle_packing_bound(&cores_by_mask, &self.model_cores);
                // Parked NFs are alive but unserved: every parked epoch
                // is a downtime period for its class.
                for p in &self.parked {
                    self.downtime_min[records[p.id as usize].qos as usize] += self.period_min;
                }
                self.peak_nics = self.peak_nics.max(nics_in_use);
                self.violation_minutes += violating as f64 * self.period_min;
                self.nic_minutes += nics_in_use as f64 * self.period_min;
                self.oracle_lb_nic_minutes += oracle_lb_nics as f64 * self.period_min;
                self.wasted_core_minutes += wasted_cores as f64 * self.period_min;
                let down_nics = self.state.iter().filter(|&&s| s == NicState::Down).count() as u32;
                tel.gauge("fleet.active_nfs", active as f64);
                tel.gauge("fleet.nics_in_use", nics_in_use as f64);
                tel.gauge("fleet.parked", self.parked.len() as f64);
                tel.gauge("fleet.down_nics", down_nics as f64);
                tel.gauge("fleet.obs_queue", self.pending.len() as f64);
                tel.gauge("fleet.cache_hit_rate", self.cache_hit_rate);
                tel.rec(t_ms, || Event::Epoch {
                    t_s: t_ms / MS_PER_S,
                    active,
                    nics_in_use,
                    violating,
                    migrations: epoch_migrations,
                    wasted_cores,
                    oracle_lb: oracle_lb_nics,
                    parked: self.parked.len() as u32,
                    down: down_nics,
                    obs_queue: self.pending.len() as u32,
                    cache_hit_rate: self.cache_hit_rate,
                });
                tel.wall_phase("audit", w0);
                self.samples.push(FleetSample {
                    t_s: t_ms / MS_PER_S,
                    active_nfs: active,
                    nics_in_use,
                    violating_nfs: violating,
                    migrations: epoch_migrations,
                    wasted_cores,
                    oracle_lb_nics,
                    parked: self.parked.len() as u32,
                    down_nics,
                });
                Some(Processed::Audit(index))
            }
            _ => unreachable!("unknown event class"),
        }
    }

    /// Closes the books: the final [`FleetReport`] of the (possibly
    /// resumed) run. Call after [`FleetSim::step`] returns `None`.
    pub fn into_report(self) -> FleetReport {
        let profiled = self.profiled;
        let cfg = &profiled.trace.config;
        let class_stats = |c: QosClass| ClassStats {
            violation_minutes: self.violation_min[c as usize],
            downtime_minutes: self.downtime_min[c as usize],
            evacuations: self.evacuations[c as usize],
            shed: self.shed[c as usize],
            readmitted: self.readmitted[c as usize],
        };
        let guaranteed = class_stats(QosClass::Guaranteed);
        let best_effort = class_stats(QosClass::BestEffort);
        FleetReport {
            policy: self.label,
            seed: cfg.seed,
            nics: cfg.nics(),
            duration_s: cfg.duration_s,
            audit_period_s: cfg.audit_period_s,
            total_arrivals: profiled.trace.records.len() as u32,
            rejected: self.rejected,
            migrations: self.migrations_total,
            profile_snapshots: profiled.snapshot_count() as u32,
            violation_minutes: self.violation_minutes,
            nic_minutes: self.nic_minutes,
            oracle_lb_nic_minutes: self.oracle_lb_nic_minutes,
            wasted_core_minutes: self.wasted_core_minutes,
            peak_nics: self.peak_nics,
            faults: self.faults_total,
            drains: self.drains_total,
            guaranteed,
            best_effort,
            samples: self.samples,
        }
    }
}

/// Bin-packing lower bound on NICs for the active set, aware of
/// per-model capabilities: for every non-empty subset `S` of portfolio
/// models, the NFs feasible *only* within `S` need at least
/// `ceil(their cores / largest core count in S)` NICs — no packer can
/// route them elsewhere or onto a bigger NIC than `S` offers. The bound
/// is the max over subsets. On a homogeneous portfolio the single
/// subset reduces to the classic `ceil(total cores / NIC cores)`; on a
/// mixed portfolio the full-set subset reproduces the old
/// divide-by-largest bound, so the result is never looser.
fn oracle_packing_bound(cores_by_mask: &[u32], model_cores: &[u32]) -> u32 {
    let m = model_cores.len();
    let mut best = 0u32;
    for s in 1u32..(1u32 << m) {
        let cores: u32 = cores_by_mask
            .iter()
            .enumerate()
            .filter(|&(mask, _)| mask as u32 & !s == 0)
            .map(|(_, &c)| c)
            .sum();
        if cores == 0 {
            continue;
        }
        let cap = (0..m)
            .filter(|&p| s & (1 << p) != 0)
            .map(|p| model_cores[p])
            .max()
            .unwrap_or(1);
        best = best.max(cores.div_ceil(cap));
    }
    best
}

/// The policy's placement rule as one function: the NIC the policy
/// would place `nf` on right now, or `None` if nothing feasible is
/// admitted. `margin` is the relative SLA slack a contention-aware
/// prediction must clear (0.0 for normal placements, `READMIT_MARGIN`
/// for parked readmissions). Only `Up` NICs are considered.
#[allow(clippy::too_many_arguments)]
fn choose_slot(
    profiled: &ProfiledTrace,
    residents: &[Vec<u32>],
    cursor: &[usize],
    nics_map: &NicMap,
    state: &[NicState],
    pidx: &PlacementIndex,
    policy: &mut FleetPolicy<'_>,
    nf: &Placed,
    exclude: Option<usize>,
    margin: f64,
    mut margins: MarginSink<'_>,
) -> Option<usize> {
    match policy {
        FleetPolicy::Monopolization => choose_empty(residents, nics_map, state, pidx, nf, exclude),
        FleetPolicy::Greedy => choose_greedy(
            profiled, residents, cursor, nics_map, state, pidx, nf, exclude,
        )
        .or_else(|| choose_empty(residents, nics_map, state, pidx, nf, exclude)),
        FleetPolicy::ContentionAware { predictor, .. } => {
            let found = choose_contention_aware(
                profiled,
                residents,
                cursor,
                nics_map,
                state,
                pidx,
                *predictor,
                nf,
                exclude,
                margin,
                margins.as_deref_mut(),
            );
            if found.is_some() {
                return found;
            }
            // Falling back to an empty NIC: the last candidate's partial
            // margins describe a NIC that was *not* chosen.
            if let Some(m) = margins {
                m.clear();
            }
            choose_empty(residents, nics_map, state, pidx, nf, exclude)
        }
    }
}

/// Re-places NFs displaced by a fault on NIC `src`. `forced` means the
/// ids were already evicted (hard failure or drain deadline): an NF
/// that finds no slot — and, for a QoS-aware policy, no best-effort
/// residents a guaranteed NF could preempt — is parked. Graceful mode
/// (`!forced`, drain notice) moves what it can and leaves the rest
/// resident until the deadline. A QoS-aware policy evacuates guaranteed
/// NFs first, spending the scarce re-placement slots on the protected
/// class.
#[allow(clippy::too_many_arguments)]
fn evacuate(
    profiled: &ProfiledTrace,
    residents: &mut [Vec<u32>],
    location: &mut [Option<usize>],
    cursor: &[usize],
    nics_map: &NicMap,
    state: &[NicState],
    pidx: &mut PlacementIndex,
    policy: &mut FleetPolicy<'_>,
    ids: Vec<u32>,
    src: usize,
    forced: bool,
    t_ms: u64,
    parked: &mut Vec<Parked>,
    evacuations: &mut [u32; 2],
    shed: &mut [u32; 2],
    tel: &mut Telemetry,
) {
    let qos_aware = matches!(
        policy,
        FleetPolicy::ContentionAware {
            qos_aware: true,
            ..
        }
    );
    let mut order = ids;
    if qos_aware {
        // Stable sort: guaranteed first, original resident order within
        // each class.
        order.sort_by_key(|&id| snapshot(profiled, cursor, id).qos());
    }
    for id in order {
        let nf = snapshot(profiled, cursor, id).clone();
        let c = nf.qos() as usize;
        let slot = choose_slot(
            profiled,
            residents,
            cursor,
            nics_map,
            state,
            pidx,
            policy,
            &nf,
            Some(src),
            0.0,
            None,
        )
        .or_else(|| {
            if let FleetPolicy::ContentionAware {
                predictor,
                qos_aware: true,
                ..
            } = policy
            {
                if nf.qos().is_guaranteed() {
                    return try_preempt_best_effort(
                        profiled,
                        residents,
                        location,
                        cursor,
                        nics_map,
                        state,
                        pidx,
                        *predictor,
                        &nf,
                        Some(src),
                        0.0,
                        t_ms,
                        parked,
                        shed,
                        tel,
                    );
                }
            }
            None
        });
        match slot {
            Some(dst) => {
                if !forced {
                    residents[src].retain(|&r| r != id);
                    pidx.remove(src, nf.workload.cores);
                }
                residents[dst].push(id);
                location[id as usize] = Some(dst);
                pidx.place(dst, nf.workload.cores);
                evacuations[c] += 1;
                tel.inc(&format!("fleet.evacuations.{}", nf.qos().name()), 1);
                tel.rec(t_ms, || Event::Evacuate {
                    id,
                    from: src as u32,
                    to: dst as u32,
                    qos: nf.qos().name(),
                    forced,
                });
            }
            None if forced => {
                location[id as usize] = None;
                parked.push(Parked {
                    id,
                    next_retry_ms: t_ms,
                    backoff_epochs: 1,
                });
                shed[c] += 1;
                tel.inc(&format!("fleet.shed.{}", nf.qos().name()), 1);
                tel.rec(t_ms, || Event::Park {
                    id,
                    qos: nf.qos().name(),
                    reason: "no_slot",
                });
            }
            // Graceful: the NF stays resident until the drain deadline;
            // later audits (or the deadline itself) will retry.
            None => {}
        }
    }
}

/// Makes room for a guaranteed NF by parking best-effort residents:
/// scans `Up` NICs supporting `nf`, and on each tries parking
/// best-effort residents (latest-placed first) until the remaining set
/// plus `nf` fits and is predicted SLA-safe. Commits on the first NIC
/// that works and returns it; guaranteed residents are never touched.
#[allow(clippy::too_many_arguments)]
fn try_preempt_best_effort(
    profiled: &ProfiledTrace,
    residents: &mut [Vec<u32>],
    location: &mut [Option<usize>],
    cursor: &[usize],
    nics_map: &NicMap,
    state: &[NicState],
    pidx: &mut PlacementIndex,
    predictor: &mut dyn PlacementPredictor,
    nf: &Placed,
    exclude: Option<usize>,
    margin: f64,
    t_ms: u64,
    parked: &mut Vec<Parked>,
    shed: &mut [u32; 2],
    tel: &mut Telemetry,
) -> Option<usize> {
    for i in 0..residents.len() {
        if Some(i) == exclude || state[i] != NicState::Up || !nf.supported_on(nics_map.model[i]) {
            continue;
        }
        let nic: Vec<u32> = residents[i].clone();
        let be: Vec<u32> = nic
            .iter()
            .copied()
            .filter(|&id| !snapshot(profiled, cursor, id).qos().is_guaranteed())
            .collect();
        if be.is_empty() {
            continue;
        }
        // Even parking every best-effort resident must free the cores.
        let be_cores: u32 = be
            .iter()
            .map(|&id| snapshot(profiled, cursor, id).workload.cores)
            .sum();
        if cores_used(profiled, cursor, &nic) - be_cores + nf.workload.cores > nics_map.cores[i] {
            continue;
        }
        let model = nics_map.model[i];
        let mut parked_here: Vec<u32> = Vec::new();
        let mut found = false;
        for &id in be.iter().rev() {
            parked_here.push(id);
            let mut candidate: Vec<Placed> = nic
                .iter()
                .filter(|r| !parked_here.contains(r))
                .map(|&r| snapshot(profiled, cursor, r).clone())
                .collect();
            candidate.push(nf.clone());
            let cores: u32 = candidate.iter().map(|p| p.workload.cores).sum();
            if cores > nics_map.cores[i] {
                continue;
            }
            if (0..candidate.len()).all(|t| {
                predictor.predict(model, t, &candidate)
                    >= candidate[t].sla_floor(model) * (1.0 + margin)
            }) {
                found = true;
                break;
            }
        }
        if !found {
            continue;
        }
        for id in parked_here {
            residents[i].retain(|&r| r != id);
            pidx.remove(i, snapshot(profiled, cursor, id).workload.cores);
            location[id as usize] = None;
            parked.push(Parked {
                id,
                next_retry_ms: t_ms,
                backoff_epochs: 1,
            });
            shed[QosClass::BestEffort as usize] += 1;
            tel.inc("fleet.shed.best_effort", 1);
            tel.rec(t_ms, || Event::Park {
                id,
                qos: QosClass::BestEffort.name(),
                reason: "preempted",
            });
        }
        return Some(i);
    }
    None
}

/// The profile snapshot currently in force for NF `id`.
fn snapshot<'a>(profiled: &'a ProfiledTrace, cursor: &[usize], id: u32) -> &'a Placed {
    &profiled.timelines[id as usize].snapshots[cursor[id as usize]].1
}

/// Harvests one audit epoch's ground truth into `out`: for every resident
/// of every multi-tenant NIC, the prediction context (NIC model, NF kind,
/// live traffic, the co-residents' aggregate counters and accelerator
/// pressure as the diagnoser's worldview describes them, the per-model
/// solo baseline) paired with the measured co-run outcome. Solo NICs are
/// skipped — an uncontended outcome carries no contention signal the solo
/// baseline doesn't already. Iteration order is (NIC index, resident
/// index): deterministic, so the refinement stream is a pure function of
/// the scenario.
#[allow(clippy::too_many_arguments)]
fn harvest_observations(
    profiled: &ProfiledTrace,
    residents: &[Vec<u32>],
    cursor: &[usize],
    nics_map: &NicMap,
    occupied: &[usize],
    reports: &[CoRunReport],
    diagnoser: &Diagnoser<'_>,
    out: &mut ObservationBuffer,
) {
    for (&nic, report) in occupied.iter().zip(reports) {
        if residents[nic].len() < 2 {
            continue;
        }
        let model = nics_map.model[nic];
        let placed: Vec<Placed> = residents[nic]
            .iter()
            .map(|&id| snapshot(profiled, cursor, id).clone())
            .collect();
        for (target, outcome) in report.outcomes.iter().enumerate() {
            let snap = &placed[target];
            let co = diagnoser.contenders(model, &placed, target);
            let accel_pressure: Vec<(ResourceKind, f64)> =
                [ResourceKind::Regex, ResourceKind::Compression]
                    .into_iter()
                    .filter_map(|k| {
                        let p = total_pressure(&co, k);
                        (p > 0.0).then_some((k, p))
                    })
                    .collect();
            out.push(Observation {
                model,
                kind: snap.arrival.kind,
                traffic: snap.arrival.traffic,
                competitors: aggregate_counters(&co),
                accel_pressure,
                solo_tput: snap.solo(model).solo_tput,
                measured_tput: outcome.throughput_pps,
            });
        }
    }
}

/// Cores used on a NIC under the current snapshots.
fn cores_used(profiled: &ProfiledTrace, cursor: &[usize], nic: &[u32]) -> u32 {
    nic.iter()
        .map(|&id| snapshot(profiled, cursor, id).workload.cores)
        .sum()
}

/// First empty `Up` NIC (lowest index) whose model supports `nf`,
/// skipping `exclude` — answered from the index; debug builds check the
/// answer against [`choose_empty_linear`] on every call.
fn choose_empty(
    residents: &[Vec<u32>],
    nics_map: &NicMap,
    state: &[NicState],
    pidx: &PlacementIndex,
    nf: &Placed,
    exclude: Option<usize>,
) -> Option<usize> {
    let sup = supported_positions(nics_map, nf);
    let found = pidx.first_empty(&sup, exclude);
    if cfg!(debug_assertions) {
        assert_eq!(
            found,
            choose_empty_linear(residents, nics_map, state, nf, exclude),
            "indexed empty-NIC choice diverged from the linear scan"
        );
    }
    found
}

/// The pre-index reference scan for [`choose_empty`]: O(NICs), kept as
/// the semantics oracle for the debug cross-checks and parity tests.
fn choose_empty_linear(
    residents: &[Vec<u32>],
    nics_map: &NicMap,
    state: &[NicState],
    nf: &Placed,
    exclude: Option<usize>,
) -> Option<usize> {
    residents
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            Some(*i) != exclude && state[*i] == NicState::Up && nf.supported_on(nics_map.model[*i])
        })
        .find(|(_, r)| r.is_empty())
        .map(|(i, _)| i)
}

/// Greedy: the occupied `Up` NIC with the most available cores among
/// those where `nf` fits and is feasible (ties break to the lowest
/// index) — answered from the index's free-core buckets; debug builds
/// check against [`choose_greedy_linear`] on every call.
#[allow(clippy::too_many_arguments)]
fn choose_greedy(
    profiled: &ProfiledTrace,
    residents: &[Vec<u32>],
    cursor: &[usize],
    nics_map: &NicMap,
    state: &[NicState],
    pidx: &PlacementIndex,
    nf: &Placed,
    exclude: Option<usize>,
) -> Option<usize> {
    let sup = supported_positions(nics_map, nf);
    let found = pidx.most_free(&sup, nf.workload.cores, exclude);
    if cfg!(debug_assertions) {
        assert_eq!(
            found,
            choose_greedy_linear(profiled, residents, cursor, nics_map, state, nf, exclude),
            "indexed greedy choice diverged from the linear scan"
        );
    }
    found
}

/// The pre-index reference scan for [`choose_greedy`].
#[allow(clippy::too_many_arguments)]
fn choose_greedy_linear(
    profiled: &ProfiledTrace,
    residents: &[Vec<u32>],
    cursor: &[usize],
    nics_map: &NicMap,
    state: &[NicState],
    nf: &Placed,
    exclude: Option<usize>,
) -> Option<usize> {
    let mut best: Option<(usize, u32)> = None;
    for (i, nic) in residents.iter().enumerate() {
        if Some(i) == exclude
            || state[i] != NicState::Up
            || nic.is_empty()
            || !nf.supported_on(nics_map.model[i])
        {
            continue;
        }
        let used = cores_used(profiled, cursor, nic);
        if used + nf.workload.cores > nics_map.cores[i] {
            continue;
        }
        let avail = nics_map.cores[i] - used;
        if best.is_none_or(|(_, b)| avail > b) {
            best = Some((i, avail));
        }
    }
    best.map(|(i, _)| i)
}

/// The structurally eligible candidates of the linear contention-aware
/// scan — `Up`, occupied, feasible, fitting — in its evaluation order.
/// The semantics oracle for [`choose_contention_aware`]'s shortlist.
fn contention_candidates_linear(
    profiled: &ProfiledTrace,
    residents: &[Vec<u32>],
    cursor: &[usize],
    nics_map: &NicMap,
    state: &[NicState],
    nf: &Placed,
    exclude: Option<usize>,
) -> Vec<usize> {
    residents
        .iter()
        .enumerate()
        .filter(|(i, nic)| {
            Some(*i) != exclude
                && state[*i] == NicState::Up
                && !nic.is_empty()
                && nf.supported_on(nics_map.model[*i])
                && cores_used(profiled, cursor, nic) + nf.workload.cores <= nics_map.cores[*i]
        })
        .map(|(i, _)| i)
        .collect()
}

/// Contention-aware: the first occupied `Up` NIC where `nf` is
/// feasible, fits, and the predictor — consulted for that NIC's
/// hardware model — foresees no SLA violation for anyone (the candidate
/// NIC including `nf`), each floor raised by the relative `margin`
/// (0.0 for normal placements; readmissions demand hysteresis slack).
/// The structural filter comes from the index as an ascending shortlist
/// — the same NICs the linear scan would evaluate, in the same order,
/// so the predictor sees an identical call sequence; debug builds
/// assert the shortlist against [`contention_candidates_linear`].
#[allow(clippy::too_many_arguments)]
fn choose_contention_aware(
    profiled: &ProfiledTrace,
    residents: &[Vec<u32>],
    cursor: &[usize],
    nics_map: &NicMap,
    state: &[NicState],
    pidx: &PlacementIndex,
    predictor: &mut dyn PlacementPredictor,
    nf: &Placed,
    exclude: Option<usize>,
    margin: f64,
    mut margins: MarginSink<'_>,
) -> Option<usize> {
    let sup = supported_positions(nics_map, nf);
    let mut cands: Vec<usize> = Vec::new();
    pidx.fitting(&sup, nf.workload.cores, exclude, &mut cands);
    if cfg!(debug_assertions) {
        assert_eq!(
            cands,
            contention_candidates_linear(profiled, residents, cursor, nics_map, state, nf, exclude),
            "indexed contention-aware shortlist diverged from the linear scan"
        );
    }
    for &i in &cands {
        let model = nics_map.model[i];
        let mut candidate: Vec<Placed> = residents[i]
            .iter()
            .map(|&id| snapshot(profiled, cursor, id).clone())
            .collect();
        candidate.push(nf.clone());
        // Explicit loop with the same short-circuit as the original
        // `all()`, so margin collection sees each prediction the moment
        // it is made without changing which predictions are made.
        if let Some(m) = margins.as_deref_mut() {
            m.clear();
        }
        let mut safe = true;
        for t in 0..candidate.len() {
            let predicted = predictor.predict(model, t, &candidate);
            let floor = candidate[t].sla_floor(model) * (1.0 + margin);
            if let Some(m) = margins.as_deref_mut() {
                m.push((t, predicted, floor));
            }
            // `!(>=)`, not `<`: a NaN prediction must stay unsafe,
            // exactly as it failed the original `all(>=)`.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(predicted >= floor) {
                safe = false;
                break;
            }
        }
        if safe {
            return Some(i);
        }
    }
    None
}

/// One audit epoch's reactive migrations: for each NIC with a predicted
/// violator, drain the diagnosis-selected victim and re-place it under
/// the predictor (or onto an empty NIC). Every per-NIC judgement — the
/// re-evaluation, the bottleneck diagnosis, the victim's contender slate
/// — uses the model of the NIC under audit; the destination may be a NIC
/// of a *different* model, where the victim's feasibility and SLA floor
/// are judged against its solo baseline on that hardware. Returns
/// migrations executed; stops at `budget`.
#[allow(clippy::too_many_arguments)]
fn migrate(
    profiled: &ProfiledTrace,
    residents: &mut [Vec<u32>],
    location: &mut [Option<usize>],
    cursor: &[usize],
    nics_map: &NicMap,
    state: &[NicState],
    pidx: &mut PlacementIndex,
    predictor: &mut dyn PlacementPredictor,
    diagnoser: &Diagnoser<'_>,
    qos_aware: bool,
    budget: usize,
    t_ms: u64,
    tel: &mut Telemetry,
) -> u32 {
    let mut moved = 0u32;
    for nic in 0..residents.len() {
        if moved as usize >= budget {
            break;
        }
        if residents[nic].len() < 2 {
            continue;
        }
        let model = nics_map.model[nic];
        let placed: Vec<Placed> = residents[nic]
            .iter()
            .map(|&id| snapshot(profiled, cursor, id).clone())
            .collect();
        let Some(&violator) = predictor.reevaluate(model, &placed).first() else {
            continue;
        };
        // Diagnose the violator's bottleneck and pick the co-resident
        // pressing hardest on it — under a QoS-aware policy, only from
        // the lowest-precedence class present (a guaranteed NF is never
        // drained while a best-effort co-resident remains).
        let co = diagnoser.contenders(model, &placed, violator);
        let bottleneck = diagnoser.bottleneck(model, &placed, violator, &co);
        let co_positions: Vec<usize> = (0..placed.len()).filter(|&i| i != violator).collect();
        let selected = if qos_aware {
            let classes: Vec<QosClass> = co_positions.iter().map(|&i| placed[i].qos()).collect();
            select_victim_qos(bottleneck, &co, &classes)
        } else {
            select_victim(bottleneck, &co)
        };
        let sel = selected.expect("≥1 co-resident");
        let victim_pos = co_positions[sel];
        let victim_id = residents[nic][victim_pos];
        let violator_id = residents[nic][violator];
        let victim = placed[victim_pos].clone();
        // Drain-and-replace: a safe occupied NIC first, else power on an
        // empty one; if the fleet is exhausted the victim stays put.
        let dst = choose_contention_aware(
            profiled,
            residents,
            cursor,
            nics_map,
            state,
            pidx,
            predictor,
            &victim,
            Some(nic),
            0.0,
            None,
        )
        .or_else(|| choose_empty(residents, nics_map, state, pidx, &victim, Some(nic)));
        if let Some(dst) = dst {
            residents[nic].remove(victim_pos);
            pidx.remove(nic, victim.workload.cores);
            residents[dst].push(victim_id);
            pidx.place(dst, victim.workload.cores);
            location[victim_id as usize] = Some(dst);
            moved += 1;
            tel.inc("fleet.migrations", 1);
            tel.rec(t_ms, || Event::Migrate {
                victim: victim_id,
                from: nic as u32,
                to: dst as u32,
                violator: violator_id,
                bottleneck: bottleneck.to_string(),
                qos: victim.qos().name(),
                pressure: victim_pressure(bottleneck, &co[sel]),
            });
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FaultEvent, FleetConfig, FleetTrace, NfRecord};
    use yala_nf::NfKind;
    use yala_placement::OraclePredictor;
    use yala_traffic::TrafficProfile;

    #[test]
    fn migration_crosses_nic_models_when_the_destination_requires_it() {
        // Portfolio: one BlueField-2 NIC and one Pensando NIC. Two
        // memory-heavy FlowStats instances with a 1% SLA share the BF-2
        // NIC; the oracle predicts a violation, and the only escape NIC
        // in the fleet is the *other hardware model* — the drain must
        // move the victim across models, re-anchoring it to its Pensando
        // solo baseline.
        let mut cfg = FleetConfig::mixed(1, 2);
        cfg.duration_s = 1_200;
        cfg.audit_period_s = 600;
        cfg.kinds = vec![NfKind::FlowStats];
        cfg.noise_sigma = 0.0;
        let heavy = TrafficProfile::new(200_000, 1_500, 0.0);
        let records: Vec<NfRecord> = (0..2)
            .map(|i| NfRecord {
                id: i,
                kind: NfKind::FlowStats,
                arrival_ms: 0,
                departure_ms: 1_100_000,
                start: heavy,
                end: heavy,
                sla_drop: 0.01,
                qos: QosClass::Guaranteed,
            })
            .collect();
        let profiled = crate::timeline::ProfiledTrace::build(
            FleetTrace::from_records(cfg, records).expect("valid records"),
            &Engine::sequential(),
        );
        let cfg = &profiled.trace.config;
        let nics_map = NicMap::new(cfg);
        assert_ne!(nics_map.model[0], nics_map.model[1], "two hardware models");
        // Hand-place both NFs on the BF-2 NIC (a blind packer would).
        let mut residents: Vec<Vec<u32>> = vec![vec![0, 1], Vec::new()];
        let mut location: Vec<Option<usize>> = vec![Some(0), Some(0)];
        let cursor = vec![0usize, 0];
        let state = vec![NicState::Up; 2];
        let mut pidx = build_index(&profiled, &cursor, &residents, &state, &nics_map);
        let mut oracle = OraclePredictor::for_models(&cfg.specs());
        let moved = migrate(
            &profiled,
            &mut residents,
            &mut location,
            &cursor,
            &nics_map,
            &state,
            &mut pidx,
            &mut oracle,
            &Diagnoser::MemoryOnly,
            false,
            8,
            600_000,
            &mut Telemetry::disabled(),
        );
        assert_eq!(moved, 1, "the predicted violation must drain a victim");
        assert_eq!(residents[0].len(), 1);
        assert_eq!(residents[1].len(), 1, "victim landed on the Pensando NIC");
        let victim = residents[1][0] as usize;
        assert_eq!(location[victim], Some(1));
        // The migrated NF is priced against its *destination-model* solo
        // baseline, which differs from its BF-2 one.
        let snap = snapshot(&profiled, &cursor, victim as u32);
        assert!(snap.supported_on(nics_map.model[1]));
        assert_ne!(
            snap.solo(nics_map.model[0]).solo_tput,
            snap.solo(nics_map.model[1]).solo_tput
        );
    }

    /// A record alive well past any test horizon.
    fn rec(id: u32, qos: QosClass, traffic: TrafficProfile, sla: f64) -> NfRecord {
        NfRecord {
            id,
            kind: NfKind::FlowStats,
            arrival_ms: 0,
            departure_ms: 10_000_000,
            start: traffic,
            end: traffic,
            sla_drop: sla,
            qos,
        }
    }

    /// Builds a profiled trace with a hand-written fault schedule (the
    /// generated schedule is random; unit tests pin exact incidents).
    fn profiled_with_faults(
        cfg: FleetConfig,
        records: Vec<NfRecord>,
        faults: Vec<FaultEvent>,
    ) -> ProfiledTrace {
        let mut trace = FleetTrace::from_records(cfg, records).expect("valid records");
        trace.faults = faults;
        ProfiledTrace::build(trace, &Engine::sequential())
    }

    fn two_nic_cfg() -> FleetConfig {
        use yala_sim::NicSpec;
        let mut cfg = FleetConfig::small(1);
        cfg.portfolio = vec![(NicSpec::bluefield2(), 2)];
        cfg.duration_s = 1_200;
        cfg.audit_period_s = 600;
        cfg.kinds = vec![NfKind::FlowStats];
        cfg.noise_sigma = 0.0;
        cfg.drift = false;
        cfg
    }

    #[test]
    fn failure_evicts_and_relocates_residents() {
        let light = TrafficProfile::new(8_000, 512, 0.0);
        let p = profiled_with_faults(
            two_nic_cfg(),
            vec![rec(0, QosClass::Guaranteed, light, 0.10)],
            vec![FaultEvent {
                t_ms: 100_000,
                nic: 0,
                kind: FaultKind::Fail,
            }],
        );
        let r = run_fleet(&p, FleetPolicy::Greedy, "greedy", &Engine::sequential());
        assert_eq!(r.faults, 1);
        assert_eq!(r.drains, 0);
        assert_eq!(r.guaranteed.evacuations, 1, "the NF fled to the spare NIC");
        assert_eq!(r.guaranteed.shed, 0);
        assert_eq!(r.rejected, 0);
        assert_eq!(r.violation_minutes, 0.0, "solo NFs cannot violate");
        for s in &r.samples {
            assert_eq!(s.parked, 0);
            assert_eq!(s.down_nics, 1, "the failed NIC never recovers");
        }
    }

    #[test]
    fn drain_moves_residents_before_the_deadline() {
        let light = TrafficProfile::new(8_000, 512, 0.0);
        let p = profiled_with_faults(
            two_nic_cfg(),
            vec![
                rec(0, QosClass::Guaranteed, light, 0.10),
                rec(1, QosClass::Guaranteed, light, 0.10),
            ],
            vec![
                FaultEvent {
                    t_ms: 100_000,
                    nic: 0,
                    kind: FaultKind::DrainStart,
                },
                FaultEvent {
                    t_ms: 700_000,
                    nic: 0,
                    kind: FaultKind::DrainEnd,
                },
            ],
        );
        let r = run_fleet(&p, FleetPolicy::Greedy, "greedy", &Engine::sequential());
        assert_eq!(r.drains, 1);
        assert_eq!(r.faults, 0);
        assert_eq!(
            r.guaranteed.evacuations, 2,
            "the notice window evacuated both residents gracefully"
        );
        assert_eq!(
            r.guaranteed.shed, 0,
            "nobody was still aboard at the deadline"
        );
    }

    #[test]
    fn failed_fleet_parks_then_readmits_with_backoff() {
        use yala_sim::NicSpec;
        let mut cfg = two_nic_cfg();
        cfg.portfolio = vec![(NicSpec::bluefield2(), 1)];
        cfg.duration_s = 2_400;
        let light = TrafficProfile::new(8_000, 512, 0.0);
        let p = profiled_with_faults(
            cfg,
            vec![rec(0, QosClass::Guaranteed, light, 0.10)],
            vec![
                FaultEvent {
                    t_ms: 650_000,
                    nic: 0,
                    kind: FaultKind::Fail,
                },
                FaultEvent {
                    t_ms: 1_300_000,
                    nic: 0,
                    kind: FaultKind::Recover,
                },
            ],
        );
        let r = run_fleet(&p, FleetPolicy::Greedy, "greedy", &Engine::sequential());
        assert_eq!(r.faults, 1);
        assert_eq!(r.guaranteed.shed, 1, "a one-NIC fleet has nowhere to flee");
        // The epoch-1200 retry finds the NIC still down and backs off to
        // epoch 1800, which lands after the recovery and readmits.
        assert_eq!(r.guaranteed.readmitted, 1);
        assert_eq!(
            r.guaranteed.downtime_minutes, 10.0,
            "parked across exactly one audit period"
        );
        let at = |t: u64| r.samples.iter().find(|s| s.t_s == t).expect("sample");
        assert_eq!(at(1_200).parked, 1);
        assert_eq!(at(1_200).down_nics, 1);
        assert_eq!(at(1_800).parked, 0);
        assert_eq!(at(1_800).down_nics, 0);
    }

    #[test]
    fn qos_aware_evacuation_preempts_best_effort_never_guaranteed() {
        let heavy = TrafficProfile::new(200_000, 1_500, 0.0);
        // One heavy best-effort NF and one heavy tight-SLA guaranteed
        // NF: the oracle forbids co-residence, so they occupy one NIC
        // each; then the guaranteed NF's NIC fails.
        let build = || {
            profiled_with_faults(
                two_nic_cfg(),
                vec![
                    rec(0, QosClass::BestEffort, heavy, 0.10),
                    rec(1, QosClass::Guaranteed, heavy, 0.01),
                ],
                vec![FaultEvent {
                    t_ms: 100_000,
                    nic: 1,
                    kind: FaultKind::Fail,
                }],
            )
        };
        let p = build();
        let specs = p.trace.config.specs();
        let mut oracle = OraclePredictor::for_models(&specs);
        let aware = run_fleet(
            &p,
            FleetPolicy::ContentionAware {
                predictor: &mut oracle,
                diagnoser: Diagnoser::MemoryOnly,
                online: None,
                qos_aware: true,
            },
            "qos",
            &Engine::sequential(),
        );
        assert_eq!(
            aware.guaranteed.shed, 0,
            "the guaranteed NF preempted the best-effort resident instead of parking"
        );
        assert_eq!(aware.guaranteed.evacuations, 1);
        assert_eq!(aware.best_effort.shed, 1);
        assert!(aware.best_effort.downtime_minutes > 0.0);
        // The blind policy treats both classes alike: with no safe slot
        // and no preemption, the guaranteed NF itself is shed.
        let p = build();
        let mut oracle = OraclePredictor::for_models(&specs);
        let blind = run_fleet(
            &p,
            FleetPolicy::ContentionAware {
                predictor: &mut oracle,
                diagnoser: Diagnoser::MemoryOnly,
                online: None,
                qos_aware: false,
            },
            "blind",
            &Engine::sequential(),
        );
        assert_eq!(blind.guaranteed.shed, 1);
        assert_eq!(blind.best_effort.shed, 0);
        assert!(
            blind.guaranteed.bad_minutes() > aware.guaranteed.bad_minutes(),
            "QoS-aware degradation must protect the guaranteed class"
        );
    }

    /// The tentpole's safety net: at 50–200 NICs across seeds, mixed
    /// portfolios, random occupancy, fault states, and exclusions,
    /// every indexed query must answer byte-identically to its
    /// pre-index linear scan — both on a freshly built index and after
    /// a stream of incremental mutations (depart / place / fail /
    /// recover) maintained in lockstep. Debug builds of the live event
    /// loop additionally assert the same parity on every decision it
    /// takes, so the whole test suite doubles as a fleet-shaped
    /// property test.
    #[test]
    fn indexed_placement_matches_linear_scan_across_seeds_and_sizes() {
        use crate::trace::TrafficModel;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        for &nics in &[50usize, 100, 200] {
            // One profiled trace per fleet size (template traffic keeps
            // the profiling bill at ~a dozen measurements); three
            // placement-RNG streams exercise it.
            let mut cfg = FleetConfig::mixed(7 + nics as u64, nics);
            cfg.duration_s = 600;
            cfg.audit_period_s = 600;
            cfg.mean_interarrival_s = 8.0;
            cfg.mean_lifetime_s = 2_000.0;
            cfg.noise_sigma = 0.0;
            cfg.drift = false;
            cfg.guaranteed_fraction = 0.5;
            cfg.traffic_model = TrafficModel::Templates {
                count: 8,
                jitter: 0.02,
            };
            let profiled =
                ProfiledTrace::build_cached(FleetTrace::generate(cfg), &Engine::sequential());
            let cfg = &profiled.trace.config;
            let records = &profiled.trace.records;
            let nics_map = NicMap::new(cfg);
            assert!(records.len() >= 40, "enough NFs to populate the fleet");

            for seed in [11u64, 12, 13] {
                let mut rng = StdRng::seed_from_u64(seed);
                let cursor = vec![0usize; records.len()];
                let mut residents: Vec<Vec<u32>> = vec![Vec::new(); nics];
                let mut state: Vec<NicState> = (0..nics)
                    .map(|_| match rng.gen_range(0..10) {
                        0 => NicState::Down,
                        1 => NicState::Draining,
                        _ => NicState::Up,
                    })
                    .collect();
                for r in records {
                    let nf = snapshot(&profiled, &cursor, r.id);
                    let nic = rng.gen_range(0..nics);
                    if nf.supported_on(nics_map.model[nic])
                        && cores_used(&profiled, &cursor, &residents[nic]) + nf.workload.cores
                            <= nics_map.cores[nic]
                    {
                        residents[nic].push(r.id);
                    }
                }
                let mut pidx = build_index(&profiled, &cursor, &residents, &state, &nics_map);

                let check = |residents: &[Vec<u32>],
                             state: &[NicState],
                             pidx: &PlacementIndex,
                             rng: &mut StdRng| {
                    for _ in 0..8 {
                        let id = records[rng.gen_range(0..records.len())].id;
                        let nf = snapshot(&profiled, &cursor, id);
                        let exclude = rng.gen_bool(0.5).then(|| rng.gen_range(0..nics));
                        let sup = supported_positions(&nics_map, nf);
                        assert_eq!(
                            pidx.first_empty(&sup, exclude),
                            choose_empty_linear(residents, &nics_map, state, nf, exclude),
                            "empty-NIC parity (nics={nics}, seed={seed})"
                        );
                        assert_eq!(
                            pidx.most_free(&sup, nf.workload.cores, exclude),
                            choose_greedy_linear(
                                &profiled, residents, &cursor, &nics_map, state, nf, exclude
                            ),
                            "greedy parity (nics={nics}, seed={seed})"
                        );
                        let mut got = Vec::new();
                        pidx.fitting(&sup, nf.workload.cores, exclude, &mut got);
                        assert_eq!(
                            got,
                            contention_candidates_linear(
                                &profiled, residents, &cursor, &nics_map, state, nf, exclude
                            ),
                            "contention-aware shortlist parity (nics={nics}, seed={seed})"
                        );
                    }
                };
                check(&residents, &state, &pidx, &mut rng);

                // A stream of incremental transitions — the index is
                // maintained, never rebuilt — then parity again.
                for _ in 0..60 {
                    match rng.gen_range(0..4) {
                        0 => {
                            let nic = rng.gen_range(0..nics);
                            if let Some(&id) = residents[nic].first() {
                                residents[nic].retain(|&r| r != id);
                                pidx.remove(nic, snapshot(&profiled, &cursor, id).workload.cores);
                            }
                        }
                        1 => {
                            let id = records[rng.gen_range(0..records.len())].id;
                            if residents.iter().any(|r| r.contains(&id)) {
                                continue;
                            }
                            let nf = snapshot(&profiled, &cursor, id);
                            let nic = rng.gen_range(0..nics);
                            if nf.supported_on(nics_map.model[nic])
                                && cores_used(&profiled, &cursor, &residents[nic])
                                    + nf.workload.cores
                                    <= nics_map.cores[nic]
                            {
                                residents[nic].push(id);
                                pidx.place(nic, nf.workload.cores);
                            }
                        }
                        2 => {
                            // Hard failure: retire and bulk-evict.
                            let nic = rng.gen_range(0..nics);
                            if state[nic] == NicState::Up {
                                state[nic] = NicState::Down;
                                pidx.retire(nic);
                                residents[nic].clear();
                                pidx.clear_retired(nic);
                            }
                        }
                        _ => {
                            let nic = rng.gen_range(0..nics);
                            if state[nic] == NicState::Down && residents[nic].is_empty() {
                                state[nic] = NicState::Up;
                                pidx.restore(nic);
                            }
                        }
                    }
                }
                check(&residents, &state, &pidx, &mut rng);
            }
        }
    }

    #[test]
    fn packing_bound_is_capability_aware() {
        // Homogeneous: the single subset is the classic bound.
        assert_eq!(oracle_packing_bound(&[0, 21], &[7]), 3);
        assert_eq!(oracle_packing_bound(&[0, 22], &[7]), 4);
        // Mixed portfolio, 8-core model 0 and 4-core model 1: 17 cores
        // of NFs that run only on model 1 need ceil(17/4) = 5 NICs —
        // the old divide-by-largest bound would claim
        // ceil((17 + 2)/8) = 3. The anywhere-feasible 2 cores cannot
        // relax the restricted subset.
        // Masks index the subsets: 0b01 = model 0 only, 0b10 = model 1
        // only, 0b11 = either.
        assert_eq!(oracle_packing_bound(&[0, 0, 17, 2], &[8, 4]), 5);
        // Same shape but the restricted NFs are light: the full-set
        // subset dominates, reproducing the old bound.
        assert_eq!(oracle_packing_bound(&[0, 0, 2, 20], &[8, 4]), 3);
        // Empty fleet.
        assert_eq!(oracle_packing_bound(&[0, 0, 0, 0], &[8, 4]), 0);
    }
}
