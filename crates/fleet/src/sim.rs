//! The fleet event loop: a deterministic discrete-event simulation of an
//! operator fleet over simulated hours.
//!
//! Events — departures, arrivals, audit epochs — are known up front from
//! the trace, so the "queue" is a statically sorted list with a total
//! order `(time_ms, class, index)`; at equal times departures free
//! capacity before arrivals claim it, and the audit observes the settled
//! state. Ground-truth audits co-run every occupied NIC on private,
//! per-`(epoch, nic)`-seeded simulators dispatched across the engine's
//! workers, so the loop is bit-identical for any thread count.
//!
//! The fleet may be heterogeneous: each NIC carries the hardware model of
//! its portfolio entry, placement only considers NICs whose model the NF
//! was profiled on (capability feasibility), predictors and SLA floors
//! are keyed by the model of the NIC under evaluation, and migration may
//! move an NF *across* models — the victim's SLA floor on the
//! destination hardware is its solo baseline there.

use crate::policy::{Diagnoser, FleetPolicy};
use crate::report::{FleetReport, FleetSample};
use crate::timeline::ProfiledTrace;
use crate::trace::MS_PER_S;
use yala_core::contender::{aggregate_counters, total_pressure};
use yala_core::engine::{scenario_seed, simulator_for, Engine};
use yala_core::{Observation, ObservationBuffer};
use yala_diagnosis::select_victim;
use yala_placement::{Placed, PlacementPredictor};
use yala_sim::{CoRunReport, NicModelId, ResourceKind, WorkloadSpec};

/// Salt separating the audit seed stream from the timeline stream.
const AUDIT_SALT: u64 = 0xAD17_0CA5;

/// Event classes, in processing order at equal timestamps.
const CLASS_DEPARTURE: u8 = 0;
const CLASS_ARRIVAL: u8 = 1;
const CLASS_AUDIT: u8 = 2;

/// Per-NIC hardware facts expanded from the portfolio: the model and
/// core count of every NIC index, plus the portfolio position used to
/// build ground-truth simulators.
struct NicMap {
    model: Vec<NicModelId>,
    cores: Vec<u32>,
    spec_pos: Vec<usize>,
}

impl NicMap {
    /// Expands the portfolio through the config's own NIC→model mapping
    /// ([`crate::trace::FleetConfig::nic_model_pos`]), so the expansion
    /// order invariant lives in exactly one place.
    fn new(cfg: &crate::trace::FleetConfig) -> Self {
        let n = cfg.nics();
        let mut map = Self {
            model: Vec::with_capacity(n),
            cores: Vec::with_capacity(n),
            spec_pos: Vec::with_capacity(n),
        };
        for nic in 0..n {
            let pos = cfg.nic_model_pos(nic);
            let spec = &cfg.portfolio[pos].0;
            map.model.push(spec.model());
            map.cores.push(spec.cores);
            map.spec_pos.push(pos);
        }
        map
    }
}

/// Runs one policy over a profiled trace and returns its report.
/// `label` names the run in the report (e.g. `"yala"`); `engine`
/// parallelizes the per-NIC ground-truth audits.
pub fn run_fleet(
    profiled: &ProfiledTrace,
    mut policy: FleetPolicy<'_>,
    label: &str,
    engine: &Engine,
) -> FleetReport {
    let cfg = &profiled.trace.config;
    let records = &profiled.trace.records;
    let nic_count = cfg.nics();
    let nics_map = NicMap::new(cfg);
    let horizon_ms = cfg.duration_s * MS_PER_S;
    let period_ms = cfg.audit_period_s * MS_PER_S;

    // The static event list: (time, class, index). Index is the NF id for
    // departures/arrivals and the epoch number for audits.
    let mut events: Vec<(u64, u8, u32)> = Vec::with_capacity(2 * records.len() + 64);
    for r in records {
        events.push((r.arrival_ms, CLASS_ARRIVAL, r.id));
        if r.departure_ms <= horizon_ms {
            events.push((r.departure_ms, CLASS_DEPARTURE, r.id));
        }
    }
    for epoch in 1..=cfg.epochs() {
        events.push((epoch * period_ms, CLASS_AUDIT, epoch as u32));
    }
    events.sort_unstable();

    // Mutable fleet state.
    let mut residents: Vec<Vec<u32>> = vec![Vec::new(); nic_count];
    let mut location: Vec<Option<usize>> = vec![None; records.len()];
    let mut cursor: Vec<usize> = vec![0; records.len()];
    // Audit ground truth pending absorption (online-refining policies).
    let mut pending = ObservationBuffer::new();

    // Report accumulators.
    let period_min = cfg.audit_period_s as f64 / 60.0;
    let mut samples: Vec<FleetSample> = Vec::with_capacity(cfg.epochs() as usize);
    let mut rejected = 0u32;
    let mut migrations_total = 0u32;
    let mut violation_minutes = 0.0f64;
    let mut nic_minutes = 0.0f64;
    let mut oracle_lb_nic_minutes = 0.0f64;
    let mut wasted_core_minutes = 0.0f64;
    let mut peak_nics = 0u32;
    // The packing bound divides by the fleet's largest NIC: optimistic on
    // a mixed portfolio, exact on a homogeneous one.
    let lb_cores = nics_map.cores.iter().copied().max().unwrap_or(1);

    for &(t_ms, class, index) in &events {
        match class {
            CLASS_DEPARTURE => {
                let id = index as usize;
                if let Some(nic) = location[id].take() {
                    residents[nic].retain(|&r| r != index);
                }
            }
            CLASS_ARRIVAL => {
                let id = index as usize;
                let nf = profiled.timelines[id].snapshots[0].1.clone();
                let slot = match &mut policy {
                    FleetPolicy::Monopolization => choose_empty(&residents, &nics_map, &nf, None),
                    FleetPolicy::Greedy => {
                        choose_greedy(profiled, &residents, &cursor, &nics_map, &nf, None)
                            .or_else(|| choose_empty(&residents, &nics_map, &nf, None))
                    }
                    FleetPolicy::ContentionAware { predictor, .. } => choose_contention_aware(
                        profiled, &residents, &cursor, &nics_map, *predictor, &nf, None,
                    )
                    .or_else(|| choose_empty(&residents, &nics_map, &nf, None)),
                };
                match slot {
                    Some(nic) => {
                        debug_assert!(nf.supported_on(nics_map.model[nic]));
                        residents[nic].push(index);
                        location[id] = Some(nic);
                        cursor[id] = 0;
                    }
                    None => rejected += 1,
                }
            }
            CLASS_AUDIT => {
                let epoch = index as u64;
                // 1. Drift: bring every placed NF to its snapshot in
                // force at this epoch (re-profiles are epoch-aligned).
                for (id, loc) in location.iter().enumerate() {
                    if loc.is_some() {
                        cursor[id] = profiled.timelines[id].index_at(t_ms);
                    }
                }
                // 2. Ground truth: co-run every occupied NIC on a private
                // deterministically seeded simulator — built from the
                // hardware of *that* NIC — across the engine.
                let occupied: Vec<usize> = (0..nic_count)
                    .filter(|&n| !residents[n].is_empty())
                    .collect();
                let audit_base = scenario_seed(cfg.seed ^ AUDIT_SALT, epoch as usize);
                let reports: Vec<CoRunReport> = engine.run(occupied.len(), |j| {
                    let nic = occupied[j];
                    let spec = &cfg.portfolio[nics_map.spec_pos[nic]].0;
                    let mut sim =
                        simulator_for(spec, cfg.noise_sigma, scenario_seed(audit_base, j));
                    let workloads: Vec<WorkloadSpec> = residents[nic]
                        .iter()
                        .map(|&id| snapshot(profiled, &cursor, id).workload.clone())
                        .collect();
                    sim.co_run(&workloads)
                });
                let mut violating = 0u32;
                for (&nic, report) in occupied.iter().zip(&reports) {
                    let model = nics_map.model[nic];
                    for (&id, outcome) in residents[nic].iter().zip(&report.outcomes) {
                        if outcome.throughput_pps < snapshot(profiled, &cursor, id).sla_floor(model)
                        {
                            violating += 1;
                        }
                    }
                }
                // 3. Learn: online-refining policies feed the audit's
                // ground truth straight back into the predictor — the
                // (context, outcome) pairs were measured anyway, so the
                // refit is free telemetry. Runs *before* migration so the
                // refreshed models inform this epoch's decisions. The
                // harvest order (NIC index, resident index) and the
                // batch-size rate limit are deterministic, so an
                // online run is still bit-identical across thread counts.
                if let FleetPolicy::ContentionAware {
                    predictor,
                    diagnoser,
                    online: Some(online),
                } = &mut policy
                {
                    harvest_observations(
                        profiled,
                        &residents,
                        &cursor,
                        &nics_map,
                        &occupied,
                        &reports,
                        diagnoser,
                        &mut pending,
                    );
                    if pending.len() >= online.min_observations.max(1) {
                        predictor.absorb(&pending, engine);
                        pending.clear();
                    }
                }
                // 4. React: predicted-violation migration (contention-
                // aware policies only).
                let mut epoch_migrations = 0u32;
                if let FleetPolicy::ContentionAware {
                    predictor,
                    diagnoser,
                    ..
                } = &mut policy
                {
                    epoch_migrations = migrate(
                        profiled,
                        &mut residents,
                        &mut location,
                        &cursor,
                        &nics_map,
                        *predictor,
                        diagnoser,
                        cfg.max_migrations_per_audit,
                    );
                    migrations_total += epoch_migrations;
                }
                // 5. Observe.
                let active: u32 = residents.iter().map(|r| r.len() as u32).sum();
                let nics_in_use = residents.iter().filter(|r| !r.is_empty()).count() as u32;
                let mut used_cores = 0u32;
                let mut wasted_cores = 0u32;
                for (nic, res) in residents.iter().enumerate() {
                    if res.is_empty() {
                        continue;
                    }
                    let used = cores_used(profiled, &cursor, res);
                    used_cores += used;
                    wasted_cores += nics_map.cores[nic] - used;
                }
                let oracle_lb_nics = used_cores.div_ceil(lb_cores);
                peak_nics = peak_nics.max(nics_in_use);
                violation_minutes += violating as f64 * period_min;
                nic_minutes += nics_in_use as f64 * period_min;
                oracle_lb_nic_minutes += oracle_lb_nics as f64 * period_min;
                wasted_core_minutes += wasted_cores as f64 * period_min;
                samples.push(FleetSample {
                    t_s: t_ms / MS_PER_S,
                    active_nfs: active,
                    nics_in_use,
                    violating_nfs: violating,
                    migrations: epoch_migrations,
                    wasted_cores,
                    oracle_lb_nics,
                });
            }
            _ => unreachable!("unknown event class"),
        }
    }

    FleetReport {
        policy: label.to_string(),
        seed: cfg.seed,
        nics: nic_count,
        duration_s: cfg.duration_s,
        audit_period_s: cfg.audit_period_s,
        total_arrivals: records.len() as u32,
        rejected,
        migrations: migrations_total,
        profile_snapshots: profiled.snapshot_count() as u32,
        violation_minutes,
        nic_minutes,
        oracle_lb_nic_minutes,
        wasted_core_minutes,
        peak_nics,
        samples,
    }
}

/// The profile snapshot currently in force for NF `id`.
fn snapshot<'a>(profiled: &'a ProfiledTrace, cursor: &[usize], id: u32) -> &'a Placed {
    &profiled.timelines[id as usize].snapshots[cursor[id as usize]].1
}

/// Harvests one audit epoch's ground truth into `out`: for every resident
/// of every multi-tenant NIC, the prediction context (NIC model, NF kind,
/// live traffic, the co-residents' aggregate counters and accelerator
/// pressure as the diagnoser's worldview describes them, the per-model
/// solo baseline) paired with the measured co-run outcome. Solo NICs are
/// skipped — an uncontended outcome carries no contention signal the solo
/// baseline doesn't already. Iteration order is (NIC index, resident
/// index): deterministic, so the refinement stream is a pure function of
/// the scenario.
#[allow(clippy::too_many_arguments)]
fn harvest_observations(
    profiled: &ProfiledTrace,
    residents: &[Vec<u32>],
    cursor: &[usize],
    nics_map: &NicMap,
    occupied: &[usize],
    reports: &[CoRunReport],
    diagnoser: &Diagnoser<'_>,
    out: &mut ObservationBuffer,
) {
    for (&nic, report) in occupied.iter().zip(reports) {
        if residents[nic].len() < 2 {
            continue;
        }
        let model = nics_map.model[nic];
        let placed: Vec<Placed> = residents[nic]
            .iter()
            .map(|&id| snapshot(profiled, cursor, id).clone())
            .collect();
        for (target, outcome) in report.outcomes.iter().enumerate() {
            let snap = &placed[target];
            let co = diagnoser.contenders(model, &placed, target);
            let accel_pressure: Vec<(ResourceKind, f64)> =
                [ResourceKind::Regex, ResourceKind::Compression]
                    .into_iter()
                    .filter_map(|k| {
                        let p = total_pressure(&co, k);
                        (p > 0.0).then_some((k, p))
                    })
                    .collect();
            out.push(Observation {
                model,
                kind: snap.arrival.kind,
                traffic: snap.arrival.traffic,
                competitors: aggregate_counters(&co),
                accel_pressure,
                solo_tput: snap.solo(model).solo_tput,
                measured_tput: outcome.throughput_pps,
            });
        }
    }
}

/// Cores used on a NIC under the current snapshots.
fn cores_used(profiled: &ProfiledTrace, cursor: &[usize], nic: &[u32]) -> u32 {
    nic.iter()
        .map(|&id| snapshot(profiled, cursor, id).workload.cores)
        .sum()
}

/// First empty NIC (lowest index) whose model supports `nf`, skipping
/// `exclude`.
fn choose_empty(
    residents: &[Vec<u32>],
    nics_map: &NicMap,
    nf: &Placed,
    exclude: Option<usize>,
) -> Option<usize> {
    residents
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != exclude && nf.supported_on(nics_map.model[*i]))
        .find(|(_, r)| r.is_empty())
        .map(|(i, _)| i)
}

/// Greedy: the occupied NIC with the most available cores among those
/// where `nf` fits and is feasible (ties break to the lowest index).
fn choose_greedy(
    profiled: &ProfiledTrace,
    residents: &[Vec<u32>],
    cursor: &[usize],
    nics_map: &NicMap,
    nf: &Placed,
    exclude: Option<usize>,
) -> Option<usize> {
    let mut best: Option<(usize, u32)> = None;
    for (i, nic) in residents.iter().enumerate() {
        if Some(i) == exclude || nic.is_empty() || !nf.supported_on(nics_map.model[i]) {
            continue;
        }
        let used = cores_used(profiled, cursor, nic);
        if used + nf.workload.cores > nics_map.cores[i] {
            continue;
        }
        let avail = nics_map.cores[i] - used;
        if best.is_none_or(|(_, b)| avail > b) {
            best = Some((i, avail));
        }
    }
    best.map(|(i, _)| i)
}

/// Contention-aware: the first occupied NIC where `nf` is feasible,
/// fits, and the predictor — consulted for that NIC's hardware model —
/// foresees no SLA violation for anyone (the candidate NIC including
/// `nf`).
#[allow(clippy::too_many_arguments)]
fn choose_contention_aware(
    profiled: &ProfiledTrace,
    residents: &[Vec<u32>],
    cursor: &[usize],
    nics_map: &NicMap,
    predictor: &mut dyn PlacementPredictor,
    nf: &Placed,
    exclude: Option<usize>,
) -> Option<usize> {
    for (i, nic) in residents.iter().enumerate() {
        if Some(i) == exclude || nic.is_empty() || !nf.supported_on(nics_map.model[i]) {
            continue;
        }
        if cores_used(profiled, cursor, nic) + nf.workload.cores > nics_map.cores[i] {
            continue;
        }
        let model = nics_map.model[i];
        let mut candidate: Vec<Placed> = nic
            .iter()
            .map(|&id| snapshot(profiled, cursor, id).clone())
            .collect();
        candidate.push(nf.clone());
        let safe = (0..candidate.len())
            .all(|t| predictor.predict(model, t, &candidate) >= candidate[t].sla_floor(model));
        if safe {
            return Some(i);
        }
    }
    None
}

/// One audit epoch's reactive migrations: for each NIC with a predicted
/// violator, drain the diagnosis-selected victim and re-place it under
/// the predictor (or onto an empty NIC). Every per-NIC judgement — the
/// re-evaluation, the bottleneck diagnosis, the victim's contender slate
/// — uses the model of the NIC under audit; the destination may be a NIC
/// of a *different* model, where the victim's feasibility and SLA floor
/// are judged against its solo baseline on that hardware. Returns
/// migrations executed; stops at `budget`.
#[allow(clippy::too_many_arguments)]
fn migrate(
    profiled: &ProfiledTrace,
    residents: &mut [Vec<u32>],
    location: &mut [Option<usize>],
    cursor: &[usize],
    nics_map: &NicMap,
    predictor: &mut dyn PlacementPredictor,
    diagnoser: &Diagnoser<'_>,
    budget: usize,
) -> u32 {
    let mut moved = 0u32;
    for nic in 0..residents.len() {
        if moved as usize >= budget {
            break;
        }
        if residents[nic].len() < 2 {
            continue;
        }
        let model = nics_map.model[nic];
        let placed: Vec<Placed> = residents[nic]
            .iter()
            .map(|&id| snapshot(profiled, cursor, id).clone())
            .collect();
        let Some(&violator) = predictor.reevaluate(model, &placed).first() else {
            continue;
        };
        // Diagnose the violator's bottleneck and pick the co-resident
        // pressing hardest on it.
        let co = diagnoser.contenders(model, &placed, violator);
        let bottleneck = diagnoser.bottleneck(model, &placed, violator, &co);
        let co_positions: Vec<usize> = (0..placed.len()).filter(|&i| i != violator).collect();
        let victim_pos = co_positions[select_victim(bottleneck, &co).expect("≥1 co-resident")];
        let victim_id = residents[nic][victim_pos];
        let victim = placed[victim_pos].clone();
        // Drain-and-replace: a safe occupied NIC first, else power on an
        // empty one; if the fleet is exhausted the victim stays put.
        let dst = choose_contention_aware(
            profiled,
            residents,
            cursor,
            nics_map,
            predictor,
            &victim,
            Some(nic),
        )
        .or_else(|| choose_empty(residents, nics_map, &victim, Some(nic)));
        if let Some(dst) = dst {
            residents[nic].remove(victim_pos);
            residents[dst].push(victim_id);
            location[victim_id as usize] = Some(dst);
            moved += 1;
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FleetConfig, FleetTrace, NfRecord};
    use yala_nf::NfKind;
    use yala_placement::OraclePredictor;
    use yala_traffic::TrafficProfile;

    #[test]
    fn migration_crosses_nic_models_when_the_destination_requires_it() {
        // Portfolio: one BlueField-2 NIC and one Pensando NIC. Two
        // memory-heavy FlowStats instances with a 1% SLA share the BF-2
        // NIC; the oracle predicts a violation, and the only escape NIC
        // in the fleet is the *other hardware model* — the drain must
        // move the victim across models, re-anchoring it to its Pensando
        // solo baseline.
        let mut cfg = FleetConfig::mixed(1, 2);
        cfg.duration_s = 1_200;
        cfg.audit_period_s = 600;
        cfg.kinds = vec![NfKind::FlowStats];
        cfg.noise_sigma = 0.0;
        let heavy = TrafficProfile::new(200_000, 1_500, 0.0);
        let records: Vec<NfRecord> = (0..2)
            .map(|i| NfRecord {
                id: i,
                kind: NfKind::FlowStats,
                arrival_ms: 0,
                departure_ms: 1_100_000,
                start: heavy,
                end: heavy,
                sla_drop: 0.01,
            })
            .collect();
        let profiled = crate::timeline::ProfiledTrace::build(
            FleetTrace::from_records(cfg, records),
            &Engine::sequential(),
        );
        let cfg = &profiled.trace.config;
        let nics_map = NicMap::new(cfg);
        assert_ne!(nics_map.model[0], nics_map.model[1], "two hardware models");
        // Hand-place both NFs on the BF-2 NIC (a blind packer would).
        let mut residents: Vec<Vec<u32>> = vec![vec![0, 1], Vec::new()];
        let mut location: Vec<Option<usize>> = vec![Some(0), Some(0)];
        let cursor = vec![0usize, 0];
        let mut oracle = OraclePredictor::for_models(&cfg.specs());
        let moved = migrate(
            &profiled,
            &mut residents,
            &mut location,
            &cursor,
            &nics_map,
            &mut oracle,
            &Diagnoser::MemoryOnly,
            8,
        );
        assert_eq!(moved, 1, "the predicted violation must drain a victim");
        assert_eq!(residents[0].len(), 1);
        assert_eq!(residents[1].len(), 1, "victim landed on the Pensando NIC");
        let victim = residents[1][0] as usize;
        assert_eq!(location[victim], Some(1));
        // The migrated NF is priced against its *destination-model* solo
        // baseline, which differs from its BF-2 one.
        let snap = snapshot(&profiled, &cursor, victim as u32);
        assert!(snap.supported_on(nics_map.model[1]));
        assert_ne!(
            snap.solo(nics_map.model[0]).solo_tput,
            snap.solo(nics_map.model[1]).solo_tput
        );
    }
}
