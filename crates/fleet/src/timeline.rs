//! Pre-computed profiling timelines: every `(NF, epoch)` profile snapshot
//! the event loop will ever need, built once per scenario and shared by
//! all policy runs.
//!
//! Profiling — packet replay through the real NF plus a solo measurement
//! — is the fleet's dominant cost (milliseconds per traffic point, vs.
//! tens of microseconds for a ground-truth co-run). It is also a pure
//! function of `(kind, traffic, seed)`: placement never affects it. So
//! the drift trajectory of each NF is discretized to audit epochs here,
//! re-profiling only when traffic has moved beyond the config threshold,
//! and the policies replay the same snapshots — any difference between
//! two policies' reports is then attributable to their decisions alone.

use crate::trace::{FleetTrace, MS_PER_S};
use yala_core::engine::Engine;
use yala_placement::{prepare_on, reprofile_on, sims_for, Arrival, Placed};
use yala_traffic::TrafficProfile;

/// Salt separating the timeline's seed stream from the audit stream.
const TIMELINE_SALT: u64 = 0xF1EE_7717;

/// One NF's profile snapshots over its lifetime, ascending in time. The
/// first entry is the arrival profile; later entries are re-profiles at
/// audit epochs where drift crossed the threshold.
#[derive(Debug, Clone)]
pub struct NfTimeline {
    /// `(time_ms, profile)` pairs, ascending and starting at arrival.
    pub snapshots: Vec<(u64, Placed)>,
}

impl NfTimeline {
    /// The snapshot in force at `t_ms` (the last one taken at or before
    /// `t_ms`).
    ///
    /// # Panics
    ///
    /// Panics if `t_ms` precedes the arrival snapshot.
    pub fn at(&self, t_ms: u64) -> &Placed {
        self.snapshots
            .iter()
            .rev()
            .find(|(ts, _)| *ts <= t_ms)
            .map(|(_, p)| p)
            .expect("queried before arrival")
    }

    /// Index of the snapshot in force at `t_ms`, for cursor-style replay.
    pub fn index_at(&self, t_ms: u64) -> usize {
        self.snapshots
            .iter()
            .rposition(|(ts, _)| *ts <= t_ms)
            .expect("queried before arrival")
    }
}

/// A scenario trace plus its profile timelines: everything a policy run
/// needs, fully deterministic in `(config, engine-thread-count)` — the
/// per-NF builds are dispatched across the engine but seeded per scenario
/// index, so any thread count yields bit-identical timelines.
#[derive(Debug, Clone)]
pub struct ProfiledTrace {
    /// The generating trace.
    pub trace: FleetTrace,
    /// One timeline per trace record, same order.
    pub timelines: Vec<NfTimeline>,
}

impl ProfiledTrace {
    /// Profiles the whole trace: one independent scenario per NF (its
    /// arrival profile plus its drift re-profiles, sequentially on
    /// private per-NIC-model simulators), dispatched across `engine`'s
    /// workers. Each NF holds one simulator per portfolio model that
    /// admits its kind ([`yala_nf::NfKind::profiled_on`]), so every
    /// snapshot carries the per-model solo baselines placement needs;
    /// the first portfolio model's seed stream is the old homogeneous
    /// stream, so a single-model portfolio profiles bit-identically.
    pub fn build(trace: FleetTrace, engine: &Engine) -> Self {
        let cfg = trace.config.clone();
        let specs = cfg.specs();
        let horizon_ms = cfg.duration_s * MS_PER_S;
        let period_ms = cfg.audit_period_s * MS_PER_S;
        let timelines = engine.run(trace.records.len(), |i| {
            let rec = &trace.records[i];
            let mut sims = sims_for(
                &specs,
                rec.kind,
                cfg.noise_sigma,
                cfg.seed ^ TIMELINE_SALT,
                i,
            );
            let workload_seed = cfg.seed.wrapping_add(rec.id as u64);
            let first = prepare_on(
                &mut sims,
                Arrival {
                    kind: rec.kind,
                    traffic: rec.traffic_at(rec.arrival_ms),
                    sla_drop: rec.sla_drop,
                },
                workload_seed,
            );
            let mut snapshots = vec![(rec.arrival_ms, first)];
            let mut last_traffic = rec.start;
            // Walk the audit epochs inside the NF's on-trace lifetime.
            let mut epoch_ms = (rec.arrival_ms / period_ms + 1) * period_ms;
            while epoch_ms < rec.departure_ms && epoch_ms <= horizon_ms {
                let now = rec.traffic_at(epoch_ms);
                if drifted(&last_traffic, &now, cfg.reprofile_threshold) {
                    let prev = &snapshots.last().expect("arrival snapshot").1;
                    snapshots.push((epoch_ms, reprofile_on(&mut sims, prev, now, workload_seed)));
                    last_traffic = now;
                }
                epoch_ms += period_ms;
            }
            NfTimeline { snapshots }
        });
        Self { trace, timelines }
    }

    /// Total profile snapshots across all NFs (arrivals + re-profiles):
    /// the scenario's offline profiling bill.
    pub fn snapshot_count(&self) -> usize {
        self.timelines.iter().map(|t| t.snapshots.len()).sum()
    }
}

/// Whether any traffic attribute moved by more than `threshold` relative
/// to the last profiled value.
fn drifted(last: &TrafficProfile, now: &TrafficProfile, threshold: f64) -> bool {
    let rel = |a: f64, b: f64| (b - a).abs() / a.abs().max(1.0);
    rel(last.flow_count as f64, now.flow_count as f64) > threshold
        || rel(last.packet_size as f64, now.packet_size as f64) > threshold
        || rel(last.mtbr, now.mtbr) > threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FleetConfig;

    fn small_profiled(seed: u64) -> ProfiledTrace {
        let mut cfg = FleetConfig::small(seed);
        // Keep the unit test cheap: a short horizon and few arrivals.
        cfg.duration_s = 1_800;
        cfg.mean_interarrival_s = 120.0;
        cfg.mean_lifetime_s = 900.0;
        cfg.audit_period_s = 300;
        ProfiledTrace::build(FleetTrace::generate(cfg), &Engine::sequential())
    }

    #[test]
    fn timelines_start_at_arrival_and_stay_ordered() {
        let p = small_profiled(2);
        assert_eq!(p.timelines.len(), p.trace.records.len());
        for (rec, tl) in p.trace.records.iter().zip(&p.timelines) {
            assert_eq!(tl.snapshots[0].0, rec.arrival_ms);
            assert_eq!(tl.snapshots[0].1.arrival.kind, rec.kind);
            for w in tl.snapshots.windows(2) {
                assert!(w[0].0 < w[1].0, "snapshots ascend");
            }
            // Identity (workload name) is stable across re-profiles.
            for (_, s) in &tl.snapshots {
                assert_eq!(s.workload.name, tl.snapshots[0].1.workload.name);
            }
        }
        // Instance names are unique fleet-wide (needed for co-runs).
        let mut names: Vec<&str> = p
            .timelines
            .iter()
            .map(|t| t.snapshots[0].1.workload.name.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), p.timelines.len());
    }

    #[test]
    fn at_returns_last_snapshot_in_force() {
        let p = small_profiled(8);
        let tl = p
            .timelines
            .iter()
            .find(|t| t.snapshots.len() >= 2)
            .expect("drift produces at least one re-profile");
        let (t1, _) = tl.snapshots[1];
        assert_eq!(
            tl.at(t1 - 1).arrival.traffic,
            tl.snapshots[0].1.arrival.traffic
        );
        assert_eq!(tl.at(t1).arrival.traffic, tl.snapshots[1].1.arrival.traffic);
        assert_eq!(tl.index_at(t1), 1);
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let cfg = {
            let mut c = FleetConfig::small(13);
            c.duration_s = 1_200;
            c.mean_interarrival_s = 150.0;
            c.audit_period_s = 300;
            c
        };
        let seq = ProfiledTrace::build(FleetTrace::generate(cfg.clone()), &Engine::sequential());
        let par = ProfiledTrace::build(FleetTrace::generate(cfg), &Engine::with_threads(4));
        assert_eq!(seq.snapshot_count(), par.snapshot_count());
        for (a, b) in seq.timelines.iter().zip(&par.timelines) {
            assert_eq!(a.snapshots.len(), b.snapshots.len());
            for ((ta, pa), (tb, pb)) in a.snapshots.iter().zip(&b.snapshots) {
                assert_eq!(ta, tb);
                assert_eq!(pa.solos, pb.solos);
                assert_eq!(pa.workload, pb.workload);
            }
        }
    }
}
