//! Pre-computed profiling timelines: every `(NF, epoch)` profile snapshot
//! the event loop will ever need, built once per scenario and shared by
//! all policy runs.
//!
//! Profiling — packet replay through the real NF plus a solo measurement
//! — is the fleet's dominant cost (milliseconds per traffic point, vs.
//! tens of microseconds for a ground-truth co-run). It is also a pure
//! function of `(kind, traffic, seed)`: placement never affects it. So
//! the drift trajectory of each NF is discretized to audit epochs here,
//! re-profiling only when traffic has moved beyond the config threshold,
//! and the policies replay the same snapshots — any difference between
//! two policies' reports is then attributable to their decisions alone.
//!
//! Every measurement routes through a [`ProfileCache`] in one of two
//! modes:
//!
//! * **Exact** ([`ProfiledTrace::build`]): keys carry the exact traffic
//!   attributes and the per-instance workload seed, so within one trace
//!   every measurement is a distinct key and the build is a pure
//!   pass-through — bit-identical to the pre-cache profiler. Rebuilding
//!   the same trace against a shared cache ([`build_with_cache`]) hits
//!   on every key and returns the same bytes without touching a
//!   simulator.
//! * **Quantized** ([`ProfiledTrace::build_cached`]): traffic is
//!   quantized to drift-threshold-sized buckets and the key's seed is
//!   derived from the key itself, so near-identical tenants — and the
//!   same tenant drifting under the re-profile threshold — share one
//!   measurement. A drift trigger delta-re-keys only the attributes
//!   that moved, so a one-attribute drift lands on a neighboring key
//!   that is often already measured.
//!
//! [`build_with_cache`]: ProfiledTrace::build_with_cache

use crate::trace::{FleetTrace, MS_PER_S};
use yala_core::engine::Engine;
use yala_core::profile_cache::{profile_seed, ProfileCache, ProfileKey, TrafficKey};
use yala_placement::{measure_entry, placed_from_entry, sims_for, sims_for_key, Arrival, Placed};
use yala_telemetry::{stable_hash64, Event, MetricsRegistry, Telemetry};
use yala_traffic::TrafficQuantizer;

/// One measurement consumed during an observed build, for the journal:
/// `(logical time, trigger, stable key hash)`.
type ProfileTap = Vec<(u64, &'static str, u64)>;

/// Stable 64-bit identity of a profile-cache key, for journal lines.
fn key_hash(key: &ProfileKey) -> u64 {
    stable_hash64(format!("{key:?}").as_bytes())
}

/// Salt separating the timeline's seed stream from the audit stream.
const TIMELINE_SALT: u64 = 0xF1EE_7717;

/// One NF's profile snapshots over its lifetime, ascending in time. The
/// first entry is the arrival profile; later entries are re-profiles at
/// audit epochs where drift crossed the threshold.
#[derive(Debug, Clone)]
pub struct NfTimeline {
    /// `(time_ms, profile)` pairs, ascending and starting at arrival.
    pub snapshots: Vec<(u64, Placed)>,
}

impl NfTimeline {
    /// The snapshot in force at `t_ms` (the last one taken at or before
    /// `t_ms`).
    ///
    /// # Panics
    ///
    /// Panics if `t_ms` precedes the arrival snapshot.
    pub fn at(&self, t_ms: u64) -> &Placed {
        self.snapshots
            .iter()
            .rev()
            .find(|(ts, _)| *ts <= t_ms)
            .map(|(_, p)| p)
            .expect("queried before arrival")
    }

    /// Index of the snapshot in force at `t_ms`, for cursor-style replay.
    pub fn index_at(&self, t_ms: u64) -> usize {
        self.snapshots
            .iter()
            .rposition(|(ts, _)| *ts <= t_ms)
            .expect("queried before arrival")
    }
}

/// Profiling-cost accounting for one [`ProfiledTrace`] build: how the
/// cache behaved (lookups/hits/misses/inserts) and how drift triggers
/// split between delta re-keys (some traffic attributes kept their
/// bucket) and full re-profiles (every attribute moved, or exact mode
/// where no bucket sharing applies). All counts are deterministic in
/// `(trace, cache-state-before)` — independent of engine thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileStats {
    /// Cache lookups issued by this build.
    pub lookups: u64,
    /// Lookups served from an already-measured entry.
    pub hits: u64,
    /// Lookups that had to run the measurement.
    pub misses: u64,
    /// New entries inserted by this build (== `misses` against a cache
    /// that never evicts).
    pub inserts: u64,
    /// Drift triggers where only a strict subset of traffic attributes
    /// moved past threshold — the re-key reuses the unmoved buckets.
    pub delta_reprofiles: u64,
    /// Drift triggers that re-keyed every attribute (and, in exact mode,
    /// every re-profile: exact keys share nothing).
    pub full_reprofiles: u64,
}

impl ProfileStats {
    /// Total re-profiles (drift triggers that produced a snapshot).
    pub fn reprofiles(&self) -> u64 {
        self.delta_reprofiles + self.full_reprofiles
    }

    /// Renders the stats as a flat JSON object, for bench records.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"lookups\": {}, \"hits\": {}, \"misses\": {}, \"inserts\": {}, \"delta_reprofiles\": {}, \"full_reprofiles\": {}}}",
            self.lookups, self.hits, self.misses, self.inserts, self.delta_reprofiles, self.full_reprofiles
        )
    }
}

/// A scenario trace plus its profile timelines: everything a policy run
/// needs, fully deterministic in `(config, engine-thread-count)` — the
/// per-NF builds are dispatched across the engine but seeded per scenario
/// index (exact mode) or per cache key (quantized mode), so any thread
/// count yields bit-identical timelines.
#[derive(Debug, Clone)]
pub struct ProfiledTrace {
    /// The generating trace.
    pub trace: FleetTrace,
    /// One timeline per trace record, same order.
    pub timelines: Vec<NfTimeline>,
    /// Profiling-cost accounting for the build that produced this value.
    pub stats: ProfileStats,
}

impl ProfiledTrace {
    /// Profiles the whole trace in **exact mode**: one independent
    /// scenario per NF (its arrival profile plus its drift re-profiles,
    /// sequentially on private per-NIC-model simulators), dispatched
    /// across `engine`'s workers. Each NF holds one simulator per
    /// portfolio model that admits its kind
    /// ([`yala_nf::NfKind::profiled_on`]), so every snapshot carries the
    /// per-model solo baselines placement needs; the first portfolio
    /// model's seed stream is the old homogeneous stream, so a
    /// single-model portfolio profiles bit-identically.
    ///
    /// Equivalent to [`build_with_cache`] against a fresh private cache:
    /// every key is distinct, every lookup misses, and the byte stream
    /// is exactly the uncached profiler's.
    ///
    /// [`build_with_cache`]: ProfiledTrace::build_with_cache
    pub fn build(trace: FleetTrace, engine: &Engine) -> Self {
        Self::build_with_cache(trace, engine, &ProfileCache::new())
    }

    /// [`build`](Self::build) with an observability sink: every
    /// measurement is journaled as an [`Event::Profile`] (with a stable
    /// key hash and a deterministic hit/miss attribution), per-scenario
    /// metric shards are merged into the registry in scenario order, and
    /// the build's [`ProfileStats`] are mirrored onto `profile.*`
    /// counters. A disabled handle makes this exactly `build`.
    pub fn build_observed(trace: FleetTrace, engine: &Engine, tel: &mut Telemetry) -> Self {
        Self::build_with_cache_observed(trace, engine, &ProfileCache::new(), tel)
    }

    /// Exact-mode build against a caller-owned cache. Keys are
    /// `(kind, exact traffic, per-instance workload seed)`, so within
    /// one trace every measurement is a fresh key and the build is a
    /// pass-through; rebuilding the *same* trace against the same cache
    /// hits on every key and reproduces the identical bytes without
    /// running a single measurement. Sharing one cache across
    /// *different* traces is only useful when they overlap in
    /// `(seed, kind, traffic)` — the per-instance seed in the key keeps
    /// unrelated traces from colliding.
    pub fn build_with_cache(trace: FleetTrace, engine: &Engine, cache: &ProfileCache) -> Self {
        Self::build_with_cache_observed(trace, engine, cache, &mut Telemetry::disabled())
    }

    /// Exact-mode observed build; see [`build_observed`](Self::build_observed)
    /// for the telemetry contract.
    pub fn build_with_cache_observed(
        trace: FleetTrace,
        engine: &Engine,
        cache: &ProfileCache,
        tel: &mut Telemetry,
    ) -> Self {
        let cfg = trace.config.clone();
        let specs = cfg.specs();
        let horizon_ms = cfg.duration_s * MS_PER_S;
        let period_ms = cfg.audit_period_s * MS_PER_S;
        let observe = tel.is_enabled();
        let before = cache.stats();
        let built: Vec<(NfTimeline, u64, ProfileTap, Option<MetricsRegistry>)> =
            engine.run(trace.records.len(), |i| {
                let rec = &trace.records[i];
                let mut sims = sims_for(
                    &specs,
                    rec.kind,
                    cfg.noise_sigma,
                    cfg.seed ^ TIMELINE_SALT,
                    i,
                );
                let workload_seed = cfg.seed.wrapping_add(rec.id as u64);
                let mut tap: ProfileTap = Vec::new();
                let mut shard = observe.then(MetricsRegistry::new);
                // The measurement closure threads the record's own simulators
                // through the cache: on a miss the simulators advance exactly
                // as the uncached profiler's would; on a hit they stay put and
                // the cached bytes stand in for the measurement they replay.
                let mut measure = |traffic, t_ms: u64, trigger: &'static str| {
                    let key = ProfileKey {
                        kind: rec.kind,
                        traffic: TrafficKey::exact(&traffic),
                        seed: workload_seed,
                    };
                    if observe {
                        tap.push((t_ms, trigger, key_hash(&key)));
                    }
                    cache.get_or_measure(&key, || {
                        measure_entry(&mut sims, rec.kind, traffic, workload_seed)
                    })
                };
                let arrival = Arrival {
                    kind: rec.kind,
                    traffic: rec.traffic_at(rec.arrival_ms),
                    sla_drop: rec.sla_drop,
                    qos: rec.qos,
                };
                let first = placed_from_entry(
                    &measure(arrival.traffic, rec.arrival_ms, "arrival"),
                    arrival,
                    None,
                );
                let name = first.workload.name.clone();
                let mut snapshots = vec![(rec.arrival_ms, first)];
                let mut last_traffic = rec.start;
                let mut reprofiles = 0u64;
                // Walk the audit epochs inside the NF's on-trace lifetime.
                let mut epoch_ms = (rec.arrival_ms / period_ms + 1) * period_ms;
                while epoch_ms < rec.departure_ms && epoch_ms <= horizon_ms {
                    let now = rec.traffic_at(epoch_ms);
                    if last_traffic.relative_change(&now) > cfg.reprofile_threshold {
                        let prev = &snapshots.last().expect("arrival snapshot").1;
                        let mut arr = prev.arrival.clone();
                        arr.traffic = now;
                        snapshots.push((
                            epoch_ms,
                            placed_from_entry(&measure(now, epoch_ms, "drift"), arr, Some(&name)),
                        ));
                        reprofiles += 1;
                        last_traffic = now;
                    }
                    epoch_ms += period_ms;
                }
                if let Some(s) = shard.as_mut() {
                    for &(_, trigger, _) in &tap {
                        s.inc(&format!("profile.measurements.{trigger}"), 1);
                    }
                    s.observe_log2("profile.snapshots_per_nf", 1.0, 6, snapshots.len() as f64);
                }
                (NfTimeline { snapshots }, reprofiles, tap, shard)
            });
        let mut timelines = Vec::with_capacity(built.len());
        let mut full_reprofiles = 0u64;
        let mut seen_keys = std::collections::HashSet::new();
        for (i, (tl, n, tap, shard)) in built.into_iter().enumerate() {
            timelines.push(tl);
            full_reprofiles += n;
            if let Some(shard) = shard {
                tel.merge_shard(&shard);
            }
            journal_tap(tel, &trace, i, tap, &mut seen_keys);
        }
        let stats = Self::stats_from(before, cache.stats(), 0, full_reprofiles);
        mirror_stats(tel, &stats);
        Self {
            trace,
            timelines,
            stats,
        }
    }

    /// Profiles the whole trace in **quantized mode** against a fresh
    /// private cache. See [`build_cached_with`] for the sharing
    /// semantics; a fresh cache still pays one measurement per distinct
    /// quantized key, which is already far fewer than one per snapshot
    /// whenever tenants cluster around common traffic shapes.
    ///
    /// [`build_cached_with`]: ProfiledTrace::build_cached_with
    pub fn build_cached(trace: FleetTrace, engine: &Engine) -> Self {
        Self::build_cached_with(trace, engine, &ProfileCache::new())
    }

    /// [`build_cached`](Self::build_cached) with an observability sink;
    /// same telemetry contract as [`build_observed`](Self::build_observed),
    /// with triggers `arrival`/`delta`/`full` instead of
    /// `arrival`/`drift`.
    pub fn build_cached_observed(trace: FleetTrace, engine: &Engine, tel: &mut Telemetry) -> Self {
        Self::build_cached_with_observed(trace, engine, &ProfileCache::new(), tel)
    }

    /// Quantized-mode build against a caller-owned cache — the
    /// fleet-scale profile-sharing path. Traffic is quantized with
    /// bucket widths sized under the config's `reprofile_threshold`
    /// ([`TrafficQuantizer`]), each key's measurement seed is derived
    /// from the key itself ([`profile_seed`]), and the measurement runs
    /// on fresh per-key simulators ([`sims_for_key`]) at the bucket's
    /// representative profile — a pure function of the key. Any two
    /// lookups of the same key, from any tenant, epoch, build, or
    /// thread, therefore return bitwise-identical measurements, and the
    /// cache may be shared process-wide ([`ProfileCache::global`]).
    ///
    /// Drift handling is **delta re-keying**: at each audit epoch the
    /// per-attribute drift relative to the last *measured*
    /// (representative) profile is compared against the threshold, and
    /// only attributes past it re-bucket ([`TrafficQuantizer::delta_rekey`]) —
    /// single-attribute drift moves to an adjacent key that is often
    /// already measured. Snapshots carry the representative traffic, so
    /// SLA floors track the profile that was actually measured.
    pub fn build_cached_with(trace: FleetTrace, engine: &Engine, cache: &ProfileCache) -> Self {
        Self::build_cached_with_observed(trace, engine, cache, &mut Telemetry::disabled())
    }

    /// Quantized-mode observed build; see
    /// [`build_cached_observed`](Self::build_cached_observed) for the
    /// telemetry contract.
    pub fn build_cached_with_observed(
        trace: FleetTrace,
        engine: &Engine,
        cache: &ProfileCache,
        tel: &mut Telemetry,
    ) -> Self {
        let cfg = trace.config.clone();
        let specs = cfg.specs();
        let horizon_ms = cfg.duration_s * MS_PER_S;
        let period_ms = cfg.audit_period_s * MS_PER_S;
        let quantizer = TrafficQuantizer::new(cfg.reprofile_threshold);
        let observe = tel.is_enabled();
        let before = cache.stats();
        type QuantBuilt = (NfTimeline, u64, u64, ProfileTap, Option<MetricsRegistry>);
        let built: Vec<QuantBuilt> = engine.run(trace.records.len(), |i| {
            let rec = &trace.records[i];
            let mut tap: ProfileTap = Vec::new();
            let mut shard = observe.then(MetricsRegistry::new);
            // A keyed measurement is a pure function of the key: fresh
            // simulators seeded from the key, measuring the bucket's
            // representative profile with the key-derived seed.
            let measure = |key: ProfileKey, rep| {
                cache.get_or_measure(&key, || {
                    let mut sims = sims_for_key(&specs, rec.kind, cfg.noise_sigma, key.seed);
                    measure_entry(&mut sims, rec.kind, rep, key.seed)
                })
            };
            let keyed = |qkey| {
                let traffic = TrafficKey::Bucketed(qkey);
                let seed = profile_seed(cfg.seed ^ TIMELINE_SALT, rec.kind, &traffic);
                ProfileKey {
                    kind: rec.kind,
                    traffic,
                    seed,
                }
            };
            // Instances keep the exact path's naming convention
            // (`<kind>-<workload seed>`), unique per record.
            let name = format!(
                "{}-{}",
                rec.kind.name(),
                cfg.seed.wrapping_add(rec.id as u64)
            );
            let (mut last_key, mut last_rep) =
                quantizer.canonicalize(&rec.traffic_at(rec.arrival_ms));
            let arrival = Arrival {
                kind: rec.kind,
                traffic: last_rep,
                sla_drop: rec.sla_drop,
                qos: rec.qos,
            };
            let k0 = keyed(last_key);
            if observe {
                tap.push((rec.arrival_ms, "arrival", key_hash(&k0)));
            }
            let first = placed_from_entry(&measure(k0, last_rep), arrival, Some(&name));
            let mut snapshots = vec![(rec.arrival_ms, first)];
            let (mut delta, mut full) = (0u64, 0u64);
            let mut epoch_ms = (rec.arrival_ms / period_ms + 1) * period_ms;
            while epoch_ms < rec.departure_ms && epoch_ms <= horizon_ms {
                let now = rec.traffic_at(epoch_ms);
                let rk = quantizer.delta_rekey(&last_key, &last_rep, &now);
                // Re-profile only when drift past threshold actually
                // lands in a different bucket; at clamped range edges a
                // nominal trigger can re-quantize to the same key, and
                // re-measuring it would be pure waste.
                if rk.moved_count() > 0 && rk.key != last_key {
                    let trigger = if rk.is_full() {
                        full += 1;
                        "full"
                    } else {
                        delta += 1;
                        "delta"
                    };
                    let rep = quantizer.representative(&rk.key);
                    let prev = &snapshots.last().expect("arrival snapshot").1;
                    let mut arr = prev.arrival.clone();
                    arr.traffic = rep;
                    let k = keyed(rk.key);
                    if observe {
                        tap.push((epoch_ms, trigger, key_hash(&k)));
                    }
                    snapshots.push((
                        epoch_ms,
                        placed_from_entry(&measure(k, rep), arr, Some(&name)),
                    ));
                    last_key = rk.key;
                    last_rep = rep;
                }
                epoch_ms += period_ms;
            }
            if let Some(s) = shard.as_mut() {
                for &(_, trigger, _) in &tap {
                    s.inc(&format!("profile.measurements.{trigger}"), 1);
                }
                s.observe_log2("profile.snapshots_per_nf", 1.0, 6, snapshots.len() as f64);
            }
            (NfTimeline { snapshots }, delta, full, tap, shard)
        });
        let mut timelines = Vec::with_capacity(built.len());
        let (mut delta_reprofiles, mut full_reprofiles) = (0u64, 0u64);
        let mut seen_keys = std::collections::HashSet::new();
        for (i, (tl, d, f, tap, shard)) in built.into_iter().enumerate() {
            timelines.push(tl);
            delta_reprofiles += d;
            full_reprofiles += f;
            if let Some(shard) = shard {
                tel.merge_shard(&shard);
            }
            journal_tap(tel, &trace, i, tap, &mut seen_keys);
        }
        let stats = Self::stats_from(before, cache.stats(), delta_reprofiles, full_reprofiles);
        mirror_stats(tel, &stats);
        Self {
            trace,
            timelines,
            stats,
        }
    }

    /// Total profile snapshots across all NFs (arrivals + re-profiles):
    /// the scenario's offline profiling bill *before* cache sharing.
    /// The bill actually paid is `stats.misses`.
    pub fn snapshot_count(&self) -> usize {
        self.timelines.iter().map(|t| t.snapshots.len()).sum()
    }

    /// Assembles build stats from the cache-counter delta plus the
    /// trace-determined re-profile split. The delta is thread-count
    /// invariant: the key set is trace-determined, misses count stub
    /// creations (one per distinct new key, whichever thread gets
    /// there), and hits are the remaining lookups.
    fn stats_from(
        before: yala_core::profile_cache::CacheStats,
        after: yala_core::profile_cache::CacheStats,
        delta_reprofiles: u64,
        full_reprofiles: u64,
    ) -> ProfileStats {
        ProfileStats {
            lookups: after.lookups - before.lookups,
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            inserts: after.entries - before.entries,
            delta_reprofiles,
            full_reprofiles,
        }
    }
}

/// Journals one record's profile tap, tagging each measurement `miss`
/// on the first post-merge occurrence of its key hash and `hit` after.
/// Runs sequentially in record order after the parallel build, so the
/// attribution is deterministic regardless of which thread actually
/// paid for the measurement.
fn journal_tap(
    tel: &mut Telemetry,
    trace: &FleetTrace,
    i: usize,
    tap: ProfileTap,
    seen: &mut std::collections::HashSet<u64>,
) {
    if tap.is_empty() {
        return;
    }
    let rec = &trace.records[i];
    for (t_ms, trigger, key) in tap {
        let cache = if seen.insert(key) { "miss" } else { "hit" };
        tel.rec(t_ms, || Event::Profile {
            id: rec.id,
            kind: rec.kind.name(),
            trigger,
            key,
            cache,
        });
    }
}

/// Mirrors a build's [`ProfileStats`] onto the `profile.*` counters, so
/// the registry carries the same accounting the bench records print.
fn mirror_stats(tel: &mut Telemetry, stats: &ProfileStats) {
    if !tel.is_enabled() {
        return;
    }
    tel.inc("profile.lookups", stats.lookups);
    tel.inc("profile.hits", stats.hits);
    tel.inc("profile.misses", stats.misses);
    tel.inc("profile.inserts", stats.inserts);
    tel.inc("profile.delta_reprofiles", stats.delta_reprofiles);
    tel.inc("profile.full_reprofiles", stats.full_reprofiles);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FleetConfig;

    fn small_profiled(seed: u64) -> ProfiledTrace {
        let mut cfg = FleetConfig::small(seed);
        // Keep the unit test cheap: a short horizon and few arrivals.
        cfg.duration_s = 1_800;
        cfg.mean_interarrival_s = 120.0;
        cfg.mean_lifetime_s = 900.0;
        cfg.audit_period_s = 300;
        ProfiledTrace::build(FleetTrace::generate(cfg), &Engine::sequential())
    }

    #[test]
    fn timelines_start_at_arrival_and_stay_ordered() {
        let p = small_profiled(2);
        assert_eq!(p.timelines.len(), p.trace.records.len());
        for (rec, tl) in p.trace.records.iter().zip(&p.timelines) {
            assert_eq!(tl.snapshots[0].0, rec.arrival_ms);
            assert_eq!(tl.snapshots[0].1.arrival.kind, rec.kind);
            for w in tl.snapshots.windows(2) {
                assert!(w[0].0 < w[1].0, "snapshots ascend");
            }
            // Identity (workload name) is stable across re-profiles.
            for (_, s) in &tl.snapshots {
                assert_eq!(s.workload.name, tl.snapshots[0].1.workload.name);
            }
        }
        // Instance names are unique fleet-wide (needed for co-runs).
        let mut names: Vec<&str> = p
            .timelines
            .iter()
            .map(|t| t.snapshots[0].1.workload.name.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), p.timelines.len());
    }

    #[test]
    fn at_returns_last_snapshot_in_force() {
        let p = small_profiled(8);
        let tl = p
            .timelines
            .iter()
            .find(|t| t.snapshots.len() >= 2)
            .expect("drift produces at least one re-profile");
        let (t1, _) = tl.snapshots[1];
        assert_eq!(
            tl.at(t1 - 1).arrival.traffic,
            tl.snapshots[0].1.arrival.traffic
        );
        assert_eq!(tl.at(t1).arrival.traffic, tl.snapshots[1].1.arrival.traffic);
        assert_eq!(tl.index_at(t1), 1);
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let cfg = {
            let mut c = FleetConfig::small(13);
            c.duration_s = 1_200;
            c.mean_interarrival_s = 150.0;
            c.audit_period_s = 300;
            c
        };
        let seq = ProfiledTrace::build(FleetTrace::generate(cfg.clone()), &Engine::sequential());
        let par = ProfiledTrace::build(FleetTrace::generate(cfg), &Engine::with_threads(4));
        assert_eq!(seq.snapshot_count(), par.snapshot_count());
        assert_eq!(seq.stats, par.stats);
        for (a, b) in seq.timelines.iter().zip(&par.timelines) {
            assert_eq!(a.snapshots.len(), b.snapshots.len());
            for ((ta, pa), (tb, pb)) in a.snapshots.iter().zip(&b.snapshots) {
                assert_eq!(ta, tb);
                assert_eq!(pa.solos, pb.solos);
                assert_eq!(pa.workload, pb.workload);
            }
        }
    }

    #[test]
    fn exact_mode_is_a_pass_through_that_hits_on_rebuild() {
        let mut cfg = FleetConfig::small(5);
        cfg.duration_s = 1_800;
        cfg.mean_interarrival_s = 150.0;
        cfg.audit_period_s = 300;
        let cache = ProfileCache::new();
        let engine = Engine::sequential();
        let a = ProfiledTrace::build_with_cache(FleetTrace::generate(cfg.clone()), &engine, &cache);
        // Fresh cache: every snapshot was a distinct key, nothing hit.
        assert_eq!(a.stats.hits, 0);
        assert_eq!(a.stats.misses, a.snapshot_count() as u64);
        assert_eq!(a.stats.inserts, a.stats.misses);
        // Same trace, same cache: everything hits, bytes are identical.
        let b = ProfiledTrace::build_with_cache(FleetTrace::generate(cfg), &engine, &cache);
        assert_eq!(b.stats.misses, 0);
        assert_eq!(b.stats.hits, b.stats.lookups);
        for (ta, tb) in a.timelines.iter().zip(&b.timelines) {
            for ((sa, pa), (sb, pb)) in ta.snapshots.iter().zip(&tb.snapshots) {
                assert_eq!(sa, sb);
                assert_eq!(pa.workload, pb.workload);
                assert_eq!(pa.solos, pb.solos);
            }
        }
    }

    #[test]
    fn quantized_mode_shares_profiles_and_stays_deterministic() {
        let mut cfg = FleetConfig::small(9);
        cfg.duration_s = 1_800;
        cfg.mean_interarrival_s = 100.0;
        cfg.audit_period_s = 300;
        let seq =
            ProfiledTrace::build_cached(FleetTrace::generate(cfg.clone()), &Engine::sequential());
        let par = ProfiledTrace::build_cached(FleetTrace::generate(cfg), &Engine::with_threads(4));
        assert_eq!(seq.stats, par.stats);
        assert_eq!(
            seq.stats.delta_reprofiles + seq.stats.full_reprofiles + seq.timelines.len() as u64,
            seq.stats.lookups
        );
        for (a, b) in seq.timelines.iter().zip(&par.timelines) {
            assert_eq!(a.snapshots.len(), b.snapshots.len());
            for ((ta, pa), (tb, pb)) in a.snapshots.iter().zip(&b.snapshots) {
                assert_eq!(ta, tb);
                assert_eq!(pa.workload, pb.workload);
                assert_eq!(pa.solos, pb.solos);
            }
        }
    }
}
