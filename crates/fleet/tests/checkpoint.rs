//! Checkpoint round-trip property: killing a fleet run at an *arbitrary*
//! audit epoch, snapshotting, restoring, and finishing must be
//! bit-identical — report and telemetry journal — to the run that never
//! stopped. The epochs are drawn at random per (seed, policy) case, so
//! repeated CI runs sweep the checkpoint point across the horizon rather
//! than blessing one hand-picked epoch. The drawn epoch is printed on
//! failure; the draw itself is seeded, so any failure reproduces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yala_core::{Engine, ModelBank, TrainConfig};
use yala_fleet::{
    restore_fleet, snapshot_fleet, Diagnoser, FaultPlan, FleetConfig, FleetPolicy, FleetReport,
    FleetSim, FleetTrace, OnlineRefine, Processed, ProfiledTrace, TrafficModel,
};
use yala_nf::NfKind;
use yala_placement::YalaPredictor;
use yala_telemetry::Telemetry;

fn scenario(seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::small(seed);
    cfg.portfolio = vec![(yala_sim::NicSpec::bluefield2(), 8)];
    cfg.duration_s = 2_400;
    cfg.mean_interarrival_s = 90.0;
    cfg.mean_lifetime_s = 1_400.0;
    cfg.audit_period_s = 600;
    cfg.kinds = vec![NfKind::FlowStats, NfKind::Nat];
    cfg.traffic_model = TrafficModel::Templates {
        count: 3,
        jitter: 0.0,
    };
    cfg.guaranteed_fraction = 0.7;
    cfg.faults = FaultPlan {
        mtbf_s: 3_600.0,
        mean_repair_s: 600.0,
        drains: 1,
        drain_notice_s: 300,
        drain_offline_s: 600,
    };
    cfg
}

/// Runs to completion, optionally killing + restoring at `interrupt_at`
/// audits. Returns `(report, journal_text)`.
fn drive<'a>(
    profiled: &'a ProfiledTrace,
    mut make_policy: impl FnMut() -> FleetPolicy<'a>,
    label: &str,
    engine: &Engine,
    interrupt_at: Option<u32>,
) -> (FleetReport, String) {
    let mut tel = Telemetry::enabled();
    let mut sim = FleetSim::new(profiled, make_policy(), label);
    let mut audits = 0u32;
    while let Some(ev) = sim.step(engine, &mut tel) {
        if let Processed::Audit(_) = ev {
            audits += 1;
            if Some(audits) == interrupt_at {
                break;
            }
        }
    }
    if interrupt_at.is_none() {
        return (
            sim.into_report(),
            tel.sink().expect("enabled").journal.to_jsonl(),
        );
    }
    // The kill: serialize, drop every live object, come back from bytes.
    let text = snapshot_fleet(&sim, Some(&tel.sink().expect("enabled").journal));
    drop(sim);
    drop(tel);
    let (mut sim, resume) =
        restore_fleet(profiled, make_policy(), label, &text, engine).expect("snapshot restores");
    let resume = resume.expect("journal section present");
    let mut tel = Telemetry::enabled();
    tel.sink_mut().expect("enabled").journal = resume.resume();
    while sim.step(engine, &mut tel).is_some() {}
    let stitched = format!(
        "{}{}",
        resume.prefix,
        tel.sink().expect("enabled").journal.to_jsonl()
    );
    (sim.into_report(), stitched)
}

fn assert_roundtrip<'a>(
    profiled: &'a ProfiledTrace,
    mut make_policy: impl FnMut() -> FleetPolicy<'a>,
    label: &str,
    engine: &Engine,
    epoch: u32,
) {
    let (whole, whole_journal) = drive(profiled, &mut make_policy, label, engine, None);
    let (resumed, resumed_journal) = drive(profiled, &mut make_policy, label, engine, Some(epoch));
    assert_eq!(
        resumed, whole,
        "{label}: report diverged after kill/restore at audit {epoch}"
    );
    assert_eq!(
        resumed.to_json(),
        whole.to_json(),
        "{label}: report JSON diverged at audit {epoch}"
    );
    assert_eq!(
        resumed_journal, whole_journal,
        "{label}: journal diverged after kill/restore at audit {epoch}"
    );
}

#[test]
fn prediction_free_policies_roundtrip_at_random_epochs() {
    let engine = Engine::sequential();
    let audits = (scenario(0).duration_s / scenario(0).audit_period_s) as u32;
    let mut rng = StdRng::seed_from_u64(0xC8EC_4901);
    for seed in [61, 62] {
        let profiled = ProfiledTrace::build_cached(FleetTrace::generate(scenario(seed)), &engine);
        for label in ["greedy", "mono"] {
            let epoch = rng.gen_range(1..audits);
            let make = || {
                if label == "mono" {
                    FleetPolicy::Monopolization
                } else {
                    FleetPolicy::Greedy
                }
            };
            assert_roundtrip(&profiled, make, label, &engine, epoch);
        }
    }
}

#[test]
fn online_refining_policy_roundtrips_at_random_epochs() {
    let engine = Engine::sequential();
    let cfg = scenario(63);
    let audits = (cfg.duration_s / cfg.audit_period_s) as u32;
    let train = TrainConfig {
        seed: cfg.seed,
        ..TrainConfig::default()
    };
    let bank = ModelBank::train_yala(&cfg.specs(), cfg.noise_sigma, &cfg.kinds, &train, &engine);
    let profiled = ProfiledTrace::build_cached(FleetTrace::generate(cfg), &engine);
    let mut rng = StdRng::seed_from_u64(0xC8EC_4902);
    for _ in 0..2 {
        let epoch = rng.gen_range(1..audits);
        // Each run builds a fresh predictor (absorbs mutate it); the
        // restore path replays the absorbed batches into another fresh
        // one, which is exactly the restore-by-replay property under
        // test. A low absorb threshold makes sure refinement actually
        // fires before the checkpoint.
        let run = |interrupt: Option<u32>| {
            let mut predictor = YalaPredictor::new(&bank);
            let policy = FleetPolicy::ContentionAware {
                predictor: &mut predictor,
                diagnoser: Diagnoser::Yala(&bank),
                online: Some(OnlineRefine {
                    min_observations: 4,
                }),
                qos_aware: true,
            };
            let mut tel = Telemetry::enabled();
            let mut sim = FleetSim::new(&profiled, policy, "yala-online");
            let mut audits_seen = 0u32;
            while let Some(ev) = sim.step(&engine, &mut tel) {
                if let Processed::Audit(_) = ev {
                    audits_seen += 1;
                    if Some(audits_seen) == interrupt {
                        break;
                    }
                }
            }
            if interrupt.is_none() {
                return (
                    sim.into_report(),
                    tel.sink().expect("enabled").journal.to_jsonl(),
                );
            }
            let text = snapshot_fleet(&sim, Some(&tel.sink().expect("enabled").journal));
            drop(sim);
            drop(tel);
            let mut predictor2 = YalaPredictor::new(&bank);
            let policy2 = FleetPolicy::ContentionAware {
                predictor: &mut predictor2,
                diagnoser: Diagnoser::Yala(&bank),
                online: Some(OnlineRefine {
                    min_observations: 4,
                }),
                qos_aware: true,
            };
            let (mut sim, resume) =
                restore_fleet(&profiled, policy2, "yala-online", &text, &engine)
                    .expect("snapshot restores");
            let resume = resume.expect("journal section present");
            let mut tel = Telemetry::enabled();
            tel.sink_mut().expect("enabled").journal = resume.resume();
            while sim.step(&engine, &mut tel).is_some() {}
            let stitched = format!(
                "{}{}",
                resume.prefix,
                tel.sink().expect("enabled").journal.to_jsonl()
            );
            (sim.into_report(), stitched)
        };
        let (whole, whole_journal) = run(None);
        let (resumed, resumed_journal) = run(Some(epoch));
        assert!(
            whole_journal.contains("\"ev\":\"absorb\""),
            "scenario too tame: online refinement never fired, the test probes nothing"
        );
        assert_eq!(
            resumed, whole,
            "yala-online: report diverged after kill/restore at audit {epoch}"
        );
        assert_eq!(
            resumed_journal, whole_journal,
            "yala-online: journal diverged after kill/restore at audit {epoch}"
        );
    }
}
