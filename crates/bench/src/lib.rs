//! # yala-bench — the experiment harness
//!
//! Shared infrastructure for the binaries under `src/bin/`, each of which
//! regenerates one table or figure of the paper (see `DESIGN.md` for the
//! per-experiment index and `EXPERIMENTS.md` for paper-vs-measured notes).
//!
//! The central type is [`Zoo`]: it trains Yala and SLOMO models for a set
//! of NFs against one simulated SmartNIC, caches per-(NF, profile)
//! contentiousness profiles, and evaluates prediction scenarios against
//! ground-truth co-runs.

use std::collections::HashMap;
use yala_core::profiler::cached_workload;
use yala_core::{Contender, Engine, ModelBank, TrainConfig, YalaModel};
use yala_ml::metrics;
use yala_nf::NfKind;
use yala_sim::{CounterSample, NicModelId, NicSpec, Simulator, WorkloadSpec};
use yala_slomo::{default_mem_grid, train_slomo_bank, SlomoModel};
use yala_traffic::TrafficProfile;

/// Measurement noise used across experiments (≈ real counter jitter).
pub const NOISE_SIGMA: f64 = 0.005;

/// Scale knob for experiment sizes: `YALA_SCALE=full` runs paper-sized
/// sweeps; anything else (default) runs reduced-but-representative ones.
pub fn full_scale() -> bool {
    std::env::var("YALA_SCALE")
        .map(|v| v == "full")
        .unwrap_or(false)
}

/// Picks `n` if quick, `n_full` under `YALA_SCALE=full`.
pub fn scaled(n: usize, n_full: usize) -> usize {
    if full_scale() {
        n_full
    } else {
        n
    }
}

/// A prediction scenario's outcome.
#[derive(Debug, Clone, Copy)]
pub struct Eval {
    /// Ground-truth throughput of the target in the co-run.
    pub truth: f64,
    /// Yala's prediction.
    pub yala: f64,
    /// SLOMO's prediction (with sensitivity extrapolation).
    pub slomo: f64,
}

/// Accuracy summary of a batch of evaluations (one paper table row).
#[derive(Debug, Clone, Copy)]
pub struct Accuracy {
    /// Mean absolute percentage error.
    pub mape: f64,
    /// Fraction of predictions within ±5%.
    pub acc5: f64,
    /// Fraction within ±10%.
    pub acc10: f64,
}

/// Summarises predictions against truths.
pub fn accuracy(truth: &[f64], pred: &[f64]) -> Accuracy {
    Accuracy {
        mape: metrics::mape(truth, pred),
        acc5: metrics::bounded_accuracy(truth, pred, 5.0),
        acc10: metrics::bounded_accuracy(truth, pred, 10.0),
    }
}

/// Solo-profile cache entry: `(workload, solo counters, solo throughput)`.
type SoloEntry = (WorkloadSpec, CounterSample, f64);

/// Trained model banks and caches for a NIC portfolio. The primary
/// simulator/accessors answer for the *first* portfolio model (the
/// homogeneous experiments' testbed); the banks cover every model.
pub struct Zoo {
    /// The simulator standing in for the (first-model) testbed.
    pub sim: Simulator,
    /// The first portfolio model — the homogeneous experiments' hardware.
    model: NicModelId,
    yala: ModelBank<YalaModel>,
    slomo: ModelBank<SlomoModel>,
    /// Cache: (kind, profile) → (workload, solo counters, solo tput).
    solo_cache: HashMap<(NfKind, u32, u32, u64), SoloEntry>,
}

impl Zoo {
    /// Trains Yala + SLOMO models for `kinds` on a noisy BlueField-2,
    /// dispatching per-NF training across all cores.
    pub fn train(kinds: &[NfKind], seed: u64) -> Self {
        Self::train_on(NicSpec::bluefield2(), kinds, seed)
    }

    /// Trains on an explicit NIC spec (e.g. Pensando for Table 9) with the
    /// auto-sized parallel engine.
    pub fn train_on(spec: NicSpec, kinds: &[NfKind], seed: u64) -> Self {
        Self::train_portfolio(&[spec], kinds, seed, &Engine::auto())
    }

    /// Trains with an explicit scenario engine on a single NIC model.
    pub fn train_on_with(spec: NicSpec, kinds: &[NfKind], seed: u64, engine: &Engine) -> Self {
        Self::train_portfolio(&[spec], kinds, seed, engine)
    }

    /// Trains per-model Yala and SLOMO banks for a NIC-model portfolio.
    /// Each admitted `(model, NF)` cell is one independent scenario on a
    /// private deterministically seeded simulator, so the trained zoo is
    /// bit-identical whatever the engine's thread count — and a
    /// single-spec portfolio reproduces the old homogeneous zoo exactly.
    pub fn train_portfolio(
        specs: &[NicSpec],
        kinds: &[NfKind],
        seed: u64,
        engine: &Engine,
    ) -> Self {
        eprintln!(
            "  training model pairs for {} NF kinds x {} NIC model(s) across {} worker(s) ...",
            kinds.len(),
            specs.len(),
            engine.threads()
        );
        let cfg = TrainConfig {
            seed,
            ..TrainConfig::default()
        };
        let yala = ModelBank::train_yala(specs, NOISE_SIGMA, kinds, &cfg, engine);
        // SLOMO's (CAR, WSS) sweep parallelises *within* each target: every
        // grid level is an independent scenario, so even a single NF's
        // training scales with cores.
        let slomo = train_slomo_bank(specs, NOISE_SIGMA, kinds, &default_mem_grid(), seed, engine);
        let model = specs[0].model();
        let sim = Simulator::with_noise(specs[0].clone(), NOISE_SIGMA, seed);
        Self {
            sim,
            model,
            yala,
            slomo,
            solo_cache: HashMap::new(),
        }
    }

    /// The first portfolio model's identity.
    pub fn model(&self) -> NicModelId {
        self.model
    }

    /// The trained Yala model for `kind` on the first portfolio model.
    pub fn yala(&self, kind: NfKind) -> &YalaModel {
        self.yala.expect(self.model, kind)
    }

    /// The trained SLOMO model for `kind` on the first portfolio model.
    pub fn slomo(&self, kind: NfKind) -> &SlomoModel {
        self.slomo.expect(self.model, kind)
    }

    /// The per-model Yala bank (for placement predictors and diagnosers).
    pub fn yala_bank(&self) -> &ModelBank<YalaModel> {
        &self.yala
    }

    /// The per-model SLOMO bank.
    pub fn slomo_bank(&self) -> &ModelBank<SlomoModel> {
        &self.slomo
    }

    /// Workload + solo counters + solo throughput of an NF at a profile
    /// (cached; this is the offline per-NF contentiousness profiling).
    pub fn solo(&mut self, kind: NfKind, profile: TrafficProfile) -> SoloEntry {
        let key = (
            kind,
            profile.flow_count,
            profile.packet_size,
            profile.mtbr.to_bits(),
        );
        if let Some(hit) = self.solo_cache.get(&key) {
            return hit.clone();
        }
        let w = cached_workload(kind, profile, kind as usize as u64);
        let o = self.sim.solo(&w);
        let entry = (w, o.counters, o.throughput_pps);
        self.solo_cache.insert(key, entry.clone());
        entry
    }

    /// Evaluates one co-location scenario: `target` (at `profile`) with
    /// `competitors` (each at its own profile). Returns ground truth and
    /// both frameworks' predictions.
    pub fn evaluate(
        &mut self,
        target: NfKind,
        profile: TrafficProfile,
        competitors: &[(NfKind, TrafficProfile)],
    ) -> Eval {
        let (tw, _, t_solo) = self.solo(target, profile);
        let mut workloads = vec![tw];
        let mut contenders: Vec<Contender> = Vec::new();
        let mut counters: Vec<CounterSample> = Vec::new();
        for (i, &(kind, cprofile)) in competitors.iter().enumerate() {
            let (mut w, c, _) = self.solo(kind, cprofile);
            w.name = format!("{}-{}", w.name, i); // unique co-run names
            workloads.push(w);
            contenders.push(self.yala(kind).as_contender(c, cprofile.mtbr));
            counters.push(c);
        }
        let truth = self.sim.co_run(&workloads).outcomes[0].throughput_pps;
        let yala = self.yala(target).predict(t_solo, &profile, &contenders);
        let agg = CounterSample::aggregate(counters.iter());
        let slomo = self.slomo(target).predict_extrapolated(&agg, t_solo);
        Eval { truth, yala, slomo }
    }
}

/// Formats a paper-style accuracy row.
pub fn fmt_row(name: &str, slomo: Accuracy, yala: Accuracy) -> String {
    format!(
        "{name:<16} | {:>6.1} {:>6.1} {:>6.1} | {:>6.1} {:>6.1} {:>6.1}",
        slomo.mape, slomo.acc5, slomo.acc10, yala.mape, yala.acc5, yala.acc10
    )
}

/// Header matching [`fmt_row`].
pub fn row_header() -> String {
    format!(
        "{:<16} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}\n{}",
        "NF",
        "S-MAPE",
        "S-5%",
        "S-10%",
        "Y-MAPE",
        "Y-5%",
        "Y-10%",
        "-".repeat(64)
    )
}

/// Writes a CSV file under `results/` (best effort; ignores IO errors so
/// experiments can run in read-only checkouts).
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let _ = std::fs::create_dir_all("results");
    let body = format!("{header}\n{}\n", rows.join("\n"));
    let _ = std::fs::write(format!("results/{name}.csv"), body);
}

/// Common CLI flags of the `bench_*` record binaries:
///
/// * `--quick` — CI-sized run (fewer kinds / coarser cadence).
/// * `--threads N` — pin the scenario engine to `N` workers instead of
///   auto-sizing; the records are bit-identical either way, which the CI
///   determinism gate enforces by diffing a default-engine run against a
///   pinned-engine one.
/// * `--out PATH` — write the record to `PATH` instead of the committed
///   default (used by CI to compare runs in temp files).
/// * `--check` — regression gate: recompute quick-mode results, diff the
///   headline metrics against the *committed* record within tolerance,
///   and exit nonzero on regression instead of overwriting anything.
/// * `--telemetry BASE` — observe the flagship run and write its
///   deterministic artifacts: `BASE.jsonl` (the sim-time event journal),
///   `BASE.metrics.json` and `BASE.prom` (the metrics registry). The
///   artifacts are bit-identical across runs and `--threads` values;
///   the wall-clock latency summary goes to stdout only. Without the
///   flag every instrumented path runs with the no-op handle and the
///   record bytes are unchanged.
/// * `--journal-cap N` — size the telemetry journal's event bound to
///   `N` (default [`yala_telemetry::Journal`]'s 1Mi). A capped journal
///   drops newest-first and `fleet_inspect` flags the truncation; raise
///   the cap for million-arrival days where every event matters.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// CI-sized run (implied by `--check`).
    pub quick: bool,
    /// Regression-gate mode.
    pub check: bool,
    /// Explicit engine worker count.
    pub threads: Option<usize>,
    /// Alternative record path.
    pub out: Option<String>,
    /// Base path for telemetry artifacts (`None` = telemetry disabled).
    pub telemetry: Option<String>,
    /// Explicit journal capacity (`None` = the journal's default).
    pub journal_cap: Option<usize>,
}

impl BenchArgs {
    /// Parses the common flags from `std::env::args`. On a malformed
    /// invocation (unknown flag, missing or invalid value) it prints the
    /// error and exits with status 2, so a typo in a CI step fails loudly
    /// instead of silently running the default configuration — and fails
    /// with a usable message instead of a panic backtrace.
    pub fn parse() -> Self {
        match Self::try_parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("bench: {e}");
                std::process::exit(2);
            }
        }
    }

    /// The fallible core of [`Self::parse`], testable without touching
    /// process state. Every rejection names the flag and the offense.
    pub fn try_parse_from(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Self::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
            match a.as_str() {
                "--quick" => out.quick = true,
                "--check" => {
                    out.check = true;
                    out.quick = true;
                }
                "--threads" => {
                    let v = value("--threads")?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("--threads got {v:?}, expected an integer"))?;
                    if n == 0 {
                        return Err("--threads must be at least 1".to_string());
                    }
                    out.threads = Some(n);
                }
                "--out" => out.out = Some(value("--out")?),
                "--telemetry" => out.telemetry = Some(value("--telemetry")?),
                "--journal-cap" => {
                    let v = value("--journal-cap")?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("--journal-cap got {v:?}, expected an integer"))?;
                    if n == 0 {
                        return Err(
                            "--journal-cap must be at least 1 (0 would drop every event)"
                                .to_string(),
                        );
                    }
                    out.journal_cap = Some(n);
                }
                other => {
                    return Err(format!(
                        "unknown flag {other} (known: --quick --check --threads \
                         --out --telemetry --journal-cap)"
                    ))
                }
            }
        }
        Ok(out)
    }

    /// The scenario engine the flags select.
    pub fn engine(&self) -> Engine {
        match self.threads {
            Some(n) => Engine::with_threads(n),
            None => Engine::auto(),
        }
    }

    /// The observability handle the flags select: a live sink with the
    /// wall-clock layer when `--telemetry` was given, the no-op handle
    /// otherwise. The disabled handle makes every observed code path
    /// byte-identical to its unobserved twin, so records produced
    /// without the flag never move.
    pub fn telemetry_handle(&self, seed: u64) -> yala_telemetry::Telemetry {
        match &self.telemetry {
            Some(_) => {
                let mut tel = yala_telemetry::Telemetry::with_wallclock(seed);
                if let Some(cap) = self.journal_cap {
                    if let Some(sink) = tel.sink_mut() {
                        sink.journal = yala_telemetry::Journal::with_capacity(cap);
                    }
                }
                tel
            }
            None => yala_telemetry::Telemetry::disabled(),
        }
    }

    /// Writes the observed run's deterministic artifacts next to the
    /// `--telemetry` base path — `BASE.jsonl` (event journal),
    /// `BASE.metrics.json`, `BASE.prom` — and prints the wall-clock
    /// summary to stdout (deliberately *not* written to a file: it is
    /// the one non-deterministic layer). No-op without the flag.
    pub fn write_telemetry(&self, tel: &yala_telemetry::Telemetry) {
        let (Some(base), Some(sink)) = (&self.telemetry, tel.sink()) else {
            return;
        };
        let write = |path: String, body: String| match std::fs::write(&path, body) {
            Ok(()) => println!("  wrote {path}"),
            Err(e) => eprintln!("  could not write {path}: {e}"),
        };
        write(format!("{base}.jsonl"), sink.journal.to_jsonl());
        write(format!("{base}.metrics.json"), sink.metrics.to_json());
        write(format!("{base}.prom"), sink.metrics.to_prometheus());
        if let Some(w) = &sink.wall {
            println!("  wall clock: {}", w.summary());
        }
    }

    /// Where this run's record goes: `--out` if given, else the committed
    /// default. In `--check` mode the committed default is never
    /// overwritten — the record is written only when `--out` is explicit.
    pub fn record_path<'a>(&'a self, default: &'a str) -> Option<&'a str> {
        match (&self.out, self.check) {
            (Some(p), _) => Some(p),
            (None, true) => None,
            (None, false) => Some(default),
        }
    }
}

/// Extracts the first JSON number for `"key":` after the first occurrence
/// of `anchor` in `text` (pass `""` to search from the start). Good
/// enough for the workspace's own canonical, hand-rolled records — this
/// is not a general JSON parser.
pub fn json_f64(text: &str, anchor: &str, key: &str) -> Option<f64> {
    let from = text.find(anchor)? + anchor.len();
    let needle = format!("\"{key}\":");
    let at = text[from..].find(&needle)? + from + needle.len();
    let tail = text[at..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || ".+-eE".contains(c)))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Collects `--check` regression verdicts: each probe prints its
/// comparison and failures accumulate for one final exit decision.
#[derive(Debug, Default)]
pub struct RegressionCheck {
    failures: Vec<String>,
}

impl RegressionCheck {
    /// An empty check.
    pub fn new() -> Self {
        Self::default()
    }

    /// Asserts a lower-is-better metric did not regress past the
    /// committed value: `got ≤ committed · (1 + rel_tol) + abs_slack`.
    pub fn no_worse(
        &mut self,
        label: &str,
        got: f64,
        committed: f64,
        rel_tol: f64,
        abs_slack: f64,
    ) {
        let bound = committed * (1.0 + rel_tol) + abs_slack;
        let ok = got <= bound;
        println!(
            "  check {label}: {got:.3} vs committed {committed:.3} (bound {bound:.3}) {}",
            if ok { "OK" } else { "REGRESSED" }
        );
        if !ok {
            self.failures
                .push(format!("{label}: {got:.3} > bound {bound:.3}"));
        }
    }

    /// Asserts a higher-is-better metric stayed at or above `floor`.
    pub fn at_least(&mut self, label: &str, got: f64, floor: f64) {
        let ok = got >= floor;
        println!(
            "  check {label}: {got:.3} vs floor {floor:.3} {}",
            if ok { "OK" } else { "REGRESSED" }
        );
        if !ok {
            self.failures
                .push(format!("{label}: {got:.3} < floor {floor:.3}"));
        }
    }

    /// Asserts an exact scenario invariant (e.g. arrival counts): a
    /// mismatch means the committed record describes a *different*
    /// scenario and must be regenerated, not tolerated.
    pub fn exact(&mut self, label: &str, got: f64, committed: f64) {
        let ok = got == committed;
        println!(
            "  check {label}: {got} vs committed {committed} {}",
            if ok { "OK" } else { "MISMATCH" }
        );
        if !ok {
            self.failures
                .push(format!("{label}: {got} != committed {committed}"));
        }
    }

    /// Exits nonzero (after printing the verdict) if any probe failed.
    pub fn finish(self, record: &str) {
        if self.failures.is_empty() {
            println!("  --check: no regressions vs {record}");
        } else {
            eprintln!(
                "  --check FAILED vs {record}:\n    {}\n  (intentional change? regenerate the record and commit it)",
                self.failures.join("\n    ")
            );
            std::process::exit(1);
        }
    }
}

/// Reads a committed record for `--check`, failing loudly if missing.
pub fn read_record(path: &str) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--check needs the committed {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_summary() {
        let truth = [100.0, 100.0];
        let pred = [104.0, 120.0];
        let a = accuracy(&truth, &pred);
        assert!((a.mape - 12.0).abs() < 1e-9);
        assert_eq!(a.acc5, 50.0);
        assert_eq!(a.acc10, 50.0);
    }

    #[test]
    fn scaled_respects_env_default() {
        assert_eq!(scaled(3, 10), if full_scale() { 10 } else { 3 });
    }

    #[test]
    fn json_f64_extracts_anchored_numbers() {
        let text = r#"{
            "arrivals": 579,
            "policies": [
                {"policy": "greedy", "violation_minutes": 58230.000},
                {"policy": "yala", "violation_minutes": 270.000, "mean_nics": 56.25}
            ]
        }"#;
        assert_eq!(json_f64(text, "", "arrivals"), Some(579.0));
        assert_eq!(
            json_f64(text, "\"policy\": \"yala\"", "violation_minutes"),
            Some(270.0)
        );
        assert_eq!(
            json_f64(text, "\"policy\": \"greedy\"", "violation_minutes"),
            Some(58230.0)
        );
        assert_eq!(json_f64(text, "\"policy\": \"oracle\"", "anything"), None);
        assert_eq!(json_f64(text, "", "missing_key"), None);
    }

    #[test]
    fn record_path_respects_check_and_out() {
        let plain = BenchArgs::default();
        assert_eq!(plain.record_path("BENCH_x.json"), Some("BENCH_x.json"));
        let check = BenchArgs {
            check: true,
            quick: true,
            ..BenchArgs::default()
        };
        assert_eq!(
            check.record_path("BENCH_x.json"),
            None,
            "--check must not clobber the committed record"
        );
        let out = BenchArgs {
            check: true,
            quick: true,
            out: Some("/tmp/r.json".into()),
            ..BenchArgs::default()
        };
        assert_eq!(out.record_path("BENCH_x.json"), Some("/tmp/r.json"));
    }

    #[test]
    fn args_parse_accepts_valid_flags() {
        let to_args =
            |s: &str| -> Vec<String> { s.split_whitespace().map(str::to_string).collect() };
        let a = BenchArgs::try_parse_from(to_args(
            "--check --threads 4 --out /tmp/r.json --telemetry /tmp/t --journal-cap 1024",
        ))
        .expect("valid flags");
        assert!(a.check && a.quick);
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.out.as_deref(), Some("/tmp/r.json"));
        assert_eq!(a.telemetry.as_deref(), Some("/tmp/t"));
        assert_eq!(a.journal_cap, Some(1024));
        let none = BenchArgs::try_parse_from(std::iter::empty()).expect("no flags");
        assert_eq!(none.threads, None);
        assert!(!none.quick);
    }

    #[test]
    fn args_parse_rejects_invalid_flags_with_clear_errors() {
        let to_args =
            |s: &str| -> Vec<String> { s.split_whitespace().map(str::to_string).collect() };
        for (argv, expect) in [
            ("--journal-cap 0", "at least 1"),
            ("--journal-cap many", "expected an integer"),
            ("--threads zero", "expected an integer"),
            ("--threads 0", "at least 1"),
            ("--threads", "needs a value"),
            ("--out", "needs a value"),
            ("--frobnicate", "unknown flag --frobnicate"),
        ] {
            let err = BenchArgs::try_parse_from(to_args(argv))
                .expect_err(&format!("{argv:?} must be rejected"));
            assert!(err.contains(expect), "{argv:?} => {err:?}");
        }
    }

    #[test]
    fn regression_check_accumulates_failures() {
        let mut ok = RegressionCheck::new();
        ok.no_worse("viol", 100.0, 100.0, 0.05, 1.0);
        ok.at_least("speedup", 9.9, 5.0);
        ok.exact("arrivals", 579.0, 579.0);
        assert!(ok.failures.is_empty());
        let mut bad = RegressionCheck::new();
        bad.no_worse("viol", 200.0, 100.0, 0.05, 1.0);
        bad.at_least("speedup", 2.0, 5.0);
        bad.exact("arrivals", 579.0, 600.0);
        assert_eq!(bad.failures.len(), 3);
    }
}
