//! Figure 5: throughput of synthetic pipeline (top) and run-to-completion
//! (bottom) NFs under a grid of memory (competing CAR) × regex (competing
//! match rate) contention. Pipelines pin at the slowest stage; RTC NFs
//! compound both drops.

use yala_bench::write_csv;
use yala_nf::bench::{mem_bench, regex_bench, synthetic_nf1};
use yala_sim::{ExecutionPattern, NicSpec, Simulator, WorkloadSpec};

fn run_grid(sim: &mut Simulator, nf: WorkloadSpec, label: &str, rows: &mut Vec<String>) {
    println!("-- {label} --");
    print!("{:>12}", "CAR Mref/s");
    let match_rates = [0.0f64, 520.0, 2_340.0, 2_600.0];
    for m in match_rates {
        print!(" {:>10}", format!("{m:.0}Km/s"));
    }
    println!();
    for car_step in 0..9 {
        let car = 3.0e7 + car_step as f64 * 2.7e7;
        print!("{:>12.0}", car / 1e6);
        for &kmatches in &match_rates {
            let mut workloads = vec![nf.clone(), mem_bench(car, 8e6)];
            if kmatches > 0.0 {
                // Competing match rate = bench tput × matches/req; bytes
                // 1446 at the bench MTBR below yields the target rate.
                let matches_per_req = 2.0f64;
                let rate = kmatches * 1e3 / matches_per_req;
                workloads.push(regex_bench(rate, 1446.0, matches_per_req / 1446.0 * 1e6));
            }
            let t = sim.co_run(&workloads).outcomes[0].throughput_pps;
            print!(" {:>10.0}", t / 1e3);
            rows.push(format!("{label},{car},{kmatches},{t:.0}"));
        }
        println!();
    }
}

fn main() {
    let mut sim = Simulator::new(NicSpec::bluefield2());
    println!("Figure 5: execution-pattern contention response (Kpps cells)");
    let mut rows = Vec::new();
    run_grid(
        &mut sim,
        synthetic_nf1(ExecutionPattern::Pipeline),
        "pipeline",
        &mut rows,
    );
    run_grid(
        &mut sim,
        synthetic_nf1(ExecutionPattern::RunToCompletion),
        "run-to-completion",
        &mut rows,
    );
    write_csv(
        "fig5_patterns",
        "pattern,car,kmatches_per_s,tput_pps",
        &rows,
    );
}
