//! Records the profile-cache payoff to `BENCH_cache.json`: the same
//! 200-NIC simulated day profiled twice — once in exact mode (one
//! measurement per snapshot, the pre-cache bill) and once in quantized
//! mode (measurements shared across tenants and epochs through the
//! process-wide [`ProfileCache`]) — under a template-clustered traffic
//! model, the realistic multi-tenant shape where a handful of canonical
//! NF configurations serve the whole fleet.
//!
//! The headline metric is the *computed-snapshot reduction*: exact-mode
//! measurements divided by quantized-mode cache misses. It is a pure
//! count ratio — deterministic in the seed, identical across thread
//! counts and machines — so the committed record stays byte-stable while
//! wall-clock speedups (which track the reduction closely, since
//! measurement dominates the build) are printed to stdout only.

use std::time::Instant;
use yala_bench::{json_f64, read_record, BenchArgs, RegressionCheck};
use yala_core::profile_cache::ProfileCache;
use yala_fleet::{run_fleet, FleetConfig, FleetPolicy, FleetTrace, ProfiledTrace, TrafficModel};
use yala_nf::NfKind;

/// The committed record this binary regenerates (and `--check`s against).
const RECORD: &str = "BENCH_cache.json";

/// Canonical traffic templates in the fleet (a realistic configuration
/// catalog: small, not a continuum).
const TEMPLATES: u32 = 6;

fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    let engine = args.engine();
    let kinds = vec![NfKind::FlowStats, NfKind::Acl, NfKind::Nat, NfKind::Nids];

    let mut cfg = FleetConfig::small(5150);
    cfg.portfolio = vec![(yala_sim::NicSpec::bluefield2(), 200)];
    cfg.duration_s = 24 * 3_600;
    cfg.mean_interarrival_s = 144.0; // ~600 arrivals over the day
    cfg.mean_lifetime_s = 9_000.0;
    cfg.audit_period_s = if quick { 1_800 } else { 600 };
    cfg.reprofile_threshold = if quick { 0.20 } else { 0.10 };
    cfg.kinds = kinds.clone();
    cfg.max_flows = 200_000;
    cfg.sla_drop_range = (0.05, 0.15);
    // Jitter at a quarter of the re-profile threshold: tenants spread
    // around their template but stay inside its quantization bucket.
    cfg.traffic_model = TrafficModel::Templates {
        count: TEMPLATES,
        jitter: cfg.reprofile_threshold / 4.0,
    };

    println!(
        "bench_cache: {} NICs, {} h, audit every {} s, {} NF kinds, {} templates{}",
        cfg.nics(),
        cfg.duration_s / 3_600,
        cfg.audit_period_s,
        kinds.len(),
        TEMPLATES,
        if quick { " [quick]" } else { "" }
    );

    let trace = FleetTrace::generate(cfg);
    let arrivals = trace.records.len();

    // The pre-cache bill: every snapshot is measured.
    let t0 = Instant::now();
    let exact = ProfiledTrace::build(trace.clone(), &engine);
    let exact_s = t0.elapsed().as_secs_f64();

    // The cached bill: one measurement per distinct quantized key. With
    // `--telemetry` this build is the observed one — its journal shows
    // tenants landing on shared keys (delta/full triggers, hit tagging).
    let mut tel = args.telemetry_handle(5150);
    let cache = ProfileCache::new();
    let t0 = Instant::now();
    let cached =
        ProfiledTrace::build_cached_with_observed(trace.clone(), &engine, &cache, &mut tel);
    let cached_s = t0.elapsed().as_secs_f64();

    // A warm rebuild of the same scenario: pure cache hits, no simulator
    // runs at all — the steady-state cost of re-deriving timelines.
    let t0 = Instant::now();
    let rebuilt = ProfiledTrace::build_cached_with(trace, &engine, &cache);
    let rebuild_s = t0.elapsed().as_secs_f64();
    args.write_telemetry(&tel);

    let reduction = exact.stats.misses as f64 / cached.stats.misses.max(1) as f64;
    println!(
        "  exact:   {} measurements in {exact_s:.1} s",
        exact.stats.misses
    );
    println!(
        "  cached:  {} measurements ({} hits, {} delta / {} full re-keys) in {cached_s:.1} s",
        cached.stats.misses,
        cached.stats.hits,
        cached.stats.delta_reprofiles,
        cached.stats.full_reprofiles
    );
    println!(
        "  rebuild: {} measurements ({} hits) in {rebuild_s:.1} s",
        rebuilt.stats.misses, rebuilt.stats.hits
    );
    println!(
        "  computed-snapshot reduction: {reduction:.2}x (wall: {:.1}x build, {:.1}x rebuild)",
        exact_s / cached_s.max(1e-9),
        exact_s / rebuild_s.max(1e-9)
    );

    assert!(
        reduction >= 5.0,
        "profile cache must cut computed snapshots at least 5x (got {reduction:.2}x)"
    );
    assert_eq!(rebuilt.stats.misses, 0, "warm rebuild must be all hits");

    // The cached timelines drive policy runs exactly like exact ones; the
    // greedy report documents the scenario's scale either way.
    let greedy_exact = run_fleet(&exact, FleetPolicy::Greedy, "greedy-exact", &engine);
    let greedy_cached = run_fleet(&cached, FleetPolicy::Greedy, "greedy-cached", &engine);

    let kinds_json: Vec<String> = kinds.iter().map(|k| format!("\"{k}\"")).collect();
    let jitter_str = format!("{:.3}", cfg_jitter(quick));
    let json = format!(
        "{{\n\"bench\": \"cache\",\n\"quick\": {quick},\n\"nics\": {},\n\"arrivals\": {arrivals},\n\
         \"duration_s\": {},\n\"audit_period_s\": {},\n\"seed\": {},\n\"kinds\": [{}],\n\
         \"templates\": {TEMPLATES},\n\"jitter\": {},\n\
         \"exact_snapshots\": {},\n\"exact_cache\": {},\n\
         \"cached_snapshots\": {},\n\"cached_cache\": {},\n\
         \"rebuild_cache\": {},\n\"computed_reduction\": {reduction:.2},\n\
         \"policies\": [\n{},\n{}\n]\n}}\n",
        greedy_exact.nics,
        greedy_exact.duration_s,
        greedy_exact.audit_period_s,
        greedy_exact.seed,
        kinds_json.join(", "),
        jitter_str,
        exact.snapshot_count(),
        exact.stats.to_json(),
        cached.snapshot_count(),
        cached.stats.to_json(),
        rebuilt.stats.to_json(),
        greedy_exact.to_json(),
        greedy_cached.to_json()
    );
    if let Some(path) = args.record_path(RECORD) {
        match std::fs::write(path, &json) {
            Ok(()) => println!("  wrote {path}"),
            Err(e) => eprintln!("  could not write {path}: {e}"),
        }
    }

    // Regression gate: the scenario must not shrink and the reduction
    // must stay at or above both the 5x floor and the committed record.
    if args.check {
        let committed = read_record(RECORD);
        let mut check = RegressionCheck::new();
        check.exact(
            "arrivals",
            arrivals as f64,
            json_f64(&committed, "", "arrivals").unwrap_or(-1.0),
        );
        check.at_least("computed_reduction", reduction, 5.0);
        check.no_worse(
            "cached_cache.misses",
            cached.stats.misses as f64,
            json_f64(&committed, "\"cached_cache\"", "misses").unwrap_or(-1.0),
            0.05,
            0.0,
        );
        check.finish(RECORD);
    }
}

/// The jitter knob as configured above, for the record.
fn cfg_jitter(quick: bool) -> f64 {
    (if quick { 0.20 } else { 0.10 }) / 4.0
}
