//! Figure 3: why traffic-agnostic models fail. (a) FlowStats throughput vs
//! competing CAR across three flow-count profiles; (b) SLOMO's prediction
//! error on its default training profile vs 100 random profiles, for three
//! flow-table NFs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use yala_bench::{scaled, write_csv, NOISE_SIGMA};
use yala_core::profiler::cached_workload;
use yala_ml::metrics;
use yala_nf::bench::mem_bench;
use yala_nf::NfKind;
use yala_sim::{CounterSample, NicSpec, Simulator};
use yala_slomo::{default_mem_grid, SlomoModel};
use yala_traffic::TrafficProfile;

fn main() {
    let mut sim = Simulator::with_noise(NicSpec::bluefield2(), NOISE_SIGMA, 31);
    let mut rows = Vec::new();

    println!("Figure 3(a): FlowStats tput (Mpps) vs competing CAR");
    print!("{:>12}", "CAR Mref/s");
    for flows in [4_000u32, 8_000, 16_000] {
        print!(" {:>10}", format!("{}K flows", flows / 1000));
    }
    println!();
    for step in 0..7 {
        let car = 2.5e7 + step as f64 * 1.4e7;
        print!("{:>12.0}", car / 1e6);
        for flows in [4_000u32, 8_000, 16_000] {
            let w = cached_workload(NfKind::FlowStats, TrafficProfile::new(flows, 1500, 0.0), 5);
            let t = sim.co_run(&[w, mem_bench(car, 6e6)]).outcomes[0].throughput_pps;
            print!(" {:>10.3}", t / 1e6);
            rows.push(format!("a,{car},{flows},{t:.0}"));
        }
        println!();
    }

    println!("\nFigure 3(b): SLOMO error, default profile vs shifted profiles");
    println!("{:<16} {:>16} {:>16}", "NF", "default med%", "other med%");
    let n_profiles = scaled(25, 100);
    for kind in [
        NfKind::FlowStats,
        NfKind::FlowClassifier,
        NfKind::FlowTracker,
    ] {
        let train_profile = TrafficProfile::default();
        let target = cached_workload(kind, train_profile, kind as usize as u64);
        let model = SlomoModel::train(&mut sim, &target, &default_mem_grid(), 7);
        let mut err_default = Vec::new();
        let mut err_other = Vec::new();
        let mut rng = StdRng::seed_from_u64(kind as usize as u64);
        for i in 0..n_profiles {
            let level = yala_core::profiler::MemLevel::random(&mut rng);
            let features: CounterSample = yala_core::profiler::bench_counters(&mut sim, level);
            // Default-profile test point.
            let t_def = sim.co_run(&[target.clone(), level.bench()]).outcomes[0].throughput_pps;
            err_default.push(metrics::ape(t_def, model.predict(&features)));
            // Shifted profile (random flow count up to 500K).
            let shifted = TrafficProfile::random(&mut rng, 500_000);
            let sw = cached_workload(kind, shifted, i as u64);
            let solo_shifted = sim.solo(&sw).throughput_pps;
            let t_shift = sim.co_run(&[sw, level.bench()]).outcomes[0].throughput_pps;
            err_other.push(metrics::ape(
                t_shift,
                model.predict_extrapolated(&features, solo_shifted),
            ));
        }
        let (d, o) = (metrics::median(&err_default), metrics::median(&err_other));
        println!("{:<16} {d:>16.1} {o:>16.1}", kind.name());
        rows.push(format!("b,{},{d:.2},{o:.2}", kind.name()));
    }
    write_csv("fig3_traffic_sensitivity", "panel,x1,x2,value", &rows);
}
