//! Records the heterogeneous-fleet comparison to `BENCH_hetero.json`: a
//! mixed 50/50 BlueField-2 + Pensando portfolio over a simulated day with
//! Poisson arrivals, traffic drift, periodic SLA audits, and reactive
//! migration — the ROADMAP's "heterogeneous fleets" scenario. The NF mix
//! spans the capability classes: memory-only NFs run anywhere, regex NFs
//! only on BlueField-2, and the Pensando-SSDK Firewall only on Pensando,
//! so every placement decision is also a capability decision.
//!
//! Policies: monopolization, greedy (capability-aware but
//! contention-blind), and per-model Yala (a `ModelBank` keyed by
//! `(NicModelId, NfKind)` behind the contention-aware policy, with
//! Yala-diagnosed migration that may cross hardware models).
//!
//! The scenario is deterministic: same seed ⇒ bit-identical
//! `FleetReport`s, so the committed JSON is reproducible. Pass `--quick`
//! (CI) for fewer trained NF kinds and a coarser audit cadence.

use std::time::Instant;
use yala_bench::{json_f64, read_record, BenchArgs, RegressionCheck, Zoo};
use yala_fleet::{
    run_fleet, run_fleet_observed, verify_against, Diagnoser, FleetConfig, FleetPolicy, FleetTrace,
    ProfiledTrace,
};
use yala_nf::NfKind;
use yala_placement::YalaPredictor;

/// The committed record this binary regenerates (and `--check`s against).
const RECORD: &str = "BENCH_hetero.json";

fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    let engine = args.engine();
    let kinds: Vec<NfKind> = if quick {
        vec![
            NfKind::FlowStats,
            NfKind::Nat,
            NfKind::Nids,
            NfKind::Firewall,
        ]
    } else {
        vec![
            NfKind::FlowStats,
            NfKind::Acl,
            NfKind::Nat,
            NfKind::IpRouter,
            NfKind::Nids,
            NfKind::FlowMonitor,
            NfKind::PacketFilter,
            NfKind::Firewall,
        ]
    };

    let mut cfg = FleetConfig::mixed(73, 120);
    cfg.duration_s = 24 * 3_600;
    cfg.mean_interarrival_s = 240.0; // ~360 arrivals over the day
    cfg.mean_lifetime_s = 9_000.0;
    cfg.audit_period_s = if quick { 1_800 } else { 600 };
    cfg.reprofile_threshold = if quick { 0.20 } else { 0.10 };
    cfg.kinds = kinds.clone();
    cfg.max_flows = 200_000;
    cfg.sla_drop_range = (0.05, 0.15);
    let specs = cfg.specs();

    println!(
        "bench_hetero: {} NICs ({}), {} h, audit every {} s, {} NF kinds{}",
        cfg.nics(),
        cfg.portfolio
            .iter()
            .map(|(s, n)| format!("{} x {}", n, s.name))
            .collect::<Vec<_>>()
            .join(" + "),
        cfg.duration_s / 3_600,
        cfg.audit_period_s,
        kinds.len(),
        if quick { " [quick]" } else { "" }
    );

    let t0 = Instant::now();
    let zoo = Zoo::train_portfolio(&specs, &kinds, 6, &engine);
    let train_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    // With `--telemetry` the build and the flagship (yala) run are
    // observed; migrations in this journal may cross hardware models.
    let mut tel = args.telemetry_handle(73);
    let trace = FleetTrace::generate(cfg);
    let arrivals = trace.records.len();
    let profiled = ProfiledTrace::build_observed(trace, &engine, &mut tel);
    let profile_s = t0.elapsed().as_secs_f64();
    println!(
        "  scenario: {arrivals} arrivals, {} profile snapshots, {} trained cells \
         (train {train_s:.1} s, profile {profile_s:.1} s)",
        profiled.snapshot_count(),
        zoo.yala_bank().len(),
    );

    // Structural capability check: no snapshot carries a baseline on
    // hardware that cannot serve its workload, so placement has nothing
    // infeasible to price. (The audits then enforce the same at ground
    // truth: every occupied NIC is co-run on its own hardware model, and
    // the solver rejects capability-infeasible workloads outright.)
    for tl in &profiled.timelines {
        for (_, snap) in &tl.snapshots {
            for (model, _) in &snap.solos {
                let spec = specs
                    .iter()
                    .find(|s| s.model() == *model)
                    .expect("portfolio model");
                assert!(spec.supports(&snap.workload), "infeasible baseline");
            }
        }
    }

    let t0 = Instant::now();
    let mono = run_fleet(
        &profiled,
        FleetPolicy::Monopolization,
        "monopolization",
        &engine,
    );
    let greedy = run_fleet(&profiled, FleetPolicy::Greedy, "greedy", &engine);
    let yala = {
        let mut predictor = YalaPredictor::new(zoo.yala_bank());
        run_fleet_observed(
            &profiled,
            FleetPolicy::ContentionAware {
                predictor: &mut predictor,
                diagnoser: Diagnoser::Yala(zoo.yala_bank()),
                online: None,
                qos_aware: true,
            },
            "yala",
            &engine,
            &mut tel,
        )
    };
    println!("  policy runs: {:.1} s", t0.elapsed().as_secs_f64());

    // Observability self-test on the mixed-portfolio journal.
    if let Some(sink) = tel.sink() {
        let replayed = verify_against(&yala, &sink.journal)
            .unwrap_or_else(|e| panic!("journal replay diverged from the yala report: {e}"));
        println!(
            "  journal: {} events replay to the yala report ({} migrations) — OK",
            sink.journal.len(),
            replayed.migrations
        );
    }
    args.write_telemetry(&tel);

    println!(
        "  {:<16} {:>10} {:>10} {:>10} {:>9} {:>6} {:>9} {:>9}",
        "policy", "mean NICs", "peak", "NIC-min", "viol-min", "migr", "rejected", "waste-vs-LB"
    );
    let reports = [&mono, &greedy, &yala];
    for r in reports {
        println!(
            "  {:<16} {:>10.1} {:>10} {:>10.0} {:>9.0} {:>6} {:>9} {:>8.0}%",
            r.policy,
            r.mean_nics(),
            r.peak_nics,
            r.nic_minutes,
            r.violation_minutes,
            r.migrations,
            r.rejected,
            r.wastage_vs_oracle() * 100.0
        );
    }

    // The acceptance bar for the heterogeneous scenario: the per-model
    // contention-aware predictor strictly dominates greedy on
    // SLA-violation minutes while using fewer NICs than monopolization,
    // with zero arrivals lost to capability mismatches (the mixed fleet
    // always has feasible capacity somewhere). Deterministic scenario, so
    // this either always holds or never does.
    assert!(
        greedy.violation_minutes > 0.0,
        "blind packing should violate somewhere in a full day"
    );
    assert!(
        yala.violation_minutes < greedy.violation_minutes,
        "per-model yala must strictly beat greedy on violation minutes"
    );
    assert!(
        yala.nic_minutes < mono.nic_minutes,
        "yala must use fewer NIC-minutes than monopolization"
    );
    assert_eq!(
        yala.rejected, 0,
        "no arrival should find the fleet exhausted"
    );
    println!(
        "  dominance: yala {:.0} viol-min vs greedy {:.0}; {:.0} NIC-min vs mono {:.0} — OK",
        yala.violation_minutes, greedy.violation_minutes, yala.nic_minutes, mono.nic_minutes
    );

    let kinds_json: Vec<String> = kinds.iter().map(|k| format!("\"{k}\"")).collect();
    let portfolio_json: Vec<String> = profiled
        .trace
        .config
        .portfolio
        .iter()
        .map(|(s, n)| format!("{{\"model\": \"{}\", \"nics\": {n}}}", s.name))
        .collect();
    let policies_json: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
    let json = format!(
        "{{\n\"bench\": \"hetero\",\n\"quick\": {quick},\n\"portfolio\": [{}],\n\
         \"nics\": {},\n\"arrivals\": {arrivals},\n\"duration_s\": {},\n\
         \"audit_period_s\": {},\n\"seed\": {},\n\"kinds\": [{}],\n\
         \"trained_cells\": {},\n\"profile_snapshots\": {},\n\"profile_cache\": {},\n\
         \"policies\": [\n{}\n]\n}}\n",
        portfolio_json.join(", "),
        mono.nics,
        mono.duration_s,
        mono.audit_period_s,
        mono.seed,
        kinds_json.join(", "),
        zoo.yala_bank().len(),
        profiled.snapshot_count(),
        profiled.stats.to_json(),
        policies_json.join(",\n")
    );
    if let Some(path) = args.record_path(RECORD) {
        match std::fs::write(path, &json) {
            Ok(()) => println!("  wrote {path}"),
            Err(e) => eprintln!("  could not write {path}: {e}"),
        }
    }

    // Regression gate against the committed record (see bench_fleet).
    if args.check {
        let committed = read_record(RECORD);
        let mut check = RegressionCheck::new();
        check.exact(
            "arrivals",
            arrivals as f64,
            json_f64(&committed, "", "arrivals").unwrap_or(-1.0),
        );
        let anchor = "\"policy\": \"yala\"";
        let key = |k: &str| json_f64(&committed, anchor, k).unwrap_or(-1.0);
        check.no_worse(
            "yala.violation_minutes",
            yala.violation_minutes,
            key("violation_minutes"),
            0.05,
            1.0,
        );
        check.no_worse(
            "yala.nic_minutes",
            yala.nic_minutes,
            key("nic_minutes"),
            0.05,
            0.0,
        );
        check.no_worse(
            "yala.rejected",
            yala.rejected as f64,
            key("rejected"),
            0.0,
            0.0,
        );
        check.finish(RECORD);
    }
}
