//! Table 7: bottleneck-diagnosis correctness. FlowStats, FlowMonitor and
//! IPComp Gateway run under fixed memory + regex contention while the
//! target MTBR sweeps 0→1100 matches/MB; the bottleneck may shift across
//! resources. Ground truth is the simulator's per-resource accounting
//! (standing in for perf hotspot analysis).

use yala_bench::{scaled, write_csv, NOISE_SIGMA};
use yala_core::profiler::{cached_workload, mem_bench_contender, regex_bench_contender, MemLevel};
use yala_core::{TrainConfig, YalaModel};
use yala_diagnosis::{correctness, diagnose_slomo, diagnose_yala};
use yala_nf::bench::regex_bench;
use yala_nf::NfKind;
use yala_sim::{NicSpec, ResourceKind, Simulator};
use yala_traffic::TrafficProfile;

fn main() {
    let mut sim = Simulator::with_noise(NicSpec::bluefield2(), NOISE_SIGMA, 8);
    let steps = scaled(8, 23);
    println!("Table 7: bottleneck identification correctness (%)");
    println!("{:<16} {:>8} {:>8}", "NF", "SLOMO", "Yala");
    let mut rows = Vec::new();
    let cfg = TrainConfig::default();
    let mem_level = MemLevel {
        car: 1.0e8,
        wss: 5e6,
        cycles: 60.0,
    };
    for kind in [
        NfKind::FlowStats,
        NfKind::FlowMonitor,
        NfKind::IpCompGateway,
    ] {
        let model = YalaModel::train(&mut sim, kind, &cfg);
        let (mut yala_v, mut slomo_v, mut truth_v) = (Vec::new(), Vec::new(), Vec::new());
        for i in 0..steps {
            let mtbr = i as f64 * 1_100.0 / (steps - 1) as f64;
            let traffic = TrafficProfile::new(16_000, 1500, mtbr);
            let target = cached_workload(kind, traffic, kind as usize as u64);
            let solo = sim.solo(&target).throughput_pps;
            // Fixed contention: moderate memory + heavy regex bench.
            let rbench = regex_bench(1e12, 1446.0, 6_000.0);
            let truth = sim
                .co_run(&[target.clone(), mem_level.bench(), rbench])
                .outcomes[0]
                .bottleneck;
            let contenders = vec![
                mem_bench_contender(&mut sim, mem_level),
                regex_bench_contender(&mut sim, 1e12, 1446.0, 6_000.0),
            ];
            truth_v.push(truth);
            yala_v.push(diagnose_yala(&model, solo, &traffic, &contenders).bottleneck);
            slomo_v.push(diagnose_slomo(solo).bottleneck);
        }
        let yc = correctness(&yala_v, &truth_v);
        let sc = correctness(&slomo_v, &truth_v);
        let shifts = truth_v.windows(2).filter(|w| w[0] != w[1]).count();
        println!(
            "{:<16} {sc:>8.1} {yc:>8.1}   (bottleneck shifts: {shifts})",
            kind.name()
        );
        rows.push(format!("{},{sc:.1},{yc:.1},{shifts}", kind.name()));
        let _ = ResourceKind::CpuMem;
    }
    write_csv(
        "table7_diagnosis",
        "nf,slomo_correct,yala_correct,shifts",
        &rows,
    );
}
