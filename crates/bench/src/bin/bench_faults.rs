//! Records the fault-injection comparison to `BENCH_faults.json`: a
//! failure-heavy simulated day — hard NIC failures on a per-NIC renewal
//! process, announced maintenance drains, a 50/50 guaranteed/best-effort
//! tenant mix — replayed under three policies: the QoS-aware
//! contention-aware policy (`yala-qos`), the same predictor with QoS
//! tiers ignored (`yala-blind`, the degradation baseline), and greedy
//! packing for context.
//!
//! The headline metric is the *QoS shield ratio*: the blind baseline's
//! guaranteed-class bad minutes (SLA violation while placed + downtime
//! while parked) divided by the aware policy's. The acceptance bar is
//! ≥ 5×: under identical fault schedules, tiered degradation must
//! concentrate at least that much of the damage on the best-effort
//! class. The scenario is deterministic: same seed ⇒ bit-identical
//! `FleetReport`s, so the committed JSON is reproducible. Pass `--quick`
//! (CI) for fewer trained NF kinds and a coarser audit cadence; the
//! scenario scale (48 NICs, ~24 simulated hours, every NIC failing
//! about twice) is the same in both modes.

use std::time::Instant;
use yala_bench::{json_f64, read_record, BenchArgs, RegressionCheck, Zoo};
use yala_fleet::{
    run_fleet, run_fleet_observed, verify_against, Diagnoser, FaultKind, FaultPlan, FleetConfig,
    FleetPolicy, FleetReport, FleetTrace, ProfiledTrace,
};
use yala_nf::NfKind;
use yala_placement::YalaPredictor;

/// The committed record this binary regenerates (and `--check`s against).
const RECORD: &str = "BENCH_faults.json";

/// The acceptance bar on the QoS shield ratio (blind / aware guaranteed
/// bad minutes).
const SHIELD_BAR: f64 = 5.0;

fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    let engine = args.engine();
    let kinds: Vec<NfKind> = if quick {
        vec![NfKind::FlowStats, NfKind::Acl, NfKind::Nat, NfKind::Nids]
    } else {
        NfKind::TABLE2_NINE.to_vec()
    };

    let mut cfg = FleetConfig::small(97);
    cfg.portfolio = vec![(yala_sim::NicSpec::bluefield2(), 20)];
    cfg.duration_s = 24 * 3_600;
    cfg.mean_interarrival_s = 240.0; // ~360 arrivals over the day
    cfg.mean_lifetime_s = 7_200.0; // ~30 NFs active at steady state
    cfg.audit_period_s = if quick { 1_800 } else { 600 };
    cfg.reprofile_threshold = if quick { 0.20 } else { 0.10 };
    cfg.kinds = kinds.clone();
    cfg.max_flows = 200_000;
    cfg.sla_drop_range = (0.05, 0.15);
    cfg.guaranteed_fraction = 0.5;
    // A deliberately undersized fleet under a rough day: every NIC fails
    // about three times, repairs take about an hour and a half, and six
    // hour-long maintenance drains land on top — so evacuations
    // regularly find the fleet too full and degradation policy decides
    // who eats the shortfall.
    cfg.faults = FaultPlan {
        mtbf_s: 6.0 * 3_600.0,
        mean_repair_s: 7_200.0,
        drains: 8,
        drain_notice_s: 1_800,
        drain_offline_s: 3_600,
    };

    println!(
        "bench_faults: {} NICs, {} h, audit every {} s, {} NF kinds, \
         guaranteed fraction {:.2}{}",
        cfg.nics(),
        cfg.duration_s / 3_600,
        cfg.audit_period_s,
        kinds.len(),
        cfg.guaranteed_fraction,
        if quick { " [quick]" } else { "" }
    );

    let t0 = Instant::now();
    let zoo = Zoo::train(&kinds, 6);
    let train_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let trace = FleetTrace::generate(cfg);
    let arrivals = trace.records.len();
    let guaranteed_nfs = trace
        .records
        .iter()
        .filter(|r| r.qos.is_guaranteed())
        .count();
    let fail_events = trace
        .faults
        .iter()
        .filter(|f| f.kind == FaultKind::Fail)
        .count();
    let drain_events = trace
        .faults
        .iter()
        .filter(|f| f.kind == FaultKind::DrainStart)
        .count();
    // With `--telemetry` the build and the flagship (yala-qos) run are
    // observed; the fault-injected journal is the richest one the bench
    // suite produces (faults, evacuations, parks, readmissions).
    let mut tel = args.telemetry_handle(97);
    let profiled = ProfiledTrace::build_observed(trace, &engine, &mut tel);
    let profile_s = t0.elapsed().as_secs_f64();
    println!(
        "  scenario: {arrivals} arrivals ({guaranteed_nfs} guaranteed), \
         {fail_events} failures + {drain_events} drains, {} profile snapshots \
         (train {train_s:.1} s, profile {profile_s:.1} s)",
        profiled.snapshot_count()
    );

    let t0 = Instant::now();
    let run_aware =
        |aware: bool, label: &str, tel: &mut yala_telemetry::Telemetry| -> FleetReport {
            let mut predictor = YalaPredictor::new(zoo.yala_bank());
            run_fleet_observed(
                &profiled,
                FleetPolicy::ContentionAware {
                    predictor: &mut predictor,
                    diagnoser: Diagnoser::Yala(zoo.yala_bank()),
                    online: None,
                    qos_aware: aware,
                },
                label,
                &engine,
                tel,
            )
        };
    let aware = run_aware(true, "yala-qos", &mut tel);
    let blind = run_aware(
        false,
        "yala-blind",
        &mut yala_telemetry::Telemetry::disabled(),
    );
    let greedy = run_fleet(&profiled, FleetPolicy::Greedy, "greedy", &engine);
    println!("  policy runs: {:.1} s", t0.elapsed().as_secs_f64());

    // Observability self-test on the fault-heavy journal: every park,
    // readmit, and evacuation must replay to the report's class stats.
    if let Some(sink) = tel.sink() {
        let replayed = verify_against(&aware, &sink.journal)
            .unwrap_or_else(|e| panic!("journal replay diverged from the yala-qos report: {e}"));
        println!(
            "  journal: {} events replay to the yala-qos report ({} faults) — OK",
            sink.journal.len(),
            replayed.faults
        );
    }
    args.write_telemetry(&tel);

    println!(
        "  {:<12} {:>6} {:>6} | {:>9} {:>9} {:>5} {:>5} {:>6} | {:>9} {:>9} {:>5} {:>5}",
        "policy",
        "faults",
        "drains",
        "G bad-min",
        "G down",
        "Gshed",
        "Gevac",
        "Gredo",
        "B bad-min",
        "B down",
        "Bshed",
        "Bredo"
    );
    let reports = [&aware, &blind, &greedy];
    for r in reports {
        println!(
            "  {:<12} {:>6} {:>6} | {:>9.0} {:>9.0} {:>5} {:>5} {:>6} | {:>9.0} {:>9.0} {:>5} {:>5}",
            r.policy,
            r.faults,
            r.drains,
            r.guaranteed.bad_minutes(),
            r.guaranteed.downtime_minutes,
            r.guaranteed.shed,
            r.guaranteed.evacuations,
            r.guaranteed.readmitted,
            r.best_effort.bad_minutes(),
            r.best_effort.downtime_minutes,
            r.best_effort.shed,
            r.best_effort.readmitted
        );
    }

    // The fault schedule is part of the trace: every policy sees the
    // same failures and drains.
    assert_eq!(aware.faults, blind.faults);
    assert_eq!(aware.drains, blind.drains);
    assert_eq!(aware.faults as usize, fail_events);
    assert!(aware.faults > 0, "a fault bench needs faults");

    // The acceptance bar: under identical faults, the QoS-blind baseline
    // must hurt the guaranteed class at least SHIELD_BAR times more than
    // the QoS-aware policy. Deterministic scenario, so this either
    // always holds or never does.
    // Capped so the record stays finite JSON even when the aware policy
    // keeps the guaranteed class perfectly clean.
    let shield_ratio = shield(&blind, &aware).min(1_000.0);
    assert!(
        blind.guaranteed.bad_minutes() > 0.0,
        "the blind baseline must damage the guaranteed class somewhere \
         in a failure-heavy day"
    );
    assert!(
        shield_ratio >= SHIELD_BAR,
        "QoS-aware degradation must hold guaranteed bad minutes \
         {SHIELD_BAR}x below the blind baseline (got {shield_ratio:.1}x: \
         aware {:.0} vs blind {:.0})",
        aware.guaranteed.bad_minutes(),
        blind.guaranteed.bad_minutes()
    );
    println!(
        "  shield: aware {:.0} guaranteed bad-min vs blind {:.0} — {:.1}x (bar {SHIELD_BAR}x) OK",
        aware.guaranteed.bad_minutes(),
        blind.guaranteed.bad_minutes(),
        shield_ratio
    );

    let kinds_json: Vec<String> = kinds.iter().map(|k| format!("\"{k}\"")).collect();
    let policies_json: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
    let json = format!(
        "{{\n\"bench\": \"faults\",\n\"quick\": {quick},\n\"nics\": {},\n\"arrivals\": {arrivals},\n\
         \"guaranteed_nfs\": {guaranteed_nfs},\n\"fail_events\": {fail_events},\n\
         \"drain_events\": {drain_events},\n\"duration_s\": {},\n\"audit_period_s\": {},\n\
         \"seed\": {},\n\"kinds\": [{}],\n\"shield_ratio\": {:.3},\n\"policies\": [\n{}\n]\n}}\n",
        aware.nics,
        aware.duration_s,
        aware.audit_period_s,
        aware.seed,
        kinds_json.join(", "),
        shield_ratio,
        policies_json.join(",\n")
    );
    if let Some(path) = args.record_path(RECORD) {
        match std::fs::write(path, &json) {
            Ok(()) => println!("  wrote {path}"),
            Err(e) => eprintln!("  could not write {path}: {e}"),
        }
    }

    // Regression gate: the recomputed quick-mode headline metrics must
    // not be worse than the committed record's.
    if args.check {
        let committed = read_record(RECORD);
        let mut check = RegressionCheck::new();
        let key = |anchor: &str, k: &str| json_f64(&committed, anchor, k).unwrap_or(-1.0);
        check.exact("arrivals", arrivals as f64, key("", "arrivals"));
        check.exact("fail_events", fail_events as f64, key("", "fail_events"));
        check.at_least("shield_ratio", shield_ratio, SHIELD_BAR);
        check.at_least(
            "shield_ratio_vs_committed",
            shield_ratio,
            key("", "shield_ratio") * 0.95,
        );
        check.no_worse(
            "yala-qos.guaranteed.bad_minutes",
            aware.guaranteed.bad_minutes(),
            key("\"policy\": \"yala-qos\"", "bad_minutes"),
            0.05,
            1.0,
        );
        check.no_worse(
            "yala-qos.rejected",
            aware.rejected as f64,
            key("\"policy\": \"yala-qos\"", "rejected"),
            0.0,
            0.0,
        );
        check.finish(RECORD);
    }
}

/// Blind-over-aware guaranteed bad minutes; an aware policy that keeps
/// the class perfectly clean scores infinity.
fn shield(blind: &FleetReport, aware: &FleetReport) -> f64 {
    let a = aware.guaranteed.bad_minutes();
    let b = blind.guaranteed.bad_minutes();
    if a == 0.0 {
        if b > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    } else {
        b / a
    }
}
