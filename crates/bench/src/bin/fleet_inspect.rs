//! `fleet_inspect` — the explainability CLI over a fleet event journal.
//!
//! Takes a `.jsonl` journal written by any bench bin's `--telemetry BASE`
//! flag (`BASE.jsonl`) and answers questions a `FleetReport`'s end-of-day
//! aggregates cannot:
//!
//! ```text
//! fleet_inspect <journal.jsonl> summary            # headline tallies
//! fleet_inspect <journal.jsonl> timeline           # per-epoch fleet state
//! fleet_inspect <journal.jsonl> tenant <id>        # one NF's life story
//! fleet_inspect <journal.jsonl> why <id>           # violated/parked/migrated — and why
//! fleet_inspect <journal.jsonl> prom               # metrics reconstructed from events
//! fleet_inspect <journal.jsonl> json               # same, as canonical JSON
//! ```
//!
//! Everything is derived from the journal alone — the binary never loads
//! simulator state — so it works on any journal from any run, including
//! one produced on another machine.

use yala_telemetry::Inspector;

fn usage() -> ! {
    eprintln!(
        "usage: fleet_inspect <journal.jsonl> <command>\n\
         commands:\n\
           summary        headline event tallies\n\
           timeline       per-epoch fleet state with event deltas\n\
           tenant <id>    chronological lifecycle story of one NF\n\
           why <id>       explain the NF's violations/parks/migrations\n\
           prom           Prometheus text metrics reconstructed from events\n\
           json           the same metrics as canonical JSON"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, cmd) = match (args.first(), args.get(1)) {
        (Some(p), Some(c)) => (p.clone(), c.clone()),
        _ => usage(),
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("could not read journal {path}: {e}"));
    let inspector = Inspector::from_jsonl(&text);
    if inspector.is_empty() {
        eprintln!("warning: {path} parsed to zero events");
    }
    let id_arg = || -> i64 {
        args.get(2)
            .unwrap_or_else(|| usage())
            .parse()
            .unwrap_or_else(|_| usage())
    };
    let out = match cmd.as_str() {
        "summary" => inspector.summary(),
        "timeline" => inspector.timeline(),
        "tenant" => inspector.tenant(id_arg()),
        "why" => inspector.why(id_arg()),
        "prom" => inspector.reconstruct_metrics().to_prometheus(),
        "json" => inspector.reconstruct_metrics().to_json(),
        _ => usage(),
    };
    print!("{out}");
}
