//! Records the dynamic-cluster comparison to `BENCH_fleet.json`: the
//! §7.5.1 strategies re-fought on a *live* fleet — hundreds of NICs over
//! a simulated day with Poisson NF arrivals/departures, per-NF traffic
//! drift, periodic SLA audits, and reactive (diagnosis-guided) migration
//! for the contention-aware policies.
//!
//! The scenario is deterministic: same seed ⇒ bit-identical
//! `FleetReport`s, so the committed JSON is reproducible. Pass `--quick`
//! (CI) for fewer trained NF kinds and a coarser audit cadence; the
//! scenario scale (200 NICs, ~600 arrivals, 24 simulated hours) is the
//! same in both modes.

use std::time::Instant;
use yala_bench::{json_f64, read_record, BenchArgs, RegressionCheck, Zoo};
use yala_fleet::{
    run_fleet, run_fleet_observed, verify_against, Diagnoser, FleetConfig, FleetPolicy,
    FleetReport, FleetTrace, ProfiledTrace,
};
use yala_nf::NfKind;
use yala_placement::{SlomoPredictor, YalaPredictor};

/// The committed record this binary regenerates (and `--check`s against).
const RECORD: &str = "BENCH_fleet.json";

fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    let engine = args.engine();
    let kinds: Vec<NfKind> = if quick {
        vec![NfKind::FlowStats, NfKind::Acl, NfKind::Nat, NfKind::Nids]
    } else {
        NfKind::TABLE2_NINE.to_vec()
    };

    let mut cfg = FleetConfig::small(42);
    cfg.portfolio = vec![(yala_sim::NicSpec::bluefield2(), 200)];
    cfg.duration_s = 24 * 3_600;
    cfg.mean_interarrival_s = 144.0; // ~600 arrivals over the day
    cfg.mean_lifetime_s = 9_000.0; // ~60 NFs active at steady state
    cfg.audit_period_s = if quick { 1_800 } else { 600 };
    cfg.reprofile_threshold = if quick { 0.20 } else { 0.10 };
    cfg.kinds = kinds.clone();
    cfg.max_flows = 200_000;
    cfg.sla_drop_range = (0.05, 0.15);

    println!(
        "bench_fleet: {} NICs, {} h, audit every {} s, {} NF kinds{}",
        cfg.nics(),
        cfg.duration_s / 3_600,
        cfg.audit_period_s,
        kinds.len(),
        if quick { " [quick]" } else { "" }
    );

    let t0 = Instant::now();
    let zoo = Zoo::train(&kinds, 6);
    let train_s = t0.elapsed().as_secs_f64();

    // With `--telemetry` the build and the flagship (yala) run below are
    // observed: profile measurements, placements, audits, and migrations
    // land in one sim-time journal. Disabled, the handle is a no-op and
    // the record bytes are exactly the unobserved ones.
    let mut tel = args.telemetry_handle(42);

    let t0 = Instant::now();
    let trace = FleetTrace::generate(cfg);
    let arrivals = trace.records.len();
    let profiled = ProfiledTrace::build_observed(trace, &engine, &mut tel);
    let profile_s = t0.elapsed().as_secs_f64();
    println!(
        "  scenario: {arrivals} arrivals, {} profile snapshots \
         (train {train_s:.1} s, profile {profile_s:.1} s)",
        profiled.snapshot_count()
    );

    let t0 = Instant::now();
    let mono = run_fleet(
        &profiled,
        FleetPolicy::Monopolization,
        "monopolization",
        &engine,
    );
    let greedy = run_fleet(&profiled, FleetPolicy::Greedy, "greedy", &engine);
    let slomo = {
        let mut predictor = SlomoPredictor::new(zoo.slomo_bank());
        run_fleet(
            &profiled,
            FleetPolicy::ContentionAware {
                predictor: &mut predictor,
                diagnoser: Diagnoser::MemoryOnly,
                online: None,
                qos_aware: true,
            },
            "slomo",
            &engine,
        )
    };
    let yala = {
        let mut predictor = YalaPredictor::new(zoo.yala_bank());
        run_fleet_observed(
            &profiled,
            FleetPolicy::ContentionAware {
                predictor: &mut predictor,
                diagnoser: Diagnoser::Yala(zoo.yala_bank()),
                online: None,
                qos_aware: true,
            },
            "yala",
            &engine,
            &mut tel,
        )
    };
    println!("  policy runs: {:.1} s", t0.elapsed().as_secs_f64());

    // Observability self-test: the journal must replay to the exact
    // headline counters of the report it narrates.
    if let Some(sink) = tel.sink() {
        let replayed = verify_against(&yala, &sink.journal)
            .unwrap_or_else(|e| panic!("journal replay diverged from the yala report: {e}"));
        println!(
            "  journal: {} events replay to the yala report ({} arrivals) — OK",
            sink.journal.len(),
            replayed.arrivals
        );
    }
    args.write_telemetry(&tel);

    println!(
        "  {:<16} {:>10} {:>10} {:>10} {:>9} {:>6} {:>9} {:>9}",
        "policy", "mean NICs", "peak", "NIC-min", "viol-min", "migr", "rejected", "waste-vs-LB"
    );
    let reports = [&mono, &greedy, &slomo, &yala];
    for r in reports {
        println!(
            "  {:<16} {:>10.1} {:>10} {:>10.0} {:>9.0} {:>6} {:>9} {:>8.0}%",
            r.policy,
            r.mean_nics(),
            r.peak_nics,
            r.nic_minutes,
            r.violation_minutes,
            r.migrations,
            r.rejected,
            r.wastage_vs_oracle() * 100.0
        );
    }

    // The acceptance bar for the dynamic scenario: the contention-aware
    // predictor strictly dominates greedy on SLA-violation minutes while
    // using fewer NICs than monopolization. Deterministic scenario, so
    // this either always holds or never does.
    assert!(
        greedy.violation_minutes > 0.0,
        "blind packing should violate somewhere in a full day"
    );
    assert!(
        yala.violation_minutes < greedy.violation_minutes,
        "yala must strictly beat greedy on violation minutes"
    );
    assert!(
        yala.nic_minutes < mono.nic_minutes,
        "yala must use fewer NIC-minutes than monopolization"
    );
    println!(
        "  dominance: yala {:.0} viol-min vs greedy {:.0}; {:.0} NIC-min vs mono {:.0} — OK",
        yala.violation_minutes, greedy.violation_minutes, yala.nic_minutes, mono.nic_minutes
    );

    let kinds_json: Vec<String> = kinds.iter().map(|k| format!("\"{k}\"")).collect();
    let policies_json: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
    let json = format!(
        "{{\n\"bench\": \"fleet\",\n\"quick\": {quick},\n\"nics\": {},\n\"arrivals\": {arrivals},\n\
         \"duration_s\": {},\n\"audit_period_s\": {},\n\"seed\": {},\n\"kinds\": [{}],\n\
         \"profile_snapshots\": {},\n\"profile_cache\": {},\n\"policies\": [\n{}\n]\n}}\n",
        mono.nics,
        mono.duration_s,
        mono.audit_period_s,
        mono.seed,
        kinds_json.join(", "),
        profiled.snapshot_count(),
        profiled.stats.to_json(),
        policies_json.join(",\n")
    );
    if let Some(path) = args.record_path(RECORD) {
        match std::fs::write(path, &json) {
            Ok(()) => println!("  wrote {path}"),
            Err(e) => eprintln!("  could not write {path}: {e}"),
        }
    }
    let _ = report_sanity(&mono);

    // Regression gate: the recomputed quick-mode headline metrics must
    // not be worse than the committed record's (small tolerance so an
    // intentional scenario change fails loudly and prompts regeneration).
    if args.check {
        let committed = read_record(RECORD);
        let mut check = RegressionCheck::new();
        check.exact(
            "arrivals",
            arrivals as f64,
            json_f64(&committed, "", "arrivals").unwrap_or(-1.0),
        );
        for r in [&slomo, &yala] {
            let anchor = format!("\"policy\": \"{}\"", r.policy);
            let key = |k: &str| json_f64(&committed, &anchor, k).unwrap_or(-1.0);
            check.no_worse(
                &format!("{}.violation_minutes", r.policy),
                r.violation_minutes,
                key("violation_minutes"),
                0.05,
                1.0,
            );
            check.no_worse(
                &format!("{}.nic_minutes", r.policy),
                r.nic_minutes,
                key("nic_minutes"),
                0.05,
                0.0,
            );
            check.no_worse(
                &format!("{}.rejected", r.policy),
                r.rejected as f64,
                key("rejected"),
                0.0,
                0.0,
            );
        }
        check.finish(RECORD);
    }
}

/// Cheap structural sanity on the serialized report (keeps the JSON
/// writer honest without a JSON parser in the workspace).
fn report_sanity(r: &FleetReport) -> bool {
    let j = r.to_json();
    j.matches('{').count() == j.matches('}').count()
        && j.matches('[').count() == j.matches(']').count()
}
