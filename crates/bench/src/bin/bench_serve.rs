//! Records the serving-path benchmark to `BENCH_serve.json`: a
//! [`yala_serve::ServeLoop`] daemon driven in-process at production
//! request rates with the message stream a diurnal fleet day generates —
//! placements, departures, drift re-profiles, NIC failovers, audit
//! observations, and online absorb passes — measuring what an operator
//! cares about: queries per second and p99 admission latency.
//!
//! The committed record separates the two worlds, like `bench_scale`: a
//! `"deterministic"` block (request and decision counters; exact `--check`
//! gates — the daemon is a pure function of seed + message order, so
//! these either match bit-for-bit or the serving path changed) and a
//! `"wall"` block (machine-dependent latency/throughput; never diffed).

use std::time::Instant;
use yala_bench::{json_f64, read_record, BenchArgs, RegressionCheck};
use yala_fleet::{FleetConfig, FleetTrace, MS_PER_S};
use yala_nf::NfKind;
use yala_serve::ServeLoop;

/// The committed record this binary regenerates (and `--check`s against).
const RECORD: &str = "BENCH_serve.json";

/// One wire request, schedule-ordered.
struct Msg {
    t_ms: u64,
    line: String,
    is_place: bool,
}

fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    let engine = args.engine();

    // The scenario: a diurnal day of arrivals on a small fleet, replayed
    // as wire messages. Quick mode trims the horizon, not the shape.
    let mut cfg = FleetConfig::small(42);
    cfg.portfolio = vec![(yala_sim::NicSpec::bluefield2(), 12)];
    cfg.duration_s = if quick { 6 * 3_600 } else { 24 * 3_600 };
    cfg.mean_interarrival_s = 120.0;
    cfg.mean_lifetime_s = 4_800.0;
    cfg.kinds = vec![NfKind::FlowStats, NfKind::Acl, NfKind::Nat];
    let trace = FleetTrace::diurnal(cfg.clone());

    // Arrival/departure messages from the recorded trace, plus one
    // placement query per record (the "would this fit" operator probe)
    // and an absorb sweep each simulated hour.
    let mut msgs: Vec<Msg> = Vec::new();
    for r in &trace.records {
        let t = r.start;
        msgs.push(Msg {
            t_ms: r.arrival_ms,
            line: format!(
                "{{\"op\":\"place\",\"id\":{},\"kind\":\"{}\",\"qos\":\"{}\",\
                 \"flows\":{},\"psize\":{},\"mtbr\":{},\"sla_drop\":{}}}",
                r.id,
                r.kind.name(),
                r.qos.name(),
                t.flow_count,
                t.packet_size,
                t.mtbr,
                r.sla_drop
            ),
            is_place: true,
        });
        msgs.push(Msg {
            t_ms: r.arrival_ms,
            line: format!(
                "{{\"op\":\"query\",\"kind\":\"{}\",\"flows\":{},\"psize\":{},\
                 \"mtbr\":{},\"sla_drop\":{}}}",
                r.kind.name(),
                t.flow_count,
                t.packet_size,
                t.mtbr,
                r.sla_drop
            ),
            is_place: false,
        });
        msgs.push(Msg {
            t_ms: r.departure_ms,
            line: format!("{{\"op\":\"depart\",\"id\":{}}}", r.id),
            is_place: false,
        });
    }
    // Synthetic audit observations: one per record an hour into its
    // life (if it lives that long), echoing its own traffic with a
    // deterministic measured-throughput dent — enough signal for the
    // online bank to absorb, all a pure function of the trace.
    for r in &trace.records {
        let t_ms = r.arrival_ms + 3_600 * MS_PER_S;
        if t_ms >= r.departure_ms {
            continue;
        }
        let t = r.traffic_at(t_ms);
        let solo = 1.0e7;
        let measured = solo * (1.0 - 0.3 * (r.id % 4) as f64 / 4.0);
        msgs.push(Msg {
            t_ms,
            line: format!(
                "{{\"op\":\"observe\",\"model\":\"bluefield2\",\"kind\":\"{}\",\
                 \"flows\":{},\"psize\":{},\"mtbr\":{},\"ipc\":1.1,\"irt\":9.0e8,\
                 \"l2crd\":1.0e7,\"l2cwr\":2.0e6,\"memrd\":3.0e6,\"memwr\":1.0e6,\
                 \"wss\":5.0e7,\"press\":\"\",\"solo\":{solo},\"measured\":{measured}}}",
                r.kind.name(),
                t.flow_count,
                t.packet_size,
                t.mtbr,
            ),
            is_place: false,
        });
    }
    for hour in 1..cfg.duration_s / 3_600 {
        msgs.push(Msg {
            t_ms: hour * 3_600 * MS_PER_S,
            line: "{\"op\":\"absorb\"}".to_string(),
            is_place: false,
        });
    }
    // Stable schedule order: time, then place < query < absorb < depart
    // by construction of the per-record push order (stable sort).
    msgs.sort_by_key(|m| m.t_ms);

    println!(
        "bench_serve: {} NICs, {} records -> {} requests, {} h diurnal day{}",
        cfg.nics(),
        trace.records.len(),
        msgs.len(),
        cfg.duration_s / 3_600,
        if quick { " [quick]" } else { "" }
    );

    let t0 = Instant::now();
    let mut daemon = ServeLoop::new(&cfg, "yala-online", &engine).expect("serve loop builds");
    let build_s = t0.elapsed().as_secs_f64();

    // The drive loop. Departures for never-admitted (rejected) instances
    // come back `ok:false` — that is the protocol working, not a bench
    // failure; everything else must succeed.
    let mut place_us: Vec<f64> = Vec::new();
    let mut admissions = 0u64;
    let mut rejections = 0u64;
    let mut errors = 0u64;
    let t0 = Instant::now();
    for m in &msgs {
        let t1 = Instant::now();
        let resp = daemon.handle_line(&m.line, &engine);
        let us = t1.elapsed().as_secs_f64() * 1e6;
        if m.is_place {
            place_us.push(us);
            if resp.contains("\"nic\":-1") {
                rejections += 1;
            } else if resp.starts_with("{\"ok\":true") {
                admissions += 1;
            }
        }
        if resp.starts_with("{\"ok\":false") {
            assert!(
                m.line.contains("\"op\":\"depart\""),
                "unexpected error for {}: {resp}",
                m.line
            );
            errors += 1;
        }
    }
    let drive_s = t0.elapsed().as_secs_f64();
    let stats = daemon.handle_line("{\"op\":\"stats\"}", &engine);
    println!("  final {stats}");
    println!(
        "  drive: {} requests in {drive_s:.2} s (build {build_s:.2} s)",
        msgs.len()
    );

    let stat = |key: &str| {
        json_f64(&stats, "", key).unwrap_or_else(|| panic!("stats response lacks {key}"))
    };
    assert_eq!(stat("admissions") as u64, admissions, "counter drift");
    assert_eq!(stat("rejections") as u64, rejections, "counter drift");

    place_us.sort_by(|a, b| a.total_cmp(b));
    let p = |q: f64| place_us[((place_us.len() - 1) as f64 * q) as usize];
    let requests_per_s = msgs.len() as f64 / drive_s;
    println!(
        "  wall: {requests_per_s:.0} req/s, place p50 {:.1} us, p99 {:.1} us",
        p(0.50),
        p(0.99)
    );

    let json = format!(
        "{{\n\"bench\": \"serve\",\n\"quick\": {quick},\n\"seed\": {},\n\"nics\": {},\n\
         \"policy\": \"yala-online\",\n\"duration_s\": {},\n\"records\": {},\n\
         \"deterministic\": {{\"requests\": {}, \"admissions\": {}, \"rejections\": {}, \
         \"departures\": {}, \"queries\": {}, \"observations\": {}, \
         \"absorb_passes\": {}, \"unadmitted_departs\": {}}},\n\
         \"wall\": {{\"requests_per_s\": {requests_per_s:.0}, \"place_p50_us\": {:.1}, \
         \"place_p99_us\": {:.1}, \"build_s\": {build_s:.2}, \"drive_s\": {drive_s:.2}}}\n}}\n",
        cfg.seed,
        cfg.nics(),
        cfg.duration_s,
        trace.records.len(),
        msgs.len(),
        stat("admissions") as u64,
        stat("rejections") as u64,
        stat("departures") as u64,
        stat("queries") as u64,
        stat("observations") as u64,
        stat("absorb_passes") as u64,
        errors,
        p(0.50),
        p(0.99),
    );
    if let Some(path) = args.record_path(RECORD) {
        match std::fs::write(path, &json) {
            Ok(()) => println!("  wrote {path}"),
            Err(e) => eprintln!("  could not write {path}: {e}"),
        }
    }

    // Regression gate: every deterministic counter is exact. The wall
    // block is deliberately never compared.
    if args.check {
        let committed = read_record(RECORD);
        let mut check = RegressionCheck::new();
        for key in [
            "requests",
            "admissions",
            "rejections",
            "departures",
            "queries",
            "observations",
            "absorb_passes",
            "unadmitted_departs",
        ] {
            check.exact(
                key,
                json_f64(&json, "\"deterministic\"", key).unwrap_or(-1.0),
                json_f64(&committed, "\"deterministic\"", key).unwrap_or(-2.0),
            );
        }
        check.exact(
            "records",
            trace.records.len() as f64,
            json_f64(&committed, "", "records").unwrap_or(-1.0),
        );
        check.finish(RECORD);
    }
}
