//! Table 2: overall prediction accuracy of SLOMO vs Yala for the nine NFs
//! under joint multi-resource contention and varying traffic attributes
//! (each target co-located with up to three random NFs across the nine
//! evaluation traffic profiles).

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use yala_bench::{accuracy, fmt_row, row_header, scaled, write_csv, Zoo};
use yala_nf::NfKind;
use yala_traffic::TrafficProfile;

fn main() {
    eprintln!("training model zoo (9 NFs x 2 frameworks)...");
    let mut zoo = Zoo::train(&NfKind::TABLE2_NINE, 2);
    let mut rng = StdRng::seed_from_u64(77);
    let profiles = TrafficProfile::evaluation_grid();
    let combos_per_profile = scaled(2, 10);
    println!("Table 2: overall accuracy (multi-resource contention + varying traffic)");
    println!("{}", row_header());
    let mut rows = Vec::new();
    let mut all_t = Vec::new();
    let mut all_s = Vec::new();
    let mut all_y = Vec::new();
    for target in NfKind::TABLE2_NINE {
        let others: Vec<NfKind> = NfKind::TABLE2_NINE
            .iter()
            .copied()
            .filter(|k| *k != target)
            .collect();
        let (mut truths, mut slomos, mut yalas) = (Vec::new(), Vec::new(), Vec::new());
        for &profile in &profiles {
            for _ in 0..combos_per_profile {
                let n = rng.gen_range(1..=3usize);
                let mut cs = others.clone();
                cs.shuffle(&mut rng);
                let competitors: Vec<(NfKind, TrafficProfile)> =
                    cs[..n].iter().map(|&k| (k, profile)).collect();
                let e = zoo.evaluate(target, profile, &competitors);
                truths.push(e.truth);
                slomos.push(e.slomo);
                yalas.push(e.yala);
            }
        }
        let (s, y) = (accuracy(&truths, &slomos), accuracy(&truths, &yalas));
        println!("{}", fmt_row(target.name(), s, y));
        rows.push(format!(
            "{},{:.2},{:.1},{:.1},{:.2},{:.1},{:.1}",
            target.name(),
            s.mape,
            s.acc5,
            s.acc10,
            y.mape,
            y.acc5,
            y.acc10
        ));
        all_t.extend_from_slice(&truths);
        all_s.extend_from_slice(&slomos);
        all_y.extend_from_slice(&yalas);
    }
    let (s, y) = (accuracy(&all_t, &all_s), accuracy(&all_t, &all_y));
    println!("{}", "-".repeat(64));
    println!("{}", fmt_row("AVERAGE", s, y));
    println!(
        "MAPE reduction vs SLOMO: {:.1}%",
        (1.0 - y.mape / s.mape) * 100.0
    );
    rows.push(format!(
        "average,{:.2},{:.1},{:.1},{:.2},{:.1},{:.1}",
        s.mape, s.acc5, s.acc10, y.mape, y.acc5, y.acc10
    ));
    write_csv(
        "table2_overall",
        "nf,slomo_mape,slomo_acc5,slomo_acc10,yala_mape,yala_acc5,yala_acc10",
        &rows,
    );
}
