//! Table 4: composition ablation — sum / min / Yala's pattern-based
//! composition for synthetic NF1 (memory+regex) and NF2 (+compression) in
//! both execution patterns. Per-resource responses are measured with
//! single-resource bench co-runs, exactly as §7.3 trains them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yala_bench::{scaled, write_csv, NOISE_SIGMA};
use yala_core::composition::{compose, compose_min, compose_sum};
use yala_ml::metrics;
use yala_nf::bench::{compression_bench, regex_bench, synthetic_nf1, synthetic_nf2};
use yala_sim::{ExecutionPattern, NicSpec, Simulator, WorkloadSpec};

fn errors(sim: &mut Simulator, nf: &WorkloadSpec, n: usize) -> (f64, f64, f64) {
    let solo = sim.solo(nf).throughput_pps;
    let mut rng = StdRng::seed_from_u64(13);
    let (mut truths, mut sums, mut mins, mut pats) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for _ in 0..n {
        let level = yala_core::profiler::MemLevel::random(&mut rng);
        let rgx = regex_bench(
            rng.gen_range(2e5..3e6),
            1446.0,
            rng.gen_range(500.0..2_500.0),
        );
        let mut singles = vec![
            sim.co_run(&[nf.clone(), level.bench()]).outcomes[0].throughput_pps,
            sim.co_run(&[nf.clone(), rgx.clone()]).outcomes[0].throughput_pps,
        ];
        let mut all = vec![nf.clone(), level.bench(), rgx];
        if nf.uses(yala_sim::ResourceKind::Compression) {
            let cmp = compression_bench(rng.gen_range(2e5..2e6), 1446.0);
            singles.push(sim.co_run(&[nf.clone(), cmp.clone()]).outcomes[0].throughput_pps);
            all.push(cmp);
        }
        truths.push(sim.co_run(&all).outcomes[0].throughput_pps);
        sums.push(compose_sum(solo, &singles));
        mins.push(compose_min(solo, &singles));
        pats.push(compose(nf.pattern, solo, &singles));
    }
    (
        metrics::mape(&truths, &sums),
        metrics::mape(&truths, &mins),
        metrics::mape(&truths, &pats),
    )
}

fn main() {
    let mut sim = Simulator::with_noise(NicSpec::bluefield2(), NOISE_SIGMA, 41);
    let n = scaled(15, 50);
    println!("Table 4: composition MAPE (%) by execution pattern");
    println!(
        "{:<6} {:<18} {:>8} {:>8} {:>8}",
        "NF", "pattern", "sum", "min", "Yala"
    );
    let mut rows = Vec::new();
    type Builder = fn(ExecutionPattern) -> WorkloadSpec;
    let builders: [(&str, Builder); 2] = [("NF1", synthetic_nf1), ("NF2", synthetic_nf2)];
    for (name, build) in builders {
        for pattern in [
            ExecutionPattern::Pipeline,
            ExecutionPattern::RunToCompletion,
        ] {
            let nf = build(pattern);
            let (s, m, p) = errors(&mut sim, &nf, n);
            println!(
                "{name:<6} {:<18} {s:>8.1} {m:>8.1} {p:>8.1}",
                pattern.to_string()
            );
            rows.push(format!("{name},{pattern},{s:.2},{m:.2},{p:.2}"));
        }
    }
    write_csv("table4_composition", "nf,pattern,sum,min,yala", &rows);
}
