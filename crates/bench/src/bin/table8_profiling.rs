//! Table 8 + Figure 8: profiling cost vs model accuracy for full, random,
//! and adaptive profiling. For Fig. 8 the quota scales 0.5×/1×/1.5× on
//! FlowClassifier; full profiling uses a dense grid (scaled down from the
//! paper's 3200× so it terminates, but still ~20× the adaptive quota).

use rand::rngs::StdRng;
use rand::SeedableRng;
use yala_bench::{scaled, write_csv, NOISE_SIGMA};
use yala_core::adaptive::{
    adaptive_profile, full_profile, random_profile, AdaptiveConfig, TrafficRanges,
};
use yala_core::memory_model::MemoryModel;
use yala_core::profiler::{bench_counters, cached_workload, MemLevel};
use yala_core::TrainConfig;
use yala_ml::metrics;
use yala_nf::NfKind;
use yala_sim::{NicSpec, Simulator};
use yala_traffic::TrafficProfile;

/// Test MAPE of a memory model over random (profile, level) scenarios.
fn test_model(
    sim: &mut Simulator,
    kind: NfKind,
    model: &MemoryModel,
    n: usize,
    seed: u64,
) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut truths, mut preds) = (Vec::new(), Vec::new());
    for i in 0..n {
        let profile = TrafficProfile::random(&mut rng, 500_000);
        let level = MemLevel::random(&mut rng);
        let w = cached_workload(kind, profile, i as u64 % 3);
        let truth = sim.co_run(&[w, level.bench()]).outcomes[0].throughput_pps;
        let feats = bench_counters(sim, level);
        truths.push(truth);
        preds.push(model.predict(&feats, Some(&profile)));
    }
    (
        metrics::mape(&truths, &preds),
        metrics::bounded_accuracy(&truths, &preds, 10.0),
    )
}

fn main() {
    let mut sim = Simulator::with_noise(NicSpec::bluefield2(), NOISE_SIGMA, 9);
    let ranges = TrafficRanges::default();
    let gbr = TrainConfig::default().gbr;
    let n_test = scaled(20, 50);
    let quota = AdaptiveConfig::default().quota;

    println!("Table 8: profiling cost vs accuracy (MAPE% / ±10% Acc)");
    println!(
        "{:<16} {:>7} | {:>14} {:>14} {:>14}",
        "NF", "quota", "full(~20x)", "random(1x)", "adaptive(1x)"
    );
    let mut rows = Vec::new();
    let kinds = [
        NfKind::FlowClassifier,
        NfKind::Nat,
        NfKind::FlowTracker,
        NfKind::FlowMonitor,
        NfKind::FlowStats,
        NfKind::IpTunnel,
    ];
    let kinds: &[NfKind] = if yala_bench::full_scale() {
        &kinds
    } else {
        &kinds[..3]
    };
    for &kind in kinds {
        let full = full_profile(&mut sim, kind, ranges, [6, 4, 4], scaled(20, 40), 1);
        let full_model = MemoryModel::fit(&full.dataset, &gbr, 1);
        let rand_run = random_profile(&mut sim, kind, ranges, quota, 2);
        let rand_model = MemoryModel::fit(&rand_run.dataset, &gbr, 1);
        let adaptive = adaptive_profile(&mut sim, kind, ranges, &AdaptiveConfig::default());
        let adp_model = MemoryModel::fit(&adaptive.dataset, &gbr, 1);
        let f = test_model(&mut sim, kind, &full_model, n_test, 100);
        let r = test_model(&mut sim, kind, &rand_model, n_test, 100);
        let a = test_model(&mut sim, kind, &adp_model, n_test, 100);
        println!(
            "{:<16} {:>7} | {:>6.1}/{:<6.1} {:>6.1}/{:<6.1} {:>6.1}/{:<6.1}",
            kind.name(),
            quota,
            f.0,
            f.1,
            r.0,
            r.1,
            a.0,
            a.1
        );
        rows.push(format!(
            "{},{},{:.2},{:.1},{:.2},{:.1},{:.2},{:.1}",
            kind.name(),
            full.measurements,
            f.0,
            f.1,
            r.0,
            r.1,
            a.0,
            a.1
        ));
    }

    // Figure 8: quota sensitivity on FlowClassifier.
    println!("\nFigure 8: FlowClassifier MAPE vs profiling quota");
    println!("{:>8} {:>10} {:>10}", "quota", "random", "adaptive");
    for factor in [0.5f64, 1.0, 1.5] {
        let q = (quota as f64 * factor) as usize;
        let r = random_profile(&mut sim, NfKind::FlowClassifier, ranges, q, 3);
        let rm = MemoryModel::fit(&r.dataset, &gbr, 1);
        let cfg = AdaptiveConfig {
            quota: q,
            ..AdaptiveConfig::default()
        };
        let a = adaptive_profile(&mut sim, NfKind::FlowClassifier, ranges, &cfg);
        let am = MemoryModel::fit(&a.dataset, &gbr, 1);
        let (rmape, _) = test_model(&mut sim, NfKind::FlowClassifier, &rm, n_test, 200);
        let (amape, _) = test_model(&mut sim, NfKind::FlowClassifier, &am, n_test, 200);
        println!("{q:>8} {rmape:>10.1} {amape:>10.1}");
        rows.push(format!("fig8,{q},{rmape:.2},{amape:.2}"));
    }
    write_csv(
        "table8_profiling",
        "nf,full_cost,full_mape,full_acc10,rand_mape,rand_acc10,adp_mape,adp_acc10",
        &rows,
    );
}
