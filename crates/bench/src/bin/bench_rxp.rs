//! Records the fused-ruleset scan speedup to `BENCH_rxp.json` so the perf
//! trajectory of the regex hot path is tracked across PRs.
//!
//! Measures per-rule (12 DFA passes) vs fused (one pass) scans of the
//! default L7 ruleset over traffic-generator payloads at several MTBR
//! levels, plus the one-time fused compile cost. Pass `--quick` (CI) for a
//! reduced-iteration run; numbers are wall-clock medians of repeated
//! batches, so quick mode stays representative.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use yala_bench::{json_f64, read_record, BenchArgs, RegressionCheck};
use yala_rxp::{l7_default_ruleset, Ruleset, ScanReport};
use yala_traffic::PayloadSynthesizer;

/// Payload size for the headline numbers (MTU-ish, as in the paper).
const PAYLOAD_LEN: usize = 1500;

/// The committed record this binary regenerates (and `--check`s against).
const RECORD: &str = "BENCH_rxp.json";

/// Median of per-batch average nanoseconds per scan.
fn median_ns(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Times `f` over `batches` batches of `iters` calls; returns median ns/call.
fn time_ns(batches: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let samples: Vec<f64> = (0..batches)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    median_ns(samples)
}

struct Row {
    mtbr: f64,
    per_rule_ns: f64,
    fused_ns: f64,
}

fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    let (batches, iters, payloads) = if quick { (5, 50, 8) } else { (9, 400, 32) };

    let rules = l7_default_ruleset();
    let synth = PayloadSynthesizer::new();
    println!(
        "bench_rxp: default ruleset, {} rules ({} fused, {} fused states), payload {PAYLOAD_LEN} B{}",
        rules.len(),
        rules.fused_rule_count(),
        rules.fused_state_count(),
        if quick { " [quick]" } else { "" },
    );

    // One-time fused compile cost (cold build, not the cached default).
    let patterns: Vec<(String, String)> = rules
        .rules()
        .iter()
        .map(|r| (r.name.clone(), r.regex.pattern().to_string()))
        .collect();
    let t0 = Instant::now();
    let rebuilt = Ruleset::compile(
        patterns
            .iter()
            .map(|(n, p)| (n.as_str(), p.as_str()))
            .collect::<Vec<_>>(),
    )
    .expect("default patterns compile");
    let compile_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(rebuilt.fused_rule_count(), rules.fused_rule_count());

    let mut rows: Vec<Row> = Vec::new();
    for &mtbr in &[0.0f64, 600.0, 2000.0] {
        let mut rng = StdRng::seed_from_u64(0xBE9C + mtbr as u64);
        let corpus: Vec<Vec<u8>> = (0..payloads)
            .map(|_| synth.generate(&mut rng, PAYLOAD_LEN, mtbr))
            .collect();
        let mut i = 0usize;
        let per_rule_ns = time_ns(batches, iters, || {
            let r = rules.scan_per_rule(&corpus[i % payloads]);
            assert!(r.bytes_scanned == PAYLOAD_LEN);
            i += 1;
        });
        let mut report = ScanReport::with_rules(rules.len());
        let mut j = 0usize;
        let fused_ns = time_ns(batches, iters, || {
            rules.scan_into(&corpus[j % payloads], &mut report);
            j += 1;
        });
        println!(
            "  mtbr {mtbr:>6.0}: per-rule {per_rule_ns:>9.0} ns/scan | fused {fused_ns:>7.0} ns/scan | {:.2}x",
            per_rule_ns / fused_ns
        );
        rows.push(Row {
            mtbr,
            per_rule_ns,
            fused_ns,
        });
    }

    let geomean_speedup = (rows
        .iter()
        .map(|r| (r.per_rule_ns / r.fused_ns).ln())
        .sum::<f64>()
        / rows.len() as f64)
        .exp();
    println!(
        "  fused compile: {compile_ms:.1} ms (once per process) | geomean speedup {geomean_speedup:.2}x"
    );

    // Hand-rolled JSON: the offline workspace has no serde_json.
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"mtbr\": {}, \"per_rule_ns\": {:.1}, \"fused_ns\": {:.1}, \"speedup\": {:.3}}}",
                r.mtbr,
                r.per_rule_ns,
                r.fused_ns,
                r.per_rule_ns / r.fused_ns
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ruleset_scan\",\n  \"payload_len\": {PAYLOAD_LEN},\n  \"rules\": {},\n  \"fused_rules\": {},\n  \"fused_states\": {},\n  \"fused_compile_ms\": {compile_ms:.2},\n  \"quick\": {quick},\n  \"geomean_speedup\": {geomean_speedup:.3},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rules.len(),
        rules.fused_rule_count(),
        rules.fused_state_count(),
        row_json.join(",\n")
    );
    if let Some(path) = args.record_path(RECORD) {
        match std::fs::write(path, &json) {
            Ok(()) => println!("  wrote {path}"),
            Err(e) => eprintln!("  could not write {path}: {e}"),
        }
    }

    // Regression gate. Unlike the fleet records this one is wall-clock
    // timing, so the committed absolute ns are machine-specific; what
    // must not regress is the *structure* (every rule still fuses) and
    // the *relative* win (fused vs per-rule speedup). A broken fused path
    // (silent per-rule fallback) collapses the speedup to ~1x and fails.
    if args.check {
        let committed = read_record(RECORD);
        let mut check = RegressionCheck::new();
        check.exact(
            "rules",
            rules.len() as f64,
            json_f64(&committed, "", "rules").unwrap_or(-1.0),
        );
        check.at_least(
            "fused_rules",
            rules.fused_rule_count() as f64,
            json_f64(&committed, "", "fused_rules").unwrap_or(f64::INFINITY),
        );
        check.at_least(
            "geomean_speedup",
            geomean_speedup,
            json_f64(&committed, "", "geomean_speedup").unwrap_or(f64::INFINITY) * 0.5,
        );
        check.finish(RECORD);
    }
}
