//! Figure 7: error-distribution deep dives. (a) FlowMonitor under joint
//! contention with low vs high regex contention levels (MTBR ≤/> 600);
//! (b) FlowStats under memory-only contention with low (≤20%) vs high
//! (>20%) flow-count deviation from training, with and without SLOMO's
//! sensitivity extrapolation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yala_bench::{scaled, write_csv, NOISE_SIGMA};
use yala_core::profiler::{
    bench_counters, cached_workload, mem_bench_contender, regex_bench_contender, MemLevel,
};
use yala_core::{Contender, TrainConfig, YalaModel};
use yala_ml::metrics;
use yala_nf::bench::regex_bench;
use yala_nf::NfKind;
use yala_sim::{CounterSample, NicSpec, Simulator};
use yala_slomo::{default_mem_grid, SlomoModel};
use yala_traffic::TrafficProfile;

fn main() {
    let mut sim = Simulator::with_noise(NicSpec::bluefield2(), NOISE_SIGMA, 71);
    let profile = TrafficProfile::default();
    let n = scaled(20, 60);
    let mut rows = Vec::new();

    // ---- (a) multi-resource, low vs high regex contention ----
    let kind = NfKind::FlowMonitor;
    let target = cached_workload(kind, profile, kind as usize as u64);
    let slomo = SlomoModel::train(&mut sim, &target, &default_mem_grid(), 5);
    let yala = YalaModel::train(&mut sim, kind, &TrainConfig::default());
    let solo = sim.solo(&target).throughput_pps;
    println!("Figure 7(a): FlowMonitor APE under low/high regex contention");
    println!("{:<8} {:>12} {:>12}", "range", "Yala med%", "SLOMO med%");
    let mut rng = StdRng::seed_from_u64(5);
    for (label, lo, hi) in [("low", 100.0, 600.0), ("high", 600.0, 2_400.0)] {
        let (mut ey, mut es) = (Vec::new(), Vec::new());
        for _ in 0..n {
            let level = MemLevel::random(&mut rng);
            let mtbr = rng.gen_range(lo..hi);
            let rate = rng.gen_range(2e5..4e6);
            let truth = sim
                .co_run(&[
                    target.clone(),
                    level.bench(),
                    regex_bench(rate, 1446.0, mtbr),
                ])
                .outcomes[0]
                .throughput_pps;
            let feats = bench_counters(&mut sim, level);
            let rb = regex_bench_contender(&mut sim, rate, 1446.0, mtbr);
            let contenders: Vec<Contender> =
                vec![Contender::memory_only("mem-bench", feats), rb.clone()];
            let agg = CounterSample::aggregate([&feats, &rb.counters]);
            ey.push(metrics::ape(
                truth,
                yala.predict(solo, &profile, &contenders),
            ));
            es.push(metrics::ape(truth, slomo.predict(&agg)));
        }
        println!(
            "{label:<8} {:>12.1} {:>12.1}",
            metrics::median(&ey),
            metrics::median(&es)
        );
        rows.push(format!(
            "a,{label},{:.2},{:.2}",
            metrics::median(&ey),
            metrics::median(&es)
        ));
    }

    // ---- (b) memory-only, flow-count deviation ----
    let kind = NfKind::FlowStats;
    let target = cached_workload(kind, profile, kind as usize as u64);
    let slomo = SlomoModel::train(&mut sim, &target, &default_mem_grid(), 5);
    let yala = YalaModel::train(&mut sim, kind, &TrainConfig::default());
    println!("\nFigure 7(b): FlowStats APE by flow-count deviation from 16K");
    println!(
        "{:<8} {:>10} {:>12} {:>14}",
        "range", "Yala", "SLOMO", "SLOMO w/o ext"
    );
    for (label, lo, hi) in [("low", 12_800u32, 19_200u32), ("high", 20_000, 500_000)] {
        let (mut ey, mut es, mut esx) = (Vec::new(), Vec::new(), Vec::new());
        for i in 0..n {
            let flows = rng.gen_range(lo..=hi);
            let tprofile = TrafficProfile::new(flows, 1500, 600.0);
            let level = MemLevel::random(&mut rng);
            let w = cached_workload(kind, tprofile, i as u64);
            let solo_t = sim.solo(&w).throughput_pps;
            let truth = sim.co_run(&[w, level.bench()]).outcomes[0].throughput_pps;
            let feats = bench_counters(&mut sim, level);
            let contender = mem_bench_contender(&mut sim, level);
            ey.push(metrics::ape(
                truth,
                yala.predict(solo_t, &tprofile, &[contender]),
            ));
            es.push(metrics::ape(
                truth,
                slomo.predict_extrapolated(&feats, solo_t),
            ));
            esx.push(metrics::ape(truth, slomo.predict(&feats)));
        }
        println!(
            "{label:<8} {:>10.1} {:>12.1} {:>14.1}",
            metrics::median(&ey),
            metrics::median(&es),
            metrics::median(&esx)
        );
        rows.push(format!(
            "b,{label},{:.2},{:.2},{:.2}",
            metrics::median(&ey),
            metrics::median(&es),
            metrics::median(&esx)
        ));
    }
    write_csv(
        "fig7_deep_dive",
        "panel,range,yala,slomo,slomo_noext",
        &rows,
    );
}
