//! Figure 2: the multi-resource motivation. (a) single-resource models
//! (memory-only SLOMO, regex-only queueing model) mispredict FlowMonitor
//! under joint memory+regex contention; (b) naive sum/min composition vs
//! pattern-aware composition for synthetic NF1 (RTC) and NF2 (pipeline).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yala_bench::{scaled, write_csv, NOISE_SIGMA};
use yala_core::composition::{compose, compose_min, compose_sum};
use yala_core::profiler::cached_workload;
use yala_ml::metrics;
use yala_nf::bench::{mem_bench, regex_bench, synthetic_nf1, synthetic_nf2};
use yala_nf::NfKind;
use yala_sim::{ExecutionPattern, NicSpec, Simulator, WorkloadSpec};
use yala_slomo::{default_mem_grid, SlomoModel};
use yala_traffic::TrafficProfile;

fn main() {
    let mut sim = Simulator::with_noise(NicSpec::bluefield2(), NOISE_SIGMA, 21);
    let mut rows = Vec::new();

    // ---- (a) single-resource models under multi-resource contention ----
    let kind = NfKind::FlowMonitor;
    let profile = TrafficProfile::default();
    let target = cached_workload(kind, profile, kind as usize as u64);
    let slomo = SlomoModel::train(&mut sim, &target, &default_mem_grid(), 5);
    let mut yala_cfg = yala_core::TrainConfig::default();
    yala_cfg.adaptive.quota = 200;
    let yala = yala_core::YalaModel::train(&mut sim, kind, &yala_cfg);
    let solo = sim.solo(&target).throughput_pps;

    let mut err_mem_only = Vec::new();
    let mut err_regex_only = Vec::new();
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..scaled(30, 100) {
        let level = yala_core::profiler::MemLevel::random(&mut rng);
        let bench_mtbr = rng.gen_range(500.0..2_500.0);
        let rate = rng.gen_range(2e5..4e6);
        let truth = sim
            .co_run(&[
                target.clone(),
                level.bench(),
                regex_bench(rate, 1446.0, bench_mtbr),
            ])
            .outcomes[0]
            .throughput_pps;
        // Memory-only view (SLOMO): sees only mem-bench's counters.
        let mem_feats = yala_core::profiler::bench_counters(&mut sim, level);
        err_mem_only.push(metrics::ape(truth, slomo.predict(&mem_feats)));
        // Regex-only view: Yala's queueing model alone.
        let rb = yala_core::profiler::regex_bench_contender(&mut sim, rate, 1446.0, bench_mtbr);
        let regex_pred = yala
            .per_resource(solo, &profile, std::slice::from_ref(&rb))
            .iter()
            .find(|(k, _)| *k == yala_sim::ResourceKind::Regex)
            .map(|(_, t)| *t)
            .expect("regex model");
        err_regex_only.push(metrics::ape(truth, regex_pred));
    }
    println!("Figure 2(a): single-resource model errors under memory+regex contention");
    println!(
        "  memory-only median {:.1}%  (p95 {:.1}%)",
        metrics::median(&err_mem_only),
        metrics::percentile(&err_mem_only, 95.0)
    );
    println!(
        "  regex-only  median {:.1}%  (p95 {:.1}%)",
        metrics::median(&err_regex_only),
        metrics::percentile(&err_regex_only, 95.0)
    );
    rows.push(format!(
        "a,memory_only,{:.2},{:.2}",
        metrics::median(&err_mem_only),
        metrics::percentile(&err_mem_only, 95.0)
    ));
    rows.push(format!(
        "a,regex_only,{:.2},{:.2}",
        metrics::median(&err_regex_only),
        metrics::percentile(&err_regex_only, 95.0)
    ));

    // ---- (b) composition baselines on synthetic NF1/NF2 ----
    println!("\nFigure 2(b): composition MAPE (%)");
    println!("{:<14} {:>8} {:>8} {:>8}", "NF", "sum", "min", "pattern");
    for (label, nf) in [
        ("NF1-rtc", synthetic_nf1(ExecutionPattern::RunToCompletion)),
        ("NF2-pipeline", synthetic_nf2(ExecutionPattern::Pipeline)),
    ] {
        let (s, m, p) = composition_errors(&mut sim, &nf, scaled(15, 40));
        println!("{label:<14} {s:>8.1} {m:>8.1} {p:>8.1}");
        rows.push(format!("b,{label},{s:.2},{m:.2},{p:.2}"));
    }
    write_csv("fig2_single_resource", "panel,series,v1,v2,v3", &rows);
}

/// Measures per-resource responses with single-resource co-runs, composes
/// them three ways, and returns (sum, min, pattern) MAPEs vs joint truth.
pub fn composition_errors(sim: &mut Simulator, nf: &WorkloadSpec, n: usize) -> (f64, f64, f64) {
    let solo = sim.solo(nf).throughput_pps;
    let mut rng = StdRng::seed_from_u64(17);
    let (mut truths, mut sums, mut mins, mut pats) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for _ in 0..n {
        let level = yala_core::profiler::MemLevel::random(&mut rng);
        let rate = rng.gen_range(2e5..3e6);
        let mtbr = rng.gen_range(500.0..2_500.0);
        let mem = level.bench();
        let rgx = regex_bench(rate, 1446.0, mtbr);
        let mut singles = vec![
            sim.co_run(&[nf.clone(), mem.clone()]).outcomes[0].throughput_pps,
            sim.co_run(&[nf.clone(), rgx.clone()]).outcomes[0].throughput_pps,
        ];
        let mut all = vec![nf.clone(), mem, rgx];
        if nf.uses(yala_sim::ResourceKind::Compression) {
            let cmp = yala_nf::bench::compression_bench(rng.gen_range(2e5..2e6), 1446.0);
            singles.push(sim.co_run(&[nf.clone(), cmp.clone()]).outcomes[0].throughput_pps);
            all.push(cmp);
        }
        let truth = sim.co_run(&all).outcomes[0].throughput_pps;
        truths.push(truth);
        sums.push(compose_sum(solo, &singles));
        mins.push(compose_min(solo, &singles));
        pats.push(compose(nf.pattern, solo, &singles));
    }
    let _ = mem_bench; // referenced for doc clarity
    (
        metrics::mape(&truths, &sums),
        metrics::mape(&truths, &mins),
        metrics::mape(&truths, &pats),
    )
}
