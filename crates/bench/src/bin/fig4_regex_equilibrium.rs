//! Figure 4: throughput of co-running regex-NF and regex-bench as a
//! function of regex-bench's request arrival rate, for four MTBRs of
//! regex-NF. Shows the linear decline to a shared equilibrium (the
//! round-robin signature behind Eq. 1).

use yala_bench::write_csv;
use yala_nf::bench::{regex_bench, regex_nf};
use yala_sim::{NicSpec, Simulator};

fn main() {
    let mut sim = Simulator::new(NicSpec::bluefield2());
    println!("Figure 4: regex-NF vs regex-bench equilibrium (64B requests)");
    let mut rows = Vec::new();
    for mtbr in [194.0, 220.0, 417.0, 628.0] {
        println!("-- regex-NF MTBR = {mtbr} matches/MB --");
        println!(
            "{:>12} {:>14} {:>14}",
            "arrival Mrps", "regex-NF Mpps", "bench Mpps"
        );
        for step in 0..11 {
            let arrival = (step as f64 * 8e6).max(1e5);
            let nf = regex_nf("regex-nf", 64.0, mtbr);
            let bench = regex_bench(arrival, 64.0, mtbr);
            let report = sim.co_run(&[nf, bench]);
            let (t_nf, t_b) = (
                report.outcomes[0].throughput_pps / 1e6,
                report.outcomes[1].throughput_pps / 1e6,
            );
            println!("{:>12.1} {t_nf:>14.2} {t_b:>14.2}", arrival / 1e6);
            rows.push(format!("{mtbr},{arrival},{t_nf:.4},{t_b:.4}"));
        }
    }
    write_csv(
        "fig4_regex_equilibrium",
        "mtbr,arrival_rps,nf_mpps,bench_mpps",
        &rows,
    );
}
