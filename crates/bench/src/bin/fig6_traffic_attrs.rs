//! Figure 6: FlowStats throughput as a function of traffic attributes.
//! (a) vs flow count for three competing working-set sizes (the LLC
//! saturation plateau); (b) normalised throughput vs competing WSS for
//! several packet sizes (header-only NFs are size-insensitive).

use yala_bench::write_csv;
use yala_core::profiler::cached_workload;
use yala_nf::bench::mem_bench;
use yala_nf::NfKind;
use yala_sim::{NicSpec, Simulator};
use yala_traffic::TrafficProfile;

fn main() {
    let mut sim = Simulator::new(NicSpec::bluefield2());
    let mut rows = Vec::new();
    println!("Figure 6(a): FlowStats tput (Mpps) vs flow count, 1500B packets");
    print!("{:>10}", "flows");
    for wss_mb in [0.5f64, 5.0, 10.0] {
        print!(" {:>10}", format!("wss{wss_mb}MB"));
    }
    println!();
    for flows in [
        1_000u32, 5_000, 10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 70_000,
    ] {
        print!("{flows:>10}");
        for wss_mb in [0.5f64, 5.0, 10.0] {
            let w = cached_workload(NfKind::FlowStats, TrafficProfile::new(flows, 1500, 0.0), 3);
            let t = sim.co_run(&[w, mem_bench(1.2e8, wss_mb * 1e6)]).outcomes[0].throughput_pps;
            print!(" {:>10.3}", t / 1e6);
            rows.push(format!("a,{flows},{wss_mb},{t:.0}"));
        }
        println!();
    }
    println!("\nFigure 6(b): normalised tput vs competing WSS, 16K flows");
    print!("{:>10}", "wss MB");
    let sizes = [64u32, 128, 256, 512, 1024];
    for s in sizes {
        print!(" {:>8}", format!("{s}B"));
    }
    println!();
    for wss_mb in [0.5f64, 5.0, 10.0] {
        print!("{wss_mb:>10}");
        for s in sizes {
            let w = cached_workload(NfKind::FlowStats, TrafficProfile::new(16_000, s, 0.0), 3);
            let solo = sim.solo(&w).throughput_pps;
            let t = sim.co_run(&[w, mem_bench(1.2e8, wss_mb * 1e6)]).outcomes[0].throughput_pps;
            print!(" {:>8.3}", t / solo);
            rows.push(format!("b,{wss_mb},{s},{:.4}", t / solo));
        }
        println!();
    }
    write_csv("fig6_traffic_attrs", "panel,x1,x2,value", &rows);
}
