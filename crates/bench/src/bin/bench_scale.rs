//! Records the fleet scale-out run to `BENCH_scale.json`: a 10k-NIC
//! mixed portfolio over a simulated day with sub-second Poisson
//! arrivals (~576k placements), driven end to end through the indexed
//! placement path and the chunked audit fan-out. `--quick` (CI) keeps
//! the same day on 2k NICs (~115k arrivals).
//!
//! The binary sweeps the engine thread count (powers of two up to
//! 2x the machine's cores, always including 4) over the *same*
//! profiled trace and asserts the scale-out contract from both sides:
//!
//! * **determinism** — every sweep run's `FleetReport` serializes to
//!   byte-identical JSON and its event journal compares equal, whatever
//!   the thread count;
//! * **throughput** — events/sec and reservoir-sampled decision-latency
//!   quantiles come from the wall-clock telemetry layer; the 4-thread
//!   speedup over sequential is gated at 3x when the machine actually
//!   has 4 cores (and only sanity-floored when it does not).
//!
//! The committed record separates the two worlds: a `"deterministic"`
//! block (arrival/rejection/violation counts, journal size — hard
//! `--check` gates) and a `"wall"` block (machine-dependent throughput
//! numbers, recorded for the archaeology but never byte-diffed by CI,
//! like `BENCH_rxp.json`).

use std::num::NonZeroUsize;
use std::time::Instant;
use yala_bench::{json_f64, read_record, BenchArgs, RegressionCheck};
use yala_fleet::{
    run_fleet_observed, verify_against, FleetConfig, FleetPolicy, FleetTrace, ProfiledTrace,
    TrafficModel,
};
use yala_telemetry::{Journal, Telemetry};

/// The committed record this binary regenerates (and `--check`s against).
const RECORD: &str = "BENCH_scale.json";

/// Canonical traffic templates: a large fleet still runs a catalog of
/// configurations, which is what lets the profile cache collapse the
/// offline bill from ~10^5 tenants to ~10^2 measurements.
const TEMPLATES: u32 = 64;

/// One thread-sweep measurement row.
struct SweepRow {
    threads: usize,
    run_s: f64,
    events_per_sec: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

fn main() {
    let mut args = BenchArgs::parse();
    let quick = args.quick;
    // A full-scale day journals ~1.3M events — past the journal's 1Mi
    // default bound. Default the cap up so the flagship artifact is
    // lossless; an explicit `--journal-cap` still wins.
    if !quick && args.journal_cap.is_none() {
        args.journal_cap = Some(1 << 22);
    }
    let journal_cap = args.journal_cap.unwrap_or(1 << 20);

    let (nics, interarrival) = if quick { (2_000, 0.75) } else { (10_000, 0.15) };
    let mut cfg = FleetConfig::mixed(77, nics);
    cfg.duration_s = 24 * 3_600;
    cfg.mean_interarrival_s = interarrival; // ~115k quick / ~576k full arrivals
    cfg.mean_lifetime_s = 1_800.0;
    cfg.audit_period_s = 1_800;
    cfg.reprofile_threshold = 0.20;
    cfg.max_flows = 200_000;
    cfg.sla_drop_range = (0.05, 0.15);
    // Jitter well inside the quantization bucket: tenants spread around
    // their template but share its profile-cache key.
    cfg.traffic_model = TrafficModel::Templates {
        count: TEMPLATES,
        jitter: 0.02,
    };

    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "bench_scale: {} NICs, {} h, ~{:.0} arrivals expected, audit every {} s, \
         {} templates, {} core(s){}",
        cfg.nics(),
        cfg.duration_s / 3_600,
        cfg.duration_s as f64 / cfg.mean_interarrival_s,
        cfg.audit_period_s,
        TEMPLATES,
        cores,
        if quick { " [quick]" } else { "" }
    );

    // The flagship telemetry handle observes the profiling build (and,
    // with `--telemetry`, a final flagship run) — the sweep runs below
    // get their own private handles so each measures only itself.
    let mut tel = args.telemetry_handle(77);
    let engine = args.engine();

    let t0 = Instant::now();
    let trace = FleetTrace::generate(cfg);
    let arrivals = trace.records.len();
    let profiled = ProfiledTrace::build_cached_observed(trace, &engine, &mut tel);
    println!(
        "  scenario: {arrivals} arrivals, {} profile snapshots ({} measured, {} cache hits) \
         in {:.1} s",
        profiled.snapshot_count(),
        profiled.stats.misses,
        profiled.stats.hits,
        t0.elapsed().as_secs_f64()
    );

    // Thread sweep: 1, 2, 4, ... up to 2x cores, always including the
    // acceptance point at 4 threads.
    let mut sweep_threads: Vec<usize> = Vec::new();
    let mut n = 1;
    while n <= 2 * cores {
        sweep_threads.push(n);
        n *= 2;
    }
    if !sweep_threads.contains(&4) {
        sweep_threads.push(4);
        sweep_threads.sort_unstable();
    }

    let mut baseline: Option<(String, Journal, u64)> = None;
    let mut rows: Vec<SweepRow> = Vec::new();
    for &threads in &sweep_threads {
        // A fresh wall clock per run (same seed: the reservoir's slot
        // schedule is identical) and a fresh journal at the same cap, so
        // journals from different thread counts are comparable values.
        let mut run_tel = Telemetry::with_wallclock(77);
        if let Some(sink) = run_tel.sink_mut() {
            sink.journal = Journal::with_capacity(journal_cap);
        }
        let t0 = Instant::now();
        let report = run_fleet_observed(
            &profiled,
            FleetPolicy::Greedy,
            "greedy",
            &yala_core::Engine::with_threads(threads),
            &mut run_tel,
        );
        let run_s = t0.elapsed().as_secs_f64();
        let sink = run_tel.sink().expect("sweep telemetry is live");
        let wall = sink.wall.as_ref().expect("sweep wall clock is live");
        let q = |p: f64| wall.decision_quantile(p).unwrap_or(0.0) / 1_000.0;
        rows.push(SweepRow {
            threads,
            run_s,
            events_per_sec: wall.events_per_sec(),
            p50_us: q(0.50),
            p95_us: q(0.95),
            p99_us: q(0.99),
        });
        println!(
            "  threads {threads:>2}: {run_s:>7.2} s, {:>10.0} events/s, decisions p50 {:.1} / \
             p95 {:.1} / p99 {:.1} us",
            wall.events_per_sec(),
            q(0.50),
            q(0.95),
            q(0.99)
        );

        // The determinism contract, asserted in-binary: report bytes and
        // journal equal across every thread count. Only the sequential
        // baseline is kept alive — later journals drop immediately, so
        // peak memory stays ~2 journals however long the sweep is.
        let json = report.to_json();
        let journal = run_tel.sink().expect("sweep telemetry is live");
        match &baseline {
            None => {
                if journal.journal.dropped() == 0 {
                    let replayed = verify_against(&report, &journal.journal)
                        .unwrap_or_else(|e| panic!("journal replay diverged from the report: {e}"));
                    println!(
                        "  journal: {} events replay to the report ({} arrivals) — OK",
                        journal.journal.len(),
                        replayed.arrivals
                    );
                } else {
                    println!(
                        "  journal: {} events, {} dropped at cap {journal_cap} — replay \
                         self-test skipped (raise --journal-cap for a lossless journal)",
                        journal.journal.len(),
                        journal.journal.dropped()
                    );
                }
                baseline = Some((json, journal.journal.clone(), wall.decisions_seen()));
            }
            Some((base_json, base_journal, base_decisions)) => {
                assert_eq!(
                    &json, base_json,
                    "FleetReport must serialize byte-identically at {threads} threads"
                );
                assert_eq!(
                    &journal.journal, base_journal,
                    "event journal must be identical at {threads} threads"
                );
                assert_eq!(
                    wall.decisions_seen(),
                    *base_decisions,
                    "decision count must be identical at {threads} threads"
                );
            }
        }
    }
    let (report_json, base_journal, decisions) = baseline.expect("sweep ran at least once");

    let eps_at = |t: usize| {
        rows.iter()
            .find(|r| r.threads == t)
            .map(|r| r.events_per_sec)
            .unwrap_or(0.0)
    };
    let speedup_at_4 = eps_at(4) / eps_at(1).max(1e-9);
    let best = rows
        .iter()
        .max_by(|a, b| a.events_per_sec.total_cmp(&b.events_per_sec))
        .expect("nonempty sweep");
    println!(
        "  speedup: {speedup_at_4:.2}x at 4 threads vs sequential (best {:.2}x at {} threads)",
        best.events_per_sec / eps_at(1).max(1e-9),
        best.threads
    );

    // With `--telemetry`, one more observed run on the flag-selected
    // engine fills the flagship journal (which also holds the profiling
    // build's events) and writes the deterministic artifacts, plus the
    // report itself — CI byte-compares all of them across `--threads`.
    if tel.sink().is_some() {
        let flagship =
            run_fleet_observed(&profiled, FleetPolicy::Greedy, "greedy", &engine, &mut tel);
        assert_eq!(
            flagship.to_json(),
            report_json,
            "flagship run must match the sweep baseline byte for byte"
        );
        if let Some(base) = &args.telemetry {
            let path = format!("{base}.report.json");
            match std::fs::write(&path, &report_json) {
                Ok(()) => println!("  wrote {path}"),
                Err(e) => eprintln!("  could not write {path}: {e}"),
            }
        }
        args.write_telemetry(&tel);
    }

    let rows_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"threads\": {}, \"run_s\": {:.2}, \"events_per_sec\": {:.0}, \
                 \"decision_p50_us\": {:.1}, \"decision_p95_us\": {:.1}, \
                 \"decision_p99_us\": {:.1}}}",
                r.threads, r.run_s, r.events_per_sec, r.p50_us, r.p95_us, r.p99_us
            )
        })
        .collect();
    let json = format!(
        "{{\n\"bench\": \"scale\",\n\"quick\": {quick},\n\"nics\": {nics},\n\
         \"arrivals\": {arrivals},\n\"duration_s\": 86400,\n\"audit_period_s\": 1800,\n\
         \"seed\": 77,\n\"templates\": {TEMPLATES},\n\
         \"deterministic\": {{\"decisions\": {decisions}, \"journal_events\": {}, \
         \"journal_dropped\": {}, \"profile_measurements\": {}}},\n\
         \"wall\": {{\"machine_cores\": {cores}, \"speedup_at_4\": {speedup_at_4:.2}, \
         \"sweep\": [\n  {}\n]}},\n\"report\": {}\n}}\n",
        base_journal.len(),
        base_journal.dropped(),
        profiled.stats.misses,
        rows_json.join(",\n  "),
        report_json.trim()
    );
    if let Some(path) = args.record_path(RECORD) {
        match std::fs::write(path, &json) {
            Ok(()) => println!("  wrote {path}"),
            Err(e) => eprintln!("  could not write {path}: {e}"),
        }
    }

    // Regression gate. The deterministic block is exact — a mismatch
    // means the committed record describes a different scenario. The
    // speedup gate is honest about hardware: the 3x acceptance bar only
    // means something on a machine with >= 4 real cores; below that it
    // degrades to a sanity floor (oversubscribed threads must not
    // crater throughput).
    if args.check {
        let committed = read_record(RECORD);
        let mut check = RegressionCheck::new();
        let exact = |check: &mut RegressionCheck, key: &str, got: f64| {
            let want = json_f64(&committed, "\"deterministic\"", key).unwrap_or(-1.0);
            check.exact(key, got, want);
        };
        check.exact(
            "arrivals",
            arrivals as f64,
            json_f64(&committed, "", "arrivals").unwrap_or(-1.0),
        );
        exact(&mut check, "decisions", decisions as f64);
        exact(&mut check, "journal_events", base_journal.len() as f64);
        exact(&mut check, "journal_dropped", base_journal.dropped() as f64);
        check.exact(
            "rejected",
            json_f64(&json, "\"report\"", "rejected").unwrap_or(-1.0),
            json_f64(&committed, "\"report\"", "rejected").unwrap_or(-2.0),
        );
        check.exact(
            "violation_minutes",
            json_f64(&json, "\"report\"", "violation_minutes").unwrap_or(-1.0),
            json_f64(&committed, "\"report\"", "violation_minutes").unwrap_or(-2.0),
        );
        if cores >= 4 {
            check.at_least("speedup_at_4", speedup_at_4, 3.0);
        } else {
            check.at_least("speedup_at_4 (oversubscribed sanity)", speedup_at_4, 0.4);
        }
        check.finish(RECORD);
    }
}
