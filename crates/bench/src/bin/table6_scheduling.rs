//! Table 6: contention-aware scheduling. Random sequences of NF arrivals
//! (default traffic, SLAs of 5–20% allowed drop) are placed with four
//! strategies; we report resource wastage vs the oracle plan and
//! ground-truth SLA violations.

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use yala_bench::{scaled, write_csv, Zoo, NOISE_SIGMA};
use yala_core::{Engine, QosClass};
use yala_nf::NfKind;
use yala_placement::{
    place_sequence, prepare_all, Arrival, OraclePredictor, Placed, SlomoPredictor, Strategy,
    YalaPredictor,
};
use yala_sim::NicSpec;
use yala_traffic::TrafficProfile;

fn main() {
    eprintln!("training model zoo for scheduling...");
    let engine = Engine::auto();
    let mut zoo = Zoo::train(&NfKind::TABLE2_NINE, 6);
    let n_sequences = scaled(5, 100);
    let n_arrivals = scaled(60, 500);
    let mut rng = StdRng::seed_from_u64(123);

    let mut totals: Vec<(&str, f64, f64)> = Vec::new(); // (strategy, wastage, violations)
    let mut acc: Vec<(f64, f64)> = vec![(0.0, 0.0); 4];
    for seq in 0..n_sequences {
        // Build one arrival sequence, then profile + solo-measure every
        // arrival across the worker pool (the per-arrival packet replay is
        // the expensive part; scenarios are independent and deterministic).
        let specs: Vec<Arrival> = (0..n_arrivals)
            .map(|_| {
                let kind = *NfKind::TABLE2_NINE.choose(&mut rng).expect("nonempty");
                Arrival {
                    kind,
                    traffic: TrafficProfile::default(),
                    sla_drop: rng.gen_range(0.05..0.20),
                    qos: QosClass::Guaranteed,
                }
            })
            .collect();
        let arrivals: Vec<Placed> = prepare_all(
            &[NicSpec::bluefield2()],
            NOISE_SIGMA,
            &specs,
            (seq * n_arrivals) as u64,
            &engine,
        );
        // Oracle reference plan.
        let mut oracle = OraclePredictor::new(NicSpec::bluefield2());
        let reference = place_sequence(
            &mut zoo.sim,
            &arrivals,
            Strategy::ContentionAware(&mut oracle),
        );
        let ref_nics = reference.nics.len();

        let mono = place_sequence(&mut zoo.sim, &arrivals, Strategy::Monopolization);
        let greedy = place_sequence(&mut zoo.sim, &arrivals, Strategy::Greedy);
        // Predictors borrow the zoo's models immutably, so give the
        // placement run its own ground-truth simulator.
        let mut gt_sim = yala_sim::Simulator::with_noise(
            NicSpec::bluefield2(),
            yala_bench::NOISE_SIGMA,
            seq as u64 + 900,
        );
        let mut slomo_pred = SlomoPredictor::new(zoo.slomo_bank());
        let slomo = place_sequence(
            &mut gt_sim,
            &arrivals,
            Strategy::ContentionAware(&mut slomo_pred),
        );
        let mut yala_pred = YalaPredictor::new(zoo.yala_bank());
        let yala = place_sequence(
            &mut gt_sim,
            &arrivals,
            Strategy::ContentionAware(&mut yala_pred),
        );
        for (i, out) in [&mono, &greedy, &slomo, &yala].iter().enumerate() {
            acc[i].0 += out.wastage_vs(ref_nics) * 100.0;
            acc[i].1 += out.violation_rate() * 100.0;
        }
        eprintln!(
            "  seq {seq}: oracle {} NICs; yala {} NICs / {:.1}% viol; slomo {} / {:.1}%",
            ref_nics,
            yala.nics.len(),
            yala.violation_rate() * 100.0,
            slomo.nics.len(),
            slomo.violation_rate() * 100.0
        );
    }
    let names = ["Monopolization", "Greedy", "SLOMO", "Yala"];
    println!("Table 6: scheduling over {n_sequences} sequences x {n_arrivals} arrivals");
    println!(
        "{:<16} {:>14} {:>16}",
        "Approach", "Wastage (%)", "SLA Viol. (%)"
    );
    let mut rows = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let w = acc[i].0 / n_sequences as f64;
        let v = acc[i].1 / n_sequences as f64;
        println!("{name:<16} {w:>14.1} {v:>16.1}");
        rows.push(format!("{name},{w:.2},{v:.2}"));
        totals.push((name, w, v));
    }
    write_csv(
        "table6_scheduling",
        "strategy,wastage_pct,violations_pct",
        &rows,
    );
}
