//! Records the online-refinement comparison to `BENCH_online.json`:
//! *frozen* (train-once) Yala vs *online* Yala — same offline bank, same
//! drift-heavy scenario — where the online policy feeds every SLA audit's
//! ground-truth co-run outcomes back into its predictor
//! ([`yala_placement::PlacementPredictor::absorb`]) and the frozen policy
//! keeps the paper's train-once setup.
//!
//! The decay is engineered the way it happens in production: the bank is
//! trained while flow counts live below `STALE_FLOW_CEILING`, then the
//! fleet's traffic drifts far beyond it. The stale memory curve
//! extrapolates flat past its training range, predicts ≈solo throughput
//! for badly contended high-flow co-locations, and the frozen policy
//! packs (and fails to migrate) its way into SLA violations. The online
//! policy absorbs the audited outcomes at the drifted operating points
//! and re-fits the affected cells, so its predictions — and therefore its
//! placements and migrations — recover mid-episode.
//!
//! The scenario is deterministic: same seed ⇒ bit-identical
//! `FleetReport`s *and* refinement stream, so the committed JSON is
//! byte-reproducible across runs and engine thread counts (the CI
//! determinism gate diffs a default-engine run against a `--threads`-
//! pinned one). Pass `--quick` (CI) for fewer trained NF kinds and a
//! coarser audit cadence.

use std::time::Instant;
use yala_bench::{json_f64, read_record, BenchArgs, RegressionCheck, NOISE_SIGMA};
use yala_core::adaptive::TrafficRanges;
use yala_core::{ModelBank, TrainConfig};
use yala_fleet::{
    run_fleet, run_fleet_observed, verify_against, Diagnoser, FleetConfig, FleetPolicy, FleetTrace,
    OnlineRefine, ProfiledTrace,
};
use yala_nf::NfKind;
use yala_placement::YalaPredictor;
use yala_sim::NicSpec;

/// The committed record this binary regenerates (and `--check`s against).
const RECORD: &str = "BENCH_online.json";

/// Largest flow count seen while the offline bank was trained; the live
/// fleet drifts to [`DRIFTED_FLOW_CEILING`].
const STALE_FLOW_CEILING: u32 = 48_000;

/// Largest flow count the drift-heavy scenario reaches.
const DRIFTED_FLOW_CEILING: u32 = 300_000;

fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    let engine = args.engine();
    let kinds: Vec<NfKind> = if quick {
        vec![NfKind::FlowStats, NfKind::Acl, NfKind::Nat, NfKind::Nids]
    } else {
        NfKind::TABLE2_NINE.to_vec()
    };

    let mut cfg = FleetConfig::small(97);
    cfg.portfolio = vec![(NicSpec::bluefield2(), 200)];
    cfg.duration_s = 24 * 3_600;
    cfg.mean_interarrival_s = 144.0; // ~600 arrivals over the day
    cfg.mean_lifetime_s = 12_000.0; // long lives: drift has room to bite
    cfg.audit_period_s = if quick { 1_800 } else { 600 };
    cfg.reprofile_threshold = if quick { 0.20 } else { 0.10 };
    cfg.kinds = kinds.clone();
    cfg.max_flows = DRIFTED_FLOW_CEILING;
    cfg.sla_drop_range = (0.05, 0.15);
    let online_knobs = OnlineRefine {
        min_observations: 96,
    };

    println!(
        "bench_online: {} NICs, {} h, audit every {} s, {} NF kinds, \
         trained at ≤{}k flows / drifting to ≤{}k{}",
        cfg.nics(),
        cfg.duration_s / 3_600,
        cfg.audit_period_s,
        kinds.len(),
        STALE_FLOW_CEILING / 1_000,
        DRIFTED_FLOW_CEILING / 1_000,
        if quick { " [quick]" } else { "" }
    );

    // The stale offline bank: adaptive profiling confined to the
    // pre-drift flow regime.
    let t0 = Instant::now();
    let train_cfg = TrainConfig {
        ranges: TrafficRanges {
            flows: (1_000, STALE_FLOW_CEILING),
            ..TrafficRanges::default()
        },
        seed: 6,
        ..TrainConfig::default()
    };
    let bank = ModelBank::train_yala(
        &[NicSpec::bluefield2()],
        NOISE_SIGMA,
        &kinds,
        &train_cfg,
        &engine,
    );
    let train_s = t0.elapsed().as_secs_f64();

    // With `--telemetry` the build and the flagship (yala-online) run
    // are observed; this journal is the one with absorb passes in it.
    let mut tel = args.telemetry_handle(97);

    let t0 = Instant::now();
    let trace = FleetTrace::generate(cfg);
    let arrivals = trace.records.len();
    let profiled = ProfiledTrace::build_observed(trace, &engine, &mut tel);
    let profile_s = t0.elapsed().as_secs_f64();
    println!(
        "  scenario: {arrivals} arrivals, {} profile snapshots \
         (train {train_s:.1} s, profile {profile_s:.1} s)",
        profiled.snapshot_count()
    );

    let t0 = Instant::now();
    let greedy = run_fleet(&profiled, FleetPolicy::Greedy, "greedy", &engine);
    let frozen = {
        let mut predictor = YalaPredictor::new(&bank);
        run_fleet(
            &profiled,
            FleetPolicy::ContentionAware {
                predictor: &mut predictor,
                diagnoser: Diagnoser::Yala(&bank),
                online: None,
                qos_aware: true,
            },
            "yala-frozen",
            &engine,
        )
    };
    let mut online_predictor = YalaPredictor::new(&bank);
    let online = run_fleet_observed(
        &profiled,
        FleetPolicy::ContentionAware {
            predictor: &mut online_predictor,
            diagnoser: Diagnoser::Yala(&bank),
            online: Some(online_knobs),
            qos_aware: true,
        },
        "yala-online",
        &engine,
        &mut tel,
    );
    println!("  policy runs: {:.1} s", t0.elapsed().as_secs_f64());

    // Observability self-test on the refinement-heavy journal.
    if let Some(sink) = tel.sink() {
        let replayed = verify_against(&online, &sink.journal)
            .unwrap_or_else(|e| panic!("journal replay diverged from the yala-online report: {e}"));
        println!(
            "  journal: {} events replay to the yala-online report ({} migrations) — OK",
            sink.journal.len(),
            replayed.migrations
        );
    }
    args.write_telemetry(&tel);

    println!(
        "  {:<16} {:>10} {:>10} {:>10} {:>9} {:>6} {:>9}",
        "policy", "mean NICs", "peak", "NIC-min", "viol-min", "migr", "rejected"
    );
    let reports = [&greedy, &frozen, &online];
    for r in reports {
        println!(
            "  {:<16} {:>10.1} {:>10} {:>10.0} {:>9.0} {:>6} {:>9}",
            r.policy,
            r.mean_nics(),
            r.peak_nics,
            r.nic_minutes,
            r.violation_minutes,
            r.migrations,
            r.rejected,
        );
    }
    println!(
        "  refinement: {} absorb passes, {} observations absorbed",
        online_predictor.refine_passes(),
        online_predictor.absorbed()
    );

    // The acceptance bar: the stale frozen model must actually decay
    // (violations appear), refinement must actually run, and online-Yala
    // must end the day with *strictly* fewer SLA-violation minutes than
    // frozen-Yala. Deterministic scenario: holds always or never.
    assert!(
        frozen.violation_minutes > 0.0,
        "the stale frozen bank should decay under drift"
    );
    assert!(
        online_predictor.refine_passes() > 0 && online_predictor.absorbed() > 0,
        "the online policy must absorb audit observations"
    );
    assert!(
        online.violation_minutes < frozen.violation_minutes,
        "online-Yala ({}) must strictly beat frozen-Yala ({}) on violation minutes",
        online.violation_minutes,
        frozen.violation_minutes
    );
    println!(
        "  dominance: online {:.0} viol-min vs frozen {:.0} ({}x) — OK",
        online.violation_minutes,
        frozen.violation_minutes,
        (frozen.violation_minutes / online.violation_minutes).round()
    );

    let kinds_json: Vec<String> = kinds.iter().map(|k| format!("\"{k}\"")).collect();
    let policies_json: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
    let json = format!(
        "{{\n\"bench\": \"online\",\n\"quick\": {quick},\n\"nics\": {},\n\"arrivals\": {arrivals},\n\
         \"duration_s\": {},\n\"audit_period_s\": {},\n\"seed\": {},\n\"kinds\": [{}],\n\
         \"trained_flow_ceiling\": {STALE_FLOW_CEILING},\n\"drifted_flow_ceiling\": {DRIFTED_FLOW_CEILING},\n\
         \"min_observations\": {},\n\"refine_passes\": {},\n\"absorbed_observations\": {},\n\
         \"profile_snapshots\": {},\n\"profile_cache\": {},\n\"policies\": [\n{}\n]\n}}\n",
        frozen.nics,
        frozen.duration_s,
        frozen.audit_period_s,
        frozen.seed,
        kinds_json.join(", "),
        online_knobs.min_observations,
        online_predictor.refine_passes(),
        online_predictor.absorbed(),
        profiled.snapshot_count(),
        profiled.stats.to_json(),
        policies_json.join(",\n")
    );
    if let Some(path) = args.record_path(RECORD) {
        match std::fs::write(path, &json) {
            Ok(()) => println!("  wrote {path}"),
            Err(e) => eprintln!("  could not write {path}: {e}"),
        }
    }

    // Regression gate against the committed record (see bench_fleet).
    if args.check {
        let committed = read_record(RECORD);
        let mut check = RegressionCheck::new();
        check.exact(
            "arrivals",
            arrivals as f64,
            json_f64(&committed, "", "arrivals").unwrap_or(-1.0),
        );
        let anchor = "\"policy\": \"yala-online\"";
        let key = |k: &str| json_f64(&committed, anchor, k).unwrap_or(-1.0);
        check.no_worse(
            "yala-online.violation_minutes",
            online.violation_minutes,
            key("violation_minutes"),
            0.05,
            1.0,
        );
        check.no_worse(
            "yala-online.nic_minutes",
            online.nic_minutes,
            key("nic_minutes"),
            0.05,
            0.0,
        );
        check.no_worse(
            "yala-online.rejected",
            online.rejected as f64,
            key("rejected"),
            0.0,
            0.0,
        );
        check.finish(RECORD);
    }
}
