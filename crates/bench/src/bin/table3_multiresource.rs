//! Table 3: accuracy under multi-resource contention only (traffic fixed at
//! the default profile). NIDS and FlowMonitor co-run with mem-bench and
//! regex-bench at varying contention levels.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yala_bench::{accuracy, fmt_row, row_header, scaled, write_csv, NOISE_SIGMA};
use yala_core::profiler::cached_workload;
use yala_core::{TrainConfig, YalaModel};
use yala_nf::bench::regex_bench;
use yala_nf::NfKind;
use yala_sim::{CounterSample, NicSpec, Simulator};
use yala_slomo::{default_mem_grid, SlomoModel};
use yala_traffic::TrafficProfile;

fn main() {
    let mut sim = Simulator::with_noise(NicSpec::bluefield2(), NOISE_SIGMA, 3);
    let profile = TrafficProfile::default();
    let n = scaled(25, 90);
    println!("Table 3: multi-resource contention only (default traffic profile)");
    println!("{}", row_header());
    let mut rows = Vec::new();
    for kind in [NfKind::Nids, NfKind::FlowMonitor] {
        let target = cached_workload(kind, profile, kind as usize as u64);
        let slomo = SlomoModel::train(&mut sim, &target, &default_mem_grid(), 5);
        let yala = YalaModel::train_fixed(&mut sim, kind, profile, &TrainConfig::default());
        let solo = sim.solo(&target).throughput_pps;
        let mut rng = StdRng::seed_from_u64(kind as usize as u64 + 60);
        let (mut truths, mut spreds, mut ypreds) = (Vec::new(), Vec::new(), Vec::new());
        for _ in 0..n {
            let level = yala_core::profiler::MemLevel::random(&mut rng);
            let rate = rng.gen_range(2e5..4e6);
            let mtbr = rng.gen_range(300.0..2_500.0);
            let truth = sim
                .co_run(&[
                    target.clone(),
                    level.bench(),
                    regex_bench(rate, 1446.0, mtbr),
                ])
                .outcomes[0]
                .throughput_pps;
            let mem_feats = yala_core::profiler::bench_counters(&mut sim, level);
            let rb = yala_core::profiler::regex_bench_contender(&mut sim, rate, 1446.0, mtbr);
            let contenders = vec![
                yala_core::Contender::memory_only("mem-bench", mem_feats),
                rb.clone(),
            ];
            truths.push(truth);
            // SLOMO sees aggregate counters of both benches (regex-bench's
            // are nearly zero on the memory side).
            let agg = CounterSample::aggregate([&mem_feats, &rb.counters]);
            spreds.push(slomo.predict(&agg));
            ypreds.push(yala.predict(solo, &profile, &contenders));
        }
        let (s, y) = (accuracy(&truths, &spreds), accuracy(&truths, &ypreds));
        println!("{}", fmt_row(kind.name(), s, y));
        rows.push(format!(
            "{},{:.2},{:.1},{:.1},{:.2},{:.1},{:.1}",
            kind.name(),
            s.mape,
            s.acc5,
            s.acc10,
            y.mape,
            y.acc5,
            y.acc10
        ));
    }
    write_csv(
        "table3_multiresource",
        "nf,slomo_mape,slomo_acc5,slomo_acc10,yala_mape,yala_acc5,yala_acc10",
        &rows,
    );
}
