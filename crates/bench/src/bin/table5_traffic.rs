//! Table 5: accuracy under memory-only contention with dynamic traffic
//! profiles — the traffic-awareness deep dive. Each traffic-sensitive NF is
//! co-run with mem-bench across random traffic profiles.

use rand::rngs::StdRng;
use rand::SeedableRng;
use yala_bench::{accuracy, fmt_row, row_header, scaled, write_csv, Zoo};
use yala_core::profiler::{bench_counters, mem_bench_contender, MemLevel};
use yala_nf::NfKind;
use yala_traffic::TrafficProfile;

fn main() {
    eprintln!("training model zoo (7 traffic-sensitive NFs)...");
    let mut zoo = Zoo::train(&NfKind::TRAFFIC_SENSITIVE, 4);
    let n_profiles = scaled(25, 100);
    println!("Table 5: memory-only contention + dynamic traffic profiles");
    println!("{}", row_header());
    let mut rows = Vec::new();
    for kind in NfKind::TRAFFIC_SENSITIVE {
        let mut rng = StdRng::seed_from_u64(kind as usize as u64 + 40);
        let (mut truths, mut spreds, mut ypreds) = (Vec::new(), Vec::new(), Vec::new());
        for _ in 0..n_profiles {
            let profile = TrafficProfile::random(&mut rng, 500_000);
            let level = MemLevel::random(&mut rng);
            let (w, _, solo) = zoo.solo(kind, profile);
            let truth = zoo.sim.co_run(&[w, level.bench()]).outcomes[0].throughput_pps;
            let feats = bench_counters(&mut zoo.sim, level);
            let contender = mem_bench_contender(&mut zoo.sim, level);
            truths.push(truth);
            spreds.push(zoo.slomo(kind).predict_extrapolated(&feats, solo));
            ypreds.push(zoo.yala(kind).predict(solo, &profile, &[contender]));
        }
        let (s, y) = (accuracy(&truths, &spreds), accuracy(&truths, &ypreds));
        println!("{}", fmt_row(kind.name(), s, y));
        rows.push(format!(
            "{},{:.2},{:.1},{:.1},{:.2},{:.1},{:.1}",
            kind.name(),
            s.mape,
            s.acc5,
            s.acc10,
            y.mape,
            y.acc5,
            y.acc10
        ));
    }
    write_csv(
        "table5_traffic",
        "nf,slomo_mape,slomo_acc5,slomo_acc10,yala_mape,yala_acc5,yala_acc10",
        &rows,
    );
}
