//! Table 9: generalisation to another SoC SmartNIC. The Firewall NF runs on
//! the AMD Pensando preset under memory-only contention with dynamic
//! traffic; SLOMO (fixed-profile + extrapolation) vs Yala (traffic-aware).

use rand::rngs::StdRng;
use rand::SeedableRng;
use yala_bench::{accuracy, fmt_row, row_header, scaled, write_csv, NOISE_SIGMA};
use yala_core::profiler::{bench_counters, cached_workload, mem_bench_contender, MemLevel};
use yala_core::{TrainConfig, YalaModel};
use yala_nf::NfKind;
use yala_sim::{NicSpec, Simulator};
use yala_slomo::{default_mem_grid, SlomoModel};
use yala_traffic::TrafficProfile;

fn main() {
    let mut sim = Simulator::with_noise(NicSpec::pensando(), NOISE_SIGMA, 12);
    let kind = NfKind::Firewall;
    eprintln!("training on Pensando...");
    let target = cached_workload(kind, TrafficProfile::default(), kind as usize as u64);
    let slomo = SlomoModel::train(&mut sim, &target, &default_mem_grid(), 5);
    let yala = YalaModel::train(&mut sim, kind, &TrainConfig::default());

    let mut rng = StdRng::seed_from_u64(31);
    let n = scaled(30, 100);
    let (mut truths, mut spreds, mut ypreds) = (Vec::new(), Vec::new(), Vec::new());
    for i in 0..n {
        let profile = TrafficProfile::random(&mut rng, 500_000);
        let level = MemLevel::random(&mut rng);
        let w = cached_workload(kind, profile, i as u64 % 4);
        let solo = sim.solo(&w).throughput_pps;
        let truth = sim.co_run(&[w, level.bench()]).outcomes[0].throughput_pps;
        let feats = bench_counters(&mut sim, level);
        let contender = mem_bench_contender(&mut sim, level);
        truths.push(truth);
        spreds.push(slomo.predict_extrapolated(&feats, solo));
        ypreds.push(yala.predict(solo, &profile, &[contender]));
    }
    let (s, y) = (accuracy(&truths, &spreds), accuracy(&truths, &ypreds));
    println!("Table 9: Pensando generalisation (memory-only + dynamic traffic)");
    println!("{}", row_header());
    println!("{}", fmt_row("firewall", s, y));
    write_csv(
        "table9_pensando",
        "nf,slomo_mape,slomo_acc5,slomo_acc10,yala_mape,yala_acc5,yala_acc10",
        &[format!(
            "firewall,{:.2},{:.1},{:.1},{:.2},{:.1},{:.1}",
            s.mape, s.acc5, s.acc10, y.mape, y.acc5, y.acc10
        )],
    );
}
