//! Figure 1: throughput drop ratios (median / 95%ile / 99%ile) of the nine
//! Table 2 NFs when co-located with up to three other random NFs.

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use yala_bench::{scaled, write_csv};
use yala_core::profiler::cached_workload;
use yala_ml::metrics;
use yala_nf::NfKind;
use yala_sim::{NicSpec, Simulator};
use yala_traffic::TrafficProfile;

fn main() {
    let mut sim = Simulator::with_noise(NicSpec::bluefield2(), yala_bench::NOISE_SIGMA, 1);
    let mut rng = StdRng::seed_from_u64(11);
    let profile = TrafficProfile::default();
    let n_combos = scaled(25, 92);
    println!("Figure 1: throughput drop under co-location (profile: 16K flows, 1500B)");
    println!(
        "{:<16} {:>8} {:>8} {:>8}",
        "NF", "median%", "95%ile", "99%ile"
    );
    let mut rows = Vec::new();
    for target in NfKind::TABLE2_NINE {
        let tw = cached_workload(target, profile, target as usize as u64);
        let solo = sim.solo(&tw).throughput_pps;
        let others: Vec<NfKind> = NfKind::TABLE2_NINE
            .iter()
            .copied()
            .filter(|k| *k != target)
            .collect();
        let mut drops = Vec::new();
        for _ in 0..n_combos {
            let n = rng.gen_range(1..=3usize);
            let mut competitors = others.clone();
            competitors.shuffle(&mut rng);
            let mut workloads = vec![tw.clone()];
            for (i, k) in competitors[..n].iter().enumerate() {
                let mut w = cached_workload(*k, profile, *k as usize as u64);
                w.name = format!("{}-{i}", w.name);
                workloads.push(w);
            }
            let t = sim.co_run(&workloads).outcomes[0].throughput_pps;
            drops.push(((solo - t) / solo * 100.0).max(0.0));
        }
        let (p50, p95, p99) = (
            metrics::median(&drops),
            metrics::percentile(&drops, 95.0),
            metrics::percentile(&drops, 99.0),
        );
        println!("{:<16} {p50:>8.1} {p95:>8.1} {p99:>8.1}", target.name());
        rows.push(format!("{},{p50:.2},{p95:.2},{p99:.2}", target.name()));
    }
    write_csv("fig1_tput_drop", "nf,median,p95,p99", &rows);
}
