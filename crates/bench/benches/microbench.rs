//! Criterion microbenchmarks of the performance-critical substrates:
//! the profiling dataplane (scalar vs batched), the co-run solver, the
//! accelerator water-filling, regex scanning, and GBR training/prediction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use yala_ml::{Dataset, GbrParams, GradientBoostingRegressor};
use yala_nf::bench::{mem_bench, regex_bench, synthetic_nf1};
use yala_nf::runtime::{build_workload_legacy, Profiler};
use yala_nf::NfKind;
use yala_rxp::l7_default_ruleset;
use yala_sim::{accel, ExecutionPattern, NicSpec, Simulator};
use yala_traffic::TrafficProfile;

/// The headline comparison: profiling throughput of the legacy scalar
/// dataplane (owned `Packet` per generated packet, per-byte payload
/// synthesis, fresh tracker per packet) vs the batched zero-allocation
/// dataplane (`PacketBatch` arena + pooled synthesis + `process_batch`).
/// Identical NF logic and cost accounting; only the dataplane differs.
/// A small flow set keeps table warm-up (identical on both sides) from
/// diluting the per-packet comparison.
fn bench_profiling_dataplane(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling");
    group.sample_size(10);
    let packets = 2_048;
    // Header-only NF: the dataplane itself dominates.
    let flowstats = TrafficProfile::new(256, 1024, 0.0);
    group.bench_function("scalar_flowstats_2048pkts", |b| {
        b.iter(|| {
            let mut nf = NfKind::FlowStats.build();
            black_box(build_workload_legacy(nf.as_mut(), flowstats, packets, 1))
        })
    });
    group.bench_function("batched_flowstats_2048pkts", |b| {
        let mut profiler = Profiler::new();
        b.iter(|| {
            let mut nf = NfKind::FlowStats.build();
            black_box(profiler.profile(nf.as_mut(), flowstats, packets, 1))
        })
    });
    // Regex NF: payload scanning (identical on both sides) shrinks the
    // relative gap; reported for completeness.
    let flowmonitor = TrafficProfile::new(256, 1024, 600.0);
    group.bench_function("scalar_flowmonitor_2048pkts", |b| {
        b.iter(|| {
            let mut nf = NfKind::FlowMonitor.build();
            black_box(build_workload_legacy(nf.as_mut(), flowmonitor, packets, 1))
        })
    });
    group.bench_function("batched_flowmonitor_2048pkts", |b| {
        let mut profiler = Profiler::new();
        b.iter(|| {
            let mut nf = NfKind::FlowMonitor.build();
            black_box(profiler.profile(nf.as_mut(), flowmonitor, packets, 1))
        })
    });
    group.finish();
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(20);
    group.bench_function("co_run_4way", |b| {
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let workloads = vec![
            synthetic_nf1(ExecutionPattern::RunToCompletion),
            mem_bench(1.2e8, 8e6),
            regex_bench(1e6, 1446.0, 800.0),
        ];
        b.iter(|| black_box(sim.co_run(&workloads)));
    });
    group.finish();
}

fn bench_waterfill(c: &mut Criterion) {
    c.bench_function("accel_waterfill_8users", |b| {
        let inputs: Vec<accel::AccelInput> = (0..8)
            .map(|i| accel::AccelInput {
                queues: 1 + (i % 3) as u32,
                service_s: 1e-7 * (1 + i) as f64,
                offered_rps: 1e5 * (1 + i) as f64,
            })
            .collect();
        b.iter(|| black_box(accel::solve(&inputs)));
    });
}

/// Per-rule baseline (12 DFA passes per payload) vs the fused
/// multi-pattern DFA (one pass) on a representative 1500 B payload with
/// planted matches. The fused path is what every regex NF now runs.
fn bench_regex_scan(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yala_rxp::ScanReport;
    use yala_traffic::PayloadSynthesizer;

    let rules = l7_default_ruleset();
    let synth = PayloadSynthesizer::new();
    let mut rng = StdRng::seed_from_u64(0x5CA9);
    let payload = synth.generate(&mut rng, 1500, 600.0);
    let mut group = c.benchmark_group("ruleset_scan");
    group.bench_function("per_rule_1500B", |b| {
        b.iter(|| black_box(rules.scan_per_rule(&payload)));
    });
    group.bench_function("fused_1500B", |b| {
        let mut report = ScanReport::with_rules(rules.len());
        b.iter(|| {
            rules.scan_into(&payload, &mut report);
            black_box(report.total_matches)
        });
    });
    group.finish();
}

fn bench_gbr(c: &mut Criterion) {
    let mut ds = Dataset::new(10);
    let mut x = 0.37f64;
    for i in 0..200 {
        let mut row = [0.0; 10];
        for slot in row.iter_mut() {
            x = (x * 997.0).fract();
            *slot = x;
        }
        ds.push(&row, (i as f64).sin() + row[0]);
    }
    let mut group = c.benchmark_group("gbr");
    group.sample_size(10);
    group.bench_function("fit_200x10", |b| {
        b.iter(|| {
            black_box(GradientBoostingRegressor::fit(
                &ds,
                &GbrParams::default(),
                1,
            ))
        });
    });
    let model = GradientBoostingRegressor::fit(&ds, &GbrParams::default(), 1);
    group.bench_function("predict", |b| {
        b.iter(|| black_box(model.predict(&[0.5; 10])));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_profiling_dataplane,
    bench_solver,
    bench_waterfill,
    bench_regex_scan,
    bench_gbr
);
criterion_main!(benches);
