//! # yala-serve — the placement daemon behind `yalad`
//!
//! Everything else in this workspace *simulates* an operator fleet; this
//! crate *is* the operator-facing service. [`ServeLoop`] is a persistent,
//! single-threaded-deterministic request loop: NF arrivals, departures,
//! traffic drift, NIC faults, and audit observations arrive as
//! length-delimited JSONL messages (one object per line, the same flat
//! grammar as the [`yala_telemetry`] journal), placement queries are
//! answered from the shared [`yala_core::ProfileCache`] plus the trained
//! predictor, and audit ground truth is absorbed online through the
//! refinable banks — the paper's prediction pipeline kept warm at
//! production request rates instead of replayed offline.
//!
//! Determinism is the contract. The loop owns no clock and no I/O; every
//! response is a pure function of the construction seed and the message
//! sequence so far. Checkpointing exploits that: a [`ServeLoop::snapshot`]
//! is the counters plus the verbatim log of mutating messages, and
//! [`ServeLoop::restore`] re-drives the log through a freshly built loop —
//! kill → restore → continue is bit-identical to never having stopped
//! (asserted in this crate's tests and in CI's `serve-smoke` job). The
//! fleet-simulation replay path (`yalad --replay`) uses the richer
//! [`yala_fleet::snapshot_fleet`] format instead; both are versioned.
//!
//! ## Wire format (version [`SERVE_WIRE_VERSION`])
//!
//! Requests: `{"op":"place","id":7,"kind":"nat","qos":"guaranteed",`
//! `"flows":50000,"psize":512,"mtbr":0.0,"sla_drop":0.1}` and friends
//! (`depart`, `drift`, `fault`, `observe`, `absorb`, `query`, `stats`,
//! `hello`, `shutdown`). Responses always carry `"ok"` and echo `"op"`.
//! See DESIGN.md, "Serving placement", for the full field tables.

use std::collections::BTreeMap;

use yala_core::{
    Engine, ModelBank, ObservationBuffer, ProfileCache, ProfileKey, QosClass, TrafficKey,
    TrainConfig,
};
use yala_fleet::{read_observation, FleetConfig};
use yala_nf::NfKind;
use yala_placement::{
    measure_entry, placed_from_entry, sims_for, Arrival, Placed, PlacementPredictor, YalaPredictor,
};
use yala_sim::NicModelId;
use yala_telemetry::journal::{parse_line, RawEvent};
use yala_traffic::TrafficProfile;

/// Version stamp of the request/response line protocol and of the serve
/// snapshot header. Bumped on any incompatible change.
pub const SERVE_WIRE_VERSION: i64 = 1;

/// Salt decorrelating the daemon's profiling simulators from every other
/// stream derived from the scenario seed (cf. `TIMELINE_SALT` in
/// `yala-fleet`): the serve path must not replay the offline timeline's
/// measurement noise byte-for-byte, or cache collisions would silently
/// alias the two.
const SERVE_SALT: u64 = 0x5E12_E5A1;

/// Placement rule the daemon serves with. The names double as the wire
/// and CLI spelling (`--policy greedy`).
enum ServePolicy {
    /// One NF per NIC, prediction-free.
    Mono,
    /// Most-free-cores first, prediction-free.
    Greedy,
    /// Contention-aware: a candidate NIC is accepted only if the trained
    /// predictor foresees every resident (the newcomer included) above
    /// its SLA floor. With `online`, absorbed audit observations refine
    /// the predictor's bank between requests.
    Yala {
        predictor: YalaPredictor,
        online: bool,
    },
}

impl ServePolicy {
    fn name(&self) -> &'static str {
        match self {
            ServePolicy::Mono => "mono",
            ServePolicy::Greedy => "greedy",
            ServePolicy::Yala { online: false, .. } => "yala",
            ServePolicy::Yala { online: true, .. } => "yala-online",
        }
    }
}

/// Monotonic request counters, reported by `stats` and carried verbatim
/// through snapshots (queries are not logged, so replay alone cannot
/// reconstruct them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Counters {
    admissions: u64,
    rejections: u64,
    departures: u64,
    queries: u64,
    observations: u64,
    absorb_passes: u64,
    absorbed: u64,
    evictions: u64,
    sheds: u64,
}

/// A placed NF instance: where it lives (if admitted) and its profiled
/// placement record.
struct Instance {
    nic: Option<usize>,
    placed: Placed,
}

/// The daemon state machine. See the crate docs for the contract; see
/// [`ServeLoop::handle_line`] for the dispatch table.
pub struct ServeLoop {
    cfg: FleetConfig,
    nic_model: Vec<NicModelId>,
    nic_cores: Vec<u32>,
    up: Vec<bool>,
    used: Vec<u32>,
    residents: Vec<Vec<u32>>,
    instances: BTreeMap<u32, Instance>,
    policy: ServePolicy,
    cache: ProfileCache,
    pending: ObservationBuffer,
    counters: Counters,
    /// Verbatim mutating request lines, in arrival order — the replay
    /// half of a snapshot.
    log: Vec<String>,
    shutdown: bool,
}

impl ServeLoop {
    /// Builds a daemon for `cfg`'s portfolio serving with `policy_name`
    /// (`mono` | `greedy` | `yala` | `yala-online`). The yala policies
    /// train their bank here, once, from `cfg.kinds` — construction cost,
    /// not request-path cost.
    pub fn new(cfg: &FleetConfig, policy_name: &str, engine: &Engine) -> Result<Self, String> {
        let specs = cfg.specs();
        let mut nic_model = Vec::new();
        let mut nic_cores = Vec::new();
        for (spec, count) in &cfg.portfolio {
            for _ in 0..*count {
                nic_model.push(spec.model());
                nic_cores.push(spec.cores);
            }
        }
        if nic_model.is_empty() {
            return Err("empty NIC portfolio".to_string());
        }
        let policy = match policy_name {
            "mono" => ServePolicy::Mono,
            "greedy" => ServePolicy::Greedy,
            "yala" | "yala-online" => {
                let train = TrainConfig {
                    seed: cfg.seed,
                    ..TrainConfig::default()
                };
                let bank =
                    ModelBank::train_yala(&specs, cfg.noise_sigma, &cfg.kinds, &train, engine);
                ServePolicy::Yala {
                    predictor: YalaPredictor::new(&bank),
                    online: policy_name == "yala-online",
                }
            }
            other => return Err(format!("unknown policy {other}")),
        };
        let nics = nic_model.len();
        Ok(Self {
            cfg: cfg.clone(),
            nic_model,
            nic_cores,
            up: vec![true; nics],
            used: vec![0; nics],
            residents: vec![Vec::new(); nics],
            instances: BTreeMap::new(),
            policy,
            cache: ProfileCache::new(),
            pending: ObservationBuffer::new(),
            counters: Counters::default(),
            log: Vec::new(),
            shutdown: false,
        })
    }

    /// Whether a `shutdown` request has been served. The driving loop
    /// exits when this turns true.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    /// The greeting the daemon prints on startup — also the first line a
    /// replaying client should expect.
    pub fn hello(&self) -> String {
        format!(
            "{{\"ok\":true,\"op\":\"hello\",\"yala_serve\":{SERVE_WIRE_VERSION},\
             \"policy\":\"{}\",\"nics\":{},\"seed\":\"{}\"}}",
            self.policy.name(),
            self.nic_model.len(),
            self.cfg.seed
        )
    }

    /// Serves one request line and returns the one response line. Never
    /// panics on wire input: malformed lines get `{"ok":false,...}`.
    pub fn handle_line(&mut self, line: &str, engine: &Engine) -> String {
        let Some(ev) = parse_line(line) else {
            return err_line("unparseable request line");
        };
        let Some(op) = ev.str("op").map(str::to_string) else {
            return err_line("missing op field");
        };
        let result = match op.as_str() {
            "hello" => Ok(self.hello()),
            "place" => self
                .op_place(&ev)
                .inspect(|_| self.log.push(line.to_string())),
            "depart" => self
                .op_depart(&ev)
                .inspect(|_| self.log.push(line.to_string())),
            "drift" => self
                .op_drift(&ev)
                .inspect(|_| self.log.push(line.to_string())),
            "fault" => self
                .op_fault(&ev)
                .inspect(|_| self.log.push(line.to_string())),
            "observe" => self
                .op_observe(&ev)
                .inspect(|_| self.log.push(line.to_string())),
            "absorb" => self
                .op_absorb(engine)
                .inspect(|_| self.log.push(line.to_string())),
            "query" => self.op_query(&ev),
            "stats" => Ok(self.op_stats()),
            "shutdown" => {
                self.shutdown = true;
                Ok("{\"ok\":true,\"op\":\"shutdown\"}".to_string())
            }
            other => Err(format!("unknown op {other}")),
        };
        result.unwrap_or_else(|e| err_line(&e))
    }

    fn arrival_from(&self, ev: &RawEvent) -> Result<Arrival, String> {
        let kind_name = need_str(ev, "kind")?;
        let kind =
            NfKind::from_name(kind_name).ok_or_else(|| format!("unknown NF kind {kind_name}"))?;
        let qos = match ev.str("qos") {
            None => QosClass::Guaranteed,
            Some("guaranteed") => QosClass::Guaranteed,
            Some("best_effort") => QosClass::BestEffort,
            Some(other) => return Err(format!("unknown qos class {other}")),
        };
        let sla_drop = need_num(ev, "sla_drop")?;
        if !(0.0..1.0).contains(&sla_drop) {
            return Err(format!("sla_drop {sla_drop} outside [0,1)"));
        }
        Ok(Arrival {
            kind,
            traffic: traffic_from(ev)?,
            sla_drop,
            qos,
        })
    }

    /// Profiles (through the cache) and materializes the placement record
    /// for one instance, mirroring the timeline convention: per-instance
    /// workload seed, salted simulator stream.
    fn profile(&self, id: u32, arrival: Arrival) -> Placed {
        let specs = self.cfg.specs();
        let workload_seed = self.cfg.seed.wrapping_add(id as u64);
        let key = ProfileKey {
            kind: arrival.kind,
            traffic: TrafficKey::exact(&arrival.traffic),
            seed: workload_seed,
        };
        let entry = self.cache.get_or_measure(&key, || {
            let mut sims = sims_for(
                &specs,
                arrival.kind,
                self.cfg.noise_sigma,
                self.cfg.seed ^ SERVE_SALT,
                id as usize,
            );
            measure_entry(&mut sims, arrival.kind, arrival.traffic, workload_seed)
        });
        let name = format!("nf{id}");
        placed_from_entry(&entry, arrival, Some(&name))
    }

    /// The placement decision: candidate NICs that fit, ordered
    /// most-free-cores-first (ties to the lowest index), filtered by the
    /// policy. Deterministic by construction.
    fn choose_nic(&mut self, placed: &Placed) -> Option<usize> {
        let cores = placed.workload.cores;
        let mut order: Vec<usize> = (0..self.nic_model.len())
            .filter(|&n| {
                self.up[n]
                    && placed.supported_on(self.nic_model[n])
                    && self.used[n] + cores <= self.nic_cores[n]
            })
            .collect();
        order.sort_by(|&a, &b| {
            let fa = self.nic_cores[a] - self.used[a];
            let fb = self.nic_cores[b] - self.used[b];
            fb.cmp(&fa).then(a.cmp(&b))
        });
        match &mut self.policy {
            ServePolicy::Mono => order.into_iter().find(|&n| self.residents[n].is_empty()),
            ServePolicy::Greedy => order.first().copied(),
            ServePolicy::Yala { predictor, .. } => {
                let residents = &self.residents;
                let instances = &self.instances;
                let models = &self.nic_model;
                order.into_iter().find(|&n| {
                    if residents[n].is_empty() {
                        return true;
                    }
                    let mut cand: Vec<Placed> = residents[n]
                        .iter()
                        .map(|id| instances[id].placed.clone())
                        .collect();
                    cand.push(placed.clone());
                    (0..cand.len()).all(|i| {
                        predictor.predict(models[n], i, &cand) >= cand[i].sla_floor(models[n])
                    })
                })
            }
        }
    }

    fn op_place(&mut self, ev: &RawEvent) -> Result<String, String> {
        let id = need_id(ev)?;
        if self.instances.contains_key(&id) {
            return Err(format!("instance {id} already exists"));
        }
        let arrival = self.arrival_from(ev)?;
        let placed = self.profile(id, arrival);
        let nic = self.choose_nic(&placed);
        match nic {
            Some(n) => {
                self.used[n] += placed.workload.cores;
                self.residents[n].push(id);
                self.counters.admissions += 1;
                self.instances.insert(
                    id,
                    Instance {
                        nic: Some(n),
                        placed,
                    },
                );
                Ok(format!(
                    "{{\"ok\":true,\"op\":\"place\",\"id\":{id},\"nic\":{n}}}"
                ))
            }
            None => {
                self.counters.rejections += 1;
                Ok(format!(
                    "{{\"ok\":true,\"op\":\"place\",\"id\":{id},\"nic\":-1}}"
                ))
            }
        }
    }

    fn op_query(&mut self, ev: &RawEvent) -> Result<String, String> {
        let arrival = self.arrival_from(ev)?;
        // Queries share the cache under a reserved pseudo-instance id so
        // repeated queries are cheap and, crucially, never perturb any
        // real instance's measurement stream.
        let placed = self.profile(u32::MAX, arrival);
        let nic = self.choose_nic(&placed);
        self.counters.queries += 1;
        let n = nic.map(|n| n as i64).unwrap_or(-1);
        Ok(format!("{{\"ok\":true,\"op\":\"query\",\"nic\":{n}}}"))
    }

    fn evict(&mut self, id: u32) -> Option<usize> {
        let inst = self.instances.get_mut(&id)?;
        let nic = inst.nic.take()?;
        self.used[nic] -= inst.placed.workload.cores;
        self.residents[nic].retain(|&r| r != id);
        Some(nic)
    }

    fn op_depart(&mut self, ev: &RawEvent) -> Result<String, String> {
        let id = need_id(ev)?;
        if !self.instances.contains_key(&id) {
            return Err(format!("no instance {id}"));
        }
        let nic = self.evict(id).map(|n| n as i64).unwrap_or(-1);
        self.instances.remove(&id);
        self.counters.departures += 1;
        Ok(format!(
            "{{\"ok\":true,\"op\":\"depart\",\"id\":{id},\"nic\":{nic}}}"
        ))
    }

    fn op_drift(&mut self, ev: &RawEvent) -> Result<String, String> {
        let id = need_id(ev)?;
        let old = self
            .instances
            .get(&id)
            .ok_or_else(|| format!("no instance {id}"))?;
        let arrival = Arrival {
            traffic: traffic_from(ev)?,
            ..old.placed.arrival
        };
        let nic = old.nic;
        let fresh = self.profile(id, arrival);
        // Drift re-profiles in place: the instance keeps its NIC (the
        // serve loop has no migration budget of its own — an operator
        // departs and re-places to move one), only the accounting moves.
        if let Some(n) = nic {
            let inst = self.instances.get_mut(&id).expect("checked above");
            self.used[n] -= inst.placed.workload.cores;
            self.used[n] += fresh.workload.cores;
            inst.placed = fresh;
        } else {
            self.instances.get_mut(&id).expect("checked above").placed = fresh;
        }
        let n = nic.map(|n| n as i64).unwrap_or(-1);
        Ok(format!(
            "{{\"ok\":true,\"op\":\"drift\",\"id\":{id},\"nic\":{n}}}"
        ))
    }

    fn op_fault(&mut self, ev: &RawEvent) -> Result<String, String> {
        let nic = need_int(ev, "nic")? as usize;
        if nic >= self.nic_model.len() {
            return Err(format!("nic {nic} out of range"));
        }
        match need_str(ev, "kind")? {
            "recover" => {
                self.up[nic] = true;
                Ok(format!(
                    "{{\"ok\":true,\"op\":\"fault\",\"nic\":{nic},\"kind\":\"recover\"}}"
                ))
            }
            "fail" => {
                self.up[nic] = false;
                // Evacuate in ascending instance id — deterministic, and
                // guaranteed tenants (lower contention floors aside) get
                // no special order here: the serve loop is a placement
                // service, not the fleet simulator's QoS machinery.
                let ids: Vec<u32> = self.residents[nic].clone();
                let mut evicted = 0u64;
                let mut replaced = 0u64;
                let mut shed = 0u64;
                let mut sorted = ids;
                sorted.sort_unstable();
                for id in sorted {
                    self.evict(id);
                    evicted += 1;
                    let placed = self.instances[&id].placed.clone();
                    match self.choose_nic(&placed) {
                        Some(n) => {
                            self.used[n] += placed.workload.cores;
                            self.residents[n].push(id);
                            self.instances.get_mut(&id).expect("resident").nic = Some(n);
                            replaced += 1;
                        }
                        None => {
                            self.instances.remove(&id);
                            self.counters.sheds += 1;
                            shed += 1;
                        }
                    }
                }
                self.counters.evictions += evicted;
                Ok(format!(
                    "{{\"ok\":true,\"op\":\"fault\",\"nic\":{nic},\"kind\":\"fail\",\
                     \"evicted\":{evicted},\"replaced\":{replaced},\"shed\":{shed}}}"
                ))
            }
            other => Err(format!("unknown fault kind {other}")),
        }
    }

    fn op_observe(&mut self, ev: &RawEvent) -> Result<String, String> {
        let obs = read_observation(ev, 0).map_err(|e| format!("bad observation: {e}"))?;
        self.pending.push(obs);
        self.counters.observations += 1;
        Ok(format!(
            "{{\"ok\":true,\"op\":\"observe\",\"pending\":{}}}",
            self.pending.len()
        ))
    }

    fn op_absorb(&mut self, engine: &Engine) -> Result<String, String> {
        let absorbed = match &mut self.policy {
            ServePolicy::Yala {
                predictor,
                online: true,
            } if !self.pending.is_empty() => {
                let n = predictor.absorb(&self.pending, engine) as u64;
                self.pending.clear();
                n
            }
            _ => 0,
        };
        if absorbed > 0 {
            self.counters.absorb_passes += 1;
            self.counters.absorbed += absorbed;
        }
        Ok(format!(
            "{{\"ok\":true,\"op\":\"absorb\",\"absorbed\":{absorbed},\"passes\":{}}}",
            self.counters.absorb_passes
        ))
    }

    fn op_stats(&mut self) -> String {
        let c = &self.counters;
        let active = self.instances.len();
        let nics_up = self.up.iter().filter(|&&u| u).count();
        format!(
            "{{\"ok\":true,\"op\":\"stats\",\"admissions\":{},\"rejections\":{},\
             \"departures\":{},\"queries\":{},\"observations\":{},\"absorb_passes\":{},\
             \"absorbed\":{},\"evictions\":{},\"sheds\":{},\"active\":{active},\
             \"nics_up\":{nics_up},\"pending\":{}}}",
            c.admissions,
            c.rejections,
            c.departures,
            c.queries,
            c.observations,
            c.absorb_passes,
            c.absorbed,
            c.evictions,
            c.sheds,
            self.pending.len()
        )
    }

    /// Serializes the loop to a versioned snapshot: one header line
    /// carrying the identity (seed, policy, portfolio width) and every
    /// counter, then the verbatim log of mutating request lines. Restoring
    /// re-drives the log — the same restore-by-replay strategy the fleet
    /// snapshot uses for refined predictor state, applied to the whole
    /// daemon.
    pub fn snapshot(&self) -> String {
        let c = &self.counters;
        let mut out = format!(
            "{{\"yala_serve_snapshot\":{SERVE_WIRE_VERSION},\"seed\":\"{}\",\
             \"policy\":\"{}\",\"nics\":{},\"admissions\":{},\"rejections\":{},\
             \"departures\":{},\"queries\":{},\"observations\":{},\"absorb_passes\":{},\
             \"absorbed\":{},\"evictions\":{},\"sheds\":{},\"log\":{}}}\n",
            self.cfg.seed,
            self.policy.name(),
            self.nic_model.len(),
            c.admissions,
            c.rejections,
            c.departures,
            c.queries,
            c.observations,
            c.absorb_passes,
            c.absorbed,
            c.evictions,
            c.sheds,
            self.log.len()
        );
        for line in &self.log {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Rebuilds a daemon from [`ServeLoop::snapshot`] text. `cfg` and
    /// `policy_name` must match the snapshotting daemon's — the header is
    /// cross-checked and a mismatch is an error, not a silent divergence.
    pub fn restore(
        cfg: &FleetConfig,
        policy_name: &str,
        engine: &Engine,
        text: &str,
    ) -> Result<Self, String> {
        let mut lines = text.lines();
        let header_line = lines.next().ok_or("empty snapshot")?;
        let header = parse_line(header_line).ok_or("unparseable snapshot header")?;
        let version = header
            .int("yala_serve_snapshot")
            .ok_or("missing yala_serve_snapshot version")?;
        if version != SERVE_WIRE_VERSION {
            return Err(format!("unsupported snapshot version {version}"));
        }
        if header.str("seed") != Some(&cfg.seed.to_string()) {
            return Err("snapshot seed does not match config".to_string());
        }
        if header.str("policy") != Some(policy_name) {
            return Err(format!(
                "snapshot policy {:?} != {policy_name:?}",
                header.str("policy").unwrap_or("<missing>")
            ));
        }
        let mut loop_ = ServeLoop::new(cfg, policy_name, engine)?;
        if header.int("nics") != Some(loop_.nic_model.len() as i64) {
            return Err("snapshot NIC count does not match config".to_string());
        }
        let promised = header.int("log").ok_or("missing log length")? as usize;
        let mut replayed = 0usize;
        for line in lines {
            let resp = loop_.handle_line(line, engine);
            if !resp.starts_with("{\"ok\":true") {
                return Err(format!("snapshot log replay failed: {resp}"));
            }
            replayed += 1;
        }
        if replayed != promised {
            return Err(format!(
                "snapshot log promised {promised} lines, found {replayed}"
            ));
        }
        // Queries are unlogged; pull every counter from the header so
        // post-restore `stats` is bit-identical to the uninterrupted run.
        let get = |k: &str| -> Result<u64, String> {
            header
                .int(k)
                .map(|v| v as u64)
                .ok_or_else(|| format!("missing counter {k}"))
        };
        loop_.counters = Counters {
            admissions: get("admissions")?,
            rejections: get("rejections")?,
            departures: get("departures")?,
            queries: get("queries")?,
            observations: get("observations")?,
            absorb_passes: get("absorb_passes")?,
            absorbed: get("absorbed")?,
            evictions: get("evictions")?,
            sheds: get("sheds")?,
        };
        Ok(loop_)
    }
}

fn err_line(msg: &str) -> String {
    // The wire grammar has no escapes; keep error text quote-free.
    let clean: String = msg.chars().filter(|&c| c != '"' && c != '\\').collect();
    format!("{{\"ok\":false,\"error\":\"{clean}\"}}")
}

fn need_str<'a>(ev: &'a RawEvent, key: &str) -> Result<&'a str, String> {
    ev.str(key).ok_or_else(|| format!("missing field {key}"))
}

fn need_int(ev: &RawEvent, key: &str) -> Result<i64, String> {
    let v = ev.int(key).ok_or_else(|| format!("missing field {key}"))?;
    if v < 0 {
        return Err(format!("field {key} must be non-negative"));
    }
    Ok(v)
}

fn need_num(ev: &RawEvent, key: &str) -> Result<f64, String> {
    ev.num(key).ok_or_else(|| format!("missing field {key}"))
}

fn need_id(ev: &RawEvent) -> Result<u32, String> {
    let id = need_int(ev, "id")?;
    u32::try_from(id)
        .ok()
        .filter(|&v| v != u32::MAX)
        .ok_or_else(|| format!("id {id} out of range"))
}

fn traffic_from(ev: &RawEvent) -> Result<TrafficProfile, String> {
    Ok(TrafficProfile {
        flow_count: need_int(ev, "flows")? as u32,
        packet_size: need_int(ev, "psize")? as u32,
        mtbr: need_num(ev, "mtbr")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> FleetConfig {
        let mut c = FleetConfig::small(seed);
        c.portfolio = vec![(yala_sim::NicSpec::bluefield2(), 4)];
        c.kinds = vec![NfKind::FlowStats, NfKind::Nat];
        c
    }

    fn place(id: u32, kind: &str, flows: u32) -> String {
        format!(
            "{{\"op\":\"place\",\"id\":{id},\"kind\":\"{kind}\",\"qos\":\"guaranteed\",\
             \"flows\":{flows},\"psize\":512,\"mtbr\":0.0,\"sla_drop\":0.1}}"
        )
    }

    #[test]
    fn greedy_serves_and_is_deterministic() {
        let engine = Engine::sequential();
        let c = cfg(7);
        let msgs: Vec<String> = vec![
            place(1, "nat", 20_000),
            place(2, "flowstats", 40_000),
            "{\"op\":\"query\",\"kind\":\"nat\",\"flows\":8000,\"psize\":256,\
             \"mtbr\":0.0,\"sla_drop\":0.1}"
                .to_string(),
            place(3, "nat", 60_000),
            "{\"op\":\"depart\",\"id\":2}".to_string(),
            "{\"op\":\"fault\",\"nic\":0,\"kind\":\"fail\"}".to_string(),
            "{\"op\":\"fault\",\"nic\":0,\"kind\":\"recover\"}".to_string(),
            "{\"op\":\"stats\"}".to_string(),
        ];
        let drive = || {
            let mut s = ServeLoop::new(&c, "greedy", &engine).expect("build");
            msgs.iter()
                .map(|m| s.handle_line(m, &engine))
                .collect::<Vec<_>>()
        };
        let a = drive();
        let b = drive();
        assert_eq!(a, b, "same messages must produce identical responses");
        assert!(a.iter().all(|r| r.starts_with("{\"ok\":true")), "{a:?}");
        // Three placements, one departure, one failover: stats add up.
        let stats = a.last().expect("stats response");
        assert!(stats.contains("\"admissions\":3"), "{stats}");
        assert!(stats.contains("\"departures\":1"), "{stats}");
        assert!(stats.contains("\"queries\":1"), "{stats}");
        assert!(stats.contains("\"nics_up\":4"), "{stats}");
    }

    #[test]
    fn mono_refuses_to_share_and_rejects_when_full() {
        let engine = Engine::sequential();
        let mut c = cfg(9);
        c.portfolio = vec![(yala_sim::NicSpec::bluefield2(), 2)];
        let mut s = ServeLoop::new(&c, "mono", &engine).expect("build");
        let r1 = s.handle_line(&place(1, "nat", 10_000), &engine);
        let r2 = s.handle_line(&place(2, "nat", 10_000), &engine);
        let r3 = s.handle_line(&place(3, "nat", 10_000), &engine);
        assert!(r1.contains("\"nic\":0"), "{r1}");
        assert!(r2.contains("\"nic\":1"), "{r2}");
        assert!(
            r3.contains("\"nic\":-1"),
            "full mono fleet must reject: {r3}"
        );
    }

    #[test]
    fn malformed_requests_get_errors_not_panics() {
        let engine = Engine::sequential();
        let mut s = ServeLoop::new(&cfg(11), "greedy", &engine).expect("build");
        for bad in [
            "not json at all",
            "{\"nop\":1}",
            "{\"op\":\"warp\"}",
            "{\"op\":\"place\",\"id\":1,\"kind\":\"timetravel\",\"flows\":1,\
             \"psize\":64,\"mtbr\":0.0,\"sla_drop\":0.1}",
            "{\"op\":\"place\",\"id\":-4,\"kind\":\"nat\",\"flows\":1,\"psize\":64,\
             \"mtbr\":0.0,\"sla_drop\":0.1}",
            "{\"op\":\"depart\",\"id\":99}",
            "{\"op\":\"fault\",\"nic\":99,\"kind\":\"fail\"}",
            "{\"op\":\"place\",\"id\":5,\"kind\":\"nat\",\"flows\":1,\"psize\":64,\
             \"mtbr\":0.0,\"sla_drop\":1.5}",
        ] {
            let r = s.handle_line(bad, &engine);
            assert!(r.starts_with("{\"ok\":false"), "{bad} => {r}");
        }
        // Duplicate id is an error; the original instance survives.
        let ok = s.handle_line(&place(8, "nat", 5_000), &engine);
        assert!(ok.starts_with("{\"ok\":true"), "{ok}");
        let dup = s.handle_line(&place(8, "nat", 5_000), &engine);
        assert!(dup.starts_with("{\"ok\":false"), "{dup}");
    }

    #[test]
    fn snapshot_restore_continues_bit_identically() {
        let engine = Engine::sequential();
        let c = cfg(13);
        let first: Vec<String> = vec![
            place(1, "nat", 20_000),
            place(2, "flowstats", 40_000),
            "{\"op\":\"query\",\"kind\":\"nat\",\"flows\":8000,\"psize\":256,\
             \"mtbr\":0.0,\"sla_drop\":0.1}"
                .to_string(),
            place(3, "nat", 60_000),
            "{\"op\":\"fault\",\"nic\":0,\"kind\":\"fail\"}".to_string(),
        ];
        let second: Vec<String> = vec![
            "{\"op\":\"fault\",\"nic\":0,\"kind\":\"recover\"}".to_string(),
            place(4, "flowstats", 90_000),
            "{\"op\":\"depart\",\"id\":1}".to_string(),
            place(5, "nat", 15_000),
            "{\"op\":\"stats\"}".to_string(),
        ];
        // Uninterrupted run.
        let mut whole = ServeLoop::new(&c, "greedy", &engine).expect("build");
        let mut whole_resp = Vec::new();
        for m in first.iter().chain(&second) {
            whole_resp.push(whole.handle_line(m, &engine));
        }
        // Interrupted run: drive half, snapshot, drop, restore, finish.
        let mut half = ServeLoop::new(&c, "greedy", &engine).expect("build");
        for m in &first {
            half.handle_line(m, &engine);
        }
        let snap = half.snapshot();
        drop(half);
        let mut restored = ServeLoop::restore(&c, "greedy", &engine, &snap).expect("restore");
        let tail: Vec<String> = second
            .iter()
            .map(|m| restored.handle_line(m, &engine))
            .collect();
        assert_eq!(
            tail,
            whole_resp[first.len()..],
            "responses after restore must be bit-identical"
        );
        assert_eq!(
            restored.snapshot(),
            whole.snapshot(),
            "final snapshots must be byte-identical"
        );
    }

    #[test]
    fn restore_rejects_mismatches() {
        let engine = Engine::sequential();
        let c = cfg(17);
        let mut s = ServeLoop::new(&c, "greedy", &engine).expect("build");
        s.handle_line(&place(1, "nat", 9_000), &engine);
        let snap = s.snapshot();
        assert!(ServeLoop::restore(&c, "mono", &engine, &snap).is_err());
        assert!(ServeLoop::restore(&cfg(18), "greedy", &engine, &snap).is_err());
        assert!(ServeLoop::restore(&c, "greedy", &engine, "").is_err());
        let vandalized = snap.replacen("\"yala_serve_snapshot\":1", "\"yala_serve_snapshot\":7", 1);
        assert!(ServeLoop::restore(&c, "greedy", &engine, &vandalized).is_err());
        let truncated: String = snap.lines().take(1).map(|l| format!("{l}\n")).collect();
        assert!(ServeLoop::restore(&c, "greedy", &engine, &truncated).is_err());
        assert!(ServeLoop::restore(&c, "greedy", &engine, &snap).is_ok());
    }

    #[test]
    fn yala_online_absorbs_observations() {
        let engine = Engine::sequential();
        let c = cfg(19);
        let mut s = ServeLoop::new(&c, "yala-online", &engine).expect("build");
        let r = s.handle_line(&place(1, "nat", 20_000), &engine);
        assert!(r.contains("\"nic\":0"), "{r}");
        // Feed synthetic audit observations through the wire format.
        let mut obs_text = String::new();
        let model = yala_sim::NicSpec::bluefield2().model();
        let o = yala_core::Observation {
            model,
            kind: NfKind::Nat,
            traffic: TrafficProfile::new(20_000, 512, 0.0),
            competitors: yala_sim::CounterSample::default(),
            accel_pressure: Vec::new(),
            solo_tput: 1.0e7,
            measured_tput: 9.0e6,
        };
        yala_fleet::write_observation(&mut obs_text, 0, &o);
        let obs_line = obs_text
            .trim()
            .replacen("\"sn\":\"obs\"", "\"op\":\"observe\"", 1);
        for _ in 0..3 {
            let r = s.handle_line(&obs_line, &engine);
            assert!(r.starts_with("{\"ok\":true"), "{r}");
        }
        let r = s.handle_line("{\"op\":\"absorb\"}", &engine);
        assert!(r.contains("\"absorbed\":3"), "{r}");
        assert!(r.contains("\"passes\":1"), "{r}");
        // A frozen yala daemon ignores observations on absorb.
        let mut frozen = ServeLoop::new(&c, "yala", &engine).expect("build");
        frozen.handle_line(&obs_line, &engine);
        let r = frozen.handle_line("{\"op\":\"absorb\"}", &engine);
        assert!(r.contains("\"absorbed\":0"), "{r}");
    }
}
