//! `yalad` — the yala placement daemon and trace tool.
//!
//! Three modes, one determinism contract (same inputs ⇒ byte-identical
//! outputs):
//!
//! * `yalad gen-trace --shape diurnal --seed 42 --out day.yala-trace`
//!   writes a recorded-arrivals `.yala-trace` file (header + NF records +
//!   fault events). The same file is a CI fixture and a production audit
//!   log: whatever wrote it, `--replay` re-drives it identically.
//! * `yalad replay day.yala-trace --policy greedy --out-report r.json
//!   --out-journal j.jsonl` profiles the trace, runs the fleet event loop
//!   to completion, and writes the final report and telemetry journal.
//!   `--checkpoint-at-audit K --snapshot s.snap` stops at the K-th audit,
//!   snapshots, and exits (a deliberate mid-stream kill); a second
//!   invocation with `--restore s.snap` finishes the run — report and
//!   stitched journal byte-identical to the uninterrupted ones (CI's
//!   `serve-smoke` job asserts exactly this).
//! * `yalad serve --config day.yala-trace --policy greedy` answers the
//!   JSONL request protocol on stdin/stdout (see `yala-serve`); the
//!   `checkpoint` op writes the serve snapshot to `--snapshot`.
//!
//! All wire and snapshot formats are versioned; see DESIGN.md, "Serving
//! placement".

use std::io::{BufRead, Write};
use std::process::exit;

use yala_core::{Engine, ModelBank, TrainConfig};
use yala_fleet::{
    read_trace, restore_fleet, snapshot_fleet, write_trace, Diagnoser, FaultPlan, FleetConfig,
    FleetPolicy, FleetSim, FleetTrace, OnlineRefine, Processed, ProfiledTrace,
};
use yala_placement::YalaPredictor;
use yala_serve::ServeLoop;
use yala_telemetry::Telemetry;

const USAGE: &str = "\
yalad — yala placement daemon / trace tool

USAGE:
  yalad gen-trace --shape <poisson|diurnal|flash> --seed <N> --out <FILE>
        [--nics <N>] [--mixed] [--duration-s <N>] [--interarrival-s <X>]
        [--lifetime-s <X>] [--audit-period-s <N>] [--faults]
        [--guaranteed-fraction <X>]
  yalad replay <FILE.yala-trace> --policy <mono|greedy|yala|yala-online>
        [--cached] [--threads <N>] [--min-observations <N>]
        [--out-report <FILE>] [--out-journal <FILE>]
        [--checkpoint-at-audit <K> --snapshot <FILE>] [--restore <FILE>]
  yalad serve --config <FILE.yala-trace> --policy <mono|greedy|yala|yala-online>
        [--threads <N>] [--snapshot <FILE>] [--restore <FILE>]
";

fn die(msg: &str) -> ! {
    eprintln!("yalad: {msg}");
    eprintln!("{USAGE}");
    exit(2);
}

/// Tiny deterministic flag parser: `--key value` pairs plus bare flags.
struct Flags {
    args: Vec<String>,
}

impl Flags {
    fn new(args: Vec<String>) -> Self {
        Self { args }
    }

    fn take_flag(&mut self, name: &str) -> bool {
        if let Some(i) = self.args.iter().position(|a| a == name) {
            self.args.remove(i);
            true
        } else {
            false
        }
    }

    fn take_value(&mut self, name: &str) -> Option<String> {
        let i = self.args.iter().position(|a| a == name)?;
        if i + 1 >= self.args.len() {
            die(&format!("{name} needs a value"));
        }
        let v = self.args.remove(i + 1);
        self.args.remove(i);
        Some(v)
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, name: &str) -> Option<T> {
        self.take_value(name).map(|v| {
            v.parse()
                .unwrap_or_else(|_| die(&format!("{name} got invalid value {v:?}")))
        })
    }

    fn finish(self) -> Vec<String> {
        for a in &self.args {
            if a.starts_with("--") {
                die(&format!("unknown flag {a}"));
            }
        }
        self.args
    }
}

fn read_file(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")))
}

fn write_file(path: &str, text: &str) {
    std::fs::write(path, text).unwrap_or_else(|e| die(&format!("writing {path}: {e}")))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        die("missing mode");
    }
    let mode = args.remove(0);
    let flags = Flags::new(args);
    match mode.as_str() {
        "gen-trace" => gen_trace(flags),
        "replay" => replay(flags),
        "serve" => serve(flags),
        "--help" | "-h" | "help" => println!("{USAGE}"),
        other => die(&format!("unknown mode {other}")),
    }
}

fn gen_trace(mut f: Flags) {
    let shape = f
        .take_value("--shape")
        .unwrap_or_else(|| die("gen-trace needs --shape"));
    let seed: u64 = f
        .take_parsed("--seed")
        .unwrap_or_else(|| die("gen-trace needs --seed"));
    let out = f
        .take_value("--out")
        .unwrap_or_else(|| die("gen-trace needs --out"));
    let nics: usize = f.take_parsed("--nics").unwrap_or(16);
    let mixed = f.take_flag("--mixed");
    let mut cfg = if mixed {
        FleetConfig::mixed(seed, nics)
    } else {
        let mut c = FleetConfig::small(seed);
        c.portfolio = vec![(yala_sim::NicSpec::bluefield2(), nics)];
        c
    };
    if let Some(d) = f.take_parsed("--duration-s") {
        cfg.duration_s = d;
    }
    if let Some(x) = f.take_parsed("--interarrival-s") {
        cfg.mean_interarrival_s = x;
    }
    if let Some(x) = f.take_parsed("--lifetime-s") {
        cfg.mean_lifetime_s = x;
    }
    if let Some(p) = f.take_parsed("--audit-period-s") {
        cfg.audit_period_s = p;
    }
    if let Some(g) = f.take_parsed("--guaranteed-fraction") {
        cfg.guaranteed_fraction = g;
    }
    if f.take_flag("--faults") {
        // A modest preset: a couple of hard failures plus two announced
        // drains over a simulated day, scaled by the horizon.
        cfg.faults = FaultPlan {
            mtbf_s: 6.0 * 3_600.0,
            mean_repair_s: 900.0,
            drains: 2,
            drain_notice_s: 600,
            drain_offline_s: 900,
        };
    }
    if !f.finish().is_empty() {
        die("gen-trace takes no positional arguments");
    }
    let trace = match shape.as_str() {
        "poisson" => FleetTrace::generate(cfg),
        "diurnal" => FleetTrace::diurnal(cfg),
        "flash" => FleetTrace::flash_crowd(cfg),
        other => die(&format!("unknown shape {other}")),
    };
    let text = write_trace(&trace);
    write_file(&out, &text);
    println!(
        "wrote {out}: {} records, {} faults, shape {shape}, seed {seed}",
        trace.records.len(),
        trace.faults.len()
    );
}

/// Policy construction is split from the run loop because the yala
/// policies borrow a trained bank that must outlive the simulator.
struct PolicyKit {
    bank: Option<ModelBank<yala_core::YalaModel>>,
    predictor: Option<YalaPredictor>,
    online: Option<OnlineRefine>,
    name: String,
}

impl PolicyKit {
    fn build(cfg: &FleetConfig, name: &str, min_observations: usize, engine: &Engine) -> Self {
        let (bank, predictor, online) = match name {
            "mono" | "greedy" => (None, None, None),
            "yala" | "yala-online" => {
                let train = TrainConfig {
                    seed: cfg.seed,
                    ..TrainConfig::default()
                };
                let bank = ModelBank::train_yala(
                    &cfg.specs(),
                    cfg.noise_sigma,
                    &cfg.kinds,
                    &train,
                    engine,
                );
                let predictor = YalaPredictor::new(&bank);
                let online = (name == "yala-online").then_some(OnlineRefine { min_observations });
                (Some(bank), Some(predictor), online)
            }
            other => die(&format!("unknown policy {other}")),
        };
        Self {
            bank,
            predictor,
            online,
            name: name.to_string(),
        }
    }

    fn policy(&mut self) -> FleetPolicy<'_> {
        match (&mut self.predictor, &self.bank) {
            (Some(p), Some(b)) => FleetPolicy::ContentionAware {
                predictor: p,
                diagnoser: Diagnoser::Yala(b),
                online: self.online,
                qos_aware: true,
            },
            _ if self.name == "mono" => FleetPolicy::Monopolization,
            _ => FleetPolicy::Greedy,
        }
    }
}

fn replay(mut f: Flags) {
    let policy_name = f
        .take_value("--policy")
        .unwrap_or_else(|| die("replay needs --policy"));
    let cached = f.take_flag("--cached");
    let threads: usize = f.take_parsed("--threads").unwrap_or(0);
    let min_observations: usize = f.take_parsed("--min-observations").unwrap_or(48);
    let out_report = f.take_value("--out-report");
    let out_journal = f.take_value("--out-journal");
    let checkpoint_at: Option<u32> = f.take_parsed("--checkpoint-at-audit");
    let snapshot_path = f.take_value("--snapshot");
    let restore_path = f.take_value("--restore");
    let positional = f.finish();
    let [trace_path] = positional.as_slice() else {
        die("replay needs exactly one trace file");
    };
    if checkpoint_at.is_some() && snapshot_path.is_none() {
        die("--checkpoint-at-audit needs --snapshot");
    }
    let engine = if threads == 0 {
        Engine::sequential()
    } else {
        Engine::with_threads(threads)
    };
    let trace = read_trace(&read_file(trace_path))
        .unwrap_or_else(|e| die(&format!("parsing {trace_path}: {e}")));
    let cfg = trace.config.clone();
    let mut kit = PolicyKit::build(&cfg, &policy_name, min_observations, &engine);
    let profiled = if cached {
        ProfiledTrace::build_cached(trace, &engine)
    } else {
        ProfiledTrace::build(trace, &engine)
    };
    // The journal is part of the determinism surface: always on, sim-time.
    let mut tel = Telemetry::enabled();
    let (mut sim, journal_prefix) = match &restore_path {
        Some(p) => {
            let (sim, resume) = restore_fleet(
                &profiled,
                kit.policy(),
                &policy_name,
                &read_file(p),
                &engine,
            )
            .unwrap_or_else(|e| die(&format!("restoring {p}: {e}")));
            let prefix = match resume {
                Some(r) => {
                    let journal = r.resume();
                    tel.sink_mut().expect("enabled").journal = journal;
                    r.prefix
                }
                None => String::new(),
            };
            (sim, prefix)
        }
        None => (
            FleetSim::new(&profiled, kit.policy(), &policy_name),
            String::new(),
        ),
    };
    let mut audits = 0u32;
    while let Some(ev) = sim.step(&engine, &mut tel) {
        if let Processed::Audit(_) = ev {
            audits += 1;
            if Some(audits) == checkpoint_at {
                let text = snapshot_fleet(&sim, Some(&tel.sink().expect("enabled").journal));
                let path = snapshot_path.as_deref().expect("checked above");
                write_file(path, &text);
                println!(
                    "checkpointed to {path} at audit {audits} \
                     ({} events consumed); exiting",
                    sim.events_consumed()
                );
                return;
            }
        }
    }
    let journal_text = format!(
        "{journal_prefix}{}",
        tel.sink().expect("enabled").journal.to_jsonl()
    );
    let report = sim.into_report();
    match &out_report {
        Some(p) => write_file(p, &report.to_json()),
        None => println!("{}", report.to_json()),
    }
    if let Some(p) = &out_journal {
        write_file(p, &journal_text);
    }
    eprintln!(
        "replay done: policy {policy_name}, {} arrivals, {} rejected, {} migrations",
        report.total_arrivals, report.rejected, report.migrations
    );
}

fn serve(mut f: Flags) {
    let config_path = f
        .take_value("--config")
        .unwrap_or_else(|| die("serve needs --config"));
    let policy_name = f
        .take_value("--policy")
        .unwrap_or_else(|| die("serve needs --policy"));
    let threads: usize = f.take_parsed("--threads").unwrap_or(0);
    let snapshot_path = f.take_value("--snapshot");
    let restore_path = f.take_value("--restore");
    if !f.finish().is_empty() {
        die("serve takes no positional arguments");
    }
    let engine = if threads == 0 {
        Engine::sequential()
    } else {
        Engine::with_threads(threads)
    };
    // The trace header doubles as the daemon's config file; its records
    // (if any) are ignored here — clients drive arrivals over the wire.
    let cfg = read_trace(&read_file(&config_path))
        .unwrap_or_else(|e| die(&format!("parsing {config_path}: {e}")))
        .config;
    let mut loop_ = match &restore_path {
        Some(p) => ServeLoop::restore(&cfg, &policy_name, &engine, &read_file(p))
            .unwrap_or_else(|e| die(&format!("restoring {p}: {e}"))),
        None => ServeLoop::new(&cfg, &policy_name, &engine).unwrap_or_else(|e| die(&e)),
    };
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let mut print = |line: &str| {
        writeln!(stdout, "{line}").and_then(|_| stdout.flush()).ok();
    };
    print(&loop_.hello());
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_else(|e| die(&format!("reading stdin: {e}")));
        if line.trim().is_empty() {
            continue;
        }
        // `checkpoint` is served by the binary, not the loop: it owns
        // the filesystem.
        let is_checkpoint = yala_telemetry::parse_line(&line)
            .and_then(|ev| ev.str("op").map(|o| o == "checkpoint"))
            .unwrap_or(false);
        if is_checkpoint {
            match &snapshot_path {
                Some(p) => {
                    let snap = loop_.snapshot();
                    write_file(p, &snap);
                    print(&format!(
                        "{{\"ok\":true,\"op\":\"checkpoint\",\"lines\":{}}}",
                        snap.lines().count()
                    ));
                }
                None => print("{\"ok\":false,\"error\":\"no --snapshot path configured\"}"),
            }
            continue;
        }
        let resp = loop_.handle_line(&line, &engine);
        print(&resp);
        if loop_.is_shutdown() {
            break;
        }
    }
}
