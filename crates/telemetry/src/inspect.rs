//! Journal inspection: loads a serialized journal back and answers the
//! questions an operator actually asks — what happened each epoch, what
//! happened to tenant #k, and *why* was #k violated / parked /
//! migrated — plus metric exports reconstructed purely from the event
//! stream. Everything renders from [`RawEvent`]s, so the inspector works
//! on any journal file without the producing binary.

use crate::journal::{parse_jsonl, RawEvent};
use crate::metrics::MetricsRegistry;

/// A loaded journal plus query/rendering methods over it.
#[derive(Debug)]
pub struct Inspector {
    events: Vec<RawEvent>,
}

/// Formats logical milliseconds as `HH:MM:SS` of simulated time.
fn fmt_t(ms: i64) -> String {
    let s = ms / 1000;
    format!("{:02}:{:02}:{:02}", s / 3600, (s / 60) % 60, s % 60)
}

/// Whether `e` concerns NF `id` (as subject, victim, or violator).
fn involves(e: &RawEvent, id: i64) -> bool {
    e.int("id") == Some(id) || e.int("victim") == Some(id) || e.int("violator") == Some(id)
}

impl Inspector {
    /// Parses a JSONL journal text (unparseable lines are skipped, so a
    /// truncated file still loads).
    pub fn from_jsonl(text: &str) -> Self {
        Self {
            events: parse_jsonl(text),
        }
    }

    /// Parsed events, in journal order.
    pub fn events(&self) -> &[RawEvent] {
        &self.events
    }

    /// Loaded event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the journal held no parseable events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn count(&self, tag: &str) -> usize {
        self.events.iter().filter(|e| e.tag() == tag).count()
    }

    fn count_by(&self, tag: &str, key: &str, value: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.tag() == tag && e.str(key) == Some(value))
            .count()
    }

    /// Headline summary: span, event counts, outcome tallies.
    pub fn summary(&self) -> String {
        if self.events.is_empty() {
            return "empty journal\n".to_string();
        }
        let span_ms = self
            .events
            .iter()
            .filter_map(|e| e.int("t_ms"))
            .max()
            .unwrap_or(0);
        let mut out = format!(
            "journal: {} events over {} simulated\n",
            self.events.len(),
            fmt_t(span_ms)
        );
        // A capacity-truncated journal undercounts everything below;
        // say so before any number, not in a footnote.
        let dropped: i64 = self
            .events
            .iter()
            .filter(|e| e.tag() == "truncated")
            .filter_map(|e| e.int("dropped"))
            .sum();
        if dropped > 0 {
            out.push_str(&format!(
                "  !! TRUNCATED: {dropped} events dropped at the journal capacity bound — \
                 every tally below undercounts (raise the cap, e.g. --journal-cap)\n"
            ));
        }
        out.push_str(&format!(
            "  arrivals {}  placed {}  rejected {}  departed {}\n",
            self.count("arrival"),
            self.count("place"),
            self.count("reject"),
            self.count("depart")
        ));
        out.push_str(&format!(
            "  violations {} (guaranteed {}, best_effort {})  migrations {}\n",
            self.count("violation"),
            self.count_by("violation", "qos", "guaranteed"),
            self.count_by("violation", "qos", "best_effort"),
            self.count("migrate")
        ));
        out.push_str(&format!(
            "  faults {} (fail {}, drain {})  evacuations {}  parked {}  readmitted {}\n",
            self.count("fault"),
            self.count_by("fault", "kind", "fail"),
            self.count_by("fault", "kind", "drain_start"),
            self.count("evacuate"),
            self.count("park"),
            self.count("readmit")
        ));
        let profiles = self.count("profile");
        if profiles > 0 {
            out.push_str(&format!(
                "  profile measurements {} (miss {}, hit {})  absorb passes {}\n",
                profiles,
                self.count_by("profile", "cache", "miss"),
                self.count_by("profile", "cache", "hit"),
                self.count("absorb")
            ));
        }
        out
    }

    /// Per-epoch timeline: each `epoch` snapshot line, annotated with the
    /// tally of fleet events since the previous snapshot.
    pub fn timeline(&self) -> String {
        let mut out = String::new();
        let mut pending: Vec<(&'static str, usize)> = Vec::new();
        for e in &self.events {
            match e.tag() {
                "epoch" => {
                    let t = fmt_t(e.int("t_ms").unwrap_or(0));
                    let delta = if pending.is_empty() {
                        String::new()
                    } else {
                        let parts: Vec<String> = pending
                            .iter()
                            .map(|(tag, n)| format!("{n} {tag}"))
                            .collect();
                        format!("   (+{})", parts.join(", "))
                    };
                    out.push_str(&format!(
                        "[{t}] active={} nics={} violating={} migrations={} parked={} down={} obs_queue={} cache_hit={:.4}{delta}\n",
                        e.int("active").unwrap_or(0),
                        e.int("nics").unwrap_or(0),
                        e.int("violating").unwrap_or(0),
                        e.int("migrations").unwrap_or(0),
                        e.int("parked").unwrap_or(0),
                        e.int("down").unwrap_or(0),
                        e.int("obs_queue").unwrap_or(0),
                        e.num("cache_hit_rate").unwrap_or(0.0),
                    ));
                    pending.clear();
                }
                // Margin/audit/profile lines are too chatty for the
                // timeline view, and the truncation trailer is a meta
                // line, not a fleet event; everything else tallies into
                // the delta.
                "margin" | "audit" | "profile" | "truncated" | "" => {}
                tag => {
                    let tag: &'static str = match tag {
                        "arrival" => "arrival",
                        "place" => "place",
                        "reject" => "reject",
                        "depart" => "depart",
                        "fault" => "fault",
                        "evacuate" => "evacuate",
                        "park" => "park",
                        "readmit" => "readmit",
                        "violation" => "violation",
                        "migrate" => "migrate",
                        "absorb" => "absorb",
                        _ => "other",
                    };
                    if let Some(p) = pending.iter_mut().find(|(t, _)| *t == tag) {
                        p.1 += 1;
                    } else {
                        pending.push((tag, 1));
                    }
                }
            }
        }
        if out.is_empty() {
            out.push_str("no epoch snapshots in journal\n");
        }
        out
    }

    /// The lifecycle story of one tenant: every journaled event that
    /// concerns NF `id`, rendered chronologically as prose lines.
    pub fn tenant(&self, id: i64) -> String {
        let mut out = String::new();
        // Profile events are journaled post-merge (after the parallel
        // build), so a stable sort on sim time re-interleaves them with
        // the fleet events they precede chronologically.
        let mut story: Vec<&RawEvent> = self.events.iter().filter(|e| involves(e, id)).collect();
        story.sort_by_key(|e| e.int("t_ms").unwrap_or(0));
        for e in story {
            let t = fmt_t(e.int("t_ms").unwrap_or(0));
            let line = match e.tag() {
                "profile" => format!(
                    "profiled ({}, trigger={}, cache {})",
                    e.str("kind").unwrap_or("?"),
                    e.str("trigger").unwrap_or("?"),
                    e.str("cache").unwrap_or("?")
                ),
                "arrival" => format!(
                    "arrived: kind={} qos={} sla_drop={:.3}",
                    e.str("kind").unwrap_or("?"),
                    e.str("qos").unwrap_or("?"),
                    e.num("sla_drop").unwrap_or(0.0)
                ),
                "place" => format!(
                    "placed on NIC {} ({})",
                    e.int("nic").unwrap_or(-1),
                    e.str("reason").unwrap_or("?")
                ),
                "margin" => format!(
                    "margin on NIC {}: predicted {:.0} vs floor {:.0}",
                    e.int("nic").unwrap_or(-1),
                    e.num("predicted").unwrap_or(0.0),
                    e.num("floor").unwrap_or(0.0)
                ),
                "reject" => "REJECTED at admission: no feasible NIC".to_string(),
                "violation" => format!(
                    "VIOLATION on NIC {}: measured {:.0} below floor {:.0} (bottleneck: {})",
                    e.int("nic").unwrap_or(-1),
                    e.num("measured").unwrap_or(0.0),
                    e.num("floor").unwrap_or(0.0),
                    e.str("bottleneck").unwrap_or("none")
                ),
                "migrate" if e.int("victim") == Some(id) => format!(
                    "migrated NIC {} -> {} as victim relieving NF {} (bottleneck {}, pressure {:.3})",
                    e.int("from").unwrap_or(-1),
                    e.int("to").unwrap_or(-1),
                    e.int("violator").unwrap_or(-1),
                    e.str("bottleneck").unwrap_or("none"),
                    e.num("pressure").unwrap_or(0.0)
                ),
                "migrate" => format!(
                    "relieved: NF {} migrated off NIC {} (bottleneck {})",
                    e.int("victim").unwrap_or(-1),
                    e.int("from").unwrap_or(-1),
                    e.str("bottleneck").unwrap_or("none")
                ),
                "evacuate" => format!(
                    "evacuated NIC {} -> {}{}",
                    e.int("from").unwrap_or(-1),
                    e.int("to").unwrap_or(-1),
                    if e.get("forced").map(|v| v == &crate::journal::FieldValue::Bool(true))
                        == Some(true)
                    {
                        " (forced: its NIC was already out of service)"
                    } else {
                        ""
                    }
                ),
                "park" => format!("PARKED ({})", e.str("reason").unwrap_or("?")),
                "readmit" => format!("readmitted onto NIC {}", e.int("nic").unwrap_or(-1)),
                "depart" => match e.int("nic") {
                    Some(n) if n >= 0 => format!("departed from NIC {n}"),
                    _ => "departed while parked/unplaced".to_string(),
                },
                other => format!("{other} event"),
            };
            out.push_str(&format!("[{t}] NF {id}: {line}\n"));
        }
        if out.is_empty() {
            out.push_str(&format!("no journaled events for NF {id}\n"));
        }
        out
    }

    /// Answers "why was NF `id` violated / parked / migrated /
    /// rejected?": one prose paragraph per adverse event class, built
    /// from the journal's own diagnoses.
    pub fn why(&self, id: i64) -> String {
        let mine: Vec<&RawEvent> = self.events.iter().filter(|e| involves(e, id)).collect();
        if mine.is_empty() {
            return format!("no journaled events for NF {id}\n");
        }
        let mut out = String::new();

        let violations: Vec<&&RawEvent> = mine.iter().filter(|e| e.tag() == "violation").collect();
        if let Some(last) = violations.last() {
            out.push_str(&format!(
                "violated: {} time(s); last at {} on NIC {}: measured {:.0} pps against an SLA floor of {:.0} (diagnosed bottleneck: {}).\n",
                violations.len(),
                fmt_t(last.int("t_ms").unwrap_or(0)),
                last.int("nic").unwrap_or(-1),
                last.num("measured").unwrap_or(0.0),
                last.num("floor").unwrap_or(0.0),
                last.str("bottleneck").unwrap_or("none")
            ));
            if let Some(m) = mine
                .iter()
                .rfind(|e| e.tag() == "migrate" && e.int("violator") == Some(id))
            {
                out.push_str(&format!(
                    "  response: NF {} was migrated off NIC {} at {} because it pressed hardest on the {} bottleneck (pressure {:.3}).\n",
                    m.int("victim").unwrap_or(-1),
                    m.int("from").unwrap_or(-1),
                    fmt_t(m.int("t_ms").unwrap_or(0)),
                    m.str("bottleneck").unwrap_or("none"),
                    m.num("pressure").unwrap_or(0.0)
                ));
            }
        }

        if let Some(m) = mine
            .iter()
            .rfind(|e| e.tag() == "migrate" && e.int("victim") == Some(id))
        {
            out.push_str(&format!(
                "migrated (as victim): at {} from NIC {} to {} to relieve NF {} — among NF {}'s co-residents it pressed hardest on the diagnosed {} bottleneck (pressure {:.3}).\n",
                fmt_t(m.int("t_ms").unwrap_or(0)),
                m.int("from").unwrap_or(-1),
                m.int("to").unwrap_or(-1),
                m.int("violator").unwrap_or(-1),
                m.int("violator").unwrap_or(-1),
                m.str("bottleneck").unwrap_or("none"),
                m.num("pressure").unwrap_or(0.0)
            ));
        }

        let parks: Vec<&&RawEvent> = mine.iter().filter(|e| e.tag() == "park").collect();
        if let Some(last) = parks.last() {
            let reason = match last.str("reason") {
                Some("preempted") => {
                    "displaced from its NIC to make room for a guaranteed-class NF".to_string()
                }
                Some("no_slot") => {
                    "its NIC went away and no other NIC could take it without breaking an SLA"
                        .to_string()
                }
                Some(r) => r.to_string(),
                None => "unknown".to_string(),
            };
            out.push_str(&format!(
                "parked: {} time(s); last at {} because {}.\n",
                parks.len(),
                fmt_t(last.int("t_ms").unwrap_or(0)),
                reason
            ));
            if let Some(r) = mine.iter().rfind(|e| e.tag() == "readmit") {
                out.push_str(&format!(
                    "  readmitted onto NIC {} at {}.\n",
                    r.int("nic").unwrap_or(-1),
                    fmt_t(r.int("t_ms").unwrap_or(0))
                ));
            }
        }

        if mine.iter().any(|e| e.tag() == "reject") {
            out.push_str(&format!(
                "rejected: NF {id} was turned away at admission — no NIC had a feasible slot under the predictor's floors.\n"
            ));
        }

        if out.is_empty() {
            out.push_str(&format!(
                "NF {id} had no adverse events: {} journaled event(s), all routine (arrival/placement/departure).\n",
                mine.len()
            ));
        }
        out
    }

    /// Reconstructs a metrics registry from the event stream alone —
    /// counters tallied per event class, gauges from the last epoch
    /// snapshot. Useful to export Prometheus text from a bare journal
    /// file, and to cross-check a live registry against its journal.
    pub fn reconstruct_metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        for e in &self.events {
            match e.tag() {
                "arrival" => m.inc("fleet.arrivals", 1),
                "place" => m.inc("fleet.placements", 1),
                "reject" => m.inc("fleet.rejected", 1),
                "depart" => m.inc("fleet.departures", 1),
                "migrate" => m.inc("fleet.migrations", 1),
                "violation" => {
                    m.inc(
                        &format!("fleet.violations.{}", e.str("qos").unwrap_or("unknown")),
                        1,
                    );
                }
                "fault" => match e.str("kind") {
                    Some("fail") => m.inc("fleet.faults", 1),
                    Some("drain_start") => m.inc("fleet.drains", 1),
                    _ => {}
                },
                "evacuate" => {
                    m.inc(
                        &format!("fleet.evacuations.{}", e.str("qos").unwrap_or("unknown")),
                        1,
                    );
                }
                "park" => {
                    m.inc(
                        &format!("fleet.shed.{}", e.str("qos").unwrap_or("unknown")),
                        1,
                    );
                }
                "readmit" => {
                    m.inc(
                        &format!("fleet.readmitted.{}", e.str("qos").unwrap_or("unknown")),
                        1,
                    );
                }
                "absorb" => {
                    m.inc("fleet.absorb.passes", 1);
                    m.inc(
                        "fleet.absorb.observations",
                        e.int("observations").unwrap_or(0).max(0) as u64,
                    );
                }
                "profile" => {
                    m.inc("profile.lookups", 1);
                    match e.str("cache") {
                        Some("hit") => m.inc("profile.hits", 1),
                        Some("miss") => m.inc("profile.misses", 1),
                        _ => {}
                    }
                }
                "epoch" => {
                    m.set_gauge("fleet.active_nfs", e.num("active").unwrap_or(0.0));
                    m.set_gauge("fleet.nics_in_use", e.num("nics").unwrap_or(0.0));
                    m.set_gauge("fleet.parked", e.num("parked").unwrap_or(0.0));
                    m.set_gauge("fleet.down_nics", e.num("down").unwrap_or(0.0));
                    m.set_gauge(
                        "fleet.cache_hit_rate",
                        e.num("cache_hit_rate").unwrap_or(0.0),
                    );
                }
                _ => {}
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Event, Journal};

    fn sample() -> String {
        let mut j = Journal::new();
        j.push(
            0,
            Event::Arrival {
                id: 1,
                kind: "flowstats",
                qos: "guaranteed",
                sla_drop: 0.1,
            },
        );
        j.push(
            0,
            Event::Place {
                id: 1,
                nic: 4,
                reason: "arrival",
            },
        );
        j.push(
            600_000,
            Event::Violation {
                id: 1,
                nic: 4,
                qos: "guaranteed",
                measured: 80_000.0,
                floor: 90_000.0,
                bottleneck: "regex".to_string(),
            },
        );
        j.push(
            600_000,
            Event::Migrate {
                victim: 2,
                from: 4,
                to: 6,
                violator: 1,
                bottleneck: "regex".to_string(),
                qos: "best_effort",
                pressure: 0.42,
            },
        );
        j.push(
            1_200_000,
            Event::Park {
                id: 2,
                qos: "best_effort",
                reason: "preempted",
            },
        );
        j.push(
            1_200_000,
            Event::Epoch {
                t_s: 1_200,
                active: 2,
                nics_in_use: 2,
                violating: 0,
                migrations: 1,
                wasted_cores: 0,
                oracle_lb: 1,
                parked: 1,
                down: 0,
                obs_queue: 3,
                cache_hit_rate: 0.75,
            },
        );
        j.to_jsonl()
    }

    #[test]
    fn summary_and_timeline_render() {
        let i = Inspector::from_jsonl(&sample());
        assert_eq!(i.len(), 6);
        let s = i.summary();
        assert!(s.contains("arrivals 1"));
        assert!(s.contains("violations 1 (guaranteed 1, best_effort 0)"));
        assert!(!s.contains("TRUNCATED"), "untruncated journals stay quiet");
        let t = i.timeline();
        assert!(t.contains("[00:20:00]"));
        assert!(t.contains("parked=1"));
        assert!(t.contains("1 migrate"));
    }

    #[test]
    fn summary_surfaces_journal_truncation_prominently() {
        let mut text = sample();
        text.push_str("{\"seq\":6,\"t_ms\":1200000,\"ev\":\"truncated\",\"dropped\":12345}\n");
        let i = Inspector::from_jsonl(&text);
        let s = i.summary();
        let warn = s.lines().nth(1).expect("warning directly under headline");
        assert!(warn.contains("TRUNCATED"));
        assert!(warn.contains("12345"));
        assert!(warn.contains("--journal-cap"));
        // The meta line is not a fleet event: the timeline must not
        // tally it as "other".
        assert!(!i.timeline().contains("truncated"));
        assert!(!i.timeline().contains("other"));
    }

    #[test]
    fn tenant_story_covers_both_roles() {
        let i = Inspector::from_jsonl(&sample());
        let violator = i.tenant(1);
        assert!(violator.contains("VIOLATION on NIC 4"));
        assert!(violator.contains("relieved: NF 2 migrated off NIC 4"));
        let victim = i.tenant(2);
        assert!(victim.contains("as victim relieving NF 1"));
        assert!(victim.contains("PARKED (preempted)"));
        assert!(i.tenant(99).contains("no journaled events"));
    }

    #[test]
    fn why_explains_violation_and_parking() {
        let i = Inspector::from_jsonl(&sample());
        let w1 = i.why(1);
        assert!(w1.contains("violated: 1 time(s)"));
        assert!(w1.contains("bottleneck: regex"));
        assert!(w1.contains("response: NF 2 was migrated off NIC 4"));
        let w2 = i.why(2);
        assert!(w2.contains("migrated (as victim)"));
        assert!(w2.contains("parked: 1 time(s)"));
        assert!(w2.contains("guaranteed-class NF"));
    }

    #[test]
    fn metrics_reconstruct_from_events() {
        let i = Inspector::from_jsonl(&sample());
        let m = i.reconstruct_metrics();
        assert_eq!(m.counter("fleet.arrivals"), 1);
        assert_eq!(m.counter("fleet.violations.guaranteed"), 1);
        assert_eq!(m.counter("fleet.migrations"), 1);
        assert_eq!(m.counter("fleet.shed.best_effort"), 1);
        assert_eq!(m.gauge("fleet.parked"), Some(1.0));
        assert_eq!(m.gauge("fleet.cache_hit_rate"), Some(0.75));
    }
}
