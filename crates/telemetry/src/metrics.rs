//! The metrics registry: counters, gauges, and log-bucketed histograms
//! with fixed bucket edges, stored in `BTreeMap`s so every export walks
//! names in one canonical order.
//!
//! Determinism contract: a registry's exports are a pure function of the
//! sequence of `inc`/`set_gauge`/`observe` calls *as multisets per name*
//! — counters and histogram buckets are sums, so per-worker shards that
//! record disjoint slices of the work can be [`merge`]d in worker-index
//! order and the aggregate is bit-identical whatever thread interleaving
//! produced the shards. Gauges are last-write-wins; merging takes the
//! shard's value, so shard gauges should only be set by the final owner.
//!
//! [`merge`]: MetricsRegistry::merge

use std::collections::BTreeMap;

/// A log-bucketed histogram with fixed edges chosen at creation: bucket
/// `i` counts observations `v <= edges[i]` (and above `edges[i-1]`);
/// larger values land in the overflow bucket. Edges are powers of two
/// times the start, so two histograms built with the same
/// `(start, buckets)` always agree bucket-for-bucket and may be merged.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending upper bucket edges (`start * 2^i`).
    edges: Vec<f64>,
    /// Non-cumulative counts per edge, plus one overflow bucket at the
    /// end (`counts.len() == edges.len() + 1`).
    counts: Vec<u64>,
    /// Sum of all observed values (deterministic: observation order is).
    sum: f64,
    /// Total observations.
    count: u64,
}

impl Histogram {
    /// A histogram with `buckets` power-of-two edges starting at `start`
    /// (`start`, `2*start`, `4*start`, ...).
    ///
    /// # Panics
    ///
    /// Panics if `start` is not positive or `buckets` is zero.
    pub fn log2(start: f64, buckets: usize) -> Self {
        assert!(start > 0.0 && buckets > 0, "log2 histogram needs a span");
        let edges: Vec<f64> = (0..buckets).map(|i| start * (1u64 << i) as f64).collect();
        let counts = vec![0u64; buckets + 1];
        Self {
            edges,
            counts,
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let slot = self
            .edges
            .iter()
            .position(|&e| v <= e)
            .unwrap_or(self.edges.len());
        self.counts[slot] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// `(upper_edge, non_cumulative_count)` pairs, overflow excluded.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.edges.iter().copied().zip(self.counts.iter().copied())
    }

    /// Adds another histogram's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if the edges differ — merging histograms with different
    /// specs is a bug, not a runtime condition.
    fn absorb(&mut self, other: &Histogram) {
        assert_eq!(self.edges, other.edges, "histogram specs must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// The registry: named counters (`u64`, monotone), gauges (`f64`,
/// last-write-wins), and histograms. Names are dot-separated
/// (`fleet.arrivals`); exports order them lexicographically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `name` (created at zero on first touch).
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Sets gauge `name` to `v`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = v;
        } else {
            self.gauges.insert(name.to_string(), v);
        }
    }

    /// Records `v` into histogram `name`, creating it with
    /// [`Histogram::log2`]`(start, buckets)` on first touch. Callers must
    /// pass the same spec for the same name everywhere (merges assert it).
    pub fn observe_log2(&mut self, name: &str, start: f64, buckets: usize, v: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Histogram::log2(start, buckets);
            h.observe(v);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Counter value (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, if ever touched.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds a worker shard into this registry: counters and histogram
    /// buckets add, gauges take the shard's value. Callers merge shards
    /// in worker-index order; since sums commute, the aggregate is
    /// bit-identical for any actual execution interleaving.
    pub fn merge(&mut self, shard: &MetricsRegistry) {
        for (name, v) in &shard.counters {
            self.inc(name, *v);
        }
        for (name, v) in &shard.gauges {
            self.set_gauge(name, *v);
        }
        for (name, h) in &shard.histograms {
            if let Some(mine) = self.histograms.get_mut(name) {
                mine.absorb(h);
            } else {
                self.histograms.insert(name.clone(), h.clone());
            }
        }
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Prometheus text exposition: `# TYPE` lines plus samples, names
    /// sanitized (`.` → `_`), histograms in cumulative `le` form.
    /// Deterministic: canonical name order, fixed float formatting.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v:.6}\n"));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (edge, c) in h.buckets() {
                cum += c;
                out.push_str(&format!("{n}_bucket{{le=\"{edge}\"}} {cum}\n"));
            }
            out.push_str(&format!(
                "{n}_bucket{{le=\"+Inf\"}} {}\n{n}_sum {:.6}\n{n}_count {}\n",
                h.count(),
                h.sum(),
                h.count()
            ));
        }
        out
    }

    /// Canonical JSON export (hand-rolled; the workspace has no
    /// serde_json): `{"counters": {...}, "gauges": {...},
    /// "histograms": {...}}` in lexicographic name order.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v:.6}"))
            .collect();
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets: Vec<String> = h
                    .buckets()
                    .map(|(e, c)| format!("[{e}, {c}]"))
                    .collect();
                format!(
                    "\"{k}\": {{\"buckets\": [{}], \"overflow\": {}, \"count\": {}, \"sum\": {:.6}}}",
                    buckets.join(", "),
                    h.count() - h.buckets().map(|(_, c)| c).sum::<u64>(),
                    h.count(),
                    h.sum()
                )
            })
            .collect();
        format!(
            "{{\n\"counters\": {{{}}},\n\"gauges\": {{{}}},\n\"histograms\": {{{}}}\n}}\n",
            counters.join(", "),
            gauges.join(", "),
            hists.join(", ")
        )
    }
}

/// Prometheus metric names admit `[a-zA-Z0-9_:]`; everything else
/// becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::log2(1.0, 3); // edges 1, 2, 4
        for v in [0.5, 1.0, 1.5, 3.0, 9.0] {
            h.observe(v);
        }
        let counts: Vec<u64> = h.buckets().map(|(_, c)| c).collect();
        assert_eq!(counts, vec![2, 1, 1]); // 9.0 overflows
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn shard_merge_is_order_independent_for_sums() {
        let shard = |values: &[u64]| {
            let mut s = MetricsRegistry::new();
            for &v in values {
                s.inc("fleet.arrivals", v);
                s.observe_log2("fleet.co_residents", 1.0, 4, v as f64);
            }
            s
        };
        let (a, b) = (shard(&[1, 2]), shard(&[3]));
        let mut ab = MetricsRegistry::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = MetricsRegistry::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("fleet.arrivals"), 6);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.to_prometheus(), ba.to_prometheus());
    }

    #[test]
    fn exports_are_canonical_and_well_formed() {
        let mut r = MetricsRegistry::new();
        r.inc("fleet.arrivals", 7);
        r.set_gauge("fleet.parked", 2.0);
        r.observe_log2("fleet.violation.severity", 1.0, 4, 1.5);
        let prom = r.to_prometheus();
        assert!(prom.contains("# TYPE fleet_arrivals counter\nfleet_arrivals 7\n"));
        assert!(prom.contains("fleet_parked 2.000000"));
        assert!(prom.contains("fleet_violation_severity_bucket{le=\"+Inf\"} 1"));
        let json = r.to_json();
        assert!(json.contains("\"fleet.arrivals\": 7"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Determinism: identical recordings, identical bytes.
        assert_eq!(json, r.clone().to_json());
    }

    #[test]
    #[should_panic(expected = "histogram specs must match")]
    fn merging_mismatched_histogram_specs_panics() {
        let mut a = MetricsRegistry::new();
        a.observe_log2("h", 1.0, 3, 1.0);
        let mut b = MetricsRegistry::new();
        b.observe_log2("h", 2.0, 3, 1.0);
        a.merge(&b);
    }
}
