//! The optional wall-clock layer: decision-latency and phase-timing
//! measurements in *real* time. Everything here is excluded from the
//! determinism contract — wall time varies run to run — so none of it
//! flows into the journal or the metrics exports that CI diffs; it
//! renders to a human summary instead.
//!
//! Latency samples go through a seeded reservoir (Algorithm R on a
//! [`rand::rngs::StdRng`]): which *slots* get replaced is deterministic
//! in the seed and the sample count, even though the sampled values are
//! wall-clock noise.

use crate::metrics::Histogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Instant;

/// A fixed-size uniform sample over a stream (Vitter's Algorithm R),
/// with a seeded RNG so the kept/evicted slot schedule is reproducible.
#[derive(Debug, Clone)]
pub struct Reservoir {
    samples: Vec<f64>,
    capacity: usize,
    seen: u64,
    rng: StdRng,
}

impl Reservoir {
    /// An empty reservoir holding at most `capacity` samples.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Self {
            samples: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
            seen: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Offers one value to the reservoir.
    pub fn add(&mut self, v: f64) {
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(v);
            return;
        }
        let j = self.rng.gen_range(0..self.seen as usize);
        if j < self.capacity {
            self.samples[j] = v;
        }
    }

    /// Values offered so far (kept or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The `q`-quantile (0..=1) of the retained sample by
    /// nearest-rank, or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency samples"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

/// Wall-clock instrumentation for one run: an events/sec counter, a
/// reservoir + log-bucketed histogram of placement-decision latency,
/// and per-phase accumulated timings.
#[derive(Debug)]
pub struct WallClock {
    started: Instant,
    events: u64,
    decisions: Reservoir,
    decision_hist: Histogram,
    phases: BTreeMap<&'static str, (f64, u64)>,
}

/// Reservoir size for decision latencies: big enough for stable tail
/// quantiles, small enough to stay cache-resident.
const RESERVOIR_CAPACITY: usize = 4_096;

impl WallClock {
    /// A fresh wall clock whose reservoir replacement schedule derives
    /// from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            started: Instant::now(),
            events: 0,
            decisions: Reservoir::new(RESERVOIR_CAPACITY, seed),
            // 256 ns .. ~8 ms in power-of-two buckets.
            decision_hist: Histogram::log2(256.0, 16),
            phases: BTreeMap::new(),
        }
    }

    /// Counts one processed simulation event.
    pub fn tick(&mut self) {
        self.events += 1;
    }

    /// Records a placement-decision latency measured from `t0`.
    pub fn decision(&mut self, t0: Instant) {
        let ns = t0.elapsed().as_nanos() as f64;
        self.decisions.add(ns);
        self.decision_hist.observe(ns);
    }

    /// Accumulates elapsed-since-`t0` into phase `name`.
    pub fn phase(&mut self, name: &'static str, t0: Instant) {
        let e = self.phases.entry(name).or_insert((0.0, 0));
        e.0 += t0.elapsed().as_secs_f64();
        e.1 += 1;
    }

    /// Placement decisions timed so far (kept in the reservoir or not).
    pub fn decisions_seen(&self) -> u64 {
        self.decisions.seen()
    }

    /// The `q`-quantile of decision latency in nanoseconds, from the
    /// reservoir sample. Wall-clock noise — report it, never diff it.
    pub fn decision_quantile(&self, q: f64) -> Option<f64> {
        self.decisions.quantile(q)
    }

    /// Events processed per wall-clock second so far.
    pub fn events_per_sec(&self) -> f64 {
        let s = self.started.elapsed().as_secs_f64();
        if s > 0.0 {
            self.events as f64 / s
        } else {
            0.0
        }
    }

    /// Human-readable summary: throughput, decision-latency quantiles,
    /// phase table. Not byte-stable — never diff this.
    pub fn summary(&self) -> String {
        let q = |p: f64| {
            self.decisions
                .quantile(p)
                .map(|ns| format!("{:.1}", ns / 1_000.0))
                .unwrap_or_else(|| "-".to_string())
        };
        let mut out = format!(
            "wall-clock: {} events in {:.2} s ({:.0} events/s); placement decisions {} \
             (p50 {} us, p95 {} us, p99 {} us)\n",
            self.events,
            self.started.elapsed().as_secs_f64(),
            self.events_per_sec(),
            self.decisions.seen(),
            q(0.50),
            q(0.95),
            q(0.99)
        );
        for (name, (secs, n)) in &self.phases {
            out.push_str(&format!(
                "  phase {name:<20} {secs:>9.3} s over {n} calls\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_keeps_a_bounded_uniformish_sample() {
        let mut r = Reservoir::new(16, 7);
        for i in 0..1_000 {
            r.add(i as f64);
        }
        assert_eq!(r.seen(), 1_000);
        assert_eq!(r.samples.len(), 16);
        // Quantiles are ordered and within the stream's range.
        let (p50, p99) = (r.quantile(0.5).unwrap(), r.quantile(0.99).unwrap());
        assert!((0.0..1_000.0).contains(&p50));
        assert!(p50 <= p99);
    }

    #[test]
    fn reservoir_slot_schedule_is_seed_deterministic() {
        let run = |seed| {
            let mut r = Reservoir::new(8, seed);
            for i in 0..100 {
                r.add(i as f64);
            }
            r.samples
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds, different schedules");
    }

    #[test]
    fn wallclock_summary_renders() {
        let mut w = WallClock::new(1);
        let t0 = Instant::now();
        w.tick();
        w.decision(t0);
        w.phase("audit", t0);
        let s = w.summary();
        assert!(s.contains("events"));
        assert!(s.contains("phase audit"));
    }
}
