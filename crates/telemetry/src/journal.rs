//! The sim-time event journal: a bounded vector of structured records
//! stamped with *logical* event time, so the journal of a deterministic
//! run is itself deterministic — bit-identical across runs and engine
//! thread counts — and can be diffed, replayed, and queried after the
//! fact.
//!
//! Serialization is flat JSONL (one object per line, fixed field order
//! per event kind, fixed float formatting), hand-rolled like every other
//! canonical byte stream in the workspace. [`parse_line`] reads the
//! writer's own output back; it is not a general JSON parser.

/// One structured journal event. String fields are controlled
/// identifiers (NF kind names, QoS class names, resource names) — never
/// free text — so the writer does not escape them.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A profile measurement consumed during the timeline build.
    /// `cache` is `"miss"` for the first event bearing `key` within the
    /// build, `"hit"` after — tagged post-merge in record order, so the
    /// attribution is deterministic even though the parallel build races
    /// threads over the shared cache.
    Profile {
        id: u32,
        kind: &'static str,
        trigger: &'static str,
        key: u64,
        cache: &'static str,
    },
    /// An NF arrival entering placement.
    Arrival {
        id: u32,
        kind: &'static str,
        qos: &'static str,
        sla_drop: f64,
    },
    /// A placement decision that admitted `id` onto `nic`.
    Place {
        id: u32,
        nic: u32,
        reason: &'static str,
    },
    /// One resident's predicted-vs-floor margin on the NIC a
    /// contention-aware placement just accepted (floor includes the
    /// hysteresis margin in force for that decision).
    Margin {
        id: u32,
        nic: u32,
        predicted: f64,
        floor: f64,
    },
    /// An arrival that found no feasible NIC.
    Reject {
        id: u32,
        kind: &'static str,
        qos: &'static str,
    },
    /// An NF leaving the fleet; `nic` is `-1` if it was parked or never
    /// placed.
    Depart { id: u32, nic: i64 },
    /// A fault-machine transition on a NIC (`fail`, `recover`,
    /// `drain_start`, `drain_end`).
    Fault { nic: u32, kind: &'static str },
    /// A resident relocated off a failing/draining NIC.
    Evacuate {
        id: u32,
        from: u32,
        to: u32,
        qos: &'static str,
        forced: bool,
    },
    /// An NF shed into the parked set (`no_slot`: nowhere to evacuate;
    /// `preempted`: displaced to make room for a guaranteed NF).
    Park {
        id: u32,
        qos: &'static str,
        reason: &'static str,
    },
    /// A parked NF re-placed at an audit retry.
    Readmit {
        id: u32,
        nic: u32,
        qos: &'static str,
    },
    /// A ground-truth SLA violation observed at an audit, with the
    /// diagnosed bottleneck (`none` when the policy has no diagnoser or
    /// the NF ran solo).
    Violation {
        id: u32,
        nic: u32,
        qos: &'static str,
        measured: f64,
        floor: f64,
        bottleneck: String,
    },
    /// A reactive migration: `victim` drained from `from` to relieve
    /// `violator`, chosen because it pressed hardest (`pressure`) on the
    /// diagnosed `bottleneck`.
    Migrate {
        victim: u32,
        from: u32,
        to: u32,
        violator: u32,
        bottleneck: String,
        qos: &'static str,
        pressure: f64,
    },
    /// An online-refinement absorb pass over `observations` buffered
    /// ground-truth samples.
    Absorb { epoch: u32, observations: u32 },
    /// An audit epoch's ground-truth summary.
    Audit {
        epoch: u32,
        occupied: u32,
        violating: u32,
    },
    /// The per-epoch fleet snapshot, aligned with `FleetSample` plus the
    /// observation-queue depth and the build's profile-cache hit rate.
    Epoch {
        t_s: u64,
        active: u32,
        nics_in_use: u32,
        violating: u32,
        migrations: u32,
        wasted_cores: u32,
        oracle_lb: u32,
        parked: u32,
        down: u32,
        obs_queue: u32,
        cache_hit_rate: f64,
    },
}

impl Event {
    /// The event's `ev` tag in the JSONL form.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::Profile { .. } => "profile",
            Event::Arrival { .. } => "arrival",
            Event::Place { .. } => "place",
            Event::Margin { .. } => "margin",
            Event::Reject { .. } => "reject",
            Event::Depart { .. } => "depart",
            Event::Fault { .. } => "fault",
            Event::Evacuate { .. } => "evacuate",
            Event::Park { .. } => "park",
            Event::Readmit { .. } => "readmit",
            Event::Violation { .. } => "violation",
            Event::Migrate { .. } => "migrate",
            Event::Absorb { .. } => "absorb",
            Event::Audit { .. } => "audit",
            Event::Epoch { .. } => "epoch",
        }
    }
}

/// One journal entry: logical time, insertion sequence, event.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Logical (simulated) time of the event, milliseconds.
    pub t_ms: u64,
    /// Insertion sequence, the journal-wide total order.
    pub seq: u64,
    /// The structured event.
    pub event: Event,
}

/// Default bound on journal length — far above any current scenario
/// (a 24 h 200-NIC day journals a few tens of thousands of events).
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// The bounded journal. Events past the capacity are counted and
/// dropped (newest-dropped, deterministically), never reallocated into.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    records: Vec<JournalRecord>,
    capacity: usize,
    dropped: u64,
    /// Sequence number of the first record this journal will assign —
    /// nonzero only for a journal resumed from a checkpoint, whose
    /// retained prefix lives in the snapshot rather than in `records`.
    base: u64,
    /// Logical time of the checkpointed prefix's last record — the
    /// truncation trailer's timestamp when nothing lands after resume.
    resume_t_ms: u64,
}

impl Default for Journal {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Journal {
    /// An empty journal with the default bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty journal bounded at `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            records: Vec::new(),
            capacity,
            dropped: 0,
            base: 0,
            resume_t_ms: 0,
        }
    }

    /// A journal continuing a checkpointed run: the first `base_seq`
    /// records were already journaled (and serialized) before the
    /// checkpoint, so new pushes start at `base_seq` and the capacity
    /// bound counts the checkpointed prefix. `last_t_ms` is the logical
    /// time of the prefix's last record (0 if the prefix is empty).
    /// Concatenating the stored prefix text with this journal's
    /// [`Journal::to_jsonl`] reproduces the uninterrupted journal byte
    /// for byte.
    pub fn resume(capacity: usize, base_seq: u64, dropped: u64, last_t_ms: u64) -> Self {
        Self {
            records: Vec::new(),
            capacity,
            dropped,
            base: base_seq,
            resume_t_ms: last_t_ms,
        }
    }

    /// Appends one event at logical time `t_ms`.
    pub fn push(&mut self, t_ms: u64, event: Event) {
        if self.base as usize + self.records.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let seq = self.base + self.records.len() as u64;
        self.records.push(JournalRecord { t_ms, seq, event });
    }

    /// All retained records, in insertion order.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Events dropped at the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was journaled.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The capacity bound this journal was constructed with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The sequence number of this journal's first record (nonzero only
    /// for a resumed journal).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Serializes the journal as JSONL: one flat object per line, fixed
    /// field order, floats at fixed precision — identical journals
    /// produce identical bytes. A journal that hit its capacity bound
    /// appends one trailing `"ev":"truncated"` meta line carrying the
    /// dropped-event count, so the loss is visible in the artifact
    /// itself; journals that dropped nothing serialize exactly as
    /// before.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write;
        let mut out = self.records_jsonl();
        if self.dropped > 0 {
            let t_ms = self
                .records
                .last()
                .map(|r| r.t_ms)
                .unwrap_or(self.resume_t_ms);
            let _ = writeln!(
                out,
                "{{\"seq\":{},\"t_ms\":{},\"ev\":\"truncated\",\"dropped\":{}}}",
                self.base + self.records.len() as u64,
                t_ms,
                self.dropped
            );
        }
        out
    }

    /// Serializes only the retained records — no truncation trailer —
    /// for checkpoint prefixes that a resumed journal will continue.
    pub fn records_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 96);
        for r in &self.records {
            render_line(&mut out, r);
        }
        out
    }
}

/// Writes one record's JSONL line (with trailing newline) into `out`.
fn render_line(out: &mut String, r: &JournalRecord) {
    use std::fmt::Write;
    let head = format!(
        "{{\"seq\":{},\"t_ms\":{},\"ev\":\"{}\"",
        r.seq,
        r.t_ms,
        r.event.tag()
    );
    out.push_str(&head);
    let _ = match &r.event {
        Event::Profile {
            id,
            kind,
            trigger,
            key,
            cache,
        } => write!(
            out,
            // The key hash renders as a hex *string*: a bare u64 above
            // i64::MAX would not round-trip through the integer parser.
            ",\"id\":{id},\"kind\":\"{kind}\",\"trigger\":\"{trigger}\",\"key\":\"{key:016x}\",\"cache\":\"{cache}\""
        ),
        Event::Arrival {
            id,
            kind,
            qos,
            sla_drop,
        } => write!(
            out,
            ",\"id\":{id},\"kind\":\"{kind}\",\"qos\":\"{qos}\",\"sla_drop\":{sla_drop:.3}"
        ),
        Event::Place { id, nic, reason } => {
            write!(out, ",\"id\":{id},\"nic\":{nic},\"reason\":\"{reason}\"")
        }
        Event::Margin {
            id,
            nic,
            predicted,
            floor,
        } => write!(
            out,
            ",\"id\":{id},\"nic\":{nic},\"predicted\":{predicted:.3},\"floor\":{floor:.3}"
        ),
        Event::Reject { id, kind, qos } => {
            write!(out, ",\"id\":{id},\"kind\":\"{kind}\",\"qos\":\"{qos}\"")
        }
        Event::Depart { id, nic } => write!(out, ",\"id\":{id},\"nic\":{nic}"),
        Event::Fault { nic, kind } => write!(out, ",\"nic\":{nic},\"kind\":\"{kind}\""),
        Event::Evacuate {
            id,
            from,
            to,
            qos,
            forced,
        } => write!(
            out,
            ",\"id\":{id},\"from\":{from},\"to\":{to},\"qos\":\"{qos}\",\"forced\":{forced}"
        ),
        Event::Park { id, qos, reason } => {
            write!(out, ",\"id\":{id},\"qos\":\"{qos}\",\"reason\":\"{reason}\"")
        }
        Event::Readmit { id, nic, qos } => {
            write!(out, ",\"id\":{id},\"nic\":{nic},\"qos\":\"{qos}\"")
        }
        Event::Violation {
            id,
            nic,
            qos,
            measured,
            floor,
            bottleneck,
        } => write!(
            out,
            ",\"id\":{id},\"nic\":{nic},\"qos\":\"{qos}\",\"measured\":{measured:.3},\"floor\":{floor:.3},\"bottleneck\":\"{bottleneck}\""
        ),
        Event::Migrate {
            victim,
            from,
            to,
            violator,
            bottleneck,
            qos,
            pressure,
        } => write!(
            out,
            ",\"victim\":{victim},\"from\":{from},\"to\":{to},\"violator\":{violator},\"bottleneck\":\"{bottleneck}\",\"qos\":\"{qos}\",\"pressure\":{pressure:.3}"
        ),
        Event::Absorb {
            epoch,
            observations,
        } => write!(out, ",\"epoch\":{epoch},\"observations\":{observations}"),
        Event::Audit {
            epoch,
            occupied,
            violating,
        } => write!(
            out,
            ",\"epoch\":{epoch},\"occupied\":{occupied},\"violating\":{violating}"
        ),
        Event::Epoch {
            t_s,
            active,
            nics_in_use,
            violating,
            migrations,
            wasted_cores,
            oracle_lb,
            parked,
            down,
            obs_queue,
            cache_hit_rate,
        } => write!(
            out,
            ",\"t_s\":{t_s},\"active\":{active},\"nics\":{nics_in_use},\"violating\":{violating},\"migrations\":{migrations},\"wasted_cores\":{wasted_cores},\"oracle_lb\":{oracle_lb},\"parked\":{parked},\"down\":{down},\"obs_queue\":{obs_queue},\"cache_hit_rate\":{cache_hit_rate:.4}"
        ),
    };
    out.push_str("}\n");
}

/// A field value in a parsed journal line.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An integer field (ids, counts, times).
    Int(i64),
    /// A float field (rates, throughputs).
    Num(f64),
    /// A string field (tags, names).
    Str(String),
    /// A boolean field.
    Bool(bool),
}

/// One parsed journal line: `(key, value)` pairs in line order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RawEvent {
    /// The line's fields, in serialization order.
    pub fields: Vec<(String, FieldValue)>,
}

impl RawEvent {
    /// The value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// String field accessor.
    pub fn str(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer field accessor (accepts numeric floats with zero
    /// fraction, which the writer never emits for integer fields).
    pub fn int(&self, key: &str) -> Option<i64> {
        match self.get(key)? {
            FieldValue::Int(i) => Some(*i),
            FieldValue::Num(f) => Some(*f as i64),
            _ => None,
        }
    }

    /// Float field accessor (integers widen).
    pub fn num(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            FieldValue::Num(f) => Some(*f),
            FieldValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The `ev` tag of the line.
    pub fn tag(&self) -> &str {
        self.str("ev").unwrap_or("")
    }
}

/// Parses one line of the journal's own JSONL output. Returns `None` on
/// anything the writer would not have produced (blank lines included).
pub fn parse_line(line: &str) -> Option<RawEvent> {
    let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut out = RawEvent::default();
    let mut rest = body;
    while !rest.is_empty() {
        rest = rest.strip_prefix(',').unwrap_or(rest);
        let (key, after) = take_string(rest)?;
        rest = after.strip_prefix(':')?;
        if let Some(stripped) = rest.strip_prefix('"') {
            let end = stripped.find('"')?;
            out.fields
                .push((key, FieldValue::Str(stripped[..end].to_string())));
            rest = &stripped[end + 1..];
        } else if let Some(stripped) = rest.strip_prefix("true") {
            out.fields.push((key, FieldValue::Bool(true)));
            rest = stripped;
        } else if let Some(stripped) = rest.strip_prefix("false") {
            out.fields.push((key, FieldValue::Bool(false)));
            rest = stripped;
        } else {
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                .unwrap_or(rest.len());
            let tok = &rest[..end];
            let v = if tok.contains('.') || tok.contains('e') || tok.contains('E') {
                FieldValue::Num(tok.parse().ok()?)
            } else {
                FieldValue::Int(tok.parse().ok()?)
            };
            out.fields.push((key, v));
            rest = &rest[end..];
        }
    }
    Some(out)
}

/// Reads a leading `"quoted"` token, returning `(contents, rest)`.
fn take_string(s: &str) -> Option<(String, &str)> {
    let s = s.strip_prefix('"')?;
    let end = s.find('"')?;
    Some((s[..end].to_string(), &s[end + 1..]))
}

/// Parses a whole JSONL journal text into raw events, skipping
/// unparseable lines.
pub fn parse_jsonl(text: &str) -> Vec<RawEvent> {
    text.lines().filter_map(parse_line).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_journal() -> Journal {
        let mut j = Journal::new();
        j.push(
            0,
            // A key above i64::MAX: must survive the round trip (it is
            // serialized as a hex string, not a bare integer).
            Event::Profile {
                id: 3,
                kind: "flowstats",
                trigger: "arrival",
                key: u64::MAX - 1,
                cache: "miss",
            },
        );
        j.push(
            0,
            Event::Arrival {
                id: 3,
                kind: "flowstats",
                qos: "guaranteed",
                sla_drop: 0.1,
            },
        );
        j.push(
            0,
            Event::Place {
                id: 3,
                nic: 7,
                reason: "arrival",
            },
        );
        j.push(
            600_000,
            Event::Violation {
                id: 3,
                nic: 7,
                qos: "guaranteed",
                measured: 81234.5,
                floor: 90_000.0,
                bottleneck: "regex".to_string(),
            },
        );
        j.push(600_000, Event::Depart { id: 3, nic: -1 });
        j
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let j = sample_journal();
        let text = j.to_jsonl();
        assert_eq!(text.lines().count(), 5);
        let parsed = parse_jsonl(&text);
        assert_eq!(parsed.len(), 5, "every line must round-trip");
        assert_eq!(parsed[0].tag(), "profile");
        assert_eq!(parsed[0].str("key"), Some("fffffffffffffffe"));
        assert_eq!(parsed[0].str("cache"), Some("miss"));
        assert_eq!(parsed[1].tag(), "arrival");
        assert_eq!(parsed[1].int("id"), Some(3));
        assert_eq!(parsed[1].str("qos"), Some("guaranteed"));
        assert_eq!(parsed[1].num("sla_drop"), Some(0.1));
        assert_eq!(parsed[3].num("measured"), Some(81234.5));
        assert_eq!(parsed[3].str("bottleneck"), Some("regex"));
        assert_eq!(parsed[4].int("nic"), Some(-1));
        assert_eq!(parsed[2].int("seq"), Some(2));
    }

    #[test]
    fn serialization_is_stable() {
        assert_eq!(sample_journal().to_jsonl(), sample_journal().to_jsonl());
    }

    #[test]
    fn capacity_bound_drops_and_counts() {
        let mut j = Journal::with_capacity(2);
        for i in 0..5 {
            j.push(
                i,
                Event::Depart {
                    id: i as u32,
                    nic: -1,
                },
            );
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 3);
        // The loss is visible in the serialized artifact: one trailing
        // meta line with the dropped count, parseable like any other.
        let text = j.to_jsonl();
        assert_eq!(text.lines().count(), 3);
        let parsed = parse_jsonl(&text);
        assert_eq!(parsed[2].tag(), "truncated");
        assert_eq!(parsed[2].int("dropped"), Some(3));
        assert_eq!(parsed[2].int("seq"), Some(2));
        // An unfilled journal serializes without the trailer.
        assert!(!sample_journal().to_jsonl().contains("truncated"));
    }

    #[test]
    fn resumed_journal_continues_the_sequence_byte_for_byte() {
        // Uninterrupted run: all five events in one journal.
        let whole = sample_journal();
        // Interrupted run: checkpoint after three events, then resume.
        let mut prefix = Journal::new();
        let mut cont = None;
        for (i, r) in whole.records().iter().enumerate() {
            if i == 3 {
                cont = Some(Journal::resume(
                    prefix.capacity(),
                    prefix.len() as u64,
                    prefix.dropped(),
                    prefix.records().last().map(|r| r.t_ms).unwrap_or(0),
                ));
            }
            let j = cont.as_mut().unwrap_or(&mut prefix);
            j.push(r.t_ms, r.event.clone());
        }
        let cont = cont.unwrap();
        assert_eq!(cont.base(), 3);
        assert_eq!(cont.records()[0].seq, 3, "sequence continues past base");
        let stitched = format!("{}{}", prefix.records_jsonl(), cont.to_jsonl());
        assert_eq!(stitched, whole.to_jsonl(), "prefix + continuation bytes");
    }

    #[test]
    fn resumed_journal_honors_the_shared_capacity_bound() {
        // Uninterrupted capped run.
        let mut whole = Journal::with_capacity(2);
        for i in 0..5u64 {
            whole.push(
                i * 10,
                Event::Depart {
                    id: i as u32,
                    nic: -1,
                },
            );
        }
        // Same stream split after the third push (already past capacity).
        let mut prefix = Journal::with_capacity(2);
        for i in 0..3u64 {
            prefix.push(
                i * 10,
                Event::Depart {
                    id: i as u32,
                    nic: -1,
                },
            );
        }
        let mut cont = Journal::resume(
            prefix.capacity(),
            prefix.len() as u64,
            prefix.dropped(),
            prefix.records().last().map(|r| r.t_ms).unwrap_or(0),
        );
        for i in 3..5u64 {
            cont.push(
                i * 10,
                Event::Depart {
                    id: i as u32,
                    nic: -1,
                },
            );
        }
        assert_eq!(cont.len(), 0, "prefix consumed the whole capacity");
        assert_eq!(cont.dropped(), 3);
        let stitched = format!("{}{}", prefix.records_jsonl(), cont.to_jsonl());
        assert_eq!(stitched, whole.to_jsonl(), "trailer seq and t_ms match");
    }

    #[test]
    fn parser_rejects_noise() {
        assert!(parse_line("").is_none());
        assert!(parse_line("not json").is_none());
        assert!(parse_line("{\"unterminated\":\"").is_none());
    }
}
