//! # yala-telemetry — the deterministic observability plane
//!
//! Three layers, cleanly split by determinism contract:
//!
//! * [`metrics`] — a registry of counters/gauges/log-bucketed histograms
//!   whose exports (Prometheus text, JSON) are bit-identical across runs
//!   and thread counts; per-worker shards merge in worker-index order.
//! * [`journal`] — a bounded sim-time event journal (arrivals,
//!   placements with margins, rejections, audits, violations with
//!   diagnosed bottleneck, migrations with victim rationale, faults,
//!   evacuations, park/readmit, cache hits/misses, absorb passes),
//!   stamped at logical event time so it is replay-deterministic, and
//!   serialized as JSONL.
//! * [`wallclock`] — the *optional* real-time layer (decision-latency
//!   quantiles via a seeded reservoir, phase timings, events/sec),
//!   excluded from every determinism comparison.
//!
//! The [`Telemetry`] handle ties them together and is **zero-cost when
//! disabled**: a disabled handle is a `None` behind one branch, no
//! allocation, no event construction (the journaling API takes
//! closures), and instrumented code paths compute exactly what the
//! uninstrumented ones did. DRST-style non-intrusive observation: the
//! dataplane never changes behavior because someone is watching.
//!
//! [`inspect`] loads a serialized journal back and renders per-epoch
//! timelines, per-tenant lifecycle stories, "why" queries, and
//! metric exports reconstructed from the event stream.

pub mod inspect;
pub mod journal;
pub mod metrics;
pub mod wallclock;

pub use inspect::Inspector;
pub use journal::{parse_jsonl, parse_line, Event, Journal, JournalRecord, RawEvent};
pub use metrics::{Histogram, MetricsRegistry};
pub use wallclock::{Reservoir, WallClock};

use std::time::Instant;

/// The enabled half of a [`Telemetry`] handle.
#[derive(Debug)]
pub struct TelemetrySink {
    /// The deterministic metrics registry.
    pub metrics: MetricsRegistry,
    /// The deterministic sim-time journal.
    pub journal: Journal,
    /// The non-deterministic wall-clock layer, if requested.
    pub wall: Option<WallClock>,
}

/// The observability handle instrumented code threads along: either a
/// no-op sink (`disabled`) or a live one. Every method is one branch on
/// the `Option` when disabled; event payloads are built lazily via
/// closures so the disabled path never allocates.
#[derive(Debug, Default)]
pub struct Telemetry {
    inner: Option<Box<TelemetrySink>>,
}

impl Telemetry {
    /// The no-op sink: every call is a skipped branch.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live sink recording metrics and the sim-time journal (no
    /// wall-clock layer: exports stay fully deterministic).
    pub fn enabled() -> Self {
        Self {
            inner: Some(Box::new(TelemetrySink {
                metrics: MetricsRegistry::new(),
                journal: Journal::new(),
                wall: None,
            })),
        }
    }

    /// A live sink that additionally samples wall-clock latencies with a
    /// reservoir seeded from `seed`.
    pub fn with_wallclock(seed: u64) -> Self {
        let mut t = Self::enabled();
        t.inner.as_mut().expect("just enabled").wall = Some(WallClock::new(seed));
        t
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Journals an event at logical time `t_ms`. The closure only runs
    /// when enabled, so building string-bearing events costs nothing on
    /// the disabled path.
    #[inline]
    pub fn rec<F: FnOnce() -> Event>(&mut self, t_ms: u64, build: F) {
        if let Some(s) = self.inner.as_deref_mut() {
            s.journal.push(t_ms, build());
        }
    }

    /// Adds `by` to counter `name`.
    #[inline]
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some(s) = self.inner.as_deref_mut() {
            s.metrics.inc(name, by);
        }
    }

    /// Sets gauge `name`.
    #[inline]
    pub fn gauge(&mut self, name: &str, v: f64) {
        if let Some(s) = self.inner.as_deref_mut() {
            s.metrics.set_gauge(name, v);
        }
    }

    /// Observes `v` into log2 histogram `name` (spec `(start, buckets)`,
    /// consistent per name).
    #[inline]
    pub fn observe_log2(&mut self, name: &str, start: f64, buckets: usize, v: f64) {
        if let Some(s) = self.inner.as_deref_mut() {
            s.metrics.observe_log2(name, start, buckets, v);
        }
    }

    /// Merges a worker shard into the registry (call in worker-index
    /// order).
    pub fn merge_shard(&mut self, shard: &MetricsRegistry) {
        if let Some(s) = self.inner.as_deref_mut() {
            s.metrics.merge(shard);
        }
    }

    /// Counts one simulation event on the wall clock.
    #[inline]
    pub fn wall_tick(&mut self) {
        if let Some(w) = self.wall_mut() {
            w.tick();
        }
    }

    /// Starts a wall-clock span; `None` when no wall clock is attached,
    /// so the disabled path never reads the clock.
    #[inline]
    pub fn wall_start(&self) -> Option<Instant> {
        match &self.inner {
            Some(s) if s.wall.is_some() => Some(Instant::now()),
            _ => None,
        }
    }

    /// Ends a decision-latency span started with [`Self::wall_start`].
    #[inline]
    pub fn wall_decision(&mut self, t0: Option<Instant>) {
        if let (Some(w), Some(t0)) = (self.wall_mut(), t0) {
            w.decision(t0);
        }
    }

    /// Ends a phase span started with [`Self::wall_start`].
    #[inline]
    pub fn wall_phase(&mut self, name: &'static str, t0: Option<Instant>) {
        if let (Some(w), Some(t0)) = (self.wall_mut(), t0) {
            w.phase(name, t0);
        }
    }

    /// The live sink, if enabled (read access to metrics/journal/wall).
    pub fn sink(&self) -> Option<&TelemetrySink> {
        self.inner.as_deref()
    }

    /// Mutable access to the live sink, if enabled.
    pub fn sink_mut(&mut self) -> Option<&mut TelemetrySink> {
        self.inner.as_deref_mut()
    }

    fn wall_mut(&mut self) -> Option<&mut WallClock> {
        self.inner.as_deref_mut().and_then(|s| s.wall.as_mut())
    }
}

/// FNV-1a over bytes: a stable, process-independent 64-bit hash for
/// telemetry keys (std's `DefaultHasher` is randomized per process and
/// would break journal determinism across runs).
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let mut t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.rec(0, || panic!("must not build events when disabled"));
        t.inc("x", 1);
        t.gauge("g", 1.0);
        t.observe_log2("h", 1.0, 4, 1.0);
        t.wall_tick();
        assert!(t.wall_start().is_none());
        assert!(t.sink().is_none());
    }

    #[test]
    fn enabled_handle_records_into_both_planes() {
        let mut t = Telemetry::enabled();
        t.rec(5, || Event::Depart { id: 1, nic: -1 });
        t.inc("fleet.arrivals", 2);
        assert!(t.wall_start().is_none(), "no wall clock unless requested");
        let s = t.sink().unwrap();
        assert_eq!(s.journal.len(), 1);
        assert_eq!(s.metrics.counter("fleet.arrivals"), 2);
        assert!(s.wall.is_none());
    }

    #[test]
    fn wallclock_layer_is_opt_in_and_separate() {
        let mut t = Telemetry::with_wallclock(9);
        let t0 = t.wall_start();
        assert!(t0.is_some());
        t.wall_decision(t0);
        t.wall_tick();
        let s = t.sink().unwrap();
        let w = s.wall.as_ref().unwrap();
        assert!(w.summary().contains("events"));
        // The deterministic exports know nothing about the wall layer.
        assert!(s.metrics.is_empty());
        assert!(s.journal.is_empty());
    }

    #[test]
    fn stable_hash_is_stable() {
        assert_eq!(stable_hash64(b"abc"), stable_hash64(b"abc"));
        assert_ne!(stable_hash64(b"abc"), stable_hash64(b"abd"));
        // Pinned value: must never drift across versions/processes.
        assert_eq!(stable_hash64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
