//! # yala-slomo — the SLOMO baseline (SIGCOMM'20)
//!
//! SLOMO is the state-of-the-art *memory-only* contention-aware performance
//! predictor the paper compares against (§7.1): a gradient-boosting
//! regressor over the competitors' aggregate performance counters
//! (Table 11), trained under synthetic memory contention at a fixed traffic
//! profile, with *sensitivity extrapolation* to adapt to moderate traffic
//! shifts.
//!
//! Faithful to the paper's baseline setup:
//!
//! * Training co-runs the target with `mem-bench` swept over (CAR, WSS)
//!   levels; features are mem-bench's solo counter vector.
//! * Prediction aggregates the competitors' solo counters and queries the
//!   GBR. Accelerator contention is invisible to it — by design, this is
//!   the gap Yala closes (Fig. 2a).
//! * When the test traffic profile differs from the training one,
//!   [`SlomoModel::predict_extrapolated`] rescales by the solo-throughput
//!   ratio (Section 6 of the SLOMO paper, as used in §7.1 here). This works
//!   for small deviations and degrades for large ones (Fig. 7b).

use yala_core::engine::{scenario_seed, simulator_for, Engine};
use yala_core::observe::{Observation, Refinable};
use yala_core::ModelBank;
use yala_ml::{Dataset, GbrParams, GradientBoostingRegressor};
use yala_nf::NfKind;
use yala_sim::{CounterSample, NicSpec, Simulator, WorkloadSpec};

/// A (CAR, WSS, compute-intensity) contention level for the training sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemLevel {
    /// mem-bench target cache-access rate, refs/s.
    pub car: f64,
    /// mem-bench working-set size, bytes.
    pub wss: f64,
    /// mem-bench compute cycles per iteration (decorrelates IPC/IRT from
    /// CAR so the GBR learns the causal counters).
    pub cycles: f64,
}

impl MemLevel {
    /// The mem-bench workload realising this level.
    pub fn bench(&self) -> WorkloadSpec {
        yala_nf::bench::mem_bench_with_cycles(self.car, self.wss, self.cycles)
    }
}

/// The default training grid: 10 CAR levels × 6 working-set sizes, with
/// rotating compute intensity.
pub fn default_mem_grid() -> Vec<MemLevel> {
    let mut grid = Vec::new();
    for i in 0..10 {
        let car = 2.0e7 + i as f64 * 3.0e7; // 20 M .. 290 M refs/s
        for (j, wss_mb) in [0.5f64, 1.0, 2.0, 4.0, 8.0, 12.0].into_iter().enumerate() {
            let cycles = [60.0, 600.0, 2_400.0][(i + j) % 3];
            grid.push(MemLevel {
                car,
                wss: wss_mb * 1e6,
                cycles,
            });
        }
    }
    grid
}

/// Measures mem-bench's solo counter vector at a contention level — the
/// feature vector SLOMO-style models use for that level.
pub fn bench_features(sim: &mut Simulator, level: MemLevel) -> CounterSample {
    sim.solo(&level.bench()).counters
}

/// A trained SLOMO model for one target NF. Like the Yala memory model,
/// it retains its training dataset and fit parameters so in-production
/// audit observations can be absorbed later ([`Refinable::refine`]) via
/// a deterministic refit over the extended dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SlomoModel {
    gbr: GradientBoostingRegressor,
    /// Solo throughput at the training traffic profile.
    solo_tput_train: f64,
    dataset: Dataset,
    params: GbrParams,
    seed: u64,
    refits: u32,
}

impl SlomoModel {
    /// Trains SLOMO for `target` (a workload profiled at the training
    /// traffic profile) by sweeping mem-bench over `grid`.
    ///
    /// # Panics
    ///
    /// Panics if `grid` is empty.
    pub fn train(sim: &mut Simulator, target: &WorkloadSpec, grid: &[MemLevel], seed: u64) -> Self {
        assert!(!grid.is_empty(), "empty training grid");
        let solo_tput_train = sim.solo(target).throughput_pps;
        let mut ds = Dataset::new(7);
        // Include the uncontended point so the model anchors at solo.
        ds.push(&CounterSample::default().as_features(), solo_tput_train);
        for &level in grid {
            let features = bench_features(sim, level);
            let report = sim.co_run(&[target.clone(), level.bench()]);
            ds.push(&features.as_features(), report.outcomes[0].throughput_pps);
        }
        let params = GbrParams {
            n_estimators: 300,
            learning_rate: 0.05,
            ..GbrParams::default()
        };
        let gbr = GradientBoostingRegressor::fit(&ds, &params, seed);
        Self {
            gbr,
            solo_tput_train,
            dataset: ds,
            params,
            seed,
            refits: 0,
        }
    }

    /// Trains SLOMO with the (CAR, WSS) sweep dispatched across `engine`'s
    /// worker pool: the solo anchor and each grid level are independent
    /// co-run scenarios, each measured on a private simulator seeded
    /// `scenario_seed(seed, scenario)` (noise-free when `noise_sigma` is
    /// 0). The assembled dataset — and therefore the fitted model — is a
    /// pure function of the inputs: bit-identical whether `engine` is
    /// sequential or parallel, while the sweep's wall-clock scales with
    /// core count.
    ///
    /// # Panics
    ///
    /// Panics if `grid` is empty.
    pub fn train_with_engine(
        spec: &NicSpec,
        noise_sigma: f64,
        target: &WorkloadSpec,
        grid: &[MemLevel],
        seed: u64,
        engine: &Engine,
    ) -> Self {
        assert!(!grid.is_empty(), "empty training grid");
        // Scenario 0 anchors at solo; scenario i+1 measures grid[i].
        let rows: Vec<([f64; 7], f64)> = engine.run(grid.len() + 1, |i| {
            let mut sim = simulator_for(spec, noise_sigma, scenario_seed(seed, i));
            if i == 0 {
                (
                    CounterSample::default().as_features(),
                    sim.solo(target).throughput_pps,
                )
            } else {
                let level = grid[i - 1];
                let features = bench_features(&mut sim, level);
                let report = sim.co_run(&[target.clone(), level.bench()]);
                (features.as_features(), report.outcomes[0].throughput_pps)
            }
        });
        let solo_tput_train = rows[0].1;
        let mut ds = Dataset::new(7);
        for (x, t) in &rows {
            ds.push(x, *t);
        }
        let params = GbrParams {
            n_estimators: 300,
            learning_rate: 0.05,
            ..GbrParams::default()
        };
        let gbr = GradientBoostingRegressor::fit(&ds, &params, seed);
        Self {
            gbr,
            solo_tput_train,
            dataset: ds,
            params,
            seed,
            refits: 0,
        }
    }

    /// Predicts the target's throughput when co-located with competitors
    /// whose aggregate solo counters are `competitors`.
    pub fn predict(&self, competitors: &CounterSample) -> f64 {
        self.gbr.predict(&competitors.as_features()).max(0.0)
    }

    /// Prediction with sensitivity extrapolation: rescales the fixed-profile
    /// prediction by the ratio of solo throughputs between the test and
    /// training traffic profiles.
    pub fn predict_extrapolated(&self, competitors: &CounterSample, solo_tput_test: f64) -> f64 {
        assert!(solo_tput_test > 0.0, "solo throughput must be positive");
        self.predict(competitors) * solo_tput_test / self.solo_tput_train
    }

    /// Solo throughput captured at training time.
    pub fn solo_tput_train(&self) -> f64 {
        self.solo_tput_train
    }

    /// How many online refit passes the model has absorbed (0 = the
    /// offline train-once state).
    pub fn refits(&self) -> u32 {
        self.refits
    }
}

impl Refinable for SlomoModel {
    /// Absorbs audited co-run outcomes. SLOMO's worldview is a fixed
    /// profile with sensitivity extrapolation, so an observation at the
    /// NF's live traffic is mapped back to the training profile by
    /// inverting the extrapolation — `T_train = T_measured · solo_train /
    /// solo_live` — and appended as a (competitor counters → throughput)
    /// row; the GBR is then re-fitted once with the original parameters
    /// and seed. Accelerator pressure stays invisible, faithful to the
    /// baseline: the refit absorbs accel-induced drops into the memory
    /// response (and inherits that attribution error). Returns rows
    /// absorbed; an empty or all-degenerate slice is a strict no-op.
    fn refine(&mut self, observations: &[&Observation]) -> usize {
        let mut absorbed = 0usize;
        for o in observations {
            if o.solo_tput <= 0.0 || o.measured_tput <= 0.0 || !o.measured_tput.is_finite() {
                continue;
            }
            // Measurement noise can push an audited outcome above solo;
            // never teach the model a physically impossible regime.
            let measured = o.measured_tput.min(o.solo_tput);
            let implied_train = measured * self.solo_tput_train / o.solo_tput;
            if !implied_train.is_finite() {
                continue;
            }
            self.dataset
                .push(&o.competitors.as_features(), implied_train);
            absorbed += 1;
        }
        if absorbed == 0 {
            return 0;
        }
        self.gbr = GradientBoostingRegressor::fit(&self.dataset, &self.params, self.seed);
        self.refits += 1;
        absorbed
    }
}

/// Trains a per-NIC-model SLOMO bank: one model per `(NIC model, NF)`
/// cell of the profiling matrix ([`NfKind::profiled_on`]), each at the
/// SLOMO training traffic profile (the default), with the `(CAR, WSS)`
/// sweep of every cell dispatched across `engine`'s workers. Cells are
/// enumerated model-major and seeded `scenario_seed(seed, cell_index)`,
/// so a single-spec portfolio reproduces the homogeneous per-kind
/// training exactly and the bank is bit-identical across thread counts.
///
/// # Panics
///
/// Panics if two specs share a model name.
pub fn train_slomo_bank(
    specs: &[NicSpec],
    noise_sigma: f64,
    kinds: &[NfKind],
    grid: &[MemLevel],
    seed: u64,
    engine: &Engine,
) -> ModelBank<SlomoModel> {
    let mut bank = ModelBank::new();
    // The shared model-major cell enumeration keeps the cell-index
    // seeding in lockstep with the Yala bank; cells run sequentially
    // here because each one's (CAR, WSS) sweep already fans out across
    // the engine.
    for (cell, &(s, kind)) in yala_core::bank::matrix_cells(specs, kinds)
        .iter()
        .enumerate()
    {
        let spec = &specs[s];
        let target = yala_core::profiler::cached_workload(
            kind,
            yala_traffic::TrafficProfile::default(),
            kind as usize as u64,
        );
        let model = SlomoModel::train_with_engine(
            spec,
            noise_sigma,
            &target,
            grid,
            scenario_seed(seed, cell),
            engine,
        );
        bank.insert(spec.model(), kind, model);
    }
    bank
}

/// Aggregates the solo counters of a competitor set into SLOMO's feature
/// vector.
pub fn aggregate_competitors(counters: &[CounterSample]) -> CounterSample {
    CounterSample::aggregate(counters.iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_ml::metrics;
    use yala_nf::bench::mem_bench;
    use yala_nf::NfKind;
    use yala_sim::NicSpec;
    use yala_traffic::TrafficProfile;

    fn sim() -> Simulator {
        Simulator::with_noise(NicSpec::bluefield2(), 0.005, 42)
    }

    #[test]
    fn accurate_under_memory_only_contention() {
        // Paper §2.2.1: "<10% average prediction error for memory-only
        // contention" — our SLOMO must reproduce that.
        let mut sim = sim();
        let target = NfKind::FlowStats.workload(TrafficProfile::default(), 1);
        let model = SlomoModel::train(&mut sim, &target, &default_mem_grid(), 7);
        // Held-out memory contention levels (off-grid).
        let mut truth = Vec::new();
        let mut pred = Vec::new();
        for &(car, wss) in &[
            (4.5e7, 3.0e6),
            (1.1e8, 5.0e6),
            (2.2e8, 9.0e6),
            (7.0e7, 0.8e6),
        ] {
            let level = MemLevel {
                car,
                wss,
                cycles: 600.0,
            };
            let features = bench_features(&mut sim, level);
            let report = sim.co_run(&[target.clone(), mem_bench(car, wss)]);
            truth.push(report.outcomes[0].throughput_pps);
            pred.push(model.predict(&features));
        }
        let mape = metrics::mape(&truth, &pred);
        assert!(mape < 10.0, "SLOMO memory-only MAPE {mape}");
    }

    #[test]
    fn blind_to_regex_contention() {
        // The motivating failure (Fig. 2a): regex contention changes the
        // truth but not SLOMO's features/prediction.
        let mut sim = sim();
        let target = NfKind::FlowMonitor.workload(TrafficProfile::default(), 1);
        let model = SlomoModel::train(&mut sim, &target, &default_mem_grid(), 7);
        let regex_hog = yala_nf::bench::regex_bench(5.0e6, 1446.0, 2000.0);
        let truth = sim.co_run(&[target.clone(), regex_hog]).outcomes[0].throughput_pps;
        // SLOMO sees (almost) no memory contentiousness from regex-bench.
        let features = sim
            .solo(&yala_nf::bench::regex_bench(5.0e6, 1446.0, 2000.0))
            .counters;
        let pred = model.predict(&features);
        let err = metrics::ape(truth, pred);
        assert!(
            err > 15.0,
            "SLOMO should be badly wrong under regex contention, err {err}"
        );
    }

    #[test]
    fn extrapolation_scales_with_solo() {
        let mut sim = sim();
        let target = NfKind::FlowStats.workload(TrafficProfile::default(), 1);
        let model = SlomoModel::train(&mut sim, &target, &default_mem_grid(), 7);
        let c = CounterSample::default();
        let base = model.predict(&c);
        let scaled = model.predict_extrapolated(&c, model.solo_tput_train() * 0.5);
        assert!((scaled - base * 0.5).abs() / base < 1e-9);
    }

    #[test]
    fn aggregate_is_elementwise_sum() {
        let a = CounterSample {
            l2crd: 1.0,
            ..Default::default()
        };
        let b = CounterSample {
            l2crd: 2.0,
            ..Default::default()
        };
        assert_eq!(aggregate_competitors(&[a, b]).l2crd, 3.0);
    }

    #[test]
    #[should_panic(expected = "empty training grid")]
    fn empty_grid_panics() {
        let mut sim = sim();
        let target = NfKind::Acl.workload(TrafficProfile::default(), 1);
        SlomoModel::train(&mut sim, &target, &[], 0);
    }

    #[test]
    fn refine_absorbs_observations_and_empty_is_noop() {
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let target = NfKind::FlowStats.workload(TrafficProfile::default(), 1);
        let grid: Vec<MemLevel> = default_mem_grid().into_iter().step_by(5).collect();
        let mut model = SlomoModel::train(&mut sim, &target, &grid, 7);
        let frozen = model.clone();
        // Empty refine: bit-identical no-op.
        assert_eq!(model.refine(&[]), 0);
        assert_eq!(model, frozen);
        // Production says a heavy competitor really costs far more than
        // the mem-bench sweep suggested: predictions must move toward it.
        let heavy = CounterSample {
            l2crd: 2.5e8,
            l2cwr: 2.5e8,
            wss: 1.2e7,
            memrd: 2e7,
            memwr: 2e7,
            ipc: 0.5,
            irt: 5e8,
        };
        let before = model.predict(&heavy);
        let observed = before * 0.3;
        let obs: Vec<yala_core::Observation> = (0..12)
            .map(|_| yala_core::Observation {
                model: NicSpec::bluefield2().model(),
                kind: NfKind::FlowStats,
                traffic: TrafficProfile::default(),
                competitors: heavy,
                accel_pressure: Vec::new(),
                solo_tput: model.solo_tput_train(),
                measured_tput: observed,
            })
            .collect();
        let refs: Vec<&yala_core::Observation> = obs.iter().collect();
        assert_eq!(model.refine(&refs), 12);
        assert_eq!(model.refits(), 1);
        let after = model.predict(&heavy);
        assert!(
            (after - observed).abs() < (before - observed).abs(),
            "refit must move toward the observed outcome: {before} -> {after} vs {observed}"
        );
        // Deterministic: a second clone absorbing the same slice agrees.
        let mut again = frozen;
        again.refine(&refs);
        assert_eq!(again, model);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_sequential() {
        let spec = NicSpec::bluefield2();
        let target = NfKind::FlowStats.workload(TrafficProfile::default(), 1);
        let grid: Vec<MemLevel> = default_mem_grid().into_iter().step_by(4).collect();
        let seq =
            SlomoModel::train_with_engine(&spec, 0.005, &target, &grid, 7, &Engine::sequential());
        let par = SlomoModel::train_with_engine(
            &spec,
            0.005,
            &target,
            &grid,
            7,
            &Engine::with_threads(4),
        );
        assert_eq!(seq.solo_tput_train(), par.solo_tput_train());
        // The fitted models must agree bitwise on arbitrary queries.
        let mut sim = sim();
        for level in [
            MemLevel {
                car: 5e7,
                wss: 2e6,
                cycles: 60.0,
            },
            MemLevel {
                car: 2.4e8,
                wss: 10e6,
                cycles: 2_400.0,
            },
        ] {
            let f = bench_features(&mut sim, level);
            assert_eq!(seq.predict(&f), par.predict(&f));
        }
    }

    #[test]
    fn engine_trained_model_predicts_like_sequential_training() {
        // train_with_engine assembles the same (solo anchor + grid) dataset
        // as train(); with a noise-free simulator the two paths measure
        // identical rows and must fit bitwise-equal models.
        let spec = NicSpec::bluefield2();
        let target = NfKind::Acl.workload(TrafficProfile::default(), 2);
        let grid: Vec<MemLevel> = default_mem_grid().into_iter().step_by(6).collect();
        let engine_model =
            SlomoModel::train_with_engine(&spec, 0.0, &target, &grid, 9, &Engine::with_threads(2));
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let reference = SlomoModel::train(&mut sim, &target, &grid, 9);
        assert_eq!(engine_model.solo_tput_train(), reference.solo_tput_train());
        let probe = CounterSample {
            l2crd: 1e8,
            ..Default::default()
        };
        assert_eq!(engine_model.predict(&probe), reference.predict(&probe));
    }
}
