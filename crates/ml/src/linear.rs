//! Ordinary least squares linear regression.
//!
//! Yala fits the accelerator service-time law `t_j = t_{j,0} + a_j * m_j`
//! (Eq. 4 in the paper) with linear regression; this module provides an OLS
//! solver via the normal equations with partial-pivot Gaussian elimination
//! and an optional ridge term for numerical safety.

use crate::Dataset;
use serde::{Deserialize, Serialize};

/// A fitted linear model `y = intercept + coefficients · x`.
///
/// # Example
///
/// ```
/// use yala_ml::{Dataset, LinearRegression};
/// let mut ds = Dataset::new(1);
/// for i in 0..10 {
///     let x = i as f64;
///     ds.push(&[x], 2.0 * x + 1.0);
/// }
/// let m = LinearRegression::fit(&ds).unwrap();
/// assert!((m.coefficients()[0] - 2.0).abs() < 1e-9);
/// assert!((m.intercept() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    intercept: f64,
    coefficients: Vec<f64>,
}

/// Error returned when the normal-equation system is singular even after
/// ridge regularisation (e.g. all-constant features with zero rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FitLinearError;

impl std::fmt::Display for FitLinearError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "linear system is singular; cannot fit linear regression")
    }
}

impl std::error::Error for FitLinearError {}

impl LinearRegression {
    /// Fits OLS coefficients on `ds`.
    ///
    /// # Errors
    ///
    /// Returns [`FitLinearError`] if the design matrix is singular (fewer
    /// independent rows than features).
    pub fn fit(ds: &Dataset) -> Result<Self, FitLinearError> {
        Self::fit_ridge(ds, 0.0)
    }

    /// Fits with an L2 penalty `lambda` on the coefficients (not on the
    /// intercept). `lambda = 0` is plain OLS.
    ///
    /// # Errors
    ///
    /// Returns [`FitLinearError`] if the (regularised) system is singular.
    pub fn fit_ridge(ds: &Dataset, lambda: f64) -> Result<Self, FitLinearError> {
        assert!(lambda >= 0.0, "ridge penalty must be non-negative");
        let p = ds.n_features() + 1; // +1 for the intercept column
        let n = ds.len();
        if n == 0 {
            return Err(FitLinearError);
        }
        // Normal equations: (X^T X + lambda I') beta = X^T y, with the
        // intercept as an implicit all-ones leading column.
        let mut xtx = vec![0.0f64; p * p];
        let mut xty = vec![0.0f64; p];
        let mut xi = vec![0.0f64; p];
        for (row, y) in ds.rows() {
            xi[0] = 1.0;
            xi[1..].copy_from_slice(row);
            for a in 0..p {
                xty[a] += xi[a] * y;
                for b in a..p {
                    xtx[a * p + b] += xi[a] * xi[b];
                }
            }
        }
        // Mirror the upper triangle and add the ridge term (skip intercept).
        for a in 0..p {
            for b in 0..a {
                xtx[a * p + b] = xtx[b * p + a];
            }
        }
        for a in 1..p {
            xtx[a * p + a] += lambda;
        }
        let beta = solve_dense(&mut xtx, &mut xty, p).ok_or(FitLinearError)?;
        Ok(Self {
            intercept: beta[0],
            coefficients: beta[1..].to_vec(),
        })
    }

    /// Predicted value for a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted feature count.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coefficients.len(), "feature width mismatch");
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(x)
                .map(|(c, v)| c * v)
                .sum::<f64>()
    }

    /// The fitted intercept term.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The fitted coefficient vector (one entry per feature).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }
}

/// Solves `A x = b` for dense row-major `A` (n×n) by Gaussian elimination
/// with partial pivoting. Returns `None` for singular systems. `A` and `b`
/// are clobbered.
fn solve_dense(a: &mut [f64], b: &mut [f64], n: usize) -> Option<Vec<f64>> {
    const EPS: f64 = 1e-12;
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for r in col + 1..n {
            let v = a[r * n + col].abs();
            if v > best {
                best = v;
                pivot = r;
            }
        }
        if best < EPS {
            return None;
        }
        if pivot != col {
            for c in 0..n {
                a.swap(col * n + c, pivot * n + c);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * n + col];
        for r in col + 1..n {
            let factor = a[r * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                a[r * n + c] -= factor * a[col * n + c];
            }
            b[r] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in col + 1..n {
            acc -= a[col * n + c] * x[c];
        }
        x[col] = acc / a[col * n + col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-8
    }

    #[test]
    fn exact_line() {
        let mut ds = Dataset::new(1);
        for i in 0..20 {
            let x = i as f64 * 0.5;
            ds.push(&[x], -4.0 * x + 7.0);
        }
        let m = LinearRegression::fit(&ds).unwrap();
        assert!(close(m.coefficients()[0], -4.0));
        assert!(close(m.intercept(), 7.0));
        assert!(close(m.predict(&[2.0]), -1.0));
    }

    #[test]
    fn two_features() {
        let mut ds = Dataset::new(2);
        for i in 0..10 {
            for j in 0..10 {
                let (x0, x1) = (i as f64, j as f64);
                ds.push(&[x0, x1], 2.0 * x0 - 3.0 * x1 + 0.5);
            }
        }
        let m = LinearRegression::fit(&ds).unwrap();
        assert!(close(m.coefficients()[0], 2.0));
        assert!(close(m.coefficients()[1], -3.0));
        assert!(close(m.intercept(), 0.5));
    }

    #[test]
    fn singular_system_errors() {
        // Two identical feature columns + too few rows -> singular.
        let mut ds = Dataset::new(2);
        ds.push(&[1.0, 1.0], 1.0);
        ds.push(&[2.0, 2.0], 2.0);
        ds.push(&[3.0, 3.0], 3.0);
        assert!(LinearRegression::fit(&ds).is_err());
        // Ridge rescues it.
        assert!(LinearRegression::fit_ridge(&ds, 1e-6).is_ok());
    }

    #[test]
    fn empty_dataset_errors() {
        let ds = Dataset::new(1);
        assert!(LinearRegression::fit(&ds).is_err());
    }

    #[test]
    fn least_squares_beats_any_other_line() {
        // With noise, the OLS fit must have residual sum <= a perturbed line.
        let mut ds = Dataset::new(1);
        let mut noise = 0.37;
        for i in 0..50 {
            let x = i as f64;
            noise = (noise * 997.0_f64).fract() - 0.5; // deterministic pseudo-noise
            ds.push(&[x], 1.5 * x + noise);
        }
        let m = LinearRegression::fit(&ds).unwrap();
        let rss = |slope: f64, icpt: f64| -> f64 {
            ds.rows()
                .map(|(x, y)| (y - (slope * x[0] + icpt)).powi(2))
                .sum()
        };
        let best = rss(m.coefficients()[0], m.intercept());
        assert!(best <= rss(m.coefficients()[0] + 0.01, m.intercept()));
        assert!(best <= rss(m.coefficients()[0], m.intercept() + 0.1));
    }
}
