//! Gradient boosting regression (least-squares loss).
//!
//! Mirrors the parts of sklearn's `GradientBoostingRegressor` that SLOMO and
//! Yala rely on: an additive ensemble of shallow CART trees fitted to
//! residuals, with shrinkage (`learning_rate`) and optional stochastic
//! subsampling. Deterministic for a fixed seed.

use crate::tree::{RegressionTree, TreeParams};
use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`GradientBoostingRegressor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbrParams {
    /// Number of boosting stages. sklearn default: 100.
    pub n_estimators: usize,
    /// Shrinkage applied to each stage's contribution. sklearn default: 0.1.
    pub learning_rate: f64,
    /// Fraction of rows sampled (without replacement) per stage; 1.0 = all.
    pub subsample: f64,
    /// Parameters of the per-stage trees.
    pub tree: TreeParams,
}

impl Default for GbrParams {
    fn default() -> Self {
        Self {
            n_estimators: 100,
            learning_rate: 0.1,
            subsample: 1.0,
            tree: TreeParams::default(),
        }
    }
}

/// A fitted gradient-boosted ensemble.
///
/// # Example
///
/// ```
/// use yala_ml::{Dataset, GbrParams, GradientBoostingRegressor};
/// let mut ds = Dataset::new(2);
/// for i in 0..20 {
///     for j in 0..20 {
///         let (a, b) = (i as f64, j as f64);
///         ds.push(&[a, b], a * 2.0 + (b - 10.0).abs());
///     }
/// }
/// let model = GradientBoostingRegressor::fit(&ds, &GbrParams::default(), 42);
/// let err = (model.predict(&[5.0, 10.0]) - 10.0).abs();
/// assert!(err < 1.0, "err={err}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoostingRegressor {
    base: f64,
    learning_rate: f64,
    stages: Vec<RegressionTree>,
    n_features: usize,
}

impl GradientBoostingRegressor {
    /// Fits the ensemble on `ds`.
    ///
    /// # Panics
    ///
    /// Panics if `ds` is empty or `params.subsample` is outside `(0, 1]`.
    pub fn fit(ds: &Dataset, params: &GbrParams, seed: u64) -> Self {
        assert!(!ds.is_empty(), "cannot fit GBR on an empty dataset");
        assert!(
            params.subsample > 0.0 && params.subsample <= 1.0,
            "subsample must be in (0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let base = ds.target_mean();
        let mut current: Vec<f64> = vec![base; ds.len()];
        let mut stages = Vec::with_capacity(params.n_estimators);
        let sample_size = ((ds.len() as f64) * params.subsample).ceil() as usize;
        let residual_ds_rows: Vec<usize> = (0..ds.len()).collect();

        for _ in 0..params.n_estimators {
            // Residuals of the squared loss are just y - F(x).
            let rows: Vec<usize> = if params.subsample < 1.0 {
                sample_without_replacement(&mut rng, ds.len(), sample_size)
            } else {
                residual_ds_rows.clone()
            };
            let mut stage_ds = Dataset::new(ds.n_features());
            for &i in &rows {
                stage_ds.push(ds.row(i), ds.target(i) - current[i]);
            }
            let tree = RegressionTree::fit(&stage_ds, &params.tree);
            // Update F on *all* rows (not just the subsample).
            for (i, cur) in current.iter_mut().enumerate() {
                *cur += params.learning_rate * tree.predict(ds.row(i));
            }
            stages.push(tree);
        }
        Self {
            base,
            learning_rate: params.learning_rate,
            stages,
            n_features: ds.n_features(),
        }
    }

    /// Predicted value for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training feature count.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features, "feature width mismatch");
        let mut acc = self.base;
        for tree in &self.stages {
            acc += self.learning_rate * tree.predict(x);
        }
        acc
    }

    /// Predictions for every row of `ds`.
    pub fn predict_dataset(&self, ds: &Dataset) -> Vec<f64> {
        ds.rows().map(|(x, _)| self.predict(x)).collect()
    }

    /// Number of fitted boosting stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// The constant (mean) prediction the ensemble starts from.
    pub fn base_prediction(&self) -> f64 {
        self.base
    }
}

/// `k` distinct indices from `0..n`, Fisher–Yates over a scratch vector.
fn sample_without_replacement(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n).max(1);
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    fn grid_ds(f: impl Fn(f64, f64) -> f64) -> Dataset {
        let mut ds = Dataset::new(2);
        for i in 0..25 {
            for j in 0..25 {
                let (a, b) = (i as f64, j as f64);
                ds.push(&[a, b], f(a, b));
            }
        }
        ds
    }

    #[test]
    fn fits_additive_function() {
        let ds = grid_ds(|a, b| 3.0 * a + 0.5 * b + 10.0);
        let model = GradientBoostingRegressor::fit(&ds, &GbrParams::default(), 1);
        let preds = model.predict_dataset(&ds);
        assert!(metrics::mape(ds.targets(), &preds) < 3.0);
    }

    #[test]
    fn fits_interaction() {
        // Piecewise interaction that a linear model cannot capture.
        let ds = grid_ds(|a, b| if a > 12.0 && b > 12.0 { 50.0 } else { 100.0 });
        let model = GradientBoostingRegressor::fit(&ds, &GbrParams::default(), 1);
        assert!((model.predict(&[20.0, 20.0]) - 50.0).abs() < 5.0);
        assert!((model.predict(&[2.0, 20.0]) - 100.0).abs() < 5.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = grid_ds(|a, b| a * b);
        let params = GbrParams {
            subsample: 0.7,
            ..GbrParams::default()
        };
        let m1 = GradientBoostingRegressor::fit(&ds, &params, 99);
        let m2 = GradientBoostingRegressor::fit(&ds, &params, 99);
        assert_eq!(m1.predict(&[7.0, 7.0]), m2.predict(&[7.0, 7.0]));
    }

    #[test]
    fn different_seed_changes_subsampled_fit() {
        let ds = grid_ds(|a, b| a * b + (a - b).abs());
        let params = GbrParams {
            subsample: 0.5,
            n_estimators: 30,
            ..GbrParams::default()
        };
        let m1 = GradientBoostingRegressor::fit(&ds, &params, 1);
        let m2 = GradientBoostingRegressor::fit(&ds, &params, 2);
        // Extremely unlikely to be bit-identical across all probe points.
        let probes = [[3.0, 4.0], [10.0, 1.0], [20.0, 20.0]];
        assert!(probes.iter().any(|p| m1.predict(p) != m2.predict(p)));
    }

    #[test]
    fn more_stages_fit_better() {
        let ds = grid_ds(|a, b| (a * 0.7).sin() * 10.0 + b);
        let small = GradientBoostingRegressor::fit(
            &ds,
            &GbrParams {
                n_estimators: 5,
                ..GbrParams::default()
            },
            3,
        );
        let large = GradientBoostingRegressor::fit(
            &ds,
            &GbrParams {
                n_estimators: 200,
                ..GbrParams::default()
            },
            3,
        );
        let sse = |m: &GradientBoostingRegressor| -> f64 {
            ds.rows().map(|(x, y)| (m.predict(x) - y).powi(2)).sum()
        };
        assert!(sse(&large) < sse(&small) * 0.5);
    }

    #[test]
    fn zero_stages_predicts_mean() {
        let ds = grid_ds(|a, _| a);
        let model = GradientBoostingRegressor::fit(
            &ds,
            &GbrParams {
                n_estimators: 0,
                ..GbrParams::default()
            },
            0,
        );
        assert_eq!(model.n_stages(), 0);
        assert_eq!(model.predict(&[0.0, 0.0]), ds.target_mean());
    }

    #[test]
    fn sample_without_replacement_is_distinct() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = sample_without_replacement(&mut rng, 100, 40);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40);
    }
}
