//! # yala-ml — machine-learning substrate for the Yala reproduction
//!
//! The Yala paper builds its black-box memory-subsystem model with
//! scikit-learn's `GradientBoostingRegressor` and fits accelerator model
//! parameters with `LinearRegression`. This crate provides from-scratch,
//! dependency-free equivalents:
//!
//! * [`Dataset`] — a row-major feature matrix with targets.
//! * [`LinearRegression`] — ordinary least squares (optionally ridge-regularised).
//! * [`RegressionTree`] — CART least-squares regression tree.
//! * [`GradientBoostingRegressor`] — boosted trees with shrinkage and
//!   subsampling, deterministic given a seed.
//! * [`metrics`] — MAPE and the paper's ±5% / ±10% bounded accuracies.
//! * [`split`] — seeded train/test splitting and k-fold cross validation.
//!
//! # Example
//!
//! ```
//! use yala_ml::{Dataset, GradientBoostingRegressor, GbrParams, metrics};
//!
//! // y = 3*x0, noise-free.
//! let mut ds = Dataset::new(1);
//! for i in 0..200 {
//!     let x = i as f64 / 10.0;
//!     ds.push(&[x], 3.0 * x);
//! }
//! let model = GradientBoostingRegressor::fit(&ds, &GbrParams::default(), 7);
//! let pred = model.predict(&[5.0]);
//! assert!((pred - 15.0).abs() < 1.0);
//! let preds: Vec<f64> = ds.rows().map(|(x, _)| model.predict(x)).collect();
//! assert!(metrics::mape(ds.targets(), &preds) < 5.0);
//! ```

pub mod dataset;
pub mod gbr;
pub mod linear;
pub mod metrics;
pub mod split;
pub mod tree;

pub use dataset::Dataset;
pub use gbr::{GbrParams, GradientBoostingRegressor};
pub use linear::LinearRegression;
pub use tree::{RegressionTree, TreeParams};
