//! Seeded dataset splitting utilities (train/test split, k-fold).

use crate::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits `ds` into `(train, test)` with `test_fraction` of the rows held
/// out, after a seeded shuffle.
///
/// # Panics
///
/// Panics if `test_fraction` is not in `(0, 1)` or either side would be
/// empty.
///
/// # Example
///
/// ```
/// use yala_ml::{Dataset, split::train_test_split};
/// let mut ds = Dataset::new(1);
/// for i in 0..10 { ds.push(&[i as f64], i as f64); }
/// let (train, test) = train_test_split(&ds, 0.2, 1);
/// assert_eq!(train.len(), 8);
/// assert_eq!(test.len(), 2);
/// ```
pub fn train_test_split(ds: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test fraction must be in (0, 1)"
    );
    let n = ds.len();
    let n_test = ((n as f64) * test_fraction).round() as usize;
    assert!(n_test >= 1 && n_test < n, "split would leave an empty side");
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let test_idx = &order[..n_test];
    let train_idx = &order[n_test..];
    (ds.select(train_idx), ds.select(test_idx))
}

/// Yields `k` (train, test) folds over a seeded shuffle of `ds`.
///
/// # Panics
///
/// Panics if `k < 2` or `k > ds.len()`.
pub fn k_fold(ds: &Dataset, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(k <= ds.len(), "more folds than rows");
    let mut order: Vec<usize> = (0..ds.len()).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds = Vec::with_capacity(k);
    let base = ds.len() / k;
    let extra = ds.len() % k;
    let mut start = 0usize;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let test_idx: Vec<usize> = order[start..start + size].to_vec();
        let train_idx: Vec<usize> = order[..start]
            .iter()
            .chain(order[start + size..].iter())
            .copied()
            .collect();
        folds.push((ds.select(&train_idx), ds.select(&test_idx)));
        start += size;
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut ds = Dataset::new(1);
        for i in 0..n {
            ds.push(&[i as f64], i as f64);
        }
        ds
    }

    #[test]
    fn split_sizes() {
        let ds = toy(100);
        let (train, test) = train_test_split(&ds, 0.25, 3);
        assert_eq!(train.len(), 75);
        assert_eq!(test.len(), 25);
    }

    #[test]
    fn split_is_a_partition() {
        let ds = toy(50);
        let (train, test) = train_test_split(&ds, 0.3, 3);
        let mut seen: Vec<f64> = train.targets().to_vec();
        seen.extend_from_slice(test.targets());
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn split_deterministic_per_seed() {
        let ds = toy(40);
        let (_, t1) = train_test_split(&ds, 0.5, 9);
        let (_, t2) = train_test_split(&ds, 0.5, 9);
        assert_eq!(t1.targets(), t2.targets());
        let (_, t3) = train_test_split(&ds, 0.5, 10);
        assert_ne!(t1.targets(), t3.targets());
    }

    #[test]
    fn kfold_covers_every_row_once() {
        let ds = toy(23);
        let folds = k_fold(&ds, 4, 7);
        assert_eq!(folds.len(), 4);
        let mut all_test: Vec<f64> = Vec::new();
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 23);
            all_test.extend_from_slice(test.targets());
        }
        all_test.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..23).map(|i| i as f64).collect();
        assert_eq!(all_test, expect);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn kfold_rejects_k1() {
        k_fold(&toy(10), 1, 0);
    }
}
