//! Prediction-accuracy metrics used throughout the paper's evaluation:
//! MAPE (mean absolute percentage error) and the bounded accuracies
//! (±5% Acc., ±10% Acc.) of Tables 2/3/5/8/9.

/// Mean absolute percentage error, in percent.
///
/// `mape = 100/n * Σ |pred - true| / |true|`. Rows with `|true| == 0` are
/// skipped (throughputs in this project are strictly positive).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// # Example
///
/// ```
/// let truth = [100.0, 200.0];
/// let pred = [90.0, 220.0];
/// assert!((yala_ml::metrics::mape(&truth, &pred) - 10.0).abs() < 1e-9);
/// ```
pub fn mape(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "mape of empty slice");
    let mut acc = 0.0;
    let mut n = 0usize;
    for (&t, &p) in truth.iter().zip(pred) {
        if t == 0.0 {
            continue;
        }
        acc += ((p - t) / t).abs();
        n += 1;
    }
    assert!(n > 0, "all ground-truth values were zero");
    100.0 * acc / n as f64
}

/// Absolute percentage error of a single prediction, in percent.
///
/// # Panics
///
/// Panics if `truth == 0`.
pub fn ape(truth: f64, pred: f64) -> f64 {
    assert!(
        truth != 0.0,
        "absolute percentage error undefined for zero truth"
    );
    100.0 * ((pred - truth) / truth).abs()
}

/// Fraction (in percent) of predictions whose absolute percentage error is
/// at most `bound_pct` — the paper's "±5% Acc." / "±10% Acc." columns.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn bounded_accuracy(truth: &[f64], pred: &[f64], bound_pct: f64) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "bounded accuracy of empty slice");
    let hits = truth
        .iter()
        .zip(pred)
        .filter(|(&t, &p)| t != 0.0 && ape(t, p) <= bound_pct)
        .count();
    100.0 * hits as f64 / truth.len() as f64
}

/// Mean absolute error.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "mae of empty slice");
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / truth.len() as f64
}

/// Root mean squared error.
pub fn rmse(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "rmse of empty slice");
    (truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p).powi(2))
        .sum::<f64>()
        / truth.len() as f64)
        .sqrt()
}

/// Coefficient of determination R².
pub fn r2(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "r2 of empty slice");
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean).powi(2)).sum();
    let ss_res: f64 = truth.iter().zip(pred).map(|(t, p)| (t - p).powi(2)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Percentile of a sample using linear interpolation between order
/// statistics (the same convention as numpy's default). `q` in `[0, 100]`.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is out of range.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&q), "percentile rank out of range");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median of a sample (50th percentile).
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_basic() {
        assert!((mape(&[100.0], &[110.0]) - 10.0).abs() < 1e-12);
        assert!((mape(&[100.0, 100.0], &[110.0, 90.0]) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_truth() {
        assert!((mape(&[0.0, 100.0], &[5.0, 105.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ape_symmetric_in_magnitude() {
        assert_eq!(ape(100.0, 90.0), ape(100.0, 110.0));
    }

    #[test]
    fn bounded_accuracy_counts_hits() {
        let truth = [100.0, 100.0, 100.0, 100.0];
        let pred = [103.0, 107.0, 94.0, 130.0];
        assert!((bounded_accuracy(&truth, &pred, 5.0) - 25.0).abs() < 1e-12);
        assert!((bounded_accuracy(&truth, &pred, 10.0) - 75.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_predictions() {
        let v = [3.0, 4.0, 5.0];
        assert_eq!(mape(&v, &v), 0.0);
        assert_eq!(bounded_accuracy(&v, &v, 5.0), 100.0);
        assert_eq!(mae(&v, &v), 0.0);
        assert_eq!(rmse(&v, &v), 0.0);
        assert_eq!(r2(&v, &v), 1.0);
    }

    #[test]
    fn rmse_geq_mae() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        let pred = [1.5, 1.0, 4.0, 2.0];
        assert!(rmse(&truth, &pred) >= mae(&truth, &pred));
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(median(&v), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert!((percentile(&v, 25.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&v, 95.0) - 9.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        mape(&[1.0], &[1.0, 2.0]);
    }
}
