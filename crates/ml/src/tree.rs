//! CART least-squares regression trees.
//!
//! These are the weak learners of [`crate::GradientBoostingRegressor`] and
//! follow the classic CART construction: at each node, pick the
//! (feature, threshold) split minimising the summed squared error of the two
//! children, recurse until a depth / leaf-size limit.

use crate::Dataset;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`RegressionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0). sklearn's GBR default is 3.
    pub max_depth: usize,
    /// Minimum number of samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Minimum SSE improvement for a split to be kept.
    pub min_impurity_decrease: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 3,
            min_samples_leaf: 1,
            min_impurity_decrease: 1e-12,
        }
    }
}

/// One node of the tree, stored in a flat arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Arena index of the `x[feature] <= threshold` child.
        left: usize,
        /// Arena index of the `x[feature] > threshold` child.
        right: usize,
    },
}

/// A fitted CART regression tree.
///
/// # Example
///
/// ```
/// use yala_ml::{Dataset, RegressionTree, TreeParams};
/// let mut ds = Dataset::new(1);
/// for i in 0..100 {
///     let x = i as f64;
///     ds.push(&[x], if x < 50.0 { 1.0 } else { 5.0 });
/// }
/// let tree = RegressionTree::fit(&ds, &TreeParams::default());
/// assert!((tree.predict(&[10.0]) - 1.0).abs() < 1e-9);
/// assert!((tree.predict(&[90.0]) - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl RegressionTree {
    /// Fits a tree on `ds` with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `ds` is empty.
    pub fn fit(ds: &Dataset, params: &TreeParams) -> Self {
        assert!(!ds.is_empty(), "cannot fit a tree on an empty dataset");
        let mut tree = Self {
            nodes: Vec::new(),
            n_features: ds.n_features(),
        };
        let indices: Vec<usize> = (0..ds.len()).collect();
        tree.build(ds, indices, params, 0);
        tree
    }

    /// Recursively builds the subtree for `indices`; returns its arena index.
    fn build(
        &mut self,
        ds: &Dataset,
        mut indices: Vec<usize>,
        params: &TreeParams,
        depth: usize,
    ) -> usize {
        let mean = mean_of(ds, &indices);
        if depth >= params.max_depth || indices.len() < 2 * params.min_samples_leaf {
            return self.push_leaf(mean);
        }
        let Some(best) = best_split(ds, &indices, params) else {
            return self.push_leaf(mean);
        };
        // Partition in place to avoid an extra allocation per side.
        let (mut left_idx, mut right_idx) = (Vec::new(), Vec::new());
        for i in indices.drain(..) {
            if ds.feature(i, best.feature) <= best.threshold {
                left_idx.push(i);
            } else {
                right_idx.push(i);
            }
        }
        let node = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean }); // placeholder, patched below
        let left = self.build(ds, left_idx, params, depth + 1);
        let right = self.build(ds, right_idx, params, depth + 1);
        self.nodes[node] = Node::Split {
            feature: best.feature,
            threshold: best.threshold,
            left,
            right,
        };
        node
    }

    fn push_leaf(&mut self, value: f64) -> usize {
        self.nodes.push(Node::Leaf { value });
        self.nodes.len() - 1
    }

    /// Predicted value for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training feature count.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features, "feature width mismatch");
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Total node count (splits + leaves), useful for complexity assertions.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }
}

struct SplitChoice {
    feature: usize,
    threshold: f64,
}

fn mean_of(ds: &Dataset, indices: &[usize]) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    indices.iter().map(|&i| ds.target(i)).sum::<f64>() / indices.len() as f64
}

/// Exhaustive best split over all features and midpoints between consecutive
/// distinct sorted values. Uses the incremental-SSE trick so each feature
/// scan is O(n log n) for the sort plus O(n) for evaluation.
fn best_split(ds: &Dataset, indices: &[usize], params: &TreeParams) -> Option<SplitChoice> {
    let n = indices.len() as f64;
    let total_sum: f64 = indices.iter().map(|&i| ds.target(i)).sum();
    let total_sq: f64 = indices.iter().map(|&i| ds.target(i).powi(2)).sum();
    let parent_sse = total_sq - total_sum * total_sum / n;

    let mut best: Option<(f64, SplitChoice)> = None;
    let mut order: Vec<usize> = indices.to_vec();
    for feature in 0..ds.n_features() {
        order.sort_by(|&a, &b| {
            ds.feature(a, feature)
                .partial_cmp(&ds.feature(b, feature))
                .expect("non-finite feature")
        });
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        let mut left_n = 0.0;
        for w in 0..order.len() - 1 {
            let i = order[w];
            let y = ds.target(i);
            left_sum += y;
            left_sq += y * y;
            left_n += 1.0;
            let x_here = ds.feature(i, feature);
            let x_next = ds.feature(order[w + 1], feature);
            if x_here == x_next {
                continue; // cannot split between equal values
            }
            let left_count = w + 1;
            let right_count = order.len() - left_count;
            if left_count < params.min_samples_leaf || right_count < params.min_samples_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let right_n = n - left_n;
            let sse = (left_sq - left_sum * left_sum / left_n)
                + (right_sq - right_sum * right_sum / right_n);
            let gain = parent_sse - sse;
            if gain < params.min_impurity_decrease {
                continue;
            }
            let better = match &best {
                None => true,
                Some((best_sse, _)) => sse < *best_sse,
            };
            if better {
                best = Some((
                    sse,
                    SplitChoice {
                        feature,
                        threshold: 0.5 * (x_here + x_next),
                    },
                ));
            }
        }
    }
    best.map(|(_, choice)| choice)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_function_is_learned_exactly() {
        let mut ds = Dataset::new(1);
        for i in 0..100 {
            let x = i as f64;
            ds.push(&[x], if x < 30.0 { -2.0 } else { 4.0 });
        }
        let tree = RegressionTree::fit(&ds, &TreeParams::default());
        assert_eq!(tree.predict(&[0.0]), -2.0);
        assert_eq!(tree.predict(&[29.0]), -2.0);
        assert_eq!(tree.predict(&[30.0]), 4.0);
        assert_eq!(tree.predict(&[99.0]), 4.0);
    }

    #[test]
    fn depth_zero_is_single_leaf_mean() {
        let mut ds = Dataset::new(1);
        ds.push(&[0.0], 2.0);
        ds.push(&[1.0], 4.0);
        let params = TreeParams {
            max_depth: 0,
            ..TreeParams::default()
        };
        let tree = RegressionTree::fit(&ds, &params);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[0.5]), 3.0);
    }

    #[test]
    fn constant_targets_give_single_leaf() {
        let mut ds = Dataset::new(2);
        for i in 0..10 {
            ds.push(&[i as f64, -(i as f64)], 5.0);
        }
        let tree = RegressionTree::fit(&ds, &TreeParams::default());
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.predict(&[3.0, 17.0]), 5.0);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let mut ds = Dataset::new(1);
        for i in 0..10 {
            ds.push(&[i as f64], if i == 9 { 100.0 } else { 0.0 });
        }
        // A leaf of 5 forbids isolating the outlier at x=9.
        let params = TreeParams {
            min_samples_leaf: 5,
            ..TreeParams::default()
        };
        let tree = RegressionTree::fit(&ds, &params);
        // Only one split possible: 5|5.
        assert!(tree.leaf_count() <= 2);
    }

    #[test]
    fn splits_on_the_informative_feature() {
        // Feature 0 is noise-like, feature 1 carries the signal.
        let mut ds = Dataset::new(2);
        for i in 0..50 {
            let noise = ((i * 7919) % 100) as f64 / 100.0;
            let x1 = i as f64;
            ds.push(&[noise, x1], if x1 < 25.0 { 0.0 } else { 10.0 });
        }
        let params = TreeParams {
            max_depth: 1,
            ..TreeParams::default()
        };
        let tree = RegressionTree::fit(&ds, &params);
        assert_eq!(tree.predict(&[0.9, 0.0]), 0.0);
        assert_eq!(tree.predict(&[0.1, 40.0]), 10.0);
    }

    #[test]
    fn piecewise_linear_approximated_with_depth() {
        // Deeper trees must fit y = x better (more leaves).
        let mut ds = Dataset::new(1);
        for i in 0..128 {
            ds.push(&[i as f64], i as f64);
        }
        let shallow = RegressionTree::fit(
            &ds,
            &TreeParams {
                max_depth: 2,
                ..TreeParams::default()
            },
        );
        let deep = RegressionTree::fit(
            &ds,
            &TreeParams {
                max_depth: 6,
                ..TreeParams::default()
            },
        );
        let sse = |t: &RegressionTree| -> f64 {
            ds.rows().map(|(x, y)| (t.predict(x) - y).powi(2)).sum()
        };
        assert!(sse(&deep) < sse(&shallow));
    }
}
