//! Row-major feature matrix with regression targets.

use serde::{Deserialize, Serialize};

/// A regression dataset: a dense row-major feature matrix plus one target
/// value per row.
///
/// All models in this crate consume a [`Dataset`]. Rows are appended with
/// [`Dataset::push`]; the number of features is fixed at construction.
///
/// # Example
///
/// ```
/// use yala_ml::Dataset;
/// let mut ds = Dataset::new(2);
/// ds.push(&[1.0, 2.0], 3.0);
/// ds.push(&[4.0, 5.0], 9.0);
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.feature(1, 0), 4.0);
/// assert_eq!(ds.target(1), 9.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    n_features: usize,
    features: Vec<f64>,
    targets: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset whose rows will have `n_features` columns.
    ///
    /// # Panics
    ///
    /// Panics if `n_features` is zero.
    pub fn new(n_features: usize) -> Self {
        assert!(n_features > 0, "dataset must have at least one feature");
        Self {
            n_features,
            features: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Builds a dataset from parallel slices of rows and targets.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent widths or `rows.len() != targets.len()`.
    pub fn from_rows(rows: &[Vec<f64>], targets: &[f64]) -> Self {
        assert_eq!(rows.len(), targets.len(), "rows/targets length mismatch");
        assert!(
            !rows.is_empty(),
            "cannot infer feature count from zero rows"
        );
        let mut ds = Dataset::new(rows[0].len());
        for (row, &t) in rows.iter().zip(targets) {
            ds.push(row, t);
        }
        ds
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the dataset's feature count or if any
    /// value is non-finite.
    pub fn push(&mut self, x: &[f64], y: f64) {
        assert_eq!(x.len(), self.n_features, "feature width mismatch");
        assert!(
            x.iter().all(|v| v.is_finite()) && y.is_finite(),
            "non-finite value pushed into dataset"
        );
        self.features.extend_from_slice(x);
        self.targets.push(y);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Borrow row `i`'s feature slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Feature `j` of row `i`.
    pub fn feature(&self, i: usize, j: usize) -> f64 {
        assert!(j < self.n_features, "feature index out of range");
        self.features[i * self.n_features + j]
    }

    /// Target of row `i`.
    pub fn target(&self, i: usize) -> f64 {
        self.targets[i]
    }

    /// All targets in row order.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Iterator over `(features, target)` pairs.
    pub fn rows(&self) -> Rows<'_> {
        Rows { ds: self, i: 0 }
    }

    /// Returns a new dataset containing only the rows at `indices`
    /// (duplicates allowed, enabling bootstrap samples).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.n_features);
        for &i in indices {
            out.push(self.row(i), self.target(i));
        }
        out
    }

    /// Returns a copy with an extra constant column appended to every row —
    /// used to splice fixed traffic attributes into counter features.
    pub fn with_appended_column(&self, values: &[f64]) -> Dataset {
        assert_eq!(values.len(), self.len(), "column length mismatch");
        let mut out = Dataset::new(self.n_features + 1);
        let mut row = Vec::with_capacity(self.n_features + 1);
        for (i, &v) in values.iter().enumerate() {
            row.clear();
            row.extend_from_slice(self.row(i));
            row.push(v);
            out.push(&row, self.target(i));
        }
        out
    }

    /// Merges another dataset with identical width into this one.
    ///
    /// # Panics
    ///
    /// Panics on feature-width mismatch.
    pub fn extend_from(&mut self, other: &Dataset) {
        assert_eq!(self.n_features, other.n_features, "feature width mismatch");
        self.features.extend_from_slice(&other.features);
        self.targets.extend_from_slice(&other.targets);
    }

    /// Mean of the targets; 0.0 for an empty dataset.
    pub fn target_mean(&self) -> f64 {
        if self.targets.is_empty() {
            0.0
        } else {
            self.targets.iter().sum::<f64>() / self.targets.len() as f64
        }
    }
}

/// Iterator over dataset rows, created by [`Dataset::rows`].
#[derive(Debug)]
pub struct Rows<'a> {
    ds: &'a Dataset,
    i: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = (&'a [f64], f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.i >= self.ds.len() {
            return None;
        }
        let out = (self.ds.row(self.i), self.ds.target(self.i));
        self.i += 1;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_index() {
        let mut ds = Dataset::new(3);
        ds.push(&[1.0, 2.0, 3.0], 6.0);
        ds.push(&[4.0, 5.0, 6.0], 15.0);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.n_features(), 3);
        assert_eq!(ds.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.feature(1, 2), 6.0);
        assert_eq!(ds.target(1), 15.0);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn push_wrong_width_panics() {
        let mut ds = Dataset::new(2);
        ds.push(&[1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn push_nan_panics() {
        let mut ds = Dataset::new(1);
        ds.push(&[f64::NAN], 0.0);
    }

    #[test]
    fn select_allows_duplicates() {
        let mut ds = Dataset::new(1);
        ds.push(&[1.0], 1.0);
        ds.push(&[2.0], 2.0);
        let boot = ds.select(&[1, 1, 0]);
        assert_eq!(boot.len(), 3);
        assert_eq!(boot.target(0), 2.0);
        assert_eq!(boot.target(2), 1.0);
    }

    #[test]
    fn appended_column_widens() {
        let mut ds = Dataset::new(2);
        ds.push(&[1.0, 2.0], 1.0);
        ds.push(&[3.0, 4.0], 2.0);
        let wide = ds.with_appended_column(&[9.0, 8.0]);
        assert_eq!(wide.n_features(), 3);
        assert_eq!(wide.row(0), &[1.0, 2.0, 9.0]);
        assert_eq!(wide.row(1), &[3.0, 4.0, 8.0]);
    }

    #[test]
    fn rows_iterator_covers_all() {
        let mut ds = Dataset::new(1);
        for i in 0..5 {
            ds.push(&[i as f64], i as f64 * 2.0);
        }
        let collected: Vec<f64> = ds.rows().map(|(_, y)| y).collect();
        assert_eq!(collected, vec![0.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn target_mean_empty_is_zero() {
        let ds = Dataset::new(1);
        assert_eq!(ds.target_mean(), 0.0);
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = Dataset::new(1);
        a.push(&[1.0], 1.0);
        let mut b = Dataset::new(1);
        b.push(&[2.0], 2.0);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.target(1), 2.0);
    }
}
