//! Synthetic benchmarking NFs (paper §6): `mem-bench`, `regex-bench` and
//! `compression-bench` apply *configurable* contention on one resource at a
//! time — they generate Yala's training data, support the contention-
//! behaviour studies (Figs. 4/5), and serve as microbenchmarks. Also
//! provides the synthetic pipeline / run-to-completion NFs (NF1, NF2,
//! regex-NF) used in Figs. 2b/4/5 and Table 4.

use yala_sim::{ExecutionPattern, ResourceKind, StageDemand, WorkloadSpec};

/// Cache references per "packet" (loop iteration) of mem-bench. The target
/// CAR is reached by capping the offered iteration rate.
pub const MEM_BENCH_REFS_PER_PKT: f64 = 100.0;

/// mem-bench: asserts a configurable cache-access rate (`car_refs_per_s`)
/// over a working set of `wss_bytes`, with a 50/50 read/write mix.
///
/// # Example
///
/// ```
/// use yala_nf::bench::mem_bench;
/// let w = mem_bench(100e6, 5.0e6);
/// assert_eq!(w.offered_pps, Some(100e6 / 100.0));
/// assert_eq!(w.wss_bytes(), 5.0e6);
/// ```
pub fn mem_bench(car_refs_per_s: f64, wss_bytes: f64) -> WorkloadSpec {
    mem_bench_with_cycles(car_refs_per_s, wss_bytes, 60.0)
}

/// mem-bench with a configurable compute intensity per iteration. Sweeping
/// `cycles_per_pkt` decorrelates the IPC/IRT counters from CAR in training
/// data, so models learn the causal features (CAR/WSS/MEM*) rather than
/// bench-specific correlations.
pub fn mem_bench_with_cycles(
    car_refs_per_s: f64,
    wss_bytes: f64,
    cycles_per_pkt: f64,
) -> WorkloadSpec {
    assert!(car_refs_per_s > 0.0, "CAR must be positive");
    assert!(cycles_per_pkt >= 0.0, "cycles must be non-negative");
    WorkloadSpec::new(
        "mem-bench",
        2,
        ExecutionPattern::RunToCompletion,
        vec![StageDemand::CpuMem {
            cycles_per_pkt,
            cache_refs_per_pkt: MEM_BENCH_REFS_PER_PKT,
            write_frac: 0.5,
            wss_bytes,
        }],
    )
    .with_offered_pps(car_refs_per_s / MEM_BENCH_REFS_PER_PKT)
    .with_packet_bytes(64.0)
}

/// regex-bench: submits `offered_rps` requests/second of `bytes_per_req`
/// payloads carrying `mtbr_per_mb` matches per MB to the regex accelerator.
pub fn regex_bench(offered_rps: f64, bytes_per_req: f64, mtbr_per_mb: f64) -> WorkloadSpec {
    assert!(offered_rps > 0.0, "offered rate must be positive");
    assert!(bytes_per_req > 0.0, "request size must be positive");
    WorkloadSpec::new(
        "regex-bench",
        2,
        // Fire-and-forget submission: the bench enqueues asynchronously, so
        // its throughput equals its accelerator grant (pipeline semantics).
        ExecutionPattern::Pipeline,
        vec![
            StageDemand::CpuMem {
                cycles_per_pkt: 40.0,
                cache_refs_per_pkt: 2.0,
                write_frac: 0.5,
                wss_bytes: 64.0 * 1024.0,
            },
            StageDemand::Accelerator {
                kind: ResourceKind::Regex,
                queues: 1,
                reqs_per_pkt: 1.0,
                bytes_per_req,
                matches_per_req: mtbr_per_mb * bytes_per_req / 1e6,
            },
        ],
    )
    .with_offered_pps(offered_rps)
    .with_packet_bytes(bytes_per_req + 54.0)
}

/// compression-bench: submits `offered_rps` requests of `bytes_per_req`
/// to the compression accelerator.
pub fn compression_bench(offered_rps: f64, bytes_per_req: f64) -> WorkloadSpec {
    assert!(offered_rps > 0.0, "offered rate must be positive");
    WorkloadSpec::new(
        "compression-bench",
        2,
        // Fire-and-forget submission, as with regex-bench.
        ExecutionPattern::Pipeline,
        vec![
            StageDemand::CpuMem {
                cycles_per_pkt: 40.0,
                cache_refs_per_pkt: 2.0,
                write_frac: 0.5,
                wss_bytes: 64.0 * 1024.0,
            },
            StageDemand::Accelerator {
                kind: ResourceKind::Compression,
                queues: 1,
                reqs_per_pkt: 1.0,
                bytes_per_req,
                matches_per_req: 0.0,
            },
        ],
    )
    .with_offered_pps(offered_rps)
    .with_packet_bytes(bytes_per_req + 54.0)
}

/// regex-NF (Fig. 4): an open-loop synthetic NF whose packets go straight
/// to the regex accelerator as small scan requests at the given MTBR.
pub fn regex_nf(name: &str, bytes_per_req: f64, mtbr_per_mb: f64) -> WorkloadSpec {
    WorkloadSpec::new(
        name,
        2,
        ExecutionPattern::Pipeline,
        vec![
            StageDemand::CpuMem {
                cycles_per_pkt: 30.0,
                cache_refs_per_pkt: 2.0,
                write_frac: 0.5,
                wss_bytes: 64.0 * 1024.0,
            },
            StageDemand::Accelerator {
                kind: ResourceKind::Regex,
                queues: 1,
                reqs_per_pkt: 1.0,
                bytes_per_req,
                matches_per_req: mtbr_per_mb * bytes_per_req / 1e6,
            },
        ],
    )
    .with_packet_bytes(bytes_per_req + 54.0)
}

/// Synthetic NF1 (Fig. 2b / Table 4): memory + regex, in either execution
/// pattern.
pub fn synthetic_nf1(pattern: ExecutionPattern) -> WorkloadSpec {
    WorkloadSpec::new(
        match pattern {
            ExecutionPattern::Pipeline => "nf1-pipeline",
            ExecutionPattern::RunToCompletion => "nf1-rtc",
        },
        2,
        pattern,
        vec![
            StageDemand::CpuMem {
                cycles_per_pkt: 2_200.0,
                cache_refs_per_pkt: 60.0,
                write_frac: 0.35,
                wss_bytes: 3.0e6,
            },
            StageDemand::Accelerator {
                kind: ResourceKind::Regex,
                queues: 1,
                reqs_per_pkt: 1.0,
                bytes_per_req: 1446.0,
                matches_per_req: 0.9,
            },
        ],
    )
}

/// Synthetic NF2 (Fig. 2b / Table 4): memory + regex + compression.
pub fn synthetic_nf2(pattern: ExecutionPattern) -> WorkloadSpec {
    WorkloadSpec::new(
        match pattern {
            ExecutionPattern::Pipeline => "nf2-pipeline",
            ExecutionPattern::RunToCompletion => "nf2-rtc",
        },
        2,
        pattern,
        vec![
            StageDemand::CpuMem {
                cycles_per_pkt: 1_800.0,
                cache_refs_per_pkt: 50.0,
                write_frac: 0.35,
                wss_bytes: 2.0e6,
            },
            StageDemand::Accelerator {
                kind: ResourceKind::Regex,
                queues: 1,
                reqs_per_pkt: 1.0,
                bytes_per_req: 1446.0,
                matches_per_req: 0.7,
            },
            StageDemand::Accelerator {
                kind: ResourceKind::Compression,
                queues: 1,
                reqs_per_pkt: 1.0,
                bytes_per_req: 1446.0,
                matches_per_req: 0.0,
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_sim::{NicSpec, Simulator};

    #[test]
    fn mem_bench_hits_target_car_uncontended() {
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let target_car = 8e7;
        let o = sim.solo(&mem_bench(target_car, 1e6));
        let achieved = o.counters.car();
        assert!(
            (achieved - target_car).abs() / target_car < 0.02,
            "target {target_car}, achieved {achieved}"
        );
    }

    #[test]
    fn regex_bench_mtbr_to_matches() {
        let w = regex_bench(1e6, 1_000_000.0, 600.0);
        match &w.stages[1] {
            StageDemand::Accelerator {
                matches_per_req, ..
            } => {
                assert!((*matches_per_req - 600.0).abs() < 1e-9)
            }
            other => panic!("unexpected stage {other:?}"),
        }
    }

    #[test]
    fn benches_use_one_resource_heavily() {
        let m = mem_bench(1e8, 1e6);
        assert!(!m.uses(ResourceKind::Regex));
        let r = regex_bench(1e6, 1446.0, 600.0);
        assert!(r.uses(ResourceKind::Regex));
        assert!(
            r.cache_refs_per_pkt() < 5.0,
            "regex-bench touches memory negligibly"
        );
        let c = compression_bench(1e6, 1446.0);
        assert!(c.uses(ResourceKind::Compression));
        assert!(!c.uses(ResourceKind::Regex));
    }

    #[test]
    fn synthetic_nfs_have_expected_resources() {
        let nf1 = synthetic_nf1(ExecutionPattern::RunToCompletion);
        assert_eq!(
            nf1.resources(),
            vec![ResourceKind::CpuMem, ResourceKind::Regex]
        );
        let nf2 = synthetic_nf2(ExecutionPattern::Pipeline);
        assert_eq!(
            nf2.resources(),
            vec![
                ResourceKind::CpuMem,
                ResourceKind::Regex,
                ResourceKind::Compression
            ]
        );
    }

    #[test]
    fn fig4_equilibrium_shape() {
        // regex-NF co-run with regex-bench: as bench arrival rises, regex-NF
        // throughput declines then flattens at an equilibrium equal to the
        // bench's (same queue count).
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let nf = regex_nf("regex-nf", 64.0, 194.0);
        let solo = sim.solo(&nf).throughput_pps;
        let mut last = f64::INFINITY;
        let mut final_pair = (0.0, 0.0);
        for arrival in [1e6, 10e6, 20e6, 40e6, 80e6] {
            let r = sim.co_run(&[nf.clone(), regex_bench(arrival, 64.0, 194.0)]);
            let t_nf = r.outcome("regex-nf").throughput_pps;
            assert!(t_nf <= last * 1.001);
            last = t_nf;
            final_pair = (t_nf, r.outcome("regex-bench").throughput_pps);
        }
        assert!(last < solo, "contention must bite");
        // At saturation both sides converge (equal queues -> equal tput).
        let (a, b) = final_pair;
        assert!((a - b).abs() / a < 0.05, "equilibrium {a} vs {b}");
    }
}
