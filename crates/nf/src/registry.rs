//! Registry of the paper's NFs (Table 1) with constructors and metadata,
//! plus the convenience path from `(NF kind, traffic profile)` to a
//! simulator [`WorkloadSpec`].

use crate::nfs::{
    Acl, Firewall, FlowClassifier, FlowMonitor, FlowStats, FlowTracker, IpCompGateway, IpRouter,
    IpTunnel, Nat, Nids, PacketFilter,
};
use crate::runtime::{NetworkFunction, Profiler, DEFAULT_SAMPLE_PACKETS};
use serde::{Deserialize, Serialize};
use yala_sim::{NicSpec, ResourceKind, WorkloadSpec};
use yala_traffic::TrafficProfile;

/// The NFs of Table 1 (plus the Pensando Firewall of §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NfKind {
    /// Per-flow packet/byte statistics (Click).
    FlowStats,
    /// LPM forwarding (Click).
    IpRouter,
    /// IP-in-IP encapsulation (Click).
    IpTunnel,
    /// Source NAT (Click).
    Nat,
    /// Flow stats + payload inspection on regex (Click).
    FlowMonitor,
    /// Intrusion detection on regex (Click).
    Nids,
    /// Regex classification + compression gateway (Click).
    IpCompGateway,
    /// Access control list (DPDK).
    Acl,
    /// Flow classification (DPDK).
    FlowClassifier,
    /// Connection lifecycle tracking (DOCA).
    FlowTracker,
    /// Stateless payload filter on regex (DOCA).
    PacketFilter,
    /// Flow-walking firewall (Pensando, §8).
    Firewall,
}

impl NfKind {
    /// The nine NFs evaluated in Fig. 1 / Table 2.
    pub const TABLE2_NINE: [NfKind; 9] = [
        NfKind::Acl,
        NfKind::Nids,
        NfKind::IpTunnel,
        NfKind::IpRouter,
        NfKind::FlowClassifier,
        NfKind::FlowTracker,
        NfKind::FlowStats,
        NfKind::FlowMonitor,
        NfKind::Nat,
    ];

    /// The traffic-sensitive NFs of Table 5.
    pub const TRAFFIC_SENSITIVE: [NfKind; 7] = [
        NfKind::Nids,
        NfKind::FlowClassifier,
        NfKind::Nat,
        NfKind::FlowTracker,
        NfKind::FlowStats,
        NfKind::FlowMonitor,
        NfKind::IpTunnel,
    ];

    /// Every implemented NF.
    pub const ALL: [NfKind; 12] = [
        NfKind::FlowStats,
        NfKind::IpRouter,
        NfKind::IpTunnel,
        NfKind::Nat,
        NfKind::FlowMonitor,
        NfKind::Nids,
        NfKind::IpCompGateway,
        NfKind::Acl,
        NfKind::FlowClassifier,
        NfKind::FlowTracker,
        NfKind::PacketFilter,
        NfKind::Firewall,
    ];

    /// Stable lowercase name (matches [`NetworkFunction::name`]).
    pub fn name(self) -> &'static str {
        match self {
            NfKind::FlowStats => "flowstats",
            NfKind::IpRouter => "iprouter",
            NfKind::IpTunnel => "iptunnel",
            NfKind::Nat => "nat",
            NfKind::FlowMonitor => "flowmonitor",
            NfKind::Nids => "nids",
            NfKind::IpCompGateway => "ipcomp",
            NfKind::Acl => "acl",
            NfKind::FlowClassifier => "flowclassifier",
            NfKind::FlowTracker => "flowtracker",
            NfKind::PacketFilter => "packetfilter",
            NfKind::Firewall => "firewall",
        }
    }

    /// The inverse of [`NfKind::name`]: resolves a stable lowercase
    /// name back to its kind. `None` for unknown names, so trace loaders
    /// can report the bad token instead of panicking.
    pub fn from_name(name: &str) -> Option<NfKind> {
        NfKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Whether the NF submits work to the regex accelerator (Table 1).
    pub fn uses_regex(self) -> bool {
        matches!(
            self,
            NfKind::FlowMonitor | NfKind::Nids | NfKind::IpCompGateway | NfKind::PacketFilter
        )
    }

    /// Whether the NF submits work to the compression accelerator.
    pub fn uses_compression(self) -> bool {
        matches!(self, NfKind::IpCompGateway)
    }

    /// Whether the paper marks the NF as traffic-sensitive (Table 1's "T").
    pub fn traffic_sensitive(self) -> bool {
        !matches!(self, NfKind::IpRouter | NfKind::Acl)
    }

    /// Capability feasibility: whether every accelerator this NF submits
    /// work to exists on `spec`. An NF whose workload issues Regex
    /// requests is infeasible on a regex-less NIC (e.g. the Pensando
    /// preset) — placement must reject such co-locations up front rather
    /// than let the co-run solver panic at ground truth.
    pub fn feasible_on(self, spec: &NicSpec) -> bool {
        (!self.uses_regex() || spec.has_accel(ResourceKind::Regex))
            && (!self.uses_compression() || spec.has_accel(ResourceKind::Compression))
    }

    /// The per-model profiling matrix: whether this NF is profiled and
    /// trained on NICs of `spec`'s model. Capability-infeasible pairs are
    /// never profiled; on top of that, the Firewall — a Pensando-SSDK NF
    /// the paper only evaluates in the §8/Table 9 sweep — is profiled on
    /// Pensando-model NICs only (this used to be a *global* exclusion in
    /// the registry tests; heterogeneous fleets make it per-model).
    pub fn profiled_on(self, spec: &NicSpec) -> bool {
        if !self.feasible_on(spec) {
            return false;
        }
        match self {
            NfKind::Firewall => spec.name == "pensando",
            _ => true,
        }
    }

    /// The NF kinds profiled/trained for one NIC model: `kinds` filtered
    /// through [`Self::profiled_on`].
    pub fn profiled_kinds(kinds: &[NfKind], spec: &NicSpec) -> Vec<NfKind> {
        kinds
            .iter()
            .copied()
            .filter(|k| k.profiled_on(spec))
            .collect()
    }

    /// The programming framework the paper implements the NF in (Table 1).
    pub fn framework(self) -> &'static str {
        match self {
            NfKind::FlowStats
            | NfKind::IpRouter
            | NfKind::IpTunnel
            | NfKind::Nat
            | NfKind::FlowMonitor
            | NfKind::Nids
            | NfKind::IpCompGateway => "Click",
            NfKind::Acl | NfKind::FlowClassifier => "DPDK",
            NfKind::FlowTracker | NfKind::PacketFilter => "DOCA",
            NfKind::Firewall => "Pensando SSDK",
        }
    }

    /// Instantiates the NF with default configuration (deterministic).
    pub fn build(self) -> Box<dyn NetworkFunction> {
        match self {
            NfKind::FlowStats => Box::new(FlowStats::new()),
            NfKind::IpRouter => Box::new(IpRouter::new(1024, 0xA0)),
            NfKind::IpTunnel => Box::new(IpTunnel::new(16)),
            NfKind::Nat => Box::new(Nat::new()),
            NfKind::FlowMonitor => Box::new(FlowMonitor::new()),
            NfKind::Nids => Box::new(Nids::new()),
            NfKind::IpCompGateway => Box::new(IpCompGateway::new()),
            NfKind::Acl => Box::new(Acl::new(256, 0xA1)),
            NfKind::FlowClassifier => Box::new(FlowClassifier::new()),
            NfKind::FlowTracker => Box::new(FlowTracker::new()),
            NfKind::PacketFilter => Box::new(PacketFilter::new()),
            NfKind::Firewall => Box::new(Firewall::new(128, 0xA2)),
        }
    }

    /// Profiles this NF under `profile` into a simulator workload
    /// (builds, warms, streams batches, measures demand).
    pub fn workload(self, profile: TrafficProfile, seed: u64) -> WorkloadSpec {
        self.workload_with(&mut Profiler::new(), profile, seed)
    }

    /// Like [`Self::workload`], but reuses a caller-held [`Profiler`] so
    /// repeated profiling (the adaptive sweeps measure thousands of
    /// traffic points) keeps its arena and cost buffers warm.
    pub fn workload_with(
        self,
        profiler: &mut Profiler,
        profile: TrafficProfile,
        seed: u64,
    ) -> WorkloadSpec {
        let mut nf = self.build();
        profiler.profile(nf.as_mut(), profile, DEFAULT_SAMPLE_PACKETS, seed)
    }
}

impl std::fmt::Display for NfKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_sim::ResourceKind;

    #[test]
    fn names_match_instances() {
        for kind in NfKind::ALL {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn from_name_inverts_name() {
        for kind in NfKind::ALL {
            assert_eq!(NfKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(NfKind::from_name("teleporter"), None);
    }

    #[test]
    fn regex_metadata_matches_measured_stages() {
        // The profiling matrix replaces the old global Firewall skip: each
        // NIC model profiles exactly the kinds `profiled_on` admits, and
        // every profiled workload's measured stages match the metadata.
        let profile = TrafficProfile::new(2_000, 1024, 600.0);
        for spec in [NicSpec::bluefield2(), NicSpec::pensando()] {
            for kind in NfKind::profiled_kinds(&NfKind::ALL, &spec) {
                let w = kind.workload(profile, 7);
                assert_eq!(
                    w.uses(ResourceKind::Regex),
                    kind.uses_regex(),
                    "{kind} regex usage mismatch on {}",
                    spec.name
                );
                assert_eq!(
                    w.uses(ResourceKind::Compression),
                    kind.uses_compression(),
                    "{kind} compression usage mismatch on {}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn profiling_matrix_is_capability_and_model_aware() {
        let bf2 = NicSpec::bluefield2();
        let pen = NicSpec::pensando();
        // Regex NFs: feasible (and profiled) only where the engine exists.
        for kind in [
            NfKind::FlowMonitor,
            NfKind::Nids,
            NfKind::IpCompGateway,
            NfKind::PacketFilter,
        ] {
            assert!(kind.feasible_on(&bf2), "{kind} feasible on bf2");
            assert!(!kind.feasible_on(&pen), "{kind} infeasible on pensando");
            assert!(!kind.profiled_on(&pen));
        }
        // The Firewall is the Pensando NF: profiled there, not on BF-2 —
        // even though it is capability-feasible anywhere (CPU/mem only).
        assert!(NfKind::Firewall.feasible_on(&bf2));
        assert!(NfKind::Firewall.profiled_on(&pen));
        assert!(!NfKind::Firewall.profiled_on(&bf2));
        // Memory-only NFs are profiled everywhere.
        assert!(NfKind::FlowStats.profiled_on(&bf2));
        assert!(NfKind::FlowStats.profiled_on(&pen));
        // The matrix filter keeps order and drops the right kinds.
        let on_pen = NfKind::profiled_kinds(&NfKind::ALL, &pen);
        assert!(on_pen.contains(&NfKind::Firewall));
        assert!(!on_pen.contains(&NfKind::Nids));
        let on_bf2 = NfKind::profiled_kinds(&NfKind::ALL, &bf2);
        assert!(on_bf2.contains(&NfKind::Nids));
        assert!(!on_bf2.contains(&NfKind::Firewall));
        assert_eq!(on_bf2.len(), 11);
    }

    #[test]
    fn table2_nine_subset_of_all() {
        for kind in NfKind::TABLE2_NINE {
            assert!(NfKind::ALL.contains(&kind));
        }
    }

    #[test]
    fn flow_sensitive_nfs_grow_wss_with_flows() {
        for kind in [
            NfKind::FlowStats,
            NfKind::Nat,
            NfKind::FlowTracker,
            NfKind::FlowClassifier,
        ] {
            let small = kind.workload(TrafficProfile::new(2_000, 512, 0.0), 1);
            let large = kind.workload(TrafficProfile::new(64_000, 512, 0.0), 1);
            assert!(
                large.wss_bytes() > small.wss_bytes() * 4.0,
                "{kind}: {} vs {}",
                large.wss_bytes(),
                small.wss_bytes()
            );
        }
    }

    #[test]
    fn insensitive_nfs_keep_wss_flat() {
        for kind in [NfKind::IpRouter, NfKind::Acl] {
            let small = kind.workload(TrafficProfile::new(2_000, 512, 0.0), 1);
            let large = kind.workload(TrafficProfile::new(64_000, 512, 0.0), 1);
            let ratio = large.wss_bytes() / small.wss_bytes();
            assert!(ratio < 1.2, "{kind} wss grew {ratio}x with flow count");
        }
    }

    #[test]
    fn mtbr_reaches_regex_stage() {
        let lo = NfKind::FlowMonitor.workload(TrafficProfile::new(2_000, 1500, 100.0), 5);
        let hi = NfKind::FlowMonitor.workload(TrafficProfile::new(2_000, 1500, 1000.0), 5);
        let matches = |w: &WorkloadSpec| -> f64 {
            w.stages
                .iter()
                .find_map(|s| match s {
                    yala_sim::StageDemand::Accelerator {
                        kind,
                        matches_per_req,
                        ..
                    } if *kind == ResourceKind::Regex => Some(*matches_per_req),
                    _ => None,
                })
                .expect("flowmonitor has a regex stage")
        };
        assert!(
            matches(&hi) > matches(&lo) * 3.0,
            "measured matches must track MTBR: {} vs {}",
            matches(&hi),
            matches(&lo)
        );
    }
}
