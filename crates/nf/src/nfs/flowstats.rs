//! FlowStats: per-flow packet/byte counters (Click, header-only).
//!
//! The canonical flow-count-sensitive NF of the paper: its hash table grows
//! with the number of flows, so its working set — and hence its LLC
//! behaviour — is a direct function of the traffic profile (Fig. 6a).

use crate::cost::{CostTracker, HASH_CYCLES, PARSE_CYCLES, PROBE_CYCLES, UPDATE_CYCLES};
use crate::runtime::{NetworkFunction, Verdict};
use crate::table::FlowTable;
use yala_sim::ExecutionPattern;
use yala_traffic::{FiveTuple, PacketView};

/// Per-flow statistics record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStatsEntry {
    /// Packets seen on this flow.
    pub packets: u64,
    /// Payload bytes seen on this flow.
    pub bytes: u64,
}

/// The FlowStats NF.
///
/// # Example
///
/// ```
/// use yala_nf::nfs::FlowStats;
/// use yala_nf::runtime::NetworkFunction;
/// use yala_nf::cost::CostTracker;
/// use yala_traffic::{FiveTuple, Packet};
///
/// let mut nf = FlowStats::new();
/// let pkt = Packet::new(FiveTuple::new(1, 2, 3, 4, 6), vec![0; 100]);
/// let mut cost = CostTracker::new();
/// nf.process(pkt.view(), &mut cost);
/// assert_eq!(nf.stats(&pkt.five_tuple).unwrap().packets, 1);
/// ```
#[derive(Debug, Clone)]
pub struct FlowStats {
    table: FlowTable<FlowStatsEntry>,
}

impl FlowStats {
    /// Creates an empty FlowStats instance.
    pub fn new() -> Self {
        Self {
            table: FlowTable::with_entry_bytes(1024, 64.0),
        }
    }

    /// Looks up the statistics recorded for a flow.
    pub fn stats(&mut self, flow: &FiveTuple) -> Option<FlowStatsEntry> {
        self.table.get_mut(flow.hash64()).0.copied()
    }

    /// Number of tracked flows.
    pub fn flow_count(&self) -> usize {
        self.table.len()
    }
}

impl Default for FlowStats {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkFunction for FlowStats {
    fn name(&self) -> &'static str {
        "flowstats"
    }

    fn pattern(&self) -> ExecutionPattern {
        ExecutionPattern::RunToCompletion
    }

    fn process(&mut self, pkt: PacketView<'_>, cost: &mut CostTracker) -> Verdict {
        cost.compute(PARSE_CYCLES + HASH_CYCLES);
        cost.read_lines(1.0); // header line
        let key = pkt.five_tuple.hash64();
        let payload = pkt.payload_len() as u64;
        let (entry, probes) = self.table.get_mut(key);
        cost.compute(PROBE_CYCLES * probes as f64);
        cost.read_lines(probes as f64);
        match entry {
            Some(e) => {
                e.packets += 1;
                e.bytes += payload;
                cost.compute(UPDATE_CYCLES);
                cost.write_lines(1.0);
            }
            None => {
                let probes = self.table.insert(
                    key,
                    FlowStatsEntry {
                        packets: 1,
                        bytes: payload,
                    },
                );
                cost.compute(PROBE_CYCLES * probes as f64 + UPDATE_CYCLES);
                cost.write_lines(probes as f64);
            }
        }
        Verdict::Forward
    }

    fn wss_bytes(&self) -> f64 {
        self.table.wss_bytes()
    }

    fn warm(&mut self, flows: &[FiveTuple]) {
        for f in flows {
            self.table.insert(f.hash64(), FlowStatsEntry::default());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_traffic::Packet;

    fn pkt(port: u16, len: usize) -> Packet {
        Packet::new(FiveTuple::new(1, 2, port, 80, 6), vec![0u8; len])
    }

    #[test]
    fn counts_per_flow() {
        let mut nf = FlowStats::new();
        let mut cost = CostTracker::new();
        nf.process(pkt(1, 10).view(), &mut cost);
        nf.process(pkt(1, 20).view(), &mut cost);
        nf.process(pkt(2, 30).view(), &mut cost);
        let a = nf.stats(&pkt(1, 0).five_tuple).unwrap();
        assert_eq!(a.packets, 2);
        assert_eq!(a.bytes, 30);
        let b = nf.stats(&pkt(2, 0).five_tuple).unwrap();
        assert_eq!(b.packets, 1);
        assert_eq!(nf.flow_count(), 2);
    }

    #[test]
    fn charges_costs() {
        let mut nf = FlowStats::new();
        let mut cost = CostTracker::new();
        nf.process(pkt(1, 10).view(), &mut cost);
        assert!(cost.cycles > 0.0);
        assert!(cost.reads >= 2.0);
        assert!(cost.writes >= 1.0);
        assert!(cost.accel.is_empty(), "header-only NF uses no accelerator");
    }

    #[test]
    fn warm_populates_wss() {
        let mut nf = FlowStats::new();
        let flows: Vec<FiveTuple> = (0..10_000u32)
            .map(|i| FiveTuple::new(i, 2, 3, 4, 6))
            .collect();
        nf.warm(&flows);
        assert_eq!(nf.flow_count(), 10_000);
        // 10K flows at 64 B/entry → at least 640 KB footprint.
        assert!(nf.wss_bytes() > 640_000.0);
    }

    #[test]
    fn wss_scales_with_flow_count() {
        let footprint = |n: u32| -> f64 {
            let mut nf = FlowStats::new();
            let flows: Vec<FiveTuple> = (0..n).map(|i| FiveTuple::new(i, 2, 3, 4, 6)).collect();
            nf.warm(&flows);
            nf.wss_bytes()
        };
        assert!(footprint(64_000) > footprint(4_000) * 4.0);
    }
}
