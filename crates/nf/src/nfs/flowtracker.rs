//! FlowTracker: per-flow connection lifecycle tracking (DOCA FlowTracker
//! style): a state machine over packet arrivals with timestamps. Flow-count
//! sensitive via its state table.

use crate::cost::{CostTracker, HASH_CYCLES, PARSE_CYCLES, PROBE_CYCLES, UPDATE_CYCLES};
use crate::runtime::{NetworkFunction, Verdict};
use crate::table::FlowTable;
use yala_sim::ExecutionPattern;
use yala_traffic::FiveTuple;
use yala_traffic::PacketView;

/// Connection lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackState {
    /// First packet seen.
    New,
    /// Bidirectional-ish steady state (here: >3 packets).
    Established,
    /// Idle long enough to be aged out on next touch.
    Aging,
}

/// Per-flow tracking record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackEntry {
    /// Current state.
    pub state: TrackState,
    /// Packets observed.
    pub packets: u64,
    /// Logical timestamp of last packet.
    pub last_seen: u64,
}

/// Packets after which a flow is considered established.
const ESTABLISH_AFTER: u64 = 3;
/// Logical-time gap after which a flow starts aging.
const AGE_AFTER: u64 = 1_000_000;

/// The FlowTracker NF.
#[derive(Debug, Clone)]
pub struct FlowTracker {
    table: FlowTable<TrackEntry>,
    clock: u64,
    established_total: u64,
}

impl FlowTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self {
            table: FlowTable::with_entry_bytes(1024, 96.0),
            clock: 0,
            established_total: 0,
        }
    }

    /// Tracking record for a flow.
    pub fn entry(&mut self, flow: &FiveTuple) -> Option<TrackEntry> {
        self.table.get_mut(flow.hash64()).0.copied()
    }

    /// Flows that ever reached `Established`.
    pub fn established_total(&self) -> u64 {
        self.established_total
    }
}

impl Default for FlowTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkFunction for FlowTracker {
    fn name(&self) -> &'static str {
        "flowtracker"
    }

    fn pattern(&self) -> ExecutionPattern {
        ExecutionPattern::RunToCompletion
    }

    fn process(&mut self, pkt: PacketView<'_>, cost: &mut CostTracker) -> Verdict {
        self.clock += 1;
        cost.compute(PARSE_CYCLES + HASH_CYCLES);
        cost.read_lines(1.0);
        let key = pkt.five_tuple.hash64();
        let now = self.clock;
        let (hit, probes) = self.table.get_mut(key);
        cost.compute(PROBE_CYCLES * probes as f64);
        cost.read_lines(probes as f64);
        match hit {
            Some(e) => {
                e.packets += 1;
                let idle = now - e.last_seen;
                e.last_seen = now;
                let newly_established = e.state == TrackState::New && e.packets > ESTABLISH_AFTER;
                if idle > AGE_AFTER {
                    e.state = TrackState::Aging;
                } else if newly_established {
                    e.state = TrackState::Established;
                    self.established_total += 1;
                }
                cost.compute(UPDATE_CYCLES + 15.0); // state machine branch
                cost.write_lines(1.0);
            }
            None => {
                let p = self.table.insert(
                    key,
                    TrackEntry {
                        state: TrackState::New,
                        packets: 1,
                        last_seen: now,
                    },
                );
                cost.compute(PROBE_CYCLES * p as f64 + UPDATE_CYCLES);
                cost.write_lines(p as f64);
            }
        }
        Verdict::Forward
    }

    fn wss_bytes(&self) -> f64 {
        self.table.wss_bytes()
    }

    fn warm(&mut self, flows: &[FiveTuple]) {
        for f in flows {
            self.table.insert(
                f.hash64(),
                TrackEntry {
                    state: TrackState::New,
                    packets: 1,
                    last_seen: 0,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_traffic::Packet;

    fn pkt() -> Packet {
        Packet::new(FiveTuple::new(1, 2, 3, 4, 6), vec![0; 10])
    }

    #[test]
    fn establishes_after_enough_packets() {
        let mut ft = FlowTracker::new();
        for _ in 0..3 {
            ft.process(pkt().view(), &mut CostTracker::new());
        }
        assert_eq!(ft.entry(&pkt().five_tuple).unwrap().state, TrackState::New);
        ft.process(pkt().view(), &mut CostTracker::new());
        assert_eq!(
            ft.entry(&pkt().five_tuple).unwrap().state,
            TrackState::Established
        );
        assert_eq!(ft.established_total(), 1);
    }

    #[test]
    fn aging_on_long_idle() {
        let mut ft = FlowTracker::new();
        ft.process(pkt().view(), &mut CostTracker::new());
        ft.clock += AGE_AFTER + 10;
        ft.process(pkt().view(), &mut CostTracker::new());
        assert_eq!(
            ft.entry(&pkt().five_tuple).unwrap().state,
            TrackState::Aging
        );
    }

    #[test]
    fn tracks_packet_counts() {
        let mut ft = FlowTracker::new();
        for _ in 0..7 {
            ft.process(pkt().view(), &mut CostTracker::new());
        }
        assert_eq!(ft.entry(&pkt().five_tuple).unwrap().packets, 7);
    }
}
