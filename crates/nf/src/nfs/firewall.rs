//! Firewall: the AMD Pensando generalisation NF of §8/Table 9. It "conducts
//! a flow walk on \[the\] hardware flow table and updates entry metadata upon
//! matching against flows in the input traffic" — a memory-dominated NF
//! with a policy check on the miss path. No accelerators, so it runs on the
//! Pensando preset (which has no regex engine).

use crate::cost::{CostTracker, HASH_CYCLES, PARSE_CYCLES, PROBE_CYCLES, UPDATE_CYCLES};
use crate::nfs::acl::{Acl, AclRule};
use crate::runtime::{NetworkFunction, Verdict};
use crate::table::FlowTable;
use yala_sim::ExecutionPattern;
use yala_traffic::FiveTuple;
use yala_traffic::PacketView;

/// Per-flow firewall record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FwEntry {
    /// Whether the policy permitted the flow when first seen.
    pub permitted: bool,
    /// Packets matched against the entry.
    pub hits: u64,
}

/// The Pensando-style Firewall NF.
#[derive(Debug, Clone)]
pub struct Firewall {
    flow_table: FlowTable<FwEntry>,
    policy: Acl,
    denied: u64,
}

impl Firewall {
    /// Creates a firewall with `n_policy_rules` random deny rules.
    pub fn new(n_policy_rules: usize, seed: u64) -> Self {
        Self {
            flow_table: FlowTable::with_entry_bytes(1024, 128.0),
            policy: Acl::new(n_policy_rules, seed),
            denied: 0,
        }
    }

    /// Creates a firewall with an explicit policy.
    pub fn with_policy(rules: Vec<AclRule>) -> Self {
        Self {
            flow_table: FlowTable::with_entry_bytes(1024, 128.0),
            policy: Acl::from_rules(rules),
            denied: 0,
        }
    }

    /// Packets denied so far.
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// Active flow-table entries.
    pub fn flow_count(&self) -> usize {
        self.flow_table.len()
    }
}

impl NetworkFunction for Firewall {
    fn name(&self) -> &'static str {
        "firewall"
    }

    fn pattern(&self) -> ExecutionPattern {
        ExecutionPattern::RunToCompletion
    }

    fn process(&mut self, pkt: PacketView<'_>, cost: &mut CostTracker) -> Verdict {
        cost.compute(PARSE_CYCLES + HASH_CYCLES);
        cost.read_lines(1.0);
        let key = pkt.five_tuple.hash64();
        let (hit, probes) = self.flow_table.get_mut(key);
        cost.compute(PROBE_CYCLES * probes as f64);
        cost.read_lines(probes as f64);
        let permitted = match hit {
            Some(e) => {
                // Fast path: flow walk + metadata update (two lines: entry
                // + stats block; 128 B entries span two cache lines).
                e.hits += 1;
                cost.compute(UPDATE_CYCLES);
                cost.read_lines(1.0);
                cost.write_lines(2.0);
                e.permitted
            }
            None => {
                // Slow path: policy evaluation, then install.
                let (permit, inspected) = self.policy.evaluate(&pkt.five_tuple);
                cost.compute(6.0 * inspected as f64);
                cost.read_lines((inspected as f64 / 4.0).ceil());
                let p = self.flow_table.insert(
                    key,
                    FwEntry {
                        permitted: permit,
                        hits: 1,
                    },
                );
                cost.compute(PROBE_CYCLES * p as f64 + UPDATE_CYCLES);
                cost.write_lines(p as f64 * 2.0);
                permit
            }
        };
        if permitted {
            Verdict::Forward
        } else {
            self.denied += 1;
            Verdict::Drop
        }
    }

    fn wss_bytes(&self) -> f64 {
        self.flow_table.wss_bytes() + self.policy.wss_bytes()
    }

    fn warm(&mut self, flows: &[FiveTuple]) {
        for f in flows {
            let (permit, _) = self.policy.evaluate(f);
            self.flow_table.insert(
                f.hash64(),
                FwEntry {
                    permitted: permit,
                    hits: 0,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_traffic::Packet;

    #[test]
    fn policy_decision_is_cached_per_flow() {
        let deny_ssh = AclRule {
            src: (0, 0),
            dst: (0, 0),
            dst_port: Some(22),
            proto: None,
            permit: false,
        };
        let mut fw = Firewall::with_policy(vec![deny_ssh]);
        let bad = Packet::new(FiveTuple::new(1, 2, 3, 22, 6), vec![]);
        assert_eq!(
            fw.process(bad.view(), &mut CostTracker::new()),
            Verdict::Drop
        );
        assert_eq!(
            fw.process(bad.view(), &mut CostTracker::new()),
            Verdict::Drop
        );
        assert_eq!(fw.denied(), 2);
        assert_eq!(fw.flow_count(), 1, "single cached entry");
    }

    #[test]
    fn fast_path_is_cheaper_than_slow_path() {
        let mut fw = Firewall::new(128, 3);
        let pkt = Packet::new(FiveTuple::new(1, 2, 3, 80, 6), vec![]);
        let mut slow = CostTracker::new();
        fw.process(pkt.view(), &mut slow);
        let mut fast = CostTracker::new();
        fw.process(pkt.view(), &mut fast);
        assert!(fast.cycles < slow.cycles);
    }

    #[test]
    fn flow_walk_is_memory_heavy() {
        let mut fw = Firewall::new(64, 1);
        let flows: Vec<FiveTuple> = (0..50_000u32)
            .map(|i| FiveTuple::new(i, 2, 3, 80, 6))
            .collect();
        fw.warm(&flows);
        // 50K × 128 B ≈ 6.4 MB ≥ Pensando LLC pressure territory.
        assert!(fw.wss_bytes() > 6e6);
        let mut cost = CostTracker::new();
        fw.process(Packet::new(flows[17], vec![]).view(), &mut cost);
        assert!(cost.accel.is_empty(), "firewall uses no accelerators");
        assert!(cost.refs() >= 4.0);
    }
}
