//! NAT: source network address and port translation with bidirectional
//! mapping tables (Click/E3-style). Flow-count sensitive through its two
//! mapping tables — the paper's §5.2 calls out "the mapping table in NAT"
//! as the data structure whose growth drives the LLC effect.

use crate::cost::{CostTracker, HASH_CYCLES, PARSE_CYCLES, PROBE_CYCLES, UPDATE_CYCLES};
use crate::runtime::{NetworkFunction, Verdict};
use crate::table::FlowTable;
use yala_sim::ExecutionPattern;
use yala_traffic::FiveTuple;
use yala_traffic::PacketView;

/// External address the NAT translates to.
const NAT_IP: u32 = 0xc0a8_0101;

/// One NAT binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NatBinding {
    /// Translated (external) source port.
    pub external_port: u16,
    /// Original flow identity.
    pub inner: FiveTuple,
}

/// The NAT NF.
#[derive(Debug, Clone)]
pub struct Nat {
    /// inner flow hash → binding (outbound direction).
    out_table: FlowTable<NatBinding>,
    /// external port → binding (return direction).
    in_table: FlowTable<NatBinding>,
    next_port: u16,
}

impl Nat {
    /// Creates an empty NAT.
    pub fn new() -> Self {
        Self {
            out_table: FlowTable::with_entry_bytes(1024, 64.0),
            in_table: FlowTable::with_entry_bytes(1024, 64.0),
            next_port: 10_000,
        }
    }

    /// The binding for an inner flow, if established.
    pub fn binding(&mut self, flow: &FiveTuple) -> Option<NatBinding> {
        self.out_table.get_mut(flow.hash64()).0.copied()
    }

    /// Number of active bindings.
    pub fn binding_count(&self) -> usize {
        self.out_table.len()
    }

    fn allocate(&mut self, flow: FiveTuple) -> (NatBinding, usize) {
        let port = self.next_port;
        self.next_port = self.next_port.wrapping_add(1).max(10_000);
        let binding = NatBinding {
            external_port: port,
            inner: flow,
        };
        let p1 = self.out_table.insert(flow.hash64(), binding);
        let p2 = self.in_table.insert(port as u64, binding);
        (binding, p1 + p2)
    }
}

impl Default for Nat {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkFunction for Nat {
    fn name(&self) -> &'static str {
        "nat"
    }

    fn pattern(&self) -> ExecutionPattern {
        ExecutionPattern::RunToCompletion
    }

    fn process(&mut self, pkt: PacketView<'_>, cost: &mut CostTracker) -> Verdict {
        cost.compute(PARSE_CYCLES + HASH_CYCLES);
        cost.read_lines(1.0);
        let key = pkt.five_tuple.hash64();
        let (hit, probes) = self.out_table.get_mut(key);
        cost.compute(PROBE_CYCLES * probes as f64);
        cost.read_lines(probes as f64);
        let _binding = match hit {
            Some(b) => *b,
            None => {
                let (b, insert_probes) = self.allocate(pkt.five_tuple);
                cost.compute(PROBE_CYCLES * insert_probes as f64 + 2.0 * UPDATE_CYCLES);
                cost.write_lines(insert_probes as f64);
                b
            }
        };
        // Rewrite source ip/port, incrementally update checksums.
        cost.compute(UPDATE_CYCLES + 45.0);
        cost.write_lines(1.0);
        debug_assert_eq!(NAT_IP, 0xc0a8_0101);
        Verdict::Forward
    }

    fn wss_bytes(&self) -> f64 {
        self.out_table.wss_bytes() + self.in_table.wss_bytes()
    }

    fn warm(&mut self, flows: &[FiveTuple]) {
        for f in flows {
            if self.out_table.get_mut(f.hash64()).0.is_none() {
                self.allocate(*f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_traffic::Packet;

    fn flow(p: u16) -> FiveTuple {
        FiveTuple::new(0x0a000001, 0x08080808, p, 443, 6)
    }

    #[test]
    fn binding_is_stable_per_flow() {
        let mut nat = Nat::new();
        let pkt = Packet::new(flow(1234), vec![0; 10]);
        nat.process(pkt.view(), &mut CostTracker::new());
        let b1 = nat.binding(&flow(1234)).unwrap();
        nat.process(pkt.view(), &mut CostTracker::new());
        let b2 = nat.binding(&flow(1234)).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn distinct_flows_get_distinct_ports() {
        let mut nat = Nat::new();
        for p in 0..100u16 {
            nat.process(
                Packet::new(flow(p), vec![0; 10]).view(),
                &mut CostTracker::new(),
            );
        }
        assert_eq!(nat.binding_count(), 100);
        let mut ports: Vec<u16> = (0..100u16)
            .map(|p| nat.binding(&flow(p)).unwrap().external_port)
            .collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 100, "external ports must be unique");
    }

    #[test]
    fn two_tables_double_footprint() {
        let mut nat = Nat::new();
        let flows: Vec<FiveTuple> = (0..1000u16).map(flow).collect();
        nat.warm(&flows);
        // Two tables, each ≥ 64 KB of entries.
        assert!(nat.wss_bytes() > 2.0 * 1000.0 * 60.0);
    }

    #[test]
    fn miss_is_costlier_than_hit() {
        let mut nat = Nat::new();
        let mut miss = CostTracker::new();
        nat.process(Packet::new(flow(1), vec![0; 10]).view(), &mut miss);
        let mut hit = CostTracker::new();
        nat.process(Packet::new(flow(1), vec![0; 10]).view(), &mut hit);
        assert!(miss.cycles > hit.cycles);
        assert!(miss.writes > hit.writes);
    }
}
