//! IPRouter: longest-prefix-match forwarding over a binary trie (Click,
//! header-only). Its table is configuration- rather than traffic-sized, so
//! it is largely insensitive to traffic attributes — the contrast case to
//! FlowStats in the adaptive-profiling study.

use crate::cost::{CostTracker, PARSE_CYCLES, TRIE_STEP_CYCLES};
use crate::runtime::{NetworkFunction, Verdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yala_sim::ExecutionPattern;
use yala_traffic::PacketView;

/// Modelled bytes per trie node (two child indices + next hop).
const NODE_BYTES: f64 = 24.0;

#[derive(Debug, Clone, Default)]
struct Node {
    children: [Option<u32>; 2],
    next_hop: Option<u32>,
}

/// A binary (unibit) LPM trie over IPv4 destination prefixes.
#[derive(Debug, Clone)]
pub struct IpRouter {
    nodes: Vec<Node>,
}

impl IpRouter {
    /// Builds a router with `n_routes` random prefixes (lengths 8–24) plus
    /// a default route, deterministic in `seed`.
    pub fn new(n_routes: usize, seed: u64) -> Self {
        let mut router = Self {
            nodes: vec![Node::default()],
        };
        router.nodes[0].next_hop = Some(0); // default route
        let mut rng = StdRng::seed_from_u64(seed);
        for hop in 1..=n_routes as u32 {
            let len = rng.gen_range(8..=24);
            let prefix: u32 = rng.gen::<u32>() & (!0u32 << (32 - len));
            router.insert(prefix, len, hop);
        }
        router
    }

    /// Inserts a route `prefix/len -> next_hop`.
    pub fn insert(&mut self, prefix: u32, len: u8, next_hop: u32) {
        assert!(len <= 32, "prefix length out of range");
        let mut at = 0usize;
        for depth in 0..len {
            let bit = ((prefix >> (31 - depth)) & 1) as usize;
            let next = match self.nodes[at].children[bit] {
                Some(n) => n as usize,
                None => {
                    let id = self.nodes.len() as u32;
                    self.nodes.push(Node::default());
                    self.nodes[at].children[bit] = Some(id);
                    id as usize
                }
            };
            at = next;
        }
        self.nodes[at].next_hop = Some(next_hop);
    }

    /// Longest-prefix-match lookup; returns `(next_hop, trie steps)`.
    pub fn lookup(&self, dst_ip: u32) -> (u32, usize) {
        let mut at = 0usize;
        let mut best = self.nodes[0].next_hop.unwrap_or(0);
        let mut steps = 0usize;
        for depth in 0..32 {
            let bit = ((dst_ip >> (31 - depth)) & 1) as usize;
            match self.nodes[at].children[bit] {
                Some(n) => {
                    at = n as usize;
                    steps += 1;
                    if let Some(h) = self.nodes[at].next_hop {
                        best = h;
                    }
                }
                None => break,
            }
        }
        (best, steps)
    }

    /// Number of trie nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl NetworkFunction for IpRouter {
    fn name(&self) -> &'static str {
        "iprouter"
    }

    fn pattern(&self) -> ExecutionPattern {
        ExecutionPattern::RunToCompletion
    }

    fn process(&mut self, pkt: PacketView<'_>, cost: &mut CostTracker) -> Verdict {
        cost.compute(PARSE_CYCLES);
        cost.read_lines(1.0);
        let (_hop, steps) = self.lookup(pkt.five_tuple.dst_ip);
        cost.compute(TRIE_STEP_CYCLES * steps as f64);
        // Two trie nodes fit in a cache line.
        cost.read_lines((steps as f64 / 2.0).ceil());
        // Rewrite MAC / decrement TTL.
        cost.compute(30.0);
        cost.write_lines(1.0);
        Verdict::Forward
    }

    fn wss_bytes(&self) -> f64 {
        self.nodes.len() as f64 * NODE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_traffic::FiveTuple;
    use yala_traffic::Packet;

    #[test]
    fn longest_prefix_wins() {
        let mut r = IpRouter::new(0, 0);
        r.insert(0x0a000000, 8, 1); // 10.0.0.0/8 -> 1
        r.insert(0x0a010000, 16, 2); // 10.1.0.0/16 -> 2
        r.insert(0x0a010100, 24, 3); // 10.1.1.0/24 -> 3
        assert_eq!(r.lookup(0x0a020202).0, 1);
        assert_eq!(r.lookup(0x0a010202).0, 2);
        assert_eq!(r.lookup(0x0a010105).0, 3);
        assert_eq!(r.lookup(0x0b000001).0, 0, "default route");
    }

    #[test]
    fn lookup_steps_bounded_by_depth() {
        let r = IpRouter::new(1024, 7);
        let (_, steps) = r.lookup(0x0a0a0a0a);
        assert!(steps <= 32);
    }

    #[test]
    fn deterministic_construction() {
        let a = IpRouter::new(100, 5);
        let b = IpRouter::new(100, 5);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.lookup(0x12345678), b.lookup(0x12345678));
    }

    #[test]
    fn wss_is_config_sized_not_traffic_sized() {
        let r = IpRouter::new(1024, 1);
        let w0 = r.wss_bytes();
        // Processing traffic must not grow the footprint.
        let mut r = r;
        let mut cost = CostTracker::new();
        for i in 0..1000u32 {
            let pkt = Packet::new(FiveTuple::new(i, i.wrapping_mul(7), 1, 2, 6), vec![0; 64]);
            r.process(pkt.view(), &mut cost);
        }
        assert_eq!(r.wss_bytes(), w0);
    }

    #[test]
    fn forwards_everything() {
        let mut r = IpRouter::new(10, 3);
        let pkt = Packet::new(FiveTuple::new(1, 2, 3, 4, 6), vec![0; 10]);
        assert_eq!(
            r.process(pkt.view(), &mut CostTracker::new()),
            Verdict::Forward
        );
    }
}
