//! IPTunnel: IP-in-IP encapsulation (Click). Copies and re-checksums the
//! packet, so its cost scales with *packet size* — the packet-size-
//! sensitive NF of the evaluation (Table 5 shows SLOMO's 62.9% MAPE on it
//! under varying traffic).

use crate::cost::{CostTracker, LINE_BYTES, PARSE_CYCLES, PER_BYTE_CYCLES};
use crate::runtime::{NetworkFunction, Verdict};
use crate::table::FlowTable;
use yala_sim::ExecutionPattern;
use yala_traffic::FiveTuple;
use yala_traffic::PacketView;

/// The IPTunnel NF: wraps packets toward a tunnel endpoint chosen per flow.
#[derive(Debug, Clone)]
pub struct IpTunnel {
    /// Cached per-flow tunnel endpoint assignments.
    endpoints: FlowTable<u32>,
    /// Available tunnel endpoints.
    n_endpoints: u32,
    /// Packets encapsulated so far.
    encapsulated: u64,
}

impl IpTunnel {
    /// Creates a tunnel NF with `n_endpoints` remote endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `n_endpoints` is zero.
    pub fn new(n_endpoints: u32) -> Self {
        assert!(n_endpoints > 0, "need at least one tunnel endpoint");
        Self {
            endpoints: FlowTable::with_entry_bytes(256, 48.0),
            n_endpoints,
            encapsulated: 0,
        }
    }

    /// Total packets encapsulated.
    pub fn encapsulated(&self) -> u64 {
        self.encapsulated
    }

    /// The endpoint a flow is pinned to, assigning one if new.
    pub fn endpoint_for(&mut self, flow: &FiveTuple) -> u32 {
        let key = flow.hash64();
        if let (Some(ep), _) = self.endpoints.get_mut(key) {
            return *ep;
        }
        let ep = (key % self.n_endpoints as u64) as u32;
        self.endpoints.insert(key, ep);
        ep
    }
}

impl NetworkFunction for IpTunnel {
    fn name(&self) -> &'static str {
        "iptunnel"
    }

    fn pattern(&self) -> ExecutionPattern {
        ExecutionPattern::RunToCompletion
    }

    fn process(&mut self, pkt: PacketView<'_>, cost: &mut CostTracker) -> Verdict {
        cost.compute(PARSE_CYCLES);
        cost.read_lines(1.0);
        // Pick the tunnel endpoint (tiny per-flow cache).
        let key = pkt.five_tuple.hash64();
        let (hit, probes) = self.endpoints.get_mut(key);
        cost.read_lines(probes as f64);
        if hit.is_none() {
            let ep = (key % self.n_endpoints as u64) as u32;
            let p = self.endpoints.insert(key, ep);
            cost.write_lines(p as f64);
        }
        // Encapsulate: prepend outer header and copy payload through.
        let bytes = pkt.payload_len() as f64;
        let lines = (bytes / LINE_BYTES).ceil();
        cost.read_lines(lines);
        cost.write_lines(lines);
        // Outer checksum over the whole packet.
        cost.compute(bytes * PER_BYTE_CYCLES + 80.0);
        cost.write_lines(1.0); // outer header
        self.encapsulated += 1;
        Verdict::Forward
    }

    fn wss_bytes(&self) -> f64 {
        // Endpoint cache plus per-core encap staging buffers.
        self.endpoints.wss_bytes() + 128.0 * 1024.0
    }

    fn warm(&mut self, flows: &[FiveTuple]) {
        for f in flows {
            self.endpoint_for(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_traffic::Packet;

    fn pkt(len: usize) -> Packet {
        Packet::new(FiveTuple::new(9, 8, 7, 6, 17), vec![0u8; len])
    }

    #[test]
    fn endpoint_assignment_is_sticky() {
        let mut nf = IpTunnel::new(4);
        let flow = FiveTuple::new(1, 2, 3, 4, 6);
        let ep = nf.endpoint_for(&flow);
        for _ in 0..10 {
            assert_eq!(nf.endpoint_for(&flow), ep);
        }
    }

    #[test]
    fn cost_scales_with_packet_size() {
        let mut nf = IpTunnel::new(4);
        let mut small = CostTracker::new();
        nf.process(pkt(64).view(), &mut small);
        let mut large = CostTracker::new();
        nf.process(pkt(1446).view(), &mut large);
        assert!(
            large.cycles > small.cycles * 3.0,
            "checksum cost must scale"
        );
        assert!(large.refs() > small.refs() * 3.0, "copy refs must scale");
    }

    #[test]
    fn counts_encapsulations() {
        let mut nf = IpTunnel::new(2);
        for _ in 0..5 {
            nf.process(pkt(100).view(), &mut CostTracker::new());
        }
        assert_eq!(nf.encapsulated(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one tunnel endpoint")]
    fn zero_endpoints_panics() {
        IpTunnel::new(0);
    }
}
