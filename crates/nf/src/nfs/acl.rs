//! ACL: ordered access-control-list matching over header fields (DPDK
//! ip_pipeline style). Lightweight and traffic-insensitive — the paper's
//! easiest prediction target (Table 2 shows ~1% MAPE for both SLOMO and
//! Yala).

use crate::cost::{CostTracker, ACL_RULE_CYCLES, PARSE_CYCLES};
use crate::runtime::{NetworkFunction, Verdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yala_sim::ExecutionPattern;
use yala_traffic::FiveTuple;
use yala_traffic::PacketView;

/// One ACL rule: masked match on the 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AclRule {
    /// Source prefix (value, mask-length 0–32).
    pub src: (u32, u8),
    /// Destination prefix.
    pub dst: (u32, u8),
    /// Destination port to match (`None` = any).
    pub dst_port: Option<u16>,
    /// Protocol to match (`None` = any).
    pub proto: Option<u8>,
    /// Whether matching packets are permitted.
    pub permit: bool,
}

impl AclRule {
    /// Whether the rule matches a flow.
    pub fn matches(&self, ft: &FiveTuple) -> bool {
        prefix_match(self.src, ft.src_ip)
            && prefix_match(self.dst, ft.dst_ip)
            && self.dst_port.is_none_or(|p| p == ft.dst_port)
            && self.proto.is_none_or(|p| p == ft.proto)
    }
}

fn prefix_match((value, len): (u32, u8), ip: u32) -> bool {
    if len == 0 {
        return true;
    }
    let mask = !0u32 << (32 - len as u32);
    (ip & mask) == (value & mask)
}

/// The ACL NF: first matching rule decides; default permit.
#[derive(Debug, Clone)]
pub struct Acl {
    rules: Vec<AclRule>,
    denied: u64,
}

impl Acl {
    /// Builds an ACL with `n_rules` random deny rules (deterministic in
    /// `seed`) followed by an implicit default permit.
    pub fn new(n_rules: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let rules = (0..n_rules)
            .map(|_| AclRule {
                src: (rng.gen(), rng.gen_range(8..=24)),
                dst: (rng.gen(), rng.gen_range(8..=24)),
                dst_port: rng.gen_bool(0.5).then(|| rng.gen_range(1..1024)),
                proto: rng
                    .gen_bool(0.3)
                    .then(|| if rng.gen_bool(0.5) { 6 } else { 17 }),
                permit: false,
            })
            .collect();
        Self { rules, denied: 0 }
    }

    /// Builds an ACL from explicit rules.
    pub fn from_rules(rules: Vec<AclRule>) -> Self {
        Self { rules, denied: 0 }
    }

    /// Packets denied so far.
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// Number of configured rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Evaluates the list; returns `(permit, rules inspected)`.
    pub fn evaluate(&self, ft: &FiveTuple) -> (bool, usize) {
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.matches(ft) {
                return (rule.permit, i + 1);
            }
        }
        (true, self.rules.len())
    }
}

impl NetworkFunction for Acl {
    fn name(&self) -> &'static str {
        "acl"
    }

    fn pattern(&self) -> ExecutionPattern {
        ExecutionPattern::RunToCompletion
    }

    fn process(&mut self, pkt: PacketView<'_>, cost: &mut CostTracker) -> Verdict {
        cost.compute(PARSE_CYCLES);
        cost.read_lines(1.0);
        let (permit, inspected) = self.evaluate(&pkt.five_tuple);
        cost.compute(ACL_RULE_CYCLES * inspected as f64);
        // Four packed rules per cache line.
        cost.read_lines((inspected as f64 / 4.0).ceil());
        if permit {
            Verdict::Forward
        } else {
            self.denied += 1;
            Verdict::Drop
        }
    }

    fn wss_bytes(&self) -> f64 {
        // Rules are compact: 16 bytes packed each.
        self.rules.len() as f64 * 16.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_traffic::Packet;

    #[test]
    fn deny_rule_drops() {
        let rule = AclRule {
            src: (0x0a000000, 8),
            dst: (0, 0),
            dst_port: Some(22),
            proto: Some(6),
            permit: false,
        };
        let mut acl = Acl::from_rules(vec![rule]);
        let bad = Packet::new(FiveTuple::new(0x0a121212, 9, 1000, 22, 6), vec![]);
        assert_eq!(
            acl.process(bad.view(), &mut CostTracker::new()),
            Verdict::Drop
        );
        assert_eq!(acl.denied(), 1);
        let good = Packet::new(FiveTuple::new(0x0b121212, 9, 1000, 22, 6), vec![]);
        assert_eq!(
            acl.process(good.view(), &mut CostTracker::new()),
            Verdict::Forward
        );
    }

    #[test]
    fn first_match_wins() {
        let permit_all = AclRule {
            src: (0, 0),
            dst: (0, 0),
            dst_port: None,
            proto: None,
            permit: true,
        };
        let deny_all = AclRule {
            permit: false,
            ..permit_all
        };
        let mut acl = Acl::from_rules(vec![permit_all, deny_all]);
        let pkt = Packet::new(FiveTuple::new(1, 2, 3, 4, 6), vec![]);
        assert_eq!(
            acl.process(pkt.view(), &mut CostTracker::new()),
            Verdict::Forward
        );
    }

    #[test]
    fn default_permit_on_no_match() {
        let mut acl = Acl::from_rules(vec![]);
        let pkt = Packet::new(FiveTuple::new(1, 2, 3, 4, 6), vec![]);
        assert_eq!(
            acl.process(pkt.view(), &mut CostTracker::new()),
            Verdict::Forward
        );
    }

    #[test]
    fn footprint_is_tiny_and_fixed() {
        let acl = Acl::new(256, 1);
        assert_eq!(acl.wss_bytes(), 256.0 * 16.0);
        assert!(acl.wss_bytes() < 8192.0);
    }

    #[test]
    fn prefix_match_semantics() {
        assert!(prefix_match((0x0a000000, 8), 0x0affffff));
        assert!(!prefix_match((0x0a000000, 8), 0x0bffffff));
        assert!(prefix_match((0, 0), 0x12345678), "len 0 matches everything");
        assert!(prefix_match((0x12345678, 32), 0x12345678));
        assert!(!prefix_match((0x12345678, 32), 0x12345679));
    }
}
