//! FlowClassifier: assigns each flow to a traffic class from header fields
//! and caches the decision per flow (DPDK ip_pipeline flow classification).
//! Flow-count sensitive through its class cache.

use crate::cost::{CostTracker, HASH_CYCLES, PARSE_CYCLES, PROBE_CYCLES, UPDATE_CYCLES};
use crate::runtime::{NetworkFunction, Verdict};
use crate::table::FlowTable;
use yala_sim::ExecutionPattern;
use yala_traffic::FiveTuple;
use yala_traffic::PacketView;

/// Number of traffic classes.
pub const N_CLASSES: u8 = 8;

/// The FlowClassifier NF.
#[derive(Debug, Clone)]
pub struct FlowClassifier {
    cache: FlowTable<u8>,
    class_counts: [u64; N_CLASSES as usize],
}

impl FlowClassifier {
    /// Creates an empty classifier.
    pub fn new() -> Self {
        Self {
            cache: FlowTable::with_entry_bytes(1024, 80.0),
            class_counts: [0; 8],
        }
    }

    /// The classification rule: protocol and destination port buckets.
    pub fn classify(ft: &FiveTuple) -> u8 {
        let base = match ft.dst_port {
            80 | 8080 => 0u8, // web
            443 => 1,         // tls
            22 => 2,          // ssh
            25 => 3,          // mail
            53 => 4,          // dns
            _ => 5,           // other
        };
        let proto_bump = if ft.proto == 17 { 2u8 } else { 0 };
        (base + proto_bump) % N_CLASSES
    }

    /// Packets seen per class.
    pub fn class_counts(&self) -> &[u64; 8] {
        &self.class_counts
    }

    /// Cached flows.
    pub fn cached_flows(&self) -> usize {
        self.cache.len()
    }
}

impl Default for FlowClassifier {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkFunction for FlowClassifier {
    fn name(&self) -> &'static str {
        "flowclassifier"
    }

    fn pattern(&self) -> ExecutionPattern {
        ExecutionPattern::RunToCompletion
    }

    fn process(&mut self, pkt: PacketView<'_>, cost: &mut CostTracker) -> Verdict {
        cost.compute(PARSE_CYCLES + HASH_CYCLES);
        cost.read_lines(1.0);
        let key = pkt.five_tuple.hash64();
        let (hit, probes) = self.cache.get_mut(key);
        cost.compute(PROBE_CYCLES * probes as f64);
        cost.read_lines(probes as f64);
        let class = match hit {
            Some(c) => *c,
            None => {
                let c = Self::classify(&pkt.five_tuple);
                cost.compute(60.0); // classification logic
                let p = self.cache.insert(key, c);
                cost.compute(PROBE_CYCLES * p as f64 + UPDATE_CYCLES);
                cost.write_lines(p as f64);
                c
            }
        };
        self.class_counts[class as usize] += 1;
        cost.compute(UPDATE_CYCLES);
        cost.write_lines(1.0);
        Verdict::Forward
    }

    fn wss_bytes(&self) -> f64 {
        self.cache.wss_bytes()
    }

    fn warm(&mut self, flows: &[FiveTuple]) {
        for f in flows {
            self.cache.insert(f.hash64(), Self::classify(f));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_traffic::Packet;

    #[test]
    fn classification_is_deterministic() {
        let web = FiveTuple::new(1, 2, 3, 80, 6);
        assert_eq!(FlowClassifier::classify(&web), 0);
        let dns_udp = FiveTuple::new(1, 2, 3, 53, 17);
        assert_eq!(FlowClassifier::classify(&dns_udp), 6);
    }

    #[test]
    fn caches_per_flow() {
        let mut fc = FlowClassifier::new();
        let pkt = Packet::new(FiveTuple::new(1, 2, 3, 443, 6), vec![]);
        let mut c1 = CostTracker::new();
        fc.process(pkt.view(), &mut c1);
        assert_eq!(fc.cached_flows(), 1);
        let mut c2 = CostTracker::new();
        fc.process(pkt.view(), &mut c2);
        assert_eq!(fc.cached_flows(), 1, "no duplicate cache entry");
        assert!(c2.cycles < c1.cycles, "cache hit must be cheaper");
        assert_eq!(fc.class_counts()[1], 2);
    }

    #[test]
    fn warm_fills_cache() {
        let mut fc = FlowClassifier::new();
        let flows: Vec<FiveTuple> = (0..5000u32)
            .map(|i| FiveTuple::new(i, 2, 3, 80, 6))
            .collect();
        fc.warm(&flows);
        assert_eq!(fc.cached_flows(), 5000);
        assert!(fc.wss_bytes() > 5000.0 * 70.0);
    }
}
