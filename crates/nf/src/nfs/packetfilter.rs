//! PacketFilter: stateless payload filtering on the regex accelerator
//! (DOCA-style). No flow table — its only traffic sensitivity is MTBR and
//! packet size through the scan itself.

use crate::cost::{CostTracker, PARSE_CYCLES};
use crate::runtime::{NetworkFunction, Verdict};
use yala_rxp::{l7_default_ruleset, Ruleset, ScanReport};
use yala_sim::{ExecutionPattern, ResourceKind};
use yala_traffic::PacketView;

/// The PacketFilter NF.
#[derive(Debug, Clone)]
pub struct PacketFilter {
    rules: Ruleset,
    /// Reusable scan scratch: keeps the per-packet hot loop allocation-free.
    scratch: ScanReport,
    dropped: u64,
    passed: u64,
}

impl PacketFilter {
    /// Creates a filter with the default ruleset (any match ⇒ drop).
    pub fn new() -> Self {
        let rules = l7_default_ruleset();
        Self {
            scratch: ScanReport::with_rules(rules.len()),
            rules,
            dropped: 0,
            passed: 0,
        }
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Packets passed so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }
}

impl Default for PacketFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkFunction for PacketFilter {
    fn name(&self) -> &'static str {
        "packetfilter"
    }

    fn pattern(&self) -> ExecutionPattern {
        ExecutionPattern::Pipeline
    }

    fn process(&mut self, pkt: PacketView<'_>, cost: &mut CostTracker) -> Verdict {
        cost.compute(PARSE_CYCLES);
        cost.read_lines(1.0);
        self.rules.scan_into(pkt.payload, &mut self.scratch);
        let total_matches = self.scratch.total_matches;
        cost.accel_request(
            ResourceKind::Regex,
            pkt.payload_len() as f64,
            total_matches as f64,
        );
        cost.compute(70.0);
        cost.read_lines(1.0);
        cost.write_lines(1.0);
        if total_matches > 0 {
            self.dropped += 1;
            Verdict::Drop
        } else {
            self.passed += 1;
            Verdict::Forward
        }
    }

    fn wss_bytes(&self) -> f64 {
        // Stateless: descriptor rings only.
        64.0 * 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_traffic::FiveTuple;
    use yala_traffic::Packet;

    #[test]
    fn drops_matching_payloads() {
        let mut pf = PacketFilter::new();
        let flow = FiveTuple::new(1, 2, 3, 4, 6);
        let v = pf.process(
            Packet::new(flow, b"qq SSH-2.0-OpenSSH_8.9 qq".to_vec()).view(),
            &mut CostTracker::new(),
        );
        assert_eq!(v, Verdict::Drop);
        assert_eq!(pf.dropped(), 1);
    }

    #[test]
    fn passes_clean_payloads() {
        let mut pf = PacketFilter::new();
        let flow = FiveTuple::new(1, 2, 3, 4, 6);
        let v = pf.process(
            Packet::new(flow, vec![b'q'; 64]).view(),
            &mut CostTracker::new(),
        );
        assert_eq!(v, Verdict::Forward);
        assert_eq!(pf.passed(), 1);
    }

    #[test]
    fn wss_is_flow_independent() {
        let pf = PacketFilter::new();
        assert_eq!(pf.wss_bytes(), 64.0 * 1024.0);
    }
}
