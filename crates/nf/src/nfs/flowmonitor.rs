//! FlowMonitor: per-flow statistics plus payload inspection on the regex
//! accelerator (Click + RXP). The paper's running example of a
//! *multi-resource* NF — it contends on both the memory subsystem (flow
//! table) and the regex engine (payload scans), which is what breaks
//! single-resource predictors (Fig. 2).

use crate::cost::{CostTracker, HASH_CYCLES, PARSE_CYCLES, PROBE_CYCLES, UPDATE_CYCLES};
use crate::runtime::{NetworkFunction, Verdict};
use crate::table::FlowTable;
use yala_rxp::{l7_default_ruleset, Ruleset, ScanReport};
use yala_sim::{ExecutionPattern, ResourceKind};
use yala_traffic::FiveTuple;
use yala_traffic::PacketView;

/// Per-flow monitoring record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorEntry {
    /// Packets seen.
    pub packets: u64,
    /// Ruleset matches attributed to this flow.
    pub matches: u64,
}

/// The FlowMonitor NF.
#[derive(Debug, Clone)]
pub struct FlowMonitor {
    table: FlowTable<MonitorEntry>,
    rules: Ruleset,
    /// Reusable scan scratch: keeps the per-packet hot loop allocation-free.
    scratch: ScanReport,
}

impl FlowMonitor {
    /// Creates a FlowMonitor scanning with the default L7 ruleset.
    pub fn new() -> Self {
        Self::with_ruleset(l7_default_ruleset())
    }

    /// Creates a FlowMonitor with a custom ruleset.
    pub fn with_ruleset(rules: Ruleset) -> Self {
        Self {
            table: FlowTable::with_entry_bytes(1024, 64.0),
            scratch: ScanReport::with_rules(rules.len()),
            rules,
        }
    }

    /// The record for a flow.
    pub fn entry(&mut self, flow: &FiveTuple) -> Option<MonitorEntry> {
        self.table.get_mut(flow.hash64()).0.copied()
    }
}

impl Default for FlowMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkFunction for FlowMonitor {
    fn name(&self) -> &'static str {
        "flowmonitor"
    }

    fn pattern(&self) -> ExecutionPattern {
        ExecutionPattern::RunToCompletion
    }

    fn process(&mut self, pkt: PacketView<'_>, cost: &mut CostTracker) -> Verdict {
        cost.compute(PARSE_CYCLES + HASH_CYCLES);
        cost.read_lines(1.0);
        // Offload the payload scan to the regex accelerator. The match
        // count is *measured* by really scanning — this is what makes MTBR
        // a causal traffic attribute in the reproduction.
        self.rules.scan_into(pkt.payload, &mut self.scratch);
        let total_matches = self.scratch.total_matches;
        cost.accel_request(
            ResourceKind::Regex,
            pkt.payload_len() as f64,
            total_matches as f64,
        );
        // Submit/poll descriptor cost.
        cost.compute(90.0);
        cost.read_lines(1.0);
        cost.write_lines(1.0);
        // Account the result into the flow table.
        let key = pkt.five_tuple.hash64();
        let (hit, probes) = self.table.get_mut(key);
        cost.compute(PROBE_CYCLES * probes as f64);
        cost.read_lines(probes as f64);
        match hit {
            Some(e) => {
                e.packets += 1;
                e.matches += total_matches as u64;
                cost.compute(UPDATE_CYCLES);
                cost.write_lines(1.0);
            }
            None => {
                let p = self.table.insert(
                    key,
                    MonitorEntry {
                        packets: 1,
                        matches: total_matches as u64,
                    },
                );
                cost.compute(PROBE_CYCLES * p as f64 + UPDATE_CYCLES);
                cost.write_lines(p as f64);
            }
        }
        Verdict::Forward
    }

    fn wss_bytes(&self) -> f64 {
        self.table.wss_bytes()
    }

    fn warm(&mut self, flows: &[FiveTuple]) {
        for f in flows {
            self.table.insert(f.hash64(), MonitorEntry::default());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_traffic::Packet;

    #[test]
    fn records_matches_per_flow() {
        let mut nf = FlowMonitor::new();
        let flow = FiveTuple::new(1, 2, 3, 4, 6);
        let benign = Packet::new(flow, b"nothing to see here qqqq".to_vec());
        let mut cost = CostTracker::new();
        nf.process(benign.view(), &mut cost);
        assert_eq!(nf.entry(&flow).unwrap().matches, 0);

        let hostile = Packet::new(flow, b"xx ' OR 1=1 -- yy".to_vec());
        nf.process(hostile.view(), &mut CostTracker::new());
        let e = nf.entry(&flow).unwrap();
        assert_eq!(e.packets, 2);
        assert_eq!(e.matches, 1);
    }

    #[test]
    fn issues_one_regex_request_per_packet() {
        let mut nf = FlowMonitor::new();
        let pkt = Packet::new(FiveTuple::new(1, 2, 3, 4, 6), vec![b'q'; 500]);
        let mut cost = CostTracker::new();
        nf.process(pkt.view(), &mut cost);
        assert_eq!(cost.accel.len(), 1);
        assert_eq!(cost.accel[0].kind, ResourceKind::Regex);
        assert_eq!(cost.accel[0].bytes, 500.0);
        assert_eq!(cost.accel[0].matches, 0.0);
    }

    #[test]
    fn match_count_reaches_accel_request() {
        let mut nf = FlowMonitor::new();
        let mut payload = Vec::new();
        for _ in 0..3 {
            payload.extend_from_slice(b"qq filler ' OR 1=1 more filler ");
        }
        let pkt = Packet::new(FiveTuple::new(1, 2, 3, 4, 6), payload);
        let mut cost = CostTracker::new();
        nf.process(pkt.view(), &mut cost);
        assert_eq!(cost.accel[0].matches, 3.0);
    }
}
