//! The network functions of the paper's Table 1 (plus the Pensando
//! Firewall of §8), each implemented with real packet-processing logic.

pub mod acl;
pub mod firewall;
pub mod flowclassifier;
pub mod flowmonitor;
pub mod flowstats;
pub mod flowtracker;
pub mod ipcomp;
pub mod iprouter;
pub mod iptunnel;
pub mod nat;
pub mod nids;
pub mod packetfilter;

pub use acl::Acl;
pub use firewall::Firewall;
pub use flowclassifier::FlowClassifier;
pub use flowmonitor::FlowMonitor;
pub use flowstats::FlowStats;
pub use flowtracker::FlowTracker;
pub use ipcomp::IpCompGateway;
pub use iprouter::IpRouter;
pub use iptunnel::IpTunnel;
pub use nat::Nat;
pub use nids::Nids;
pub use packetfilter::PacketFilter;
