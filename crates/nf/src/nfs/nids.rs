//! NIDS: network intrusion detection — per-flow connection state plus
//! signature scanning on the regex accelerator, raising alerts on matches
//! (Click + RXP; E3/SLOMO-style NIDS). A pipeline NF: parse/flow-state and
//! scan run as separate stages.

use crate::cost::{CostTracker, HASH_CYCLES, PARSE_CYCLES, PROBE_CYCLES, UPDATE_CYCLES};
use crate::runtime::{NetworkFunction, Verdict};
use crate::table::FlowTable;
use yala_rxp::{l7_default_ruleset, Ruleset, ScanReport};
use yala_sim::{ExecutionPattern, ResourceKind};
use yala_traffic::FiveTuple;
use yala_traffic::PacketView;

/// Per-flow connection record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnState {
    /// Packets inspected on this flow.
    pub packets: u64,
    /// Alerts raised on this flow.
    pub alerts: u64,
}

/// The NIDS NF.
#[derive(Debug, Clone)]
pub struct Nids {
    table: FlowTable<ConnState>,
    rules: Ruleset,
    /// Reusable scan scratch: keeps the per-packet hot loop allocation-free.
    scratch: ScanReport,
    alerts: u64,
}

impl Nids {
    /// Creates a NIDS with the default ruleset.
    pub fn new() -> Self {
        let rules = l7_default_ruleset();
        Self {
            table: FlowTable::with_entry_bytes(1024, 96.0),
            scratch: ScanReport::with_rules(rules.len()),
            rules,
            alerts: 0,
        }
    }

    /// Total alerts raised.
    pub fn alerts(&self) -> u64 {
        self.alerts
    }

    /// Connection state for a flow.
    pub fn conn(&mut self, flow: &FiveTuple) -> Option<ConnState> {
        self.table.get_mut(flow.hash64()).0.copied()
    }
}

impl Default for Nids {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkFunction for Nids {
    fn name(&self) -> &'static str {
        "nids"
    }

    fn pattern(&self) -> ExecutionPattern {
        ExecutionPattern::Pipeline
    }

    fn process(&mut self, pkt: PacketView<'_>, cost: &mut CostTracker) -> Verdict {
        // Stage 1 (CPU): parse + connection tracking.
        cost.compute(PARSE_CYCLES + HASH_CYCLES);
        cost.read_lines(1.0);
        let key = pkt.five_tuple.hash64();
        let (hit, probes) = self.table.get_mut(key);
        cost.compute(PROBE_CYCLES * probes as f64);
        cost.read_lines(probes as f64);
        let is_new = hit.is_none();
        if is_new {
            let p = self.table.insert(key, ConnState::default());
            cost.compute(PROBE_CYCLES * p as f64 + UPDATE_CYCLES);
            cost.write_lines(p as f64);
        }
        // Stage 2 (regex accelerator): signature scan.
        self.rules.scan_into(pkt.payload, &mut self.scratch);
        let total_matches = self.scratch.total_matches;
        cost.accel_request(
            ResourceKind::Regex,
            pkt.payload_len() as f64,
            total_matches as f64,
        );
        cost.compute(90.0);
        cost.read_lines(1.0);
        cost.write_lines(1.0);
        // Stage 3 (CPU): verdict + state update.
        let (entry, _) = self.table.get_mut(key);
        let entry = entry.expect("inserted above");
        entry.packets += 1;
        cost.compute(UPDATE_CYCLES);
        cost.write_lines(1.0);
        if total_matches > 0 {
            entry.alerts += total_matches as u64;
            self.alerts += total_matches as u64;
            cost.compute(150.0); // alert formatting
            cost.write_lines(1.0);
            return Verdict::Drop;
        }
        Verdict::Forward
    }

    fn wss_bytes(&self) -> f64 {
        self.table.wss_bytes()
    }

    fn warm(&mut self, flows: &[FiveTuple]) {
        for f in flows {
            self.table.insert(f.hash64(), ConnState::default());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_traffic::Packet;

    #[test]
    fn alerts_and_drops_on_signature() {
        let mut nids = Nids::new();
        let flow = FiveTuple::new(1, 2, 3, 4, 6);
        let attack = Packet::new(flow, b"GET /x<script>alert(1)</script> qq".to_vec());
        let verdict = nids.process(attack.view(), &mut CostTracker::new());
        assert_eq!(verdict, Verdict::Drop);
        assert!(nids.alerts() >= 1);
        assert!(nids.conn(&flow).unwrap().alerts >= 1);
    }

    #[test]
    fn forwards_benign_traffic() {
        let mut nids = Nids::new();
        let flow = FiveTuple::new(1, 2, 3, 4, 6);
        let benign = Packet::new(flow, vec![b'q'; 200]);
        assert_eq!(
            nids.process(benign.view(), &mut CostTracker::new()),
            Verdict::Forward
        );
        assert_eq!(nids.alerts(), 0);
        assert_eq!(nids.conn(&flow).unwrap().packets, 1);
    }

    #[test]
    fn is_pipeline() {
        assert_eq!(Nids::new().pattern(), ExecutionPattern::Pipeline);
    }

    #[test]
    fn alert_path_costs_more() {
        let mut nids = Nids::new();
        let flow = FiveTuple::new(1, 2, 3, 4, 6);
        let mut benign_cost = CostTracker::new();
        nids.process(Packet::new(flow, vec![b'q'; 100]).view(), &mut benign_cost);
        let mut attack_cost = CostTracker::new();
        nids.process(
            Packet::new(flow, b"xxxx ' OR 1=1 -- qqqqqqqqqq".to_vec()).view(),
            &mut attack_cost,
        );
        assert!(attack_cost.cycles > benign_cost.cycles);
    }
}
